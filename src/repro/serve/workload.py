"""Seeded open-loop load generation for the serving engine.

The workload is a pure function of ``(spec, pool)``: every arrival time,
request kind, priority, deadline and payload choice is drawn from RNG
streams derived via :func:`repro.runtime.derive_seed`, so the same spec
produces the same request sequence in every process — the first half of
the engine's end-to-end determinism contract.

Two load models coexist:

* **Open-loop** (:class:`WorkloadSpec` / :func:`generate_workload`) —
  clients do not wait for responses (the honest model for overload
  studies: offered load is what the fleet generates, not what the server
  admits), Poisson-like per client: exponential inter-arrival gaps,
  optionally compressed by a deterministic square-wave burst pattern so
  the engine sees realistic platoon-crossing spikes, not just a smooth
  mean rate.
* **Closed-loop** (:class:`ClosedLoopSpec` / :class:`ClosedLoopClient`)
  — platooning control loops that issue one request, wait for its
  terminal outcome, think for a seeded gap, and re-issue.  Their request
  ids come from a reserved high range (:data:`CLOSED_LOOP_ID_BASE`), so
  open-loop trace ids (dense from 0) and closed-loop ids never collide;
  each client's entire decision stream is a pure function of its derived
  seed and the engine-reported outcome times, which keeps mixed
  open+closed workloads inside the determinism contract.

Payloads come from a :class:`ScenarioPool` — a small set of pre-scanned
cooperative scenes the requests reference (many vehicles asking about a
bounded world, the serving regime Cooper targets).  Ingress channel
faults (a request lost before reaching the service) are applied by
:func:`apply_ingress_loss` with the same Gilbert-Elliott burst machinery
the exchange channel uses (:mod:`repro.faults`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import CooperativeCase, make_case
from repro.faults.models import BurstLossModel
from repro.fusion.package import ExchangePackage
from repro.geometry.transforms import Pose
from repro.network.demand import RoiRequest
from repro.pointcloud.cloud import PointCloud
from repro.runtime import derive_seed
from repro.scene.layouts import parking_lot, t_junction
from repro.sensors.lidar import VLP_16, BeamPattern
from repro.serve.requests import PerceptionRequest, RequestKind

__all__ = [
    "PoolEntry",
    "ScenarioPool",
    "WorkloadSpec",
    "ClosedLoopSpec",
    "ClosedLoopClient",
    "make_closed_loop_clients",
    "generate_workload",
    "apply_ingress_loss",
    "CLOSED_LOOP_ID_BASE",
    "CLOSED_LOOP_ID_STRIDE",
]

CLOSED_LOOP_ID_BASE = 1_000_000_000
"""First request id of the closed-loop range (open-loop ids are dense
from 0, so the two streams can never collide)."""

CLOSED_LOOP_ID_STRIDE = 1_000_000
"""Id stride per closed-loop client: client ``i`` owns ids
``BASE + i*STRIDE .. BASE + (i+1)*STRIDE - 1``."""


@dataclass(frozen=True)
class PoolEntry:
    """One scene's worth of request payloads.

    Attributes:
        name: scene identifier.
        native_cloud / native_pose: the receiver's own scan and measured
            pose (DETECT payload; FUSE_DETECT native side).
        packages: cooperator exchange packages (FUSE_DETECT payload).
        coop_cloud / coop_pose: one cooperator's scan and measured pose
            (ROI_ANSWER payload — the cloud being cropped).
        roi: a demand-driven region request in the receiver's frame.
    """

    name: str
    native_cloud: PointCloud
    native_pose: Pose
    packages: tuple[ExchangePackage, ...]
    coop_cloud: PointCloud
    coop_pose: Pose
    roi: RoiRequest


@dataclass(frozen=True)
class ScenarioPool:
    """The bounded payload universe the workload draws from."""

    entries: tuple[PoolEntry, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("scenario pool must not be empty")

    @classmethod
    def from_cases(
        cls, cases: list[CooperativeCase], roi_margin: float = 1.5
    ) -> "ScenarioPool":
        """Build pool entries from cooperative cases.

        The ROI request covers the scene's ground-truth target boxes
        (expanded by ``roi_margin``) expressed in the receiver's frame —
        the regions a demand-driven exchange would actually ask about.
        """
        entries = []
        for case in cases:
            receiver = case.receiver
            receiver_obs = case.observations[receiver]
            coop_name = next(
                name for name in case.observer_names if name != receiver
            )
            coop_obs = case.observations[coop_name]
            to_receiver = receiver_obs.true_pose.from_world()
            regions = tuple(
                box.transformed(to_receiver).expanded(roi_margin)
                for box in case.world.target_boxes()
            )
            entries.append(
                PoolEntry(
                    name=case.name,
                    native_cloud=receiver_obs.scan.cloud,
                    native_pose=receiver_obs.measured_pose,
                    packages=tuple(case.packages_for_receiver()),
                    coop_cloud=coop_obs.scan.cloud,
                    coop_pose=coop_obs.measured_pose,
                    roi=RoiRequest(
                        regions=regions,
                        requester_pose=receiver_obs.measured_pose,
                    ),
                )
            )
        return cls(entries=tuple(entries))

    @classmethod
    def build(
        cls,
        seed: int = 0,
        pattern: BeamPattern = VLP_16,
        variants: int = 2,
    ) -> "ScenarioPool":
        """The default serving pool: parking-lot and T-junction scenes.

        ``variants`` re-scans each layout under different sensor seeds so
        the pool is not a single cloud repeated — batch occupancy then
        mixes genuinely different payload sizes.
        """
        cases: list[CooperativeCase] = []
        for variant in range(max(1, variants)):
            case_seed = derive_seed(seed, "pool", variant) % (2**16)
            lot = parking_lot()
            cases.append(
                make_case(
                    name=f"serve/parking_lot/v{variant}",
                    scenario="parking_lot",
                    world=lot.world,
                    poses={
                        "car1": lot.viewpoint("car1"),
                        "car2": lot.viewpoint("car2"),
                    },
                    receiver="car1",
                    pattern=pattern,
                    seed=case_seed,
                )
            )
            junction = t_junction()
            cases.append(
                make_case(
                    name=f"serve/t_junction/v{variant}",
                    scenario="t_junction",
                    world=junction.world,
                    poses={
                        "t1": junction.viewpoint("t1"),
                        "t2": junction.viewpoint("t2"),
                    },
                    receiver="t1",
                    pattern=pattern,
                    seed=case_seed + 17,
                )
            )
        return cls.from_cases(cases)


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of an open-loop serving workload.

    Attributes:
        duration_ms: length of the arrival window (virtual clock).
        rate_rps: mean offered load across all clients, requests/second.
        num_clients: independent arrival processes (vehicles).
        kind_weights: relative mix of (DETECT, FUSE_DETECT, ROI_ANSWER).
        priority_weights: relative mix of priorities ``0..len-1`` (index
            is the priority value; later entries are higher priority).
        deadline_range_ms: per-request SLO sampled uniformly from this
            (min, max) interval after arrival.
        burst_factor: arrival-rate multiplier inside burst windows (1.0
            disables bursting).
        burst_period_ms / burst_duty: square-wave burst pattern — the
            first ``burst_duty`` fraction of every period is a burst.
        models: detector model names cycled across clients (client ``i``
            runs ``models[i % len(models)]`` — a mixed fleet when more
            than one name is given).
        seed: base seed every RNG stream is derived from.
    """

    duration_ms: float = 4000.0
    rate_rps: float = 40.0
    num_clients: int = 4
    kind_weights: tuple[float, float, float] = (0.6, 0.3, 0.1)
    priority_weights: tuple[float, ...] = (0.7, 0.2, 0.1)
    deadline_range_ms: tuple[float, float] = (150.0, 400.0)
    burst_factor: float = 1.0
    burst_period_ms: float = 1000.0
    burst_duty: float = 0.25
    models: tuple[str, ...] = ("default",)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.num_clients < 1:
            raise ValueError("num_clients must be at least 1")
        if len(self.kind_weights) != 3 or min(self.kind_weights) < 0:
            raise ValueError("kind_weights must be 3 non-negative weights")
        if sum(self.kind_weights) <= 0 or sum(self.priority_weights) <= 0:
            raise ValueError("weight mixes must have positive mass")
        if min(self.priority_weights) < 0:
            raise ValueError("priority_weights must be non-negative")
        lo, hi = self.deadline_range_ms
        if not 0 < lo <= hi:
            raise ValueError("deadline_range_ms must satisfy 0 < min <= max")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1 (1 disables bursts)")
        if not 0.0 <= self.burst_duty < 1.0:
            raise ValueError("burst_duty must be in [0, 1)")
        if self.burst_period_ms <= 0:
            raise ValueError("burst_period_ms must be positive")
        if not self.models:
            raise ValueError("models must name at least one detector")

    def in_burst(self, t_ms: float) -> bool:
        """Is virtual time ``t_ms`` inside a burst window?"""
        if self.burst_factor <= 1.0 or self.burst_duty <= 0.0:
            return False
        return (t_ms % self.burst_period_ms) < self.burst_duty * self.burst_period_ms


def _pick(rng: np.random.Generator, weights) -> int:
    """Draw an index proportionally to ``weights`` (one uniform draw)."""
    weights = np.asarray(weights, dtype=float)
    edges = np.cumsum(weights / weights.sum())
    return int(np.searchsorted(edges, rng.random(), side="right"))


_KINDS = (RequestKind.DETECT, RequestKind.FUSE_DETECT, RequestKind.ROI_ANSWER)


def _build_request(
    request_id: int,
    client: str,
    kind: RequestKind,
    arrival_ms: float,
    deadline_ms: float,
    priority: int,
    entry: PoolEntry,
    model: str = "default",
) -> PerceptionRequest:
    """Assemble one request's payload from a pool entry."""
    if kind is RequestKind.DETECT:
        return PerceptionRequest(
            request_id, client, kind, arrival_ms, deadline_ms, priority,
            cloud=entry.native_cloud,
            model=model,
        )
    if kind is RequestKind.FUSE_DETECT:
        return PerceptionRequest(
            request_id, client, kind, arrival_ms, deadline_ms, priority,
            cloud=entry.native_cloud,
            pose=entry.native_pose,
            packages=entry.packages,
            model=model,
        )
    return PerceptionRequest(
        request_id, client, kind, arrival_ms, deadline_ms, priority,
        cloud=entry.coop_cloud,
        pose=entry.coop_pose,
        roi=entry.roi,
        model=model,
    )


def generate_workload(
    spec: WorkloadSpec, pool: ScenarioPool
) -> list[PerceptionRequest]:
    """Generate the full request trace of one workload.

    Each client is an independent exponential arrival process; inside a
    burst window the gap shrinks by ``burst_factor``.  The merged trace
    is sorted by ``(arrival_ms, client)`` and request ids are assigned
    densely in that order, making the id itself deterministic.
    """
    staged: list[tuple[float, str, RequestKind, float, int, PoolEntry, str]] = []
    per_client_rate = spec.rate_rps / spec.num_clients
    for client_index in range(spec.num_clients):
        client = f"veh{client_index:02d}"
        model = spec.models[client_index % len(spec.models)]
        rng = np.random.default_rng(derive_seed(spec.seed, "arrivals", client))
        t = 0.0
        while True:
            gap = rng.exponential(1000.0 / per_client_rate)
            if spec.in_burst(t):
                gap /= spec.burst_factor
            t += gap
            if t >= spec.duration_ms:
                break
            kind = _KINDS[_pick(rng, spec.kind_weights)]
            priority = _pick(rng, spec.priority_weights)
            lo, hi = spec.deadline_range_ms
            deadline = t + lo + (hi - lo) * rng.random()
            entry = pool.entries[int(rng.integers(len(pool.entries)))]
            staged.append((t, client, kind, deadline, priority, entry, model))
    staged.sort(key=lambda item: (item[0], item[1]))
    return [
        _build_request(
            request_id, client, kind, arrival, deadline, priority, entry, model
        )
        for request_id, (
            arrival, client, kind, deadline, priority, entry, model,
        ) in enumerate(staged)
    ]


@dataclass(frozen=True)
class ClosedLoopSpec:
    """Declarative description of a closed-loop (platooning) client set.

    Attributes:
        duration_ms: clients stop re-issuing once the virtual clock
            passes this horizon.
        num_clients: independent control loops.
        think_ms_range: seeded uniform think-time gap between receiving a
            reply and issuing the next request.
        retry_backoff_ms: fixed back-off after a shed/rejected request (a
            control loop retries faster than it would think, but never
            instantly — hammering a saturated queue helps nobody).
        start_spread_ms: first issues are spread uniformly over this
            window so a fleet of loops does not arrive as one spike.
        kind_weights / priority_weights / deadline_range_ms: as in
            :class:`WorkloadSpec`.
        models: detector model names cycled across clients.
        seed: base seed every client stream derives from.
    """

    duration_ms: float = 4000.0
    num_clients: int = 4
    think_ms_range: tuple[float, float] = (20.0, 80.0)
    retry_backoff_ms: float = 40.0
    start_spread_ms: float = 50.0
    kind_weights: tuple[float, float, float] = (0.6, 0.3, 0.1)
    priority_weights: tuple[float, ...] = (0.7, 0.2, 0.1)
    deadline_range_ms: tuple[float, float] = (150.0, 400.0)
    models: tuple[str, ...] = ("default",)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.num_clients < 1:
            raise ValueError("num_clients must be at least 1")
        lo, hi = self.think_ms_range
        if not 0 <= lo <= hi:
            raise ValueError("think_ms_range must satisfy 0 <= min <= max")
        if self.retry_backoff_ms < 0:
            raise ValueError("retry_backoff_ms must be non-negative")
        if self.start_spread_ms < 0:
            raise ValueError("start_spread_ms must be non-negative")
        if len(self.kind_weights) != 3 or min(self.kind_weights) < 0:
            raise ValueError("kind_weights must be 3 non-negative weights")
        if sum(self.kind_weights) <= 0 or sum(self.priority_weights) <= 0:
            raise ValueError("weight mixes must have positive mass")
        lo, hi = self.deadline_range_ms
        if not 0 < lo <= hi:
            raise ValueError("deadline_range_ms must satisfy 0 < min <= max")
        if not self.models:
            raise ValueError("models must name at least one detector")


class ClosedLoopClient:
    """One platooning control loop: request → outcome → think → request.

    The engine drives the protocol: :meth:`start` yields the first
    request, and every time a request reaches a terminal state the engine
    calls :meth:`reissue` with the virtual decision time; the client
    answers with the follow-up request (or ``None`` past the horizon).
    All draws come from the client's derived RNG, so the stream of issued
    requests is a pure function of ``(spec, client index, outcome
    times)`` — and outcome times are themselves deterministic, closing
    the loop inside the determinism contract.

    A client instance is single-use: serving mutates its RNG and
    sequence counter.  Build a fresh set per :meth:`~repro.serve.engine.
    ServingEngine.serve` call via :func:`make_closed_loop_clients`.
    """

    def __init__(
        self, spec: ClosedLoopSpec, index: int, pool: ScenarioPool
    ) -> None:
        self.spec = spec
        self.index = index
        self.client = f"loop{index:02d}"
        self.model = spec.models[index % len(spec.models)]
        self.pool = pool
        self.rng = np.random.default_rng(
            derive_seed(spec.seed, "closed-loop", self.client)
        )
        self._next_id = CLOSED_LOOP_ID_BASE + index * CLOSED_LOOP_ID_STRIDE
        self.issued = 0
        self.completed = 0
        self.retried = 0

    def start(self) -> PerceptionRequest | None:
        """The client's first request (spread over ``start_spread_ms``)."""
        first_ms = self.spec.start_spread_ms * float(self.rng.random())
        return self._issue(first_ms)

    def reissue(
        self, decided_ms: float, completed: bool
    ) -> PerceptionRequest | None:
        """The follow-up after a terminal outcome at ``decided_ms``.

        A completed reply triggers a think-time gap; a shed/rejected
        request triggers the fixed retry back-off.  Returns ``None`` once
        the next issue would fall past the horizon.
        """
        if completed:
            self.completed += 1
            lo, hi = self.spec.think_ms_range
            gap = lo + (hi - lo) * float(self.rng.random())
        else:
            self.retried += 1
            gap = self.spec.retry_backoff_ms
        return self._issue(decided_ms + gap)

    def _issue(self, arrival_ms: float) -> PerceptionRequest | None:
        if arrival_ms >= self.spec.duration_ms:
            return None
        spec = self.spec
        kind = _KINDS[_pick(self.rng, spec.kind_weights)]
        priority = _pick(self.rng, spec.priority_weights)
        lo, hi = spec.deadline_range_ms
        deadline = arrival_ms + lo + (hi - lo) * float(self.rng.random())
        entry = self.pool.entries[int(self.rng.integers(len(self.pool.entries)))]
        request_id = self._next_id
        self._next_id += 1
        self.issued += 1
        return _build_request(
            request_id, self.client, kind, arrival_ms, deadline, priority,
            entry, self.model,
        )


def make_closed_loop_clients(
    spec: ClosedLoopSpec, pool: ScenarioPool
) -> list[ClosedLoopClient]:
    """A fresh single-use client set for one serve call."""
    return [
        ClosedLoopClient(spec, index, pool) for index in range(spec.num_clients)
    ]


def apply_ingress_loss(
    requests: list[PerceptionRequest],
    loss_rate: float = 0.0,
    seed: int = 0,
    burst_model: BurstLossModel | None = None,
) -> tuple[list[PerceptionRequest], list[PerceptionRequest]]:
    """Split a trace into (delivered, lost) under ingress channel faults.

    With a ``burst_model`` the per-client link follows a Gilbert-Elliott
    chain (one state transition per virtual second, matching the exchange
    channel's cadence) and each request faces the state's loss rate;
    otherwise every request faces the flat ``loss_rate``.  Each request's
    fate comes from an RNG derived from ``(seed, "ingress", request_id)``
    — a pure per-request function, unaffected by worker layout.
    """
    if burst_model is None and not 0.0 <= loss_rate <= 1.0:
        raise ValueError("loss_rate must be in [0, 1]")
    delivered: list[PerceptionRequest] = []
    lost: list[PerceptionRequest] = []
    for request in requests:
        if burst_model is not None:
            link_seed = derive_seed(seed, "ingress-link", request.client)
            state = burst_model.state_at(link_seed, int(request.arrival_ms // 1000))
            rate = burst_model.loss_rate(state)
        else:
            rate = loss_rate
        rng = np.random.default_rng(
            derive_seed(seed, "ingress", request.request_id)
        )
        (lost if rng.random() < rate else delivered).append(request)
    return delivered, lost
