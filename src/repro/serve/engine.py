"""The deterministic perception serving engine.

:class:`ServingEngine` turns a trace of :class:`~repro.serve.requests.
PerceptionRequest`\\ s into scheduled, batched, SLO-tracked work:

* **Virtual clock** — scheduling runs on the workload's virtual
  milliseconds, with service times given by a deterministic
  :class:`ServiceModel` (calibrated to this repo's measured SPOD costs)
  instead of wall-clock reads.  The entire decision sequence — admission,
  batch composition, shed verdicts, completion times — is therefore a
  pure function of (engine config, request trace), bit-identical in
  every process and at every worker count.  Real wall-clock is still
  measured (the work genuinely runs) and reported through
  :mod:`repro.profiling`, but never feeds back into scheduling.
* **Admission control** — a :class:`~repro.serve.queues.
  BoundedPriorityQueue` per engine; a full queue displaces the worst
  queued request or refuses the arrival (backpressure), so queue memory
  stays bounded under any offered load.
* **Dynamic batching** — a free lane dispatches immediately when
  ``max_batch_size`` compatible requests are queued, else waits at most
  ``max_wait_ms`` past the oldest queued arrival before dispatching a
  partial batch.  Detect-class batches run through one
  :meth:`~repro.detection.spod.SPOD.detect_batch` call (the PR-4 batched
  RPN pass); FUSE_DETECT requests are fused first — fanned out across a
  :class:`~repro.runtime.WorkerPool` when ``workers > 1`` — and ROI
  answers batch separately as pure geometry.
* **SLO-aware shedding** — at dispatch, any request that provably cannot
  meet its deadline (even served alone, immediately) is shed instead of
  burning service capacity; its record says so.

The output :class:`ServeResult` carries one :class:`~repro.serve.
requests.RequestRecord` per offered request plus per-batch records; its
:meth:`ServeResult.log_json` projection is the determinism-contract
surface the tests compare across worker counts.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.detection.spod import SPOD
from repro.fusion.align import merge_packages
from repro.fusion.package import ExchangePackage
from repro.geometry.transforms import Pose
from repro.network.demand import RoiRequest, answer_request
from repro.pointcloud.cloud import PointCloud
from repro.profiling import PROFILER
from repro.runtime import WorkerPool, fork_available, resolve_workers
from repro.serve.queues import BoundedPriorityQueue
from repro.serve.requests import (
    PerceptionRequest,
    RequestKind,
    RequestRecord,
    RequestStatus,
)

__all__ = ["ServiceModel", "ServeConfig", "BatchRecord", "ServeResult", "ServingEngine"]


@dataclass(frozen=True)
class ServiceModel:
    """Deterministic virtual service-time model of one dispatch.

    The defaults approximate this repo's measured float32 SPOD costs
    (PR 4: ~12 ms fixed decode/NMS floor, a few ms per cloud, point-count
    dominated voxelize/VFE) — close enough that the virtual overload knee
    lands where the real hardware's would, while keeping scheduling a
    pure function of the trace.

    Attributes:
        batch_base_ms: fixed cost of one detect-class dispatch.
        per_request_ms: marginal cost per cloud in a detect batch (the
            part dynamic batching does NOT amortise).
        per_kpoint_ms: cost per thousand points across the batch.
        roi_base_ms / roi_per_request_ms / roi_per_kpoint_ms: the same
            three knobs for ROI-answer (pure geometry) dispatches.
    """

    batch_base_ms: float = 12.0
    per_request_ms: float = 6.0
    per_kpoint_ms: float = 0.8
    roi_base_ms: float = 2.0
    roi_per_request_ms: float = 1.0
    roi_per_kpoint_ms: float = 0.05

    def batch_ms(
        self, service_class: str, num_requests: int, total_points: int
    ) -> float:
        """Virtual service time of one dispatch."""
        kpoints = total_points / 1000.0
        if service_class == "roi":
            return (
                self.roi_base_ms
                + self.roi_per_request_ms * num_requests
                + self.roi_per_kpoint_ms * kpoints
            )
        return (
            self.batch_base_ms
            + self.per_request_ms * num_requests
            + self.per_kpoint_ms * kpoints
        )

    def floor_ms(self, request: PerceptionRequest) -> float:
        """Fastest conceivable service: alone, dispatched immediately."""
        return self.batch_ms(request.kind.service_class, 1, request.num_points)


@dataclass(frozen=True)
class ServeConfig:
    """Scheduling knobs of the serving engine.

    Attributes:
        max_batch_size: dispatch cap; 1 degenerates to per-request
            serving (the baseline the serving bench compares against).
        max_wait_ms: longest a queued request may wait for co-batchers
            past its arrival before a partial batch dispatches.
        queue_capacity: bounded queue depth (admission control).
        lanes: parallel virtual service lanes (a multi-accelerator
            server; each lane serves one batch at a time).
        shed_deadlines: shed requests that provably cannot meet their
            deadline instead of serving them late.
        service_model: the virtual cost model.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 25.0
    queue_capacity: int = 64
    lanes: int = 1
    shed_deadlines: bool = True
    service_model: ServiceModel = field(default_factory=ServiceModel)

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.lanes < 1:
            raise ValueError("lanes must be at least 1")


@dataclass(frozen=True)
class BatchRecord:
    """One dispatch's summary (``wall_seconds`` is observability-only)."""

    batch_id: int
    service_class: str
    lane: int
    dispatch_ms: float
    service_ms: float
    size: int
    total_points: int
    wall_seconds: float = field(compare=False)

    def log_entry(self) -> dict:
        """Determinism-covered projection (no wall-clock)."""
        return {
            "batch_id": self.batch_id,
            "class": self.service_class,
            "lane": self.lane,
            "dispatch_ms": round(self.dispatch_ms, 6),
            "service_ms": round(self.service_ms, 6),
            "size": self.size,
            "total_points": self.total_points,
        }


@dataclass
class ServeResult:
    """Everything one :meth:`ServingEngine.serve` run produced.

    Attributes:
        records: one record per offered request, in request-id order.
        batches: one record per dispatch, in dispatch order.
        config: the engine config that produced this.
        max_queue_depth: high-water mark of the bounded queue.
        wall_seconds: real time the serve loop took (scheduling + actual
            perception compute; excluded from the determinism log).
        service_wall_seconds: real time spent executing dispatches only —
            the honest measure of server compute, used by the bench to
            compare batched vs per-request sustained throughput.
    """

    records: list[RequestRecord]
    batches: list[BatchRecord]
    config: ServeConfig
    max_queue_depth: int
    wall_seconds: float
    service_wall_seconds: float

    def log(self) -> list[dict]:
        """Per-request + per-batch determinism log."""
        return [record.log_entry() for record in self.records] + [
            batch.log_entry() for batch in self.batches
        ]

    def log_json(self) -> str:
        """Canonical JSON of :meth:`log` — the bit-identity surface."""
        return json.dumps(self.log(), sort_keys=True, separators=(",", ":"))

    def counts(self) -> dict[str, int]:
        """Requests per terminal status (plus total offered)."""
        counts = {status.value: 0 for status in RequestStatus}
        for record in self.records:
            counts[record.status.value] += 1
        counts["offered"] = len(self.records)
        return counts


class ServingEngine:
    """Event-driven serving of perception requests over one detector.

    One engine owns one detector (every detect-class batch is sound by
    construction — the multi-detector generalisation would reuse
    :meth:`SPOD.equivalent_to` as its compatibility key, exactly like the
    session's batched path) plus a bounded queue and ``lanes`` virtual
    service lanes.  ``workers`` fans the *fusion and ROI geometry* work
    of each dispatch across a :class:`~repro.runtime.WorkerPool`; the
    batched detector pass always runs in the parent so batch composition
    and numerics cannot depend on worker layout.
    """

    def __init__(
        self,
        detector: SPOD | None = None,
        config: ServeConfig | None = None,
        workers: int | None = None,
    ) -> None:
        self.detector = detector or SPOD.pretrained()
        self.config = config or ServeConfig()
        self.workers = resolve_workers(workers)

    def serve(
        self,
        requests: list[PerceptionRequest],
        lost: list[PerceptionRequest] = (),
    ) -> ServeResult:
        """Serve one workload trace to completion.

        ``requests`` are the arrivals that reach the ingress; ``lost``
        are requests dropped by ingress channel faults
        (:func:`~repro.serve.workload.apply_ingress_loss`) — they never
        enter the queue but are recorded (``LOST_INGRESS``) so the log
        accounts for every offered request.
        """
        wall_start = time.perf_counter()
        arrivals = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
        records: dict[int, RequestRecord] = {}
        for request in list(arrivals) + list(lost):
            if request.request_id in records:
                raise ValueError(f"duplicate request_id {request.request_id}")
            records[request.request_id] = RequestRecord.for_request(request)
        for request in lost:
            record = records[request.request_id]
            record.status = RequestStatus.LOST_INGRESS
            record.decided_ms = request.arrival_ms
            PROFILER.count("serve.lost_ingress")

        state = _LoopState(
            arrivals=arrivals,
            records=records,
            queue=BoundedPriorityQueue(self.config.queue_capacity),
            lanes=[0.0] * self.config.lanes,
        )
        pool: WorkerPool | None = None
        try:
            if self.workers > 1 and fork_available() and arrivals:
                pool = WorkerPool(self.workers, chunk_size=1)
            batches, service_wall = self._run_loop(state, pool)
        finally:
            if pool is not None:
                pool.close()

        result = ServeResult(
            records=[records[rid] for rid in sorted(records)],
            batches=batches,
            config=self.config,
            max_queue_depth=state.queue.max_depth,
            wall_seconds=time.perf_counter() - wall_start,
            service_wall_seconds=service_wall,
        )
        counts = result.counts()
        PROFILER.count("serve.offered", counts["offered"])
        PROFILER.count("serve.completed", counts["completed"])
        PROFILER.count("serve.shed_deadline", counts["shed_deadline"])
        PROFILER.count("serve.rejected_queue_full", counts["rejected_queue_full"])
        PROFILER.count("serve.batches", len(batches))
        return result

    # -- the event loop ----------------------------------------------------
    def _run_loop(
        self, state: "_LoopState", pool: WorkerPool | None
    ) -> tuple[list[BatchRecord], float]:
        batches: list[BatchRecord] = []
        service_wall = 0.0
        while True:
            lane = min(range(len(state.lanes)), key=lambda i: (state.lanes[i], i))
            t_free = state.lanes[lane]
            self._admit_until(state, t_free)
            if len(state.queue) == 0:
                if state.next_arrival >= len(state.arrivals):
                    break
                # Idle server: jump the clock to the next arrival.
                self._admit_until(
                    state, state.arrivals[state.next_arrival].arrival_ms
                )
                continue
            dispatch_ms = self._dispatch_time(state, t_free)
            batch, shed = self._drain_batch(state, dispatch_ms)
            for request in shed:
                record = state.records[request.request_id]
                record.status = RequestStatus.SHED_DEADLINE
                record.decided_ms = dispatch_ms
                record.queue_ms = dispatch_ms - request.arrival_ms
            if not batch:
                continue  # the whole candidate set was shed; lane still free
            batch_record = self._execute_batch(
                state, batch, len(batches), lane, dispatch_ms, pool
            )
            batches.append(batch_record)
            service_wall += batch_record.wall_seconds
            state.lanes[lane] = batch_record.dispatch_ms + batch_record.service_ms
        return batches, service_wall

    def _admit_until(self, state: "_LoopState", t_ms: float) -> None:
        """Admit (or refuse) every arrival up to virtual time ``t_ms``."""
        while (
            state.next_arrival < len(state.arrivals)
            and state.arrivals[state.next_arrival].arrival_ms <= t_ms + 1e-9
        ):
            request = state.arrivals[state.next_arrival]
            state.next_arrival += 1
            admitted, displaced = state.queue.offer(request)
            loser = displaced if admitted else request
            if loser is not None:
                record = state.records[loser.request_id]
                record.status = RequestStatus.REJECTED_QUEUE_FULL
                record.decided_ms = request.arrival_ms

    def _dispatch_time(self, state: "_LoopState", t_free: float) -> float:
        """When the free lane should dispatch its next batch.

        Immediately when a full batch is already queued or the batching
        window (``oldest queued arrival + max_wait_ms``) has expired;
        otherwise at whichever comes first of the window closing or the
        arrival that fills the batch.
        """
        cfg = self.config
        if len(state.queue) >= cfg.max_batch_size:
            return t_free
        window_close = state.queue.oldest_arrival_ms() + cfg.max_wait_ms
        if window_close <= t_free:
            return t_free
        while (
            state.next_arrival < len(state.arrivals)
            and state.arrivals[state.next_arrival].arrival_ms <= window_close
        ):
            arrival_ms = state.arrivals[state.next_arrival].arrival_ms
            self._admit_until(state, arrival_ms)
            if len(state.queue) >= cfg.max_batch_size:
                return max(t_free, arrival_ms)
        return window_close

    def _drain_batch(
        self, state: "_LoopState", dispatch_ms: float
    ) -> tuple[list[PerceptionRequest], list[PerceptionRequest]]:
        """Pop the next batch (head's service class), shedding dead SLOs.

        A request is shed when even the fastest conceivable service —
        alone, starting now — would finish past its deadline; shed
        requests do not consume batch slots.
        """
        model = self.config.service_model
        service_class = state.queue.head().kind.service_class
        batch: list[PerceptionRequest] = []
        shed: list[PerceptionRequest] = []
        while len(batch) < self.config.max_batch_size:
            popped = state.queue.pop_class(service_class, 1)
            if not popped:
                break
            request = popped[0]
            if (
                self.config.shed_deadlines
                and dispatch_ms + model.floor_ms(request) > request.deadline_ms
            ):
                shed.append(request)
            else:
                batch.append(request)
        return batch, shed

    # -- dispatch execution ------------------------------------------------
    def _execute_batch(
        self,
        state: "_LoopState",
        batch: list[PerceptionRequest],
        batch_id: int,
        lane: int,
        dispatch_ms: float,
        pool: WorkerPool | None,
    ) -> BatchRecord:
        """Run one dispatch's real compute and fill its records."""
        model = self.config.service_model
        service_class = batch[0].kind.service_class
        total_points = sum(request.num_points for request in batch)
        service_ms = model.batch_ms(service_class, len(batch), total_points)
        complete_ms = dispatch_ms + service_ms

        wall_start = time.perf_counter()
        if service_class == "roi":
            result_counts = self._execute_roi(batch, pool)
        else:
            result_counts = self._execute_detect(batch, pool)
        wall_seconds = time.perf_counter() - wall_start
        PROFILER.record("serve.service", wall_seconds)
        PROFILER.count("serve.batched_requests", len(batch))

        share = wall_seconds / len(batch)
        for request, num_results in zip(batch, result_counts):
            record = state.records[request.request_id]
            record.status = RequestStatus.COMPLETED
            record.decided_ms = complete_ms
            record.dispatch_ms = dispatch_ms
            record.queue_ms = dispatch_ms - request.arrival_ms
            record.service_ms = service_ms
            record.latency_ms = complete_ms - request.arrival_ms
            record.deadline_met = complete_ms <= request.deadline_ms
            record.batch_id = batch_id
            record.batch_size = len(batch)
            record.num_results = num_results
            record.wall_service_seconds = share
            if not record.deadline_met:
                PROFILER.count("serve.slo_misses")
        return BatchRecord(
            batch_id=batch_id,
            service_class=service_class,
            lane=lane,
            dispatch_ms=dispatch_ms,
            service_ms=service_ms,
            size=len(batch),
            total_points=total_points,
            wall_seconds=wall_seconds,
        )

    def _execute_detect(
        self, batch: list[PerceptionRequest], pool: WorkerPool | None
    ) -> list[int]:
        """Fuse where needed, then one batched detector pass; returns
        per-request detection counts.

        Fusion is a pure function of (cloud, pose, packages), so fanning
        it to workers cannot change the merged clouds; the detector pass
        itself always runs here in the parent over the batch in queue
        order, keeping numerics independent of the worker count.
        """
        fuse_payloads = [
            (request.cloud, request.pose, request.packages)
            for request in batch
            if request.kind is RequestKind.FUSE_DETECT
        ]
        with PROFILER.stage("serve.fuse"):
            if pool is not None and len(fuse_payloads) > 1:
                fused = pool.map(_fuse_payload_task, fuse_payloads)
            else:
                fused = [_fuse_payload_task(p) for p in fuse_payloads]
        fused_iter = iter(fused)
        clouds = [
            next(fused_iter) if request.kind is RequestKind.FUSE_DETECT
            else request.cloud
            for request in batch
        ]
        with PROFILER.stage("serve.detect"):
            all_detections = self.detector.detect_batch(clouds)
        threshold = self.detector.config.detection_threshold
        return [
            sum(1 for d in detections if d.score >= threshold)
            for detections in all_detections
        ]

    def _execute_roi(
        self, batch: list[PerceptionRequest], pool: WorkerPool | None
    ) -> list[int]:
        """Answer each ROI request (pure geometry); returns reply sizes."""
        payloads = [
            (request.roi, request.cloud, request.pose) for request in batch
        ]
        with PROFILER.stage("serve.roi"):
            if pool is not None and len(payloads) > 1:
                replies = pool.map(_roi_answer_task, payloads)
            else:
                replies = [_roi_answer_task(p) for p in payloads]
        return replies


@dataclass
class _LoopState:
    """Mutable event-loop state of one :meth:`ServingEngine.serve` run."""

    arrivals: list[PerceptionRequest]
    records: dict[int, RequestRecord]
    queue: BoundedPriorityQueue
    lanes: list[float]
    next_arrival: int = 0


def _fuse_payload_task(
    payload: tuple[PointCloud, Pose, tuple[ExchangePackage, ...]],
) -> PointCloud:
    """Worker task: align + merge one FUSE_DETECT request's packages."""
    cloud, pose, packages = payload
    return merge_packages(cloud, list(packages), pose)


def _roi_answer_task(
    payload: tuple[RoiRequest, PointCloud, Pose],
) -> int:
    """Worker task: crop one cooperator cloud to a demand-driven ROI."""
    roi, cloud, pose = payload
    return len(answer_request(roi, cloud, pose))
