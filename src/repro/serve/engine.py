"""The deterministic perception serving engine.

:class:`ServingEngine` turns a trace of :class:`~repro.serve.requests.
PerceptionRequest`\\ s into scheduled, batched, SLO-tracked work:

* **Virtual clock** — scheduling runs on the workload's virtual
  milliseconds, with service times given by a deterministic
  :class:`ServiceModel` (calibrated to this repo's measured SPOD costs)
  instead of wall-clock reads.  The entire decision sequence — admission,
  batch composition, shed verdicts, completion times — is therefore a
  pure function of (engine config, request trace), bit-identical in
  every process and at every worker count.  Real wall-clock is still
  measured (the work genuinely runs) and reported through
  :mod:`repro.profiling`, but never feeds back into scheduling.
* **Admission control** — a :class:`~repro.serve.queues.
  BoundedPriorityQueue` per engine; a full queue displaces the worst
  queued request or refuses the arrival (backpressure), so queue memory
  stays bounded under any offered load.
* **Dynamic batching** — a free lane dispatches immediately when
  ``max_batch_size`` compatible requests are queued, else waits at most
  ``max_wait_ms`` past the oldest queued arrival before dispatching a
  partial batch.  The batching window re-anchors whenever admission
  displaces the oldest queued request, so a displaced head-of-queue
  request can never leave a stale timer behind.  Detect-class batches run
  through one :meth:`~repro.detection.spod.SPOD.detect_batch` call (the
  PR-4 batched RPN pass); FUSE_DETECT requests are fused first — fanned
  out across a :class:`~repro.runtime.WorkerPool` when ``workers > 1`` —
  and ROI answers batch separately as pure geometry.
* **Heterogeneous detectors** — an engine may own several named detector
  models (a mixed fleet).  Models whose detectors are interchangeable
  (:meth:`~repro.detection.spod.SPOD.equivalent_to`) share one batch
  group; requests co-batch only within their group, so a batched pass is
  always numerically sound.
* **Closed-loop clients** — alongside the open-loop trace, the engine
  accepts :class:`~repro.serve.workload.ClosedLoopClient` control loops
  that issue their next request only after the previous one reached a
  terminal state (completion, shed or rejection).  Their arrivals are
  injected into the event loop on the virtual clock, so closed-loop
  scheduling stays a pure function of the seed.
* **Lane autoscaling** — with ``max_lanes > lanes`` the engine adds a
  virtual service lane when queue depth crosses ``scale_up_depth`` and
  retires idle extra lanes when depth falls to ``scale_down_depth``;
  every decision reads only virtual-clock state, and the lane events are
  part of the determinism log.
* **SLO-aware shedding** — at dispatch, any request that provably cannot
  meet its deadline (even served alone, immediately) is shed instead of
  burning service capacity; its record says so.

The output :class:`ServeResult` carries one :class:`~repro.serve.
requests.RequestRecord` per offered request plus per-batch records; its
:meth:`ServeResult.log_json` projection is the determinism-contract
surface the tests compare across worker counts.
"""

from __future__ import annotations

import heapq
import json
import time
from dataclasses import dataclass, field

from repro.detection.spod import SPOD
from repro.faults.serve import ShardFaultView
from repro.fusion.align import merge_packages
from repro.fusion.package import ExchangePackage
from repro.geometry.transforms import Pose
from repro.network.demand import RoiRequest, answer_request
from repro.pointcloud.cloud import PointCloud
from repro.profiling import PROFILER
from repro.runtime import WorkerPool, fork_available, resolve_workers
from repro.serve.queues import BoundedPriorityQueue
from repro.serve.requests import (
    PerceptionRequest,
    RequestKind,
    RequestRecord,
    RequestStatus,
)

__all__ = ["ServiceModel", "ServeConfig", "BatchRecord", "ServeResult", "ServingEngine"]


@dataclass(frozen=True)
class ServiceModel:
    """Deterministic virtual service-time model of one dispatch.

    The defaults approximate this repo's measured float32 SPOD costs
    (PR 4: ~12 ms fixed decode/NMS floor, a few ms per cloud, point-count
    dominated voxelize/VFE) — close enough that the virtual overload knee
    lands where the real hardware's would, while keeping scheduling a
    pure function of the trace.

    Attributes:
        batch_base_ms: fixed cost of one detect-class dispatch.
        per_request_ms: marginal cost per cloud in a detect batch (the
            part dynamic batching does NOT amortise).
        per_kpoint_ms: cost per thousand points across the batch.
        roi_base_ms / roi_per_request_ms / roi_per_kpoint_ms: the same
            three knobs for ROI-answer (pure geometry) dispatches.
    """

    batch_base_ms: float = 12.0
    per_request_ms: float = 6.0
    per_kpoint_ms: float = 0.8
    roi_base_ms: float = 2.0
    roi_per_request_ms: float = 1.0
    roi_per_kpoint_ms: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "batch_base_ms", "per_request_ms", "per_kpoint_ms",
            "roi_base_ms", "roi_per_request_ms", "roi_per_kpoint_ms",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def batch_ms(
        self, service_class: str, num_requests: int, total_points: int
    ) -> float:
        """Virtual service time of one dispatch."""
        kpoints = total_points / 1000.0
        if service_class == "roi":
            return (
                self.roi_base_ms
                + self.roi_per_request_ms * num_requests
                + self.roi_per_kpoint_ms * kpoints
            )
        return (
            self.batch_base_ms
            + self.per_request_ms * num_requests
            + self.per_kpoint_ms * kpoints
        )

    def floor_ms(self, request: PerceptionRequest) -> float:
        """Fastest conceivable service: alone, dispatched immediately."""
        return self.batch_ms(request.kind.service_class, 1, request.num_points)


@dataclass(frozen=True)
class ServeConfig:
    """Scheduling knobs of the serving engine.

    Attributes:
        max_batch_size: dispatch cap; 1 degenerates to per-request
            serving (the baseline the serving bench compares against).
        max_wait_ms: longest a queued request may wait for co-batchers
            past its arrival before a partial batch dispatches.
        queue_capacity: bounded queue depth (admission control).
        lanes: baseline parallel virtual service lanes (a
            multi-accelerator server; each lane serves one batch at a
            time).
        max_lanes: autoscaling ceiling; 0 disables autoscaling, otherwise
            must be >= ``lanes`` and the engine may grow up to this many
            lanes under queue pressure.
        scale_up_depth: queue depth at or above which an extra lane is
            added (when autoscaling).
        scale_down_depth: queue depth at or below which an idle extra
            lane is retired (when autoscaling).
        shed_deadlines: shed requests that provably cannot meet their
            deadline instead of serving them late.
        brownout_enter_depth: queue depth at or above which the engine
            enters *brownout* degradation — shedding low-priority
            arrivals and shrinking the batching window — until depth
            falls back to ``brownout_exit_depth`` (hysteresis).  0
            disables brownout.
        brownout_exit_depth: queue depth at or below which a brownout
            ends; must be below ``brownout_enter_depth``.
        brownout_wait_factor: multiplier on ``max_wait_ms`` while in
            brownout (a shrunken batching window drains the queue at
            lower latency, trading batching efficiency for headroom).
        brownout_shed_priority: arrivals with priority at or below this
            are shed (``SHED_BROWNOUT``) while in brownout.
        service_model: the virtual cost model.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 25.0
    queue_capacity: int = 64
    lanes: int = 1
    max_lanes: int = 0
    scale_up_depth: int = 12
    scale_down_depth: int = 2
    shed_deadlines: bool = True
    brownout_enter_depth: int = 0
    brownout_exit_depth: int = 2
    brownout_wait_factor: float = 0.25
    brownout_shed_priority: int = 0
    service_model: ServiceModel = field(default_factory=ServiceModel)

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.lanes < 1:
            raise ValueError("lanes must be at least 1")
        if self.max_lanes and self.max_lanes < self.lanes:
            raise ValueError("max_lanes must be 0 (off) or >= lanes")
        if self.scale_up_depth < 1:
            raise ValueError("scale_up_depth must be at least 1")
        if self.scale_down_depth < 0:
            raise ValueError("scale_down_depth must be non-negative")
        if self.scale_up_depth <= self.scale_down_depth:
            raise ValueError("scale_up_depth must exceed scale_down_depth")
        if self.brownout_enter_depth < 0:
            raise ValueError("brownout_enter_depth must be non-negative")
        if self.brownout_enter_depth:
            if self.brownout_exit_depth < 0:
                raise ValueError("brownout_exit_depth must be non-negative")
            if self.brownout_exit_depth >= self.brownout_enter_depth:
                raise ValueError(
                    "brownout_enter_depth must exceed brownout_exit_depth"
                )
        if not 0 < self.brownout_wait_factor <= 1:
            raise ValueError("brownout_wait_factor must be in (0, 1]")


@dataclass(frozen=True)
class BatchRecord:
    """One dispatch's summary (``wall_seconds`` is observability-only)."""

    batch_id: int
    service_class: str
    group: str
    lane: int
    dispatch_ms: float
    service_ms: float
    size: int
    total_points: int
    wall_seconds: float = field(compare=False)

    def log_entry(self) -> dict:
        """Determinism-covered projection (no wall-clock)."""
        return {
            "batch_id": self.batch_id,
            "class": self.service_class,
            "group": self.group,
            "lane": self.lane,
            "dispatch_ms": round(self.dispatch_ms, 6),
            "service_ms": round(self.service_ms, 6),
            "size": self.size,
            "total_points": self.total_points,
        }


@dataclass
class ServeResult:
    """Everything one :meth:`ServingEngine.serve` run produced.

    Attributes:
        records: one record per offered request, in request-id order.
        batches: one record per dispatch, in dispatch order.
        config: the engine config that produced this.
        max_queue_depth: high-water mark of the bounded queue.
        wall_seconds: real time the serve loop took (scheduling + actual
            perception compute; excluded from the determinism log).
        service_wall_seconds: real time spent executing dispatches only —
            the honest measure of server compute, used by the bench to
            compare batched vs per-request sustained throughput.
        lane_events: autoscaling decisions (virtual-clock, deterministic;
            part of the log).
        max_lanes_used: high-water mark of concurrently active lanes.
        fault_events: injected-fault and brownout transitions on the
            virtual clock (crashes, killed batches, brownout
            enter/exit); deterministic, part of the log.
    """

    records: list[RequestRecord]
    batches: list[BatchRecord]
    config: ServeConfig
    max_queue_depth: int
    wall_seconds: float
    service_wall_seconds: float
    lane_events: list[dict] = field(default_factory=list)
    max_lanes_used: int = 1
    fault_events: list[dict] = field(default_factory=list)

    def log(self) -> list[dict]:
        """Per-request + per-batch + lane/fault-event determinism log."""
        return (
            [record.log_entry() for record in self.records]
            + [batch.log_entry() for batch in self.batches]
            + [dict(event, entry="lane") for event in self.lane_events]
            + [dict(event, entry="fault") for event in self.fault_events]
        )

    def log_json(self) -> str:
        """Canonical JSON of :meth:`log` — the bit-identity surface."""
        return json.dumps(self.log(), sort_keys=True, separators=(",", ":"))

    def counts(self) -> dict[str, int]:
        """Requests per terminal status (plus total offered)."""
        counts = {status.value: 0 for status in RequestStatus}
        for record in self.records:
            counts[record.status.value] += 1
        counts["offered"] = len(self.records)
        return counts


class ServingEngine:
    """Event-driven serving of perception requests over named detectors.

    One engine owns one or more named detectors plus a bounded queue and
    ``lanes`` virtual service lanes.  Detector models are grouped by
    :meth:`SPOD.equivalent_to` — exactly the session's batched-path
    compatibility key — and detect-class requests batch only within their
    model's group, so every batched pass is sound by construction.
    ``workers`` fans the *fusion and ROI geometry* work of each dispatch
    across a :class:`~repro.runtime.WorkerPool`; the batched detector
    pass always runs in the parent so batch composition and numerics
    cannot depend on worker layout.
    """

    def __init__(
        self,
        detector: SPOD | None = None,
        config: ServeConfig | None = None,
        workers: int | None = None,
        detectors: dict[str, SPOD] | None = None,
    ) -> None:
        if detectors is not None and detector is not None:
            raise ValueError("pass either detector or detectors, not both")
        if detectors is not None:
            if not detectors:
                raise ValueError("detectors must not be empty")
            self.detectors = dict(detectors)
        else:
            self.detectors = {"default": detector or SPOD.pretrained()}
        self.detector = next(iter(self.detectors.values()))
        self.config = config or ServeConfig()
        self.workers = resolve_workers(workers)
        # Group models whose detectors are interchangeable: the group
        # label is the lexically-first equivalent model name, so the
        # grouping is deterministic regardless of dict order.
        self._group_of: dict[str, str] = {}
        self._group_detector: dict[str, SPOD] = {}
        for name in sorted(self.detectors):
            for label, rep in self._group_detector.items():
                if self.detectors[name].equivalent_to(rep):
                    self._group_of[name] = label
                    break
            else:
                self._group_of[name] = name
                self._group_detector[name] = self.detectors[name]

    def batch_group(self, model: str) -> str:
        """The batch-compatibility group label of one model name."""
        try:
            return self._group_of[model]
        except KeyError:
            raise ValueError(
                f"unknown detector model {model!r}; engine serves "
                f"{sorted(self.detectors)}"
            ) from None

    def _batch_key(self, request: PerceptionRequest) -> tuple[str, str]:
        """(service_class, group) — the batching compatibility key.

        ROI answers are pure geometry (no detector), so every model maps
        to one shared ROI group.
        """
        if request.kind.service_class == "roi":
            return ("roi", "roi")
        return ("detect", self.batch_group(request.model))

    def serve(
        self,
        requests: list[PerceptionRequest],
        lost: list[PerceptionRequest] = (),
        closed_loop: list = (),
        faults: ShardFaultView | None = None,
    ) -> ServeResult:
        """Serve one workload trace (plus closed-loop clients) to completion.

        ``requests`` are the open-loop arrivals that reach the ingress;
        ``lost`` are requests dropped by ingress channel faults
        (:func:`~repro.serve.workload.apply_ingress_loss`) — they never
        enter the queue but are recorded (``LOST_INGRESS``) so the log
        accounts for every offered request.  ``closed_loop`` clients
        issue their first request themselves and re-issue only after the
        previous one reached a terminal state.  ``faults`` injects this
        engine's slice of a :class:`~repro.faults.serve.ShardFaultPlan`:
        crash windows fail queued and in-flight work
        (``FAILED_SHARD_DOWN``) and refuse arrivals until restart, and
        brownout windows inflate virtual service times — all pure
        functions of the plan, so the log stays bit-identical at any
        worker count.
        """
        wall_start = time.perf_counter()
        arrivals = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
        records: dict[int, RequestRecord] = {}
        for request in list(arrivals) + list(lost):
            if request.request_id in records:
                raise ValueError(f"duplicate request_id {request.request_id}")
            self.batch_key_check(request)
            records[request.request_id] = RequestRecord.for_request(request)
        for client in closed_loop:
            self.batch_group(client.model)
        for request in lost:
            record = records[request.request_id]
            record.status = RequestStatus.LOST_INGRESS
            record.decided_ms = request.arrival_ms
            PROFILER.count("serve.lost_ingress")

        state = _LoopState(
            source=_ArrivalSource(arrivals, closed_loop),
            records=records,
            queue=BoundedPriorityQueue(self.config.queue_capacity),
            lanes=[0.0] * self.config.lanes,
            max_lanes_used=self.config.lanes,
            fault_view=faults,
            crash_windows=faults.crash_windows() if faults else (),
        )
        pool: WorkerPool | None = None
        try:
            if (
                self.workers > 1
                and fork_available()
                and (arrivals or closed_loop)
            ):
                pool = WorkerPool(self.workers, chunk_size=1)
            batches, service_wall = self._run_loop(state, pool)
        finally:
            if pool is not None:
                pool.close()

        result = ServeResult(
            records=[state.records[rid] for rid in sorted(state.records)],
            batches=batches,
            config=self.config,
            max_queue_depth=state.queue.max_depth,
            wall_seconds=time.perf_counter() - wall_start,
            service_wall_seconds=service_wall,
            lane_events=state.lane_events,
            max_lanes_used=state.max_lanes_used,
            fault_events=state.fault_events,
        )
        counts = result.counts()
        PROFILER.count("serve.offered", counts["offered"])
        PROFILER.count("serve.completed", counts["completed"])
        PROFILER.count("serve.shed_deadline", counts["shed_deadline"])
        PROFILER.count("serve.rejected_queue_full", counts["rejected_queue_full"])
        PROFILER.count("serve.failed_shard_down", counts["failed_shard_down"])
        PROFILER.count("serve.shed_brownout", counts["shed_brownout"])
        PROFILER.count("serve.batches", len(batches))
        return result

    def batch_key_check(self, request: PerceptionRequest) -> None:
        """Validate that the request's model maps to a known detector."""
        self._batch_key(request)

    # -- the event loop ----------------------------------------------------
    def _run_loop(
        self, state: "_LoopState", pool: WorkerPool | None
    ) -> tuple[list[BatchRecord], float]:
        batches: list[BatchRecord] = []
        service_wall = 0.0
        while True:
            t_now = min(state.lanes)
            if self._process_crashes(state, t_now):
                continue  # lanes moved past a crash window; re-evaluate
            self._admit_until(state, t_now)
            self._update_brownout(state, t_now)
            self._autoscale(state, t_now)
            lane = min(range(len(state.lanes)), key=lambda i: (state.lanes[i], i))
            t_free = state.lanes[lane]
            if len(state.queue) == 0:
                next_ms = state.source.peek_ms()
                if next_ms is None:
                    break
                # Idle server: jump the clock to the next arrival,
                # keeping the crash schedule in sync with the jump.
                self._process_crashes(state, next_ms)
                self._admit_until(state, next_ms)
                continue
            dispatch_ms = self._dispatch_time(state, t_free)
            crash_ms = self._next_crash_ms(state)
            if crash_ms is not None and crash_ms <= dispatch_ms + 1e-9:
                # The shard dies before this batch would start.
                self._process_crashes(state, dispatch_ms)
                continue
            batch, shed, service_class, group = self._drain_batch(
                state, dispatch_ms
            )
            for request in shed:
                record = state.records[request.request_id]
                record.status = RequestStatus.SHED_DEADLINE
                record.decided_ms = dispatch_ms
                record.queue_ms = dispatch_ms - request.arrival_ms
                state.source.notify(request, dispatch_ms, completed=False)
            if not batch:
                continue  # the whole candidate set was shed; lane still free
            service_ms = self._service_ms(state, batch, service_class, dispatch_ms)
            if crash_ms is not None and crash_ms < dispatch_ms + service_ms - 1e-9:
                # Mid-batch crash: the in-flight work dies with the
                # shard.  No real compute runs, no batch record exists,
                # and no stale lane timer survives — _process_crashes
                # pushes every lane past the restart instant.
                self._kill_batch(state, batch, dispatch_ms, crash_ms)
                self._process_crashes(state, crash_ms)
                continue
            batch_record = self._execute_batch(
                state, batch, len(batches), lane, dispatch_ms,
                service_class, group, service_ms, pool,
            )
            batches.append(batch_record)
            service_wall += batch_record.wall_seconds
            state.lanes[lane] = batch_record.dispatch_ms + batch_record.service_ms
            complete_ms = state.lanes[lane]
            for request in batch:
                state.source.notify(request, complete_ms, completed=True)
        return batches, service_wall

    def _service_ms(
        self,
        state: "_LoopState",
        batch: list[PerceptionRequest],
        service_class: str,
        dispatch_ms: float,
    ) -> float:
        """Virtual service time of one dispatch, brownout-inflated."""
        model = self.config.service_model
        total_points = sum(request.num_points for request in batch)
        service_ms = model.batch_ms(service_class, len(batch), total_points)
        if state.fault_view is not None:
            service_ms *= state.fault_view.service_factor(dispatch_ms)
        return service_ms

    def _next_crash_ms(self, state: "_LoopState") -> float | None:
        """Start of the next unprocessed crash window (None when clear)."""
        if state.crash_idx >= len(state.crash_windows):
            return None
        return state.crash_windows[state.crash_idx][0]

    def _process_crashes(self, state: "_LoopState", upto_ms: float) -> bool:
        """Apply every crash window starting at or before ``upto_ms``.

        Each crash admits the arrivals that made it in before the window
        opened, fails everything queued at the crash instant
        (``FAILED_SHARD_DOWN``), and pushes every lane past the restart,
        so no batch can be scheduled inside a down window and no timer
        anchored to a flushed request survives.  Returns True when any
        window was applied (the caller's clock view is stale).
        """
        applied = False
        while True:
            crash_ms = self._next_crash_ms(state)
            if crash_ms is None or crash_ms > upto_ms + 1e-9:
                return applied
            start, end = state.crash_windows[state.crash_idx]
            state.crash_idx += 1
            applied = True
            self._admit_until(state, start)
            flushed = 0
            survivors: list[PerceptionRequest] = []
            while len(state.queue) > 0:
                request = state.queue.pop_matching(lambda _request: True, 1)[0]
                if request.arrival_ms >= start:
                    # Admitted ahead of the crash by a look-ahead scan;
                    # it arrives after the restart and survives.
                    survivors.append(request)
                    continue
                record = state.records[request.request_id]
                record.status = RequestStatus.FAILED_SHARD_DOWN
                record.decided_ms = start
                record.queue_ms = start - request.arrival_ms
                state.source.notify(request, start, completed=False)
                flushed += 1
            for request in survivors:
                state.queue.offer(request)
            for index in range(len(state.lanes)):
                state.lanes[index] = max(state.lanes[index], end)
            state.fault_events.append(
                {
                    "t_ms": round(start, 6),
                    "action": "crash",
                    "until_ms": round(end, 6),
                    "flushed": flushed,
                }
            )
            PROFILER.count("serve.shard_crashes")

    def _kill_batch(
        self,
        state: "_LoopState",
        batch: list[PerceptionRequest],
        dispatch_ms: float,
        crash_ms: float,
    ) -> None:
        """Fail one in-flight batch killed by a mid-service crash."""
        for request in batch:
            record = state.records[request.request_id]
            record.status = RequestStatus.FAILED_SHARD_DOWN
            record.decided_ms = crash_ms
            record.dispatch_ms = dispatch_ms
            record.queue_ms = dispatch_ms - request.arrival_ms
            state.source.notify(request, crash_ms, completed=False)
        state.fault_events.append(
            {
                "t_ms": round(crash_ms, 6),
                "action": "batch_killed",
                "dispatch_ms": round(dispatch_ms, 6),
                "size": len(batch),
            }
        )
        PROFILER.count("serve.batches_killed")

    def _update_brownout(self, state: "_LoopState", t_ms: float) -> None:
        """Hysteretic brownout transitions from queue depth."""
        cfg = self.config
        if cfg.brownout_enter_depth <= 0:
            return
        depth = len(state.queue)
        if not state.brownout and depth >= cfg.brownout_enter_depth:
            state.brownout = True
            state.fault_events.append(
                {
                    "t_ms": round(t_ms, 6),
                    "action": "brownout_enter",
                    "depth": depth,
                }
            )
            PROFILER.count("serve.brownout_enter")
        elif state.brownout and depth <= cfg.brownout_exit_depth:
            state.brownout = False
            state.fault_events.append(
                {
                    "t_ms": round(t_ms, 6),
                    "action": "brownout_exit",
                    "depth": depth,
                }
            )

    def _admit_until(self, state: "_LoopState", t_ms: float) -> None:
        """Admit (or refuse) every arrival up to virtual time ``t_ms``.

        Closed-loop reissues spawned by a rejection land back in the
        arrival source; when they fall inside this scan's horizon they
        are admitted in the same pass, in arrival order.
        """
        while True:
            next_ms = state.source.peek_ms()
            if next_ms is None or next_ms > t_ms + 1e-9:
                return
            request = state.source.pop()
            if request.request_id not in state.records:
                state.records[request.request_id] = RequestRecord.for_request(
                    request
                )
            if state.fault_view is not None and state.fault_view.is_down(
                request.arrival_ms
            ):
                # The shard is inside a crash window: the arrival is
                # refused at the (dead) ingress.
                record = state.records[request.request_id]
                record.status = RequestStatus.FAILED_SHARD_DOWN
                record.decided_ms = request.arrival_ms
                state.source.notify(request, request.arrival_ms, completed=False)
                continue
            if (
                state.brownout
                and request.priority <= self.config.brownout_shed_priority
            ):
                record = state.records[request.request_id]
                record.status = RequestStatus.SHED_BROWNOUT
                record.decided_ms = request.arrival_ms
                state.source.notify(request, request.arrival_ms, completed=False)
                PROFILER.count("serve.shed_brownout_arrivals")
                continue
            admitted, displaced = state.queue.offer(request)
            loser = displaced if admitted else request
            if loser is not None:
                record = state.records[loser.request_id]
                record.status = RequestStatus.REJECTED_QUEUE_FULL
                record.decided_ms = request.arrival_ms
                state.source.notify(loser, request.arrival_ms, completed=False)

    def _autoscale(self, state: "_LoopState", t_now: float) -> None:
        """Grow or shrink the lane set from queue depth (virtual clock)."""
        cfg = self.config
        if cfg.max_lanes <= 0:
            return
        depth = len(state.queue)
        if depth >= cfg.scale_up_depth and len(state.lanes) < cfg.max_lanes:
            state.lanes.append(t_now)
            state.max_lanes_used = max(state.max_lanes_used, len(state.lanes))
            state.lane_events.append(
                {
                    "t_ms": round(t_now, 6),
                    "action": "scale_up",
                    "lanes": len(state.lanes),
                    "depth": depth,
                }
            )
            PROFILER.count("serve.lane_scale_up")
        elif depth <= cfg.scale_down_depth and len(state.lanes) > cfg.lanes:
            # Retire the highest-index idle extra lane, if any is idle.
            for index in range(len(state.lanes) - 1, cfg.lanes - 1, -1):
                if state.lanes[index] <= t_now + 1e-9:
                    state.lanes.pop(index)
                    state.lane_events.append(
                        {
                            "t_ms": round(t_now, 6),
                            "action": "scale_down",
                            "lanes": len(state.lanes),
                            "depth": depth,
                        }
                    )
                    PROFILER.count("serve.lane_scale_down")
                    break

    def _dispatch_time(self, state: "_LoopState", t_free: float) -> float:
        """When the free lane should dispatch its next batch.

        Immediately when a full batch is already queued or the batching
        window (``oldest queued arrival + max_wait_ms``) has expired;
        otherwise at whichever comes first of the window closing or the
        arrival that fills the batch.  The window is re-computed after
        every admission inside the scan: an arrival can displace the
        oldest queued request, and the stale window would otherwise fire
        a premature partial batch anchored to a request that is no longer
        queued.
        """
        cfg = self.config
        wait_ms = cfg.max_wait_ms
        if state.brownout:
            # Brownout: shrink the batching window so queued work drains
            # sooner at the cost of smaller batches.
            wait_ms *= cfg.brownout_wait_factor
        while True:
            if len(state.queue) >= cfg.max_batch_size:
                return t_free
            window_close = state.queue.oldest_arrival_ms() + wait_ms
            if window_close <= t_free:
                return t_free
            next_ms = state.source.peek_ms()
            if next_ms is None or next_ms > window_close:
                return window_close
            self._admit_until(state, next_ms)
            if len(state.queue) >= cfg.max_batch_size:
                return max(t_free, next_ms)

    def _drain_batch(
        self, state: "_LoopState", dispatch_ms: float
    ) -> tuple[list[PerceptionRequest], list[PerceptionRequest], str, str]:
        """Pop the next batch (head's batch key), shedding dead SLOs.

        A request is shed when even the fastest conceivable service —
        alone, starting now — would finish past its deadline; shed
        requests do not consume batch slots.
        """
        model = self.config.service_model
        service_class, group = self._batch_key(state.queue.head())
        key = (service_class, group)
        batch: list[PerceptionRequest] = []
        shed: list[PerceptionRequest] = []
        while len(batch) < self.config.max_batch_size:
            popped = state.queue.pop_matching(
                lambda request: self._batch_key(request) == key, 1
            )
            if not popped:
                break
            request = popped[0]
            if (
                self.config.shed_deadlines
                and dispatch_ms + model.floor_ms(request) > request.deadline_ms
            ):
                shed.append(request)
            else:
                batch.append(request)
        return batch, shed, service_class, group

    # -- dispatch execution ------------------------------------------------
    def _execute_batch(
        self,
        state: "_LoopState",
        batch: list[PerceptionRequest],
        batch_id: int,
        lane: int,
        dispatch_ms: float,
        service_class: str,
        group: str,
        service_ms: float,
        pool: WorkerPool | None,
    ) -> BatchRecord:
        """Run one dispatch's real compute and fill its records.

        ``service_ms`` is precomputed by the caller (via
        :meth:`_service_ms`) so brownout inflation is already applied.
        """
        total_points = sum(request.num_points for request in batch)
        complete_ms = dispatch_ms + service_ms

        wall_start = time.perf_counter()
        if service_class == "roi":
            result_counts = self._execute_roi(batch, pool)
        else:
            result_counts = self._execute_detect(batch, group, pool)
        wall_seconds = time.perf_counter() - wall_start
        PROFILER.record("serve.service", wall_seconds)
        PROFILER.count("serve.batched_requests", len(batch))

        share = wall_seconds / len(batch)
        for request, num_results in zip(batch, result_counts):
            record = state.records[request.request_id]
            record.status = RequestStatus.COMPLETED
            record.decided_ms = complete_ms
            record.dispatch_ms = dispatch_ms
            record.queue_ms = dispatch_ms - request.arrival_ms
            record.service_ms = service_ms
            record.latency_ms = complete_ms - request.arrival_ms
            record.deadline_met = complete_ms <= request.deadline_ms
            record.batch_id = batch_id
            record.batch_size = len(batch)
            record.num_results = num_results
            record.wall_service_seconds = share
            if not record.deadline_met:
                PROFILER.count("serve.slo_misses")
        return BatchRecord(
            batch_id=batch_id,
            service_class=service_class,
            group=group,
            lane=lane,
            dispatch_ms=dispatch_ms,
            service_ms=service_ms,
            size=len(batch),
            total_points=total_points,
            wall_seconds=wall_seconds,
        )

    def _execute_detect(
        self,
        batch: list[PerceptionRequest],
        group: str,
        pool: WorkerPool | None,
    ) -> list[int]:
        """Fuse where needed, then one batched detector pass; returns
        per-request detection counts.

        Fusion is a pure function of (cloud, pose, packages), so fanning
        it to workers cannot change the merged clouds; the detector pass
        itself always runs here in the parent over the batch in queue
        order, keeping numerics independent of the worker count.  The
        detector is the batch group's representative — sound because
        every model in the group is :meth:`SPOD.equivalent_to` it.
        """
        detector = self._group_detector[group]
        fuse_payloads = [
            (request.cloud, request.pose, request.packages)
            for request in batch
            if request.kind is RequestKind.FUSE_DETECT
        ]
        with PROFILER.stage("serve.fuse"):
            if pool is not None and len(fuse_payloads) > 1:
                fused = pool.map(_fuse_payload_task, fuse_payloads)
            else:
                fused = [_fuse_payload_task(p) for p in fuse_payloads]
        fused_iter = iter(fused)
        clouds = [
            next(fused_iter) if request.kind is RequestKind.FUSE_DETECT
            else request.cloud
            for request in batch
        ]
        with PROFILER.stage("serve.detect"):
            all_detections = detector.detect_batch(clouds)
        threshold = detector.config.detection_threshold
        return [
            sum(1 for d in detections if d.score >= threshold)
            for detections in all_detections
        ]

    def _execute_roi(
        self, batch: list[PerceptionRequest], pool: WorkerPool | None
    ) -> list[int]:
        """Answer each ROI request (pure geometry); returns reply sizes."""
        payloads = [
            (request.roi, request.cloud, request.pose) for request in batch
        ]
        with PROFILER.stage("serve.roi"):
            if pool is not None and len(payloads) > 1:
                replies = pool.map(_roi_answer_task, payloads)
            else:
                replies = [_roi_answer_task(p) for p in payloads]
        return replies


class _ArrivalSource:
    """Merged arrival stream: static open-loop trace + closed-loop clients.

    The trace is consumed in (arrival, id) order; closed-loop arrivals
    live in a heap because a client's next arrival only exists once its
    previous request reached a terminal state.  Ties between the two
    streams break on the lower request id, so the pop order is a total
    deterministic function of the inputs.
    """

    def __init__(self, trace: list[PerceptionRequest], closed_loop) -> None:
        self._trace = trace
        self._index = 0
        self._heap: list[tuple[float, int, PerceptionRequest]] = []
        self._owners: dict[int, object] = {}
        for client in closed_loop:
            first = client.start()
            if first is not None:
                self._push(first, client)

    def _push(self, request: PerceptionRequest, owner) -> None:
        self._owners[request.request_id] = owner
        heapq.heappush(
            self._heap, (request.arrival_ms, request.request_id, request)
        )

    def peek_ms(self) -> float | None:
        """Earliest pending arrival time, or None when drained."""
        trace_ms = (
            self._trace[self._index].arrival_ms
            if self._index < len(self._trace)
            else None
        )
        loop_ms = self._heap[0][0] if self._heap else None
        if trace_ms is None:
            return loop_ms
        if loop_ms is None:
            return trace_ms
        return min(trace_ms, loop_ms)

    def pop(self) -> PerceptionRequest:
        """Pop the earliest pending arrival (lower id breaks exact ties)."""
        trace_next = (
            self._trace[self._index] if self._index < len(self._trace) else None
        )
        loop_next = self._heap[0] if self._heap else None
        take_trace = loop_next is None or (
            trace_next is not None
            and (trace_next.arrival_ms, trace_next.request_id)
            <= (loop_next[0], loop_next[1])
        )
        if take_trace:
            if trace_next is None:
                raise IndexError("pop from drained arrival source")
            self._index += 1
            return trace_next
        return heapq.heappop(self._heap)[2]

    def notify(
        self, request: PerceptionRequest, decided_ms: float, completed: bool
    ) -> None:
        """Tell a closed-loop owner its request reached a terminal state."""
        owner = self._owners.pop(request.request_id, None)
        if owner is None:
            return
        follow_up = owner.reissue(decided_ms, completed)
        if follow_up is not None:
            self._push(follow_up, owner)


@dataclass
class _LoopState:
    """Mutable event-loop state of one :meth:`ServingEngine.serve` run."""

    source: _ArrivalSource
    records: dict[int, RequestRecord]
    queue: BoundedPriorityQueue
    lanes: list[float]
    lane_events: list[dict] = field(default_factory=list)
    max_lanes_used: int = 1
    fault_view: ShardFaultView | None = None
    crash_windows: tuple[tuple[float, float], ...] = ()
    crash_idx: int = 0
    brownout: bool = False
    fault_events: list[dict] = field(default_factory=list)


def _fuse_payload_task(
    payload: tuple[PointCloud, Pose, tuple[ExchangePackage, ...]],
) -> PointCloud:
    """Worker task: align + merge one FUSE_DETECT request's packages."""
    cloud, pose, packages = payload
    return merge_packages(cloud, list(packages), pose)


def _roi_answer_task(
    payload: tuple[RoiRequest, PointCloud, Pose],
) -> int:
    """Worker task: crop one cooperator cloud to a demand-driven ROI."""
    roi, cloud, pose = payload
    return len(answer_request(roi, cloud, pose))
