"""Fleet-scale serving: sharded engines behind a deterministic router.

One :class:`~repro.serve.engine.ServingEngine` saturates at a fixed
offered-load knee; a city-scale fleet needs many.  A :class:`FleetEngine`
runs ``num_shards`` fully independent engine shards behind a router that
assigns every client to exactly one shard by hashing the client name
through :func:`repro.runtime.stable_hash`:

* **Deterministic** — the hash is CRC-32 of ``"fleet-route:{seed}:
  {client}"``, so the client→shard map is a pure function of
  ``(routing_seed, client, num_shards)``: identical in every process
  (no ``PYTHONHASHSEED`` dependence — the same bug class the DSRC
  channel fix removed) and across runs.
* **Sticky** — all of a client's requests land on the same shard, so a
  shard sees a coherent per-client stream (closed-loop control loops
  stay on one queue; per-client ordering is preserved).
* **Reshard-stable** — the 32-bit hash bucket is mapped to a shard by a
  jump consistent hash (:func:`route_bucket`) rather than modulo or
  range partition, so growing the fleet from N to M shards moves only
  the expected minimal ``1 - N/M`` fraction of clients, every moved
  client lands on one of the *new* shards, and the assignment
  factorizes through the bucket.

Shards share nothing at serve time — no queue, no lanes, no clock — so
the fleet result is exactly the per-shard results stitched together, and
shards can execute in parallel worker processes without any effect on
the request log.  Per-shard profiler snapshots are captured with the
same reset/merge dance the :class:`~repro.runtime.WorkerPool` uses for
chunks, so fleet profiles aggregate exactly (no double counting) while
still exposing per-shard breakdowns.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.detection.spod import SPOD
from repro.faults.serve import ShardFaultPlan
from repro.profiling import PROFILER
from repro.runtime import (
    WorkerPool,
    derive_seed,
    fork_available,
    resolve_workers,
    stable_hash,
)
from repro.serve.engine import ServeConfig, ServeResult, ServingEngine
from repro.serve.requests import PerceptionRequest, RequestRecord, RequestStatus

__all__ = [
    "hash_bucket",
    "route_bucket",
    "route_client",
    "fallback_chain",
    "FailoverConfig",
    "FleetConfig",
    "FleetResult",
    "FleetEngine",
]

_BUCKETS = 2**32


def _avalanche(h: int) -> int:
    """Murmur3-style 32-bit finalizer (spreads every input bit)."""
    h %= _BUCKETS
    h ^= h >> 16
    h = (h * 0x85EBCA6B) % _BUCKETS
    h ^= h >> 13
    h = (h * 0xC2B2AE35) % _BUCKETS
    h ^= h >> 16
    return h


def hash_bucket(routing_seed: int, client: str) -> int:
    """The client's 32-bit routing bucket (shard-count independent).

    This is the quantity that must be process-stable: CRC-32 of a
    seed-salted string, never Python's randomized ``hash()``.  CRC-32 is
    linear — flipping one input byte XORs the output by a constant, so a
    seed change would barely move the *top* bits the range partition
    keys on — hence the murmur3-style avalanche finalizer on top, which
    spreads every input bit across the whole word while staying a pure
    integer function.
    """
    return _avalanche(stable_hash(f"fleet-route:{routing_seed}:{client}"))


def route_bucket(bucket: int, num_shards: int) -> int:
    """Jump consistent hash: bucket -> shard, reshard-minimal.

    Lamping & Veach's jump hash walks the bucket's deterministic jump
    sequence; a key's shard changes between N and M shards only when the
    sequence jumps into the newly added range, so growing the fleet
    moves the minimal expected ``1 - N/M`` of clients and every moved
    client lands on a *new* shard.  Pure integer arithmetic — stable in
    every process.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    state = bucket
    shard, candidate = 0, 0
    while candidate < num_shards:
        shard = candidate
        state = (state * 2862933555777941757 + 1) % 2**64
        candidate = int((shard + 1) * float(2**31) / float((state >> 33) + 1))
    return shard


def route_client(routing_seed: int, client: str, num_shards: int) -> int:
    """Which shard serves ``client``.

    Factorizes exactly as ``route_bucket(hash_bucket(seed, client),
    num_shards)`` — the bucket is shard-count independent, so resharding
    decisions depend on the client only through its bucket.
    """
    return route_bucket(hash_bucket(routing_seed, client), num_shards)


def fallback_chain(bucket: int, num_shards: int) -> tuple[int, ...]:
    """The bucket's failover order over the shards (a permutation).

    ``chain[0]`` is exactly :func:`route_bucket` — the healthy-fleet
    assignment is untouched.  Each further level re-avalanches the bucket
    and jump-hashes it into the shards not yet chosen, so:

    * a downed shard's clients spread roughly uniformly over the
      survivors (no thundering herd onto one neighbour), and
    * clients whose primary is healthy never move — failover moves
      *only* the downed shard's clients, and they return the moment it
      recovers (the chain is stateless, preference order is fixed).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    remaining = list(range(num_shards))
    chain: list[int] = []
    state = bucket % _BUCKETS
    while remaining:
        chain.append(remaining.pop(route_bucket(state, len(remaining))))
        state = _avalanche((state + 0x9E3779B9) % _BUCKETS)
    return tuple(chain)


@dataclass(frozen=True)
class FailoverConfig:
    """Retry / hedging / circuit-breaker knobs of the resilient router.

    Attributes:
        failure_threshold: consecutive delivery failures that open a
            shard's breaker (failed shards stop receiving first-choice
            traffic until the cooldown expires).
        cooldown_ms: how long an open breaker deflects traffic before
            the shard is probed again.
        max_retries: delivery retries per request beyond the first
            attempt (all capped by the request's deadline).
        retry_backoff_ms: base of the seeded exponential backoff —
            retry ``k`` waits ``retry_backoff_ms * 2^k`` inflated by up
            to ``retry_jitter``.
        retry_jitter: uniform jitter fraction on each backoff (seeded,
            deterministic; decorrelates retry storms).
        hedge_ms: arm a hedged duplicate this long after a request's
            first delivery failure (0 disables).  The duplicate races
            the retries; whichever delivers first wins and the loser is
            deduplicated deterministically.
    """

    failure_threshold: int = 1
    cooldown_ms: float = 1000.0
    max_retries: int = 2
    retry_backoff_ms: float = 20.0
    retry_jitter: float = 0.5
    hedge_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.cooldown_ms <= 0:
            raise ValueError("cooldown_ms must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff_ms < 0:
            raise ValueError("retry_backoff_ms must be non-negative")
        if self.retry_jitter < 0:
            raise ValueError("retry_jitter must be non-negative")
        if self.hedge_ms < 0:
            raise ValueError("hedge_ms must be non-negative (0 disables)")


@dataclass(frozen=True)
class FleetConfig:
    """Fleet topology and routing knobs.

    Attributes:
        num_shards: independent engine shards.
        routing_seed: salts the routing hash; changing it reshuffles the
            client→shard map without touching workload seeds.
        shard_config: the :class:`ServeConfig` every shard runs (shards
            are homogeneous by design — capacity scales by count, the
            per-shard knobs stay comparable across fleet sizes).
        shard_faults: injected shard-failure schedule
            (:class:`~repro.faults.serve.ShardFaultPlan`); None serves
            fair-weather and keeps the routing path byte-identical to
            the fault-free fleet.
        failover: resilient-router knobs (used when ``shard_faults`` is
            set).
    """

    num_shards: int = 2
    routing_seed: int = 0
    shard_config: ServeConfig = field(default_factory=ServeConfig)
    shard_faults: ShardFaultPlan | None = None
    failover: FailoverConfig = field(default_factory=FailoverConfig)

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")


@dataclass
class _ShardBreaker:
    """Per-shard circuit breaker on the virtual clock.

    Modeled on the session loop's per-peer ``PeerHealth`` breaker
    (:mod:`repro.fusion.agent`): consecutive delivery failures open it
    for a cooldown, during which the router prefers the next shard in
    each client's fallback chain.
    """

    consecutive_failures: int = 0
    open_until_ms: float = -1.0

    def is_open(self, t_ms: float) -> bool:
        return t_ms < self.open_until_ms

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.open_until_ms = -1.0

    def record_failure(
        self, t_ms: float, threshold: int, cooldown_ms: float
    ) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= threshold:
            self.open_until_ms = t_ms + cooldown_ms


@dataclass
class _RouteState:
    """The resilient router's in-flight view of one request."""

    request: PerceptionRequest
    chain: tuple[int, ...]
    outstanding: int = 0
    attempts_made: int = 0
    retries_scheduled: int = 0
    hedged: bool = False
    delivered: bool = False
    served_shard: int = -1
    delivered_ms: float = -1.0
    tried: set = field(default_factory=set)


@dataclass
class FleetResult:
    """Everything one :meth:`FleetEngine.serve` run produced.

    Attributes:
        shard_results: per-shard :class:`ServeResult`, shard order.
        assignments: client → shard index for every client seen.
        config: the fleet config that produced this.
        wall_seconds: real time of the whole fleet serve call.
        shard_profiles: per-shard profiler snapshots (empty dicts when
            profiling is disabled).
        unrouted_records: requests the resilient router could not place
            on any shard before their deadline (``FAILED_SHARD_DOWN``,
            decided parent-side; empty without injected faults).
        routing: resilient-router statistics — retries, failovers,
            hedges issued/cancelled, moved clients, unrouted count
            (empty without injected faults).
    """

    shard_results: list[ServeResult]
    assignments: dict[str, int]
    config: FleetConfig
    wall_seconds: float
    shard_profiles: list[dict] = field(default_factory=list)
    unrouted_records: list[RequestRecord] = field(default_factory=list)
    routing: dict = field(default_factory=dict)

    def shard_clients(self) -> list[list[str]]:
        """Clients per shard (sorted), shard order."""
        clients: list[list[str]] = [[] for _ in self.shard_results]
        for client, shard in sorted(self.assignments.items()):
            clients[shard].append(client)
        return clients

    def merged(self) -> ServeResult:
        """One synthetic :class:`ServeResult` over the whole fleet.

        Records merge in request-id order (ids are globally unique across
        shards because routing partitions clients); batches keep shard
        order.  Scalar fields aggregate the only honest way: queue depth
        and lane high-water marks take the max (they are per-shard
        resources, not fleet-wide ones), wall clocks sum.
        """
        records = sorted(
            (
                r
                for result in self.shard_results
                for r in result.records
            ),
            key=lambda record: record.request_id,
        )
        if self.unrouted_records:
            records = sorted(
                records + list(self.unrouted_records),
                key=lambda record: record.request_id,
            )
        batches = [b for result in self.shard_results for b in result.batches]
        return ServeResult(
            records=records,
            batches=batches,
            config=self.config.shard_config,
            max_queue_depth=max(
                (r.max_queue_depth for r in self.shard_results), default=0
            ),
            wall_seconds=sum(r.wall_seconds for r in self.shard_results),
            service_wall_seconds=sum(
                r.service_wall_seconds for r in self.shard_results
            ),
            lane_events=[
                event
                for result in self.shard_results
                for event in result.lane_events
            ],
            max_lanes_used=max(
                (r.max_lanes_used for r in self.shard_results), default=1
            ),
        )

    def log(self) -> list[dict]:
        """Shard-tagged determinism log of the whole fleet.

        Every shard's log entries are tagged with their shard index, so
        the fleet log pins not only each request's outcome but *where*
        it was served — a routing regression cannot hide behind
        otherwise-identical per-request outcomes.
        """
        entries: list[dict] = []
        for shard, result in enumerate(self.shard_results):
            for entry in result.log():
                entries.append(dict(entry, shard=shard))
        for record in self.unrouted_records:
            entries.append(dict(record.log_entry(), shard=-1))
        if self.routing and any(self.routing.values()):
            # Elided when every stat is zero so a quiet fault plan stays
            # byte-identical to the fault-free fleet log.
            entries.append(dict(self.routing, entry="routing", shard=-1))
        return entries

    def log_json(self) -> str:
        """Canonical JSON of :meth:`log` — the fleet bit-identity surface."""
        return json.dumps(self.log(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of :meth:`log_json` (the determinism fingerprint)."""
        return hashlib.sha256(self.log_json().encode()).hexdigest()

    def counts(self) -> dict[str, int]:
        """Fleet-wide requests per terminal status (plus total offered)."""
        return self.merged().counts()


class FleetEngine:
    """N independent serving shards behind the deterministic router.

    Every shard gets its own :class:`ServingEngine` over the *same*
    detector objects (read-only at serve time, so sharing is safe) and
    the same :class:`ServeConfig`.  ``workers`` parallelizes across
    shards — each shard engine runs single-worker inside its process, so
    the process tree stays flat and the per-shard logs are what a lone
    engine would have produced for that shard's clients.
    """

    def __init__(
        self,
        detector: SPOD | None = None,
        config: FleetConfig | None = None,
        workers: int | None = None,
        detectors: dict[str, SPOD] | None = None,
    ) -> None:
        self.config = config or FleetConfig()
        self.workers = resolve_workers(workers)
        self.shards = [
            ServingEngine(
                detector=detector,
                config=self.config.shard_config,
                workers=1,
                detectors=detectors,
            )
            for _ in range(self.config.num_shards)
        ]

    def route(self, client: str) -> int:
        """Shard index serving ``client``."""
        return route_client(
            self.config.routing_seed, client, self.config.num_shards
        )

    def serve(
        self,
        requests: list[PerceptionRequest],
        lost: list[PerceptionRequest] = (),
        closed_loop: list = (),
    ) -> FleetResult:
        """Serve one workload across the fleet.

        Open-loop requests, ingress-lost requests and closed-loop clients
        are all partitioned by the router; each shard then serves its
        slice exactly as a standalone engine would.  With ``workers > 1``
        shards run in parallel processes — the request log is unaffected
        because shards share no scheduling state.

        With :attr:`FleetConfig.shard_faults` set, open-loop requests go
        through the resilient router instead of the static partition:
        health-aware failover down each client's fallback chain, seeded
        exponential-backoff retries and optional hedged duplicates, all
        decided parent-side on the virtual clock, so the shard-tagged
        log stays bit-identical at any worker count under injected
        faults.  Closed-loop clients stay pinned to their home shard (a
        control loop is a stateful conversation, not a retryable
        datagram); the engine-side fault machinery fails their requests
        fast during down windows and the loop's own backoff takes over.
        """
        wall_start = time.perf_counter()
        seed = self.config.routing_seed
        num_shards = self.config.num_shards
        plan = self.config.shard_faults
        assignments: dict[str, int] = {}

        def shard_of(client: str) -> int:
            shard = assignments.get(client)
            if shard is None:
                shard = route_client(seed, client, num_shards)
                assignments[client] = shard
            return shard

        shard_requests: list[list[PerceptionRequest]] = [
            [] for _ in range(num_shards)
        ]
        shard_lost: list[list[PerceptionRequest]] = [
            [] for _ in range(num_shards)
        ]
        shard_loops: list[list] = [[] for _ in range(num_shards)]
        unrouted_records: list[RequestRecord] = []
        routing_stats: dict = {}
        patch: dict[int, tuple[int, int, float]] = {}
        if plan is None:
            for request in requests:
                shard_requests[shard_of(request.client)].append(request)
        else:
            unrouted_records, routing_stats, patch = self._route_resilient(
                requests, shard_requests, shard_of
            )
        for request in lost:
            shard_lost[shard_of(request.client)].append(request)
        for client in closed_loop:
            shard_loops[shard_of(client.client)].append(client)

        payloads = [
            (
                self.shards[shard],
                shard_requests[shard],
                shard_lost[shard],
                shard_loops[shard],
                plan.view(shard) if plan is not None else None,
            )
            for shard in range(num_shards)
        ]
        use_pool = num_shards > 1 and self.workers > 1 and fork_available()
        if use_pool:
            pool = WorkerPool(
                min(self.workers, num_shards), chunk_size=1
            )
            try:
                outcomes = pool.map(_serve_shard_task, payloads)
            finally:
                pool.close()
            # The pool already merged each shard's profile into the
            # parent via its chunk snapshots; keep the per-shard copies
            # for the breakdown.
            shard_results = [result for result, _ in outcomes]
            shard_profiles = [profile for _, profile in outcomes]
        else:
            shard_results = []
            shard_profiles = []
            for payload in payloads:
                result, profile = _serve_shard_task(payload)
                shard_results.append(result)
                shard_profiles.append(profile)

        if patch:
            # Stamp the router's journey onto the delivered records —
            # parent-side, after serving, so worker layout cannot matter.
            # The arrival is restored to the client's true arrival and
            # the retry/hedge delay folded into the latency, so fleet
            # percentiles are end-to-end honest under faults.
            for result in shard_results:
                for record in result.records:
                    journey = patch.get(record.request_id)
                    if journey is None:
                        continue
                    record.attempts, record.failovers, delay = journey
                    if delay > 0:
                        record.arrival_ms -= delay
                        if record.latency_ms >= 0:
                            record.latency_ms += delay

        return FleetResult(
            shard_results=shard_results,
            assignments=assignments,
            config=self.config,
            wall_seconds=time.perf_counter() - wall_start,
            shard_profiles=shard_profiles,
            unrouted_records=unrouted_records,
            routing=routing_stats,
        )

    def _route_resilient(
        self,
        requests: list[PerceptionRequest],
        shard_requests: list[list[PerceptionRequest]],
        shard_of,
    ) -> tuple[list[RequestRecord], dict, dict[int, tuple[int, int, float]]]:
        """Place every open-loop request on a live shard (or fail it).

        A single parent-side pass over a virtual-time event heap.  Each
        request starts with one delivery attempt at its arrival; a
        failed attempt (target down, or the Gilbert-Elliott link ate it)
        opens/bumps the target's breaker, schedules a seeded
        exponential-backoff retry, and — once per request, when hedging
        is enabled — arms a hedged duplicate.  Every event re-picks the
        first shard in the client's :func:`fallback_chain` whose breaker
        is closed, so traffic drains away from failing shards after
        ``failure_threshold`` failures and returns after the cooldown.
        A request whose retries and hedge are exhausted (or deadline-
        capped) becomes a parent-side ``FAILED_SHARD_DOWN`` record.

        Everything — event order, backoff jitter, link drops — is a pure
        function of ``(plan.seed, request ids, virtual time)``; no shard
        state is read, so the pass is identical at any worker count.

        Appends delivered requests (arrival re-stamped to delivery time)
        to ``shard_requests`` in place; returns ``(unrouted_records,
        stats, {request_id: (attempts, failovers, delay_ms)})``.
        """
        plan = self.config.shard_faults
        failover = self.config.failover
        num_shards = self.config.num_shards
        breakers = [_ShardBreaker() for _ in range(num_shards)]
        chains: dict[str, tuple[int, ...]] = {}
        states: dict[int, _RouteState] = {}
        heap: list[tuple[float, int, int, str]] = []
        seq = 0
        stats = {
            "retries": 0,
            "failovers": 0,
            "hedges_issued": 0,
            "hedges_cancelled": 0,
            "unrouted": 0,
            "moved_clients": 0,
        }
        unrouted: list[RequestRecord] = []

        for request in requests:
            client = request.client
            shard_of(client)  # pin the primary assignment
            chain = chains.get(client)
            if chain is None:
                chain = fallback_chain(
                    hash_bucket(self.config.routing_seed, client), num_shards
                )
                chains[client] = chain
            state = _RouteState(request=request, chain=chain, outstanding=1)
            states[request.request_id] = state
            heapq.heappush(
                heap, (request.arrival_ms, request.request_id, seq, "attempt")
            )
            seq += 1

        while heap:
            t_ms, request_id, _, kind = heapq.heappop(heap)
            state = states[request_id]
            state.outstanding -= 1
            if state.delivered:
                if kind == "hedge":
                    stats["hedges_cancelled"] += 1
                continue
            target = next(
                (s for s in state.chain if not breakers[s].is_open(t_ms)),
                state.chain[0],
            )
            attempt = state.attempts_made
            state.attempts_made += 1
            state.tried.add(target)
            failed = plan.is_down(target, t_ms) or plan.ingress_dropped(
                target, request_id, attempt, t_ms
            )
            if not failed:
                breakers[target].record_success()
                state.delivered = True
                state.served_shard = target
                state.delivered_ms = t_ms
                request = state.request
                if t_ms != request.arrival_ms:
                    request = replace(request, arrival_ms=t_ms)
                shard_requests[target].append(request)
                if target != state.chain[0]:
                    stats["failovers"] += 1
                continue
            breakers[target].record_failure(
                t_ms, failover.failure_threshold, failover.cooldown_ms
            )
            deadline = state.request.deadline_ms
            if kind == "attempt":
                k = state.retries_scheduled
                if k < failover.max_retries:
                    jitter = float(
                        np.random.default_rng(
                            derive_seed(plan.seed, "fleet-retry", request_id, k)
                        ).random()
                    )
                    delay = (
                        failover.retry_backoff_ms
                        * (2.0**k)
                        * (1.0 + failover.retry_jitter * jitter)
                    )
                    t_next = t_ms + delay
                    if t_next < deadline - 1e-9:
                        state.retries_scheduled += 1
                        state.outstanding += 1
                        stats["retries"] += 1
                        heapq.heappush(
                            heap, (t_next, request_id, seq, "attempt")
                        )
                        seq += 1
                if failover.hedge_ms > 0 and not state.hedged:
                    t_hedge = t_ms + failover.hedge_ms
                    if t_hedge < deadline - 1e-9:
                        state.hedged = True
                        state.outstanding += 1
                        stats["hedges_issued"] += 1
                        heapq.heappush(
                            heap, (t_hedge, request_id, seq, "hedge")
                        )
                        seq += 1
            if state.outstanding == 0:
                record = RequestRecord.for_request(state.request)
                record.status = RequestStatus.FAILED_SHARD_DOWN
                record.decided_ms = t_ms
                record.attempts = state.attempts_made
                record.failovers = max(0, len(state.tried) - 1)
                unrouted.append(record)
                stats["unrouted"] += 1

        unrouted.sort(key=lambda record: record.request_id)
        moved = {
            state.request.client
            for state in states.values()
            if state.delivered and state.served_shard != state.chain[0]
        }
        stats["moved_clients"] = len(moved)
        patch = {
            request_id: (
                state.attempts_made,
                state.chain.index(state.served_shard),
                state.delivered_ms - state.request.arrival_ms,
            )
            for request_id, state in states.items()
            if state.delivered
        }
        PROFILER.count("fleet.route_retries", stats["retries"])
        PROFILER.count("fleet.route_failovers", stats["failovers"])
        PROFILER.count("fleet.route_unrouted", stats["unrouted"])
        return unrouted, stats, patch


def _serve_shard_task(payload) -> tuple[ServeResult, dict]:
    """Serve one shard's slice and capture its exact profiler delta.

    Runs in a worker process (or inline).  The dance mirrors the worker
    pool's chunk accounting: save whatever the ambient registry already
    holds, record the shard against a clean registry, then restore
    ambient + shard so the process-local registry is exactly what it
    would have been without the detour.  Inline, the parent registry ends
    up with the shard merged once; under the pool, the worker's chunk
    snapshot (which the pool merges into the parent) equals ambient +
    shard, again exactly once.
    """
    engine, shard_requests, shard_lost, shard_loops, fault_view = payload
    if not PROFILER.enabled:
        result = engine.serve(
            shard_requests, lost=shard_lost, closed_loop=shard_loops,
            faults=fault_view,
        )
        return result, {}
    ambient = PROFILER.snapshot()
    PROFILER.reset()
    try:
        result = engine.serve(
            shard_requests, lost=shard_lost, closed_loop=shard_loops,
            faults=fault_view,
        )
        shard_profile = PROFILER.snapshot()
    finally:
        PROFILER.reset()
        PROFILER.merge_snapshot(ambient)
    PROFILER.merge_snapshot(shard_profile)
    return result, shard_profile
