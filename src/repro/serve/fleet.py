"""Fleet-scale serving: sharded engines behind a deterministic router.

One :class:`~repro.serve.engine.ServingEngine` saturates at a fixed
offered-load knee; a city-scale fleet needs many.  A :class:`FleetEngine`
runs ``num_shards`` fully independent engine shards behind a router that
assigns every client to exactly one shard by hashing the client name
through :func:`repro.runtime.stable_hash`:

* **Deterministic** — the hash is CRC-32 of ``"fleet-route:{seed}:
  {client}"``, so the client→shard map is a pure function of
  ``(routing_seed, client, num_shards)``: identical in every process
  (no ``PYTHONHASHSEED`` dependence — the same bug class the DSRC
  channel fix removed) and across runs.
* **Sticky** — all of a client's requests land on the same shard, so a
  shard sees a coherent per-client stream (closed-loop control loops
  stay on one queue; per-client ordering is preserved).
* **Reshard-stable** — the 32-bit hash bucket is mapped to a shard by a
  jump consistent hash (:func:`route_bucket`) rather than modulo or
  range partition, so growing the fleet from N to M shards moves only
  the expected minimal ``1 - N/M`` fraction of clients, every moved
  client lands on one of the *new* shards, and the assignment
  factorizes through the bucket.

Shards share nothing at serve time — no queue, no lanes, no clock — so
the fleet result is exactly the per-shard results stitched together, and
shards can execute in parallel worker processes without any effect on
the request log.  Per-shard profiler snapshots are captured with the
same reset/merge dance the :class:`~repro.runtime.WorkerPool` uses for
chunks, so fleet profiles aggregate exactly (no double counting) while
still exposing per-shard breakdowns.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.detection.spod import SPOD
from repro.profiling import PROFILER
from repro.runtime import (
    WorkerPool,
    fork_available,
    resolve_workers,
    stable_hash,
)
from repro.serve.engine import ServeConfig, ServeResult, ServingEngine
from repro.serve.requests import PerceptionRequest

__all__ = [
    "hash_bucket",
    "route_bucket",
    "route_client",
    "FleetConfig",
    "FleetResult",
    "FleetEngine",
]

_BUCKETS = 2**32


def hash_bucket(routing_seed: int, client: str) -> int:
    """The client's 32-bit routing bucket (shard-count independent).

    This is the quantity that must be process-stable: CRC-32 of a
    seed-salted string, never Python's randomized ``hash()``.  CRC-32 is
    linear — flipping one input byte XORs the output by a constant, so a
    seed change would barely move the *top* bits the range partition
    keys on — hence the murmur3-style avalanche finalizer on top, which
    spreads every input bit across the whole word while staying a pure
    integer function.
    """
    h = stable_hash(f"fleet-route:{routing_seed}:{client}") % _BUCKETS
    h ^= h >> 16
    h = (h * 0x85EBCA6B) % _BUCKETS
    h ^= h >> 13
    h = (h * 0xC2B2AE35) % _BUCKETS
    h ^= h >> 16
    return h


def route_bucket(bucket: int, num_shards: int) -> int:
    """Jump consistent hash: bucket -> shard, reshard-minimal.

    Lamping & Veach's jump hash walks the bucket's deterministic jump
    sequence; a key's shard changes between N and M shards only when the
    sequence jumps into the newly added range, so growing the fleet
    moves the minimal expected ``1 - N/M`` of clients and every moved
    client lands on a *new* shard.  Pure integer arithmetic — stable in
    every process.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    state = bucket
    shard, candidate = 0, 0
    while candidate < num_shards:
        shard = candidate
        state = (state * 2862933555777941757 + 1) % 2**64
        candidate = int((shard + 1) * float(2**31) / float((state >> 33) + 1))
    return shard


def route_client(routing_seed: int, client: str, num_shards: int) -> int:
    """Which shard serves ``client``.

    Factorizes exactly as ``route_bucket(hash_bucket(seed, client),
    num_shards)`` — the bucket is shard-count independent, so resharding
    decisions depend on the client only through its bucket.
    """
    return route_bucket(hash_bucket(routing_seed, client), num_shards)


@dataclass(frozen=True)
class FleetConfig:
    """Fleet topology and routing knobs.

    Attributes:
        num_shards: independent engine shards.
        routing_seed: salts the routing hash; changing it reshuffles the
            client→shard map without touching workload seeds.
        shard_config: the :class:`ServeConfig` every shard runs (shards
            are homogeneous by design — capacity scales by count, the
            per-shard knobs stay comparable across fleet sizes).
    """

    num_shards: int = 2
    routing_seed: int = 0
    shard_config: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")


@dataclass
class FleetResult:
    """Everything one :meth:`FleetEngine.serve` run produced.

    Attributes:
        shard_results: per-shard :class:`ServeResult`, shard order.
        assignments: client → shard index for every client seen.
        config: the fleet config that produced this.
        wall_seconds: real time of the whole fleet serve call.
        shard_profiles: per-shard profiler snapshots (empty dicts when
            profiling is disabled).
    """

    shard_results: list[ServeResult]
    assignments: dict[str, int]
    config: FleetConfig
    wall_seconds: float
    shard_profiles: list[dict] = field(default_factory=list)

    def shard_clients(self) -> list[list[str]]:
        """Clients per shard (sorted), shard order."""
        clients: list[list[str]] = [[] for _ in self.shard_results]
        for client, shard in sorted(self.assignments.items()):
            clients[shard].append(client)
        return clients

    def merged(self) -> ServeResult:
        """One synthetic :class:`ServeResult` over the whole fleet.

        Records merge in request-id order (ids are globally unique across
        shards because routing partitions clients); batches keep shard
        order.  Scalar fields aggregate the only honest way: queue depth
        and lane high-water marks take the max (they are per-shard
        resources, not fleet-wide ones), wall clocks sum.
        """
        records = sorted(
            (r for result in self.shard_results for r in result.records),
            key=lambda record: record.request_id,
        )
        batches = [b for result in self.shard_results for b in result.batches]
        return ServeResult(
            records=records,
            batches=batches,
            config=self.config.shard_config,
            max_queue_depth=max(
                (r.max_queue_depth for r in self.shard_results), default=0
            ),
            wall_seconds=sum(r.wall_seconds for r in self.shard_results),
            service_wall_seconds=sum(
                r.service_wall_seconds for r in self.shard_results
            ),
            lane_events=[
                event
                for result in self.shard_results
                for event in result.lane_events
            ],
            max_lanes_used=max(
                (r.max_lanes_used for r in self.shard_results), default=1
            ),
        )

    def log(self) -> list[dict]:
        """Shard-tagged determinism log of the whole fleet.

        Every shard's log entries are tagged with their shard index, so
        the fleet log pins not only each request's outcome but *where*
        it was served — a routing regression cannot hide behind
        otherwise-identical per-request outcomes.
        """
        entries: list[dict] = []
        for shard, result in enumerate(self.shard_results):
            for entry in result.log():
                entries.append(dict(entry, shard=shard))
        return entries

    def log_json(self) -> str:
        """Canonical JSON of :meth:`log` — the fleet bit-identity surface."""
        return json.dumps(self.log(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of :meth:`log_json` (the determinism fingerprint)."""
        return hashlib.sha256(self.log_json().encode()).hexdigest()

    def counts(self) -> dict[str, int]:
        """Fleet-wide requests per terminal status (plus total offered)."""
        return self.merged().counts()


class FleetEngine:
    """N independent serving shards behind the deterministic router.

    Every shard gets its own :class:`ServingEngine` over the *same*
    detector objects (read-only at serve time, so sharing is safe) and
    the same :class:`ServeConfig`.  ``workers`` parallelizes across
    shards — each shard engine runs single-worker inside its process, so
    the process tree stays flat and the per-shard logs are what a lone
    engine would have produced for that shard's clients.
    """

    def __init__(
        self,
        detector: SPOD | None = None,
        config: FleetConfig | None = None,
        workers: int | None = None,
        detectors: dict[str, SPOD] | None = None,
    ) -> None:
        self.config = config or FleetConfig()
        self.workers = resolve_workers(workers)
        self.shards = [
            ServingEngine(
                detector=detector,
                config=self.config.shard_config,
                workers=1,
                detectors=detectors,
            )
            for _ in range(self.config.num_shards)
        ]

    def route(self, client: str) -> int:
        """Shard index serving ``client``."""
        return route_client(
            self.config.routing_seed, client, self.config.num_shards
        )

    def serve(
        self,
        requests: list[PerceptionRequest],
        lost: list[PerceptionRequest] = (),
        closed_loop: list = (),
    ) -> FleetResult:
        """Serve one workload across the fleet.

        Open-loop requests, ingress-lost requests and closed-loop clients
        are all partitioned by the router; each shard then serves its
        slice exactly as a standalone engine would.  With ``workers > 1``
        shards run in parallel processes — the request log is unaffected
        because shards share no scheduling state.
        """
        wall_start = time.perf_counter()
        seed = self.config.routing_seed
        num_shards = self.config.num_shards
        assignments: dict[str, int] = {}

        def shard_of(client: str) -> int:
            shard = assignments.get(client)
            if shard is None:
                shard = route_client(seed, client, num_shards)
                assignments[client] = shard
            return shard

        shard_requests: list[list[PerceptionRequest]] = [
            [] for _ in range(num_shards)
        ]
        shard_lost: list[list[PerceptionRequest]] = [
            [] for _ in range(num_shards)
        ]
        shard_loops: list[list] = [[] for _ in range(num_shards)]
        for request in requests:
            shard_requests[shard_of(request.client)].append(request)
        for request in lost:
            shard_lost[shard_of(request.client)].append(request)
        for client in closed_loop:
            shard_loops[shard_of(client.client)].append(client)

        payloads = [
            (
                self.shards[shard],
                shard_requests[shard],
                shard_lost[shard],
                shard_loops[shard],
            )
            for shard in range(num_shards)
        ]
        use_pool = num_shards > 1 and self.workers > 1 and fork_available()
        if use_pool:
            pool = WorkerPool(
                min(self.workers, num_shards), chunk_size=1
            )
            try:
                outcomes = pool.map(_serve_shard_task, payloads)
            finally:
                pool.close()
            # The pool already merged each shard's profile into the
            # parent via its chunk snapshots; keep the per-shard copies
            # for the breakdown.
            shard_results = [result for result, _ in outcomes]
            shard_profiles = [profile for _, profile in outcomes]
        else:
            shard_results = []
            shard_profiles = []
            for payload in payloads:
                result, profile = _serve_shard_task(payload)
                shard_results.append(result)
                shard_profiles.append(profile)

        return FleetResult(
            shard_results=shard_results,
            assignments=assignments,
            config=self.config,
            wall_seconds=time.perf_counter() - wall_start,
            shard_profiles=shard_profiles,
        )


def _serve_shard_task(payload) -> tuple[ServeResult, dict]:
    """Serve one shard's slice and capture its exact profiler delta.

    Runs in a worker process (or inline).  The dance mirrors the worker
    pool's chunk accounting: save whatever the ambient registry already
    holds, record the shard against a clean registry, then restore
    ambient + shard so the process-local registry is exactly what it
    would have been without the detour.  Inline, the parent registry ends
    up with the shard merged once; under the pool, the worker's chunk
    snapshot (which the pool merges into the parent) equals ambient +
    shard, again exactly once.
    """
    engine, shard_requests, shard_lost, shard_loops = payload
    if not PROFILER.enabled:
        result = engine.serve(
            shard_requests, lost=shard_lost, closed_loop=shard_loops
        )
        return result, {}
    ambient = PROFILER.snapshot()
    PROFILER.reset()
    try:
        result = engine.serve(
            shard_requests, lost=shard_lost, closed_loop=shard_loops
        )
        shard_profile = PROFILER.snapshot()
    finally:
        PROFILER.reset()
        PROFILER.merge_snapshot(ambient)
    PROFILER.merge_snapshot(shard_profile)
    return result, shard_profile
