"""Bounded deterministic priority queue — the engine's admission surface.

Admission control is where an overloaded serving system either stays
bounded or collapses: the queue has a hard capacity, and when it is full
an arriving request must either displace the worst queued request or be
rejected on the spot (backpressure to the client).  Every decision here
is a pure function of the queue contents and the incoming request — no
clocks, no randomness — so admission outcomes are identical in every
process.

Ordering is total and documented: requests are served in

``(-priority, deadline_ms, arrival_ms, request_id)``

order — higher priority first, then earlier deadline (EDF within a
priority class), then earlier arrival, with the dense ``request_id``
breaking any remaining tie.  Since request ids are unique, no two queued
requests ever compare equal.
"""

from __future__ import annotations

from bisect import insort

from repro.serve.requests import PerceptionRequest

__all__ = ["request_sort_key", "BoundedPriorityQueue"]


def request_sort_key(request: PerceptionRequest) -> tuple:
    """The total service order: priority desc, EDF, arrival, id."""
    return (
        -request.priority,
        request.deadline_ms,
        request.arrival_ms,
        request.request_id,
    )


class BoundedPriorityQueue:
    """A capacity-bounded queue served in :func:`request_sort_key` order.

    Internally a sorted list of ``(key, request)`` pairs — queue depths
    in this engine are tens, not millions, so ``bisect.insort`` beats a
    heap on simplicity and gives free ordered iteration.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.capacity = capacity
        self._entries: list[tuple[tuple, PerceptionRequest]] = []
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._entries)

    def offer(
        self, request: PerceptionRequest
    ) -> tuple[bool, PerceptionRequest | None]:
        """Try to admit ``request``; returns ``(admitted, displaced)``.

        When full, the incoming request displaces the *worst* queued
        request only if it would be served before it; otherwise the
        incoming request itself is refused.  Exactly one request loses in
        the full case, and it is returned (or implied by
        ``admitted=False``) so the engine can record the rejection.
        """
        key = request_sort_key(request)
        if len(self._entries) >= self.capacity:
            worst_key, worst = self._entries[-1]
            if key >= worst_key:
                return False, None
            self._entries.pop()
            insort(self._entries, (key, request))
            return True, worst
        insort(self._entries, (key, request))
        if len(self._entries) > self.max_depth:
            self.max_depth = len(self._entries)
        return True, None

    def head(self) -> PerceptionRequest:
        """The next request in service order (queue must be non-empty)."""
        return self._entries[0][1]

    def oldest_arrival_ms(self) -> float:
        """Earliest arrival among queued requests (batch-window anchor).

        An empty queue has no oldest arrival; asking for one is a caller
        bug (the engine checks depth first), so fail loudly instead of
        letting ``min()`` raise an opaque error.
        """
        if not self._entries:
            raise ValueError("empty queue has no oldest arrival")
        return min(entry[1].arrival_ms for entry in self._entries)

    def pop_matching(
        self, predicate, limit: int
    ) -> list[PerceptionRequest]:
        """Pop up to ``limit`` requests satisfying ``predicate``, in order.

        Requests that do not match keep their queue positions — a burst of
        ROI crops cannot be silently consumed by a detector batch, and a
        mixed-fleet detect batch cannot swallow requests bound for an
        incompatible detector.
        """
        taken: list[PerceptionRequest] = []
        kept: list[tuple[tuple, PerceptionRequest]] = []
        for entry in self._entries:
            if len(taken) < limit and predicate(entry[1]):
                taken.append(entry[1])
            else:
                kept.append(entry)
        self._entries = kept
        return taken

    def pop_class(
        self, service_class: str, limit: int
    ) -> list[PerceptionRequest]:
        """Pop up to ``limit`` requests of one service class, in order."""
        return self.pop_matching(
            lambda request: request.kind.service_class == service_class, limit
        )
