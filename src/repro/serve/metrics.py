"""Aggregation of serve runs into SLO-grade metrics.

Turns a :class:`~repro.serve.engine.ServeResult` into the numbers a
serving system is judged by — sustained throughput, p50/p95/p99 latency,
shed and rejection rates, batch occupancy — plus the wall-clock-derived
sustained service rate the benchmark uses to compare dynamic batching
against per-request dispatch.  Percentiles use the nearest-rank method
(a sorted-list index, no interpolation), so they are exact functions of
the latency multiset and stay bit-identical across worker counts.

:func:`build_fleet_report` aggregates a sharded
:class:`~repro.serve.fleet.FleetResult` the same way: fleet-wide metrics
come from the merged record stream (latency percentiles over the whole
fleet, not an average of per-shard percentiles — percentiles do not
average), with a per-shard breakdown alongside.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.serve.engine import ServeResult
from repro.serve.requests import RequestStatus

__all__ = [
    "percentile",
    "build_report",
    "build_fleet_report",
    "render_report",
    "render_fleet_report",
]


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0 when empty).

    ``fraction`` is in [0, 1]; the nearest-rank definition returns the
    smallest value with at least ``fraction`` of the mass at or below it:
    rank ``ceil(n * fraction)`` (1-based), clamped to at least 1 so
    ``fraction=0`` means the minimum.

    The rank is computed in exact arithmetic — ``fraction`` is taken at
    its decimal face value (``Fraction(str(fraction))``) rather than its
    binary float expansion, and the product ``n * fraction`` never goes
    through floating point.  The float version (``ceil(n * fraction)``
    via ``-(-n * f // 1)``) lands one rank high whenever the product
    picks up an upward representation error: ``25 * 0.28`` is
    ``7.000000000000001`` in binary, so the float ceil says rank 8 where
    the nearest-rank definition says 7.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(len(ordered) * Fraction(str(fraction))))
    return float(ordered[rank - 1])


def build_report(result: ServeResult, duration_ms: float) -> dict:
    """JSON-ready metrics of one serve run.

    ``duration_ms`` is the workload's offered window, used for the
    offered-rate and virtual-throughput denominators.  Completed-request
    latencies are virtual-clock; ``sustained_rps_wall`` divides completed
    requests by the *measured* service wall-clock — the hardware-honest
    throughput number (single-lane equivalent).

    ``queue_wait_ms`` covers **completed** requests only: shed requests
    also carry a ``queue_ms`` (how long they sat before the engine gave
    up on them), but mixing the two regimes would let shed waits inflate
    the served-path queue percentiles exactly when the system is under
    the overload the report is meant to diagnose.  Shed waits are
    reported separately as ``shed_wait_ms``.
    """
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    counts = result.counts()
    latencies = [
        record.latency_ms
        for record in result.records
        if record.status is RequestStatus.COMPLETED
    ]
    queue_waits = [
        record.queue_ms
        for record in result.records
        if record.status is RequestStatus.COMPLETED and record.queue_ms >= 0
    ]
    shed_waits = [
        record.queue_ms
        for record in result.records
        if record.status is RequestStatus.SHED_DEADLINE and record.queue_ms >= 0
    ]
    met = sum(
        1
        for record in result.records
        if record.status is RequestStatus.COMPLETED and record.deadline_met
    )
    occupancies = [batch.size for batch in result.batches]
    duration_s = duration_ms / 1000.0
    completed = counts["completed"]
    return {
        "offered": counts["offered"],
        "completed": completed,
        "shed_deadline": counts["shed_deadline"],
        "rejected_queue_full": counts["rejected_queue_full"],
        "lost_ingress": counts["lost_ingress"],
        "failed_shard_down": counts["failed_shard_down"],
        "shed_brownout": counts["shed_brownout"],
        "availability": (
            completed / counts["offered"] if counts["offered"] else 1.0
        ),
        "offered_rps": counts["offered"] / duration_s,
        "throughput_rps": completed / duration_s,
        "shed_rate": (
            (counts["shed_deadline"] + counts["rejected_queue_full"])
            / counts["offered"]
            if counts["offered"]
            else 0.0
        ),
        "deadline_hit_rate": met / completed if completed else 0.0,
        "latency_ms": {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "max": max(latencies) if latencies else 0.0,
        },
        "queue_wait_ms": {
            "p50": percentile(queue_waits, 0.50),
            "p99": percentile(queue_waits, 0.99),
            "max": max(queue_waits) if queue_waits else 0.0,
        },
        "shed_wait_ms": {
            "p50": percentile(shed_waits, 0.50),
            "max": max(shed_waits) if shed_waits else 0.0,
        },
        "batches": len(result.batches),
        "batch_occupancy": {
            "mean": (
                sum(occupancies) / len(occupancies) if occupancies else 0.0
            ),
            "max": max(occupancies) if occupancies else 0,
        },
        "max_queue_depth": result.max_queue_depth,
        "max_lanes_used": result.max_lanes_used,
        "lane_scale_events": len(result.lane_events),
        "service_wall_seconds": result.service_wall_seconds,
        "sustained_rps_wall": (
            completed / result.service_wall_seconds
            if result.service_wall_seconds > 0
            else 0.0
        ),
    }


def build_fleet_report(fleet_result, duration_ms: float) -> dict:
    """JSON-ready metrics of one fleet run (fleet-wide + per shard).

    Fleet-wide numbers are computed over the merged record stream —
    building them from per-shard reports would average percentiles,
    which is statistically meaningless.  The per-shard list preserves
    shard order (shard index = list index).
    """
    merged = build_report(fleet_result.merged(), duration_ms)
    shards = [
        build_report(result, duration_ms)
        for result in fleet_result.shard_results
    ]
    merged["num_shards"] = len(shards)
    merged["shards"] = shards
    merged["clients_per_shard"] = [
        len(clients) for clients in fleet_result.shard_clients()
    ]
    routing = getattr(fleet_result, "routing", None)
    if routing:
        merged["routing"] = dict(routing)
    fault_events = sum(
        len(result.fault_events) for result in fleet_result.shard_results
    )
    if fault_events:
        merged["shard_fault_events"] = fault_events
    return merged


def render_report(report: dict) -> str:
    """Human-readable summary of a :func:`build_report` dict."""
    latency = report["latency_ms"]
    occupancy = report["batch_occupancy"]
    lines = [
        f"offered    : {report['offered']:5d}  "
        f"({report['offered_rps']:.1f} req/s)",
        f"completed  : {report['completed']:5d}  "
        f"({report['throughput_rps']:.1f} req/s, "
        f"SLO hit {report['deadline_hit_rate'] * 100.0:.1f}%)",
        f"shed       : {report['shed_deadline']:5d} deadline, "
        f"{report['rejected_queue_full']} queue-full, "
        f"{report['lost_ingress']} ingress-lost "
        f"(shed rate {report['shed_rate'] * 100.0:.1f}%)",
        f"latency ms : p50 {latency['p50']:7.1f}  p95 {latency['p95']:7.1f}  "
        f"p99 {latency['p99']:7.1f}  max {latency['max']:7.1f}",
        f"batching   : {report['batches']} dispatches, occupancy "
        f"mean {occupancy['mean']:.2f} / max {occupancy['max']}, "
        f"queue depth max {report['max_queue_depth']}",
        f"wall       : {report['service_wall_seconds']:.2f}s service compute "
        f"-> {report['sustained_rps_wall']:.1f} req/s sustained",
    ]
    if report.get("max_lanes_used", 1) > 1 or report.get("lane_scale_events"):
        lines.append(
            f"lanes      : peak {report['max_lanes_used']} "
            f"({report['lane_scale_events']} scale events)"
        )
    if report.get("failed_shard_down") or report.get("shed_brownout"):
        lines.append(
            f"resilience : {report['failed_shard_down']} shard-down "
            f"failures, {report['shed_brownout']} brownout sheds, "
            f"availability {report['availability'] * 100.0:.1f}%"
        )
    return "\n".join(lines)


def render_fleet_report(report: dict) -> str:
    """Human-readable summary of a :func:`build_fleet_report` dict."""
    lines = [
        f"fleet      : {report['num_shards']} shards, clients/shard "
        f"{report['clients_per_shard']}",
        render_report(report),
    ]
    if report.get("routing"):
        routing = report["routing"]
        lines.append(
            f"routing    : {routing['retries']} retries, "
            f"{routing['failovers']} failovers, "
            f"{routing['moved_clients']} moved clients, "
            f"{routing['hedges_issued']} hedges "
            f"({routing['hedges_cancelled']} deduped), "
            f"{routing['unrouted']} unrouted"
        )
    for index, shard in enumerate(report["shards"]):
        lines.append(
            f"  shard {index}: offered {shard['offered']:5d}  "
            f"completed {shard['completed']:5d}  "
            f"p95 {shard['latency_ms']['p95']:7.1f} ms  "
            f"shed {shard['shed_rate'] * 100.0:.1f}%"
        )
    return "\n".join(lines)
