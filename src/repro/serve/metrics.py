"""Aggregation of serve runs into SLO-grade metrics.

Turns a :class:`~repro.serve.engine.ServeResult` into the numbers a
serving system is judged by — sustained throughput, p50/p95/p99 latency,
shed and rejection rates, batch occupancy — plus the wall-clock-derived
sustained service rate the benchmark uses to compare dynamic batching
against per-request dispatch.  Percentiles use the nearest-rank method
(a sorted-list index, no interpolation), so they are exact functions of
the latency multiset and stay bit-identical across worker counts.
"""

from __future__ import annotations

from repro.serve.engine import ServeResult
from repro.serve.requests import RequestStatus

__all__ = ["percentile", "build_report", "render_report"]


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0 when empty).

    ``fraction`` is in [0, 1]; the nearest-rank definition returns the
    smallest value with at least ``fraction`` of the mass at or below it.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * fraction // 1))  # ceil without math
    return float(ordered[int(rank) - 1])


def build_report(result: ServeResult, duration_ms: float) -> dict:
    """JSON-ready metrics of one serve run.

    ``duration_ms`` is the workload's offered window, used for the
    offered-rate and virtual-throughput denominators.  Completed-request
    latencies are virtual-clock; ``sustained_rps_wall`` divides completed
    requests by the *measured* service wall-clock — the hardware-honest
    throughput number (single-lane equivalent).
    """
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    counts = result.counts()
    latencies = [
        record.latency_ms
        for record in result.records
        if record.status is RequestStatus.COMPLETED
    ]
    queue_waits = [
        record.queue_ms for record in result.records if record.queue_ms >= 0
    ]
    met = sum(
        1
        for record in result.records
        if record.status is RequestStatus.COMPLETED and record.deadline_met
    )
    occupancies = [batch.size for batch in result.batches]
    duration_s = duration_ms / 1000.0
    completed = counts["completed"]
    return {
        "offered": counts["offered"],
        "completed": completed,
        "shed_deadline": counts["shed_deadline"],
        "rejected_queue_full": counts["rejected_queue_full"],
        "lost_ingress": counts["lost_ingress"],
        "offered_rps": counts["offered"] / duration_s,
        "throughput_rps": completed / duration_s,
        "shed_rate": (
            (counts["shed_deadline"] + counts["rejected_queue_full"])
            / counts["offered"]
            if counts["offered"]
            else 0.0
        ),
        "deadline_hit_rate": met / completed if completed else 0.0,
        "latency_ms": {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "max": max(latencies) if latencies else 0.0,
        },
        "queue_wait_ms": {
            "p50": percentile(queue_waits, 0.50),
            "p99": percentile(queue_waits, 0.99),
            "max": max(queue_waits) if queue_waits else 0.0,
        },
        "batches": len(result.batches),
        "batch_occupancy": {
            "mean": (
                sum(occupancies) / len(occupancies) if occupancies else 0.0
            ),
            "max": max(occupancies) if occupancies else 0,
        },
        "max_queue_depth": result.max_queue_depth,
        "service_wall_seconds": result.service_wall_seconds,
        "sustained_rps_wall": (
            completed / result.service_wall_seconds
            if result.service_wall_seconds > 0
            else 0.0
        ),
    }


def render_report(report: dict) -> str:
    """Human-readable summary of a :func:`build_report` dict."""
    latency = report["latency_ms"]
    occupancy = report["batch_occupancy"]
    lines = [
        f"offered    : {report['offered']:5d}  "
        f"({report['offered_rps']:.1f} req/s)",
        f"completed  : {report['completed']:5d}  "
        f"({report['throughput_rps']:.1f} req/s, "
        f"SLO hit {report['deadline_hit_rate'] * 100.0:.1f}%)",
        f"shed       : {report['shed_deadline']:5d} deadline, "
        f"{report['rejected_queue_full']} queue-full, "
        f"{report['lost_ingress']} ingress-lost "
        f"(shed rate {report['shed_rate'] * 100.0:.1f}%)",
        f"latency ms : p50 {latency['p50']:7.1f}  p95 {latency['p95']:7.1f}  "
        f"p99 {latency['p99']:7.1f}  max {latency['max']:7.1f}",
        f"batching   : {report['batches']} dispatches, occupancy "
        f"mean {occupancy['mean']:.2f} / max {occupancy['max']}, "
        f"queue depth max {report['max_queue_depth']}",
        f"wall       : {report['service_wall_seconds']:.2f}s service compute "
        f"-> {report['sustained_rps_wall']:.1f} req/s sustained",
    ]
    return "\n".join(lines)
