"""Deterministic perception serving for the Cooper reproduction.

The ROADMAP's end-game is many connected vehicles continuously asking a
shared edge service for fused detections — a *serving* problem.  This
package is that layer: an event-driven, virtual-clock engine that takes
concurrent perception requests from simulated client vehicles and turns
them into scheduled, batched, SLO-tracked work on the SPOD pipeline —
and, at fleet scale, shards that engine behind a deterministic router.

* :class:`~repro.serve.requests.PerceptionRequest` /
  :class:`~repro.serve.requests.RequestRecord` — the three request kinds
  (detect, fuse+detect, ROI answer) and their audited lifecycle.
* :class:`~repro.serve.queues.BoundedPriorityQueue` — admission control:
  bounded depth, documented total order, displace-or-refuse backpressure.
* :class:`~repro.serve.engine.ServingEngine` — dynamic batching into
  :meth:`~repro.detection.spod.SPOD.detect_batch` (heterogeneous
  detectors co-batch only when
  :meth:`~repro.detection.spod.SPOD.equivalent_to`), deadline-based load
  shedding, queue-depth lane autoscaling, optional fusion fan-out over
  :mod:`repro.runtime` workers.
* :class:`~repro.serve.fleet.FleetEngine` — N independent engine shards
  behind a :func:`~repro.serve.fleet.route_client` hash router (pure
  function of the routing seed; reshard-stable range partition).
* :mod:`~repro.serve.workload` — seeded load generation: open-loop
  Poisson-like arrivals (bursts, priority mixes, ingress channel faults)
  plus closed-loop platooning clients that wait for a reply before
  re-issuing.
* :mod:`~repro.serve.metrics` — p50/p95/p99 latency, throughput, shed
  rates, batch occupancy; fleet-wide + per-shard aggregation.

Resilience (PR 8): a seeded
:class:`~repro.faults.serve.ShardFaultPlan` injects shard crash/restart
windows, brownout service inflation, and bursty ingress drop; the fleet
router answers with a health-aware failover pass
(:func:`~repro.serve.fleet.fallback_chain` + per-shard breakers),
seeded-backoff retries and deduplicated hedges
(:class:`~repro.serve.fleet.FailoverConfig`), and the engine degrades
hysteretically under queue pressure (brownout shedding + a shrunken
batching window).

Determinism contract: the request log of
:meth:`~repro.serve.engine.ServingEngine.serve` (and the shard-tagged
fleet log of :meth:`~repro.serve.fleet.FleetEngine.serve`) is a pure
function of ``(seed, workload spec, engine config)`` — bit-identical at
any worker count, **including under injected shard faults** — because
every scheduling and routing decision runs parent-side on the virtual
clock, and the work fanned out to workers is pure.
"""

from __future__ import annotations

from repro.faults.serve import ShardFaultEvent, ShardFaultPlan, ShardFaultView
from repro.serve.engine import (
    BatchRecord,
    ServeConfig,
    ServeResult,
    ServiceModel,
    ServingEngine,
)
from repro.serve.fleet import (
    FailoverConfig,
    FleetConfig,
    FleetEngine,
    FleetResult,
    fallback_chain,
    hash_bucket,
    route_bucket,
    route_client,
)
from repro.serve.metrics import (
    build_fleet_report,
    build_report,
    percentile,
    render_fleet_report,
    render_report,
)
from repro.serve.queues import BoundedPriorityQueue, request_sort_key
from repro.serve.requests import (
    PerceptionRequest,
    RequestKind,
    RequestRecord,
    RequestStatus,
)
from repro.serve.workload import (
    CLOSED_LOOP_ID_BASE,
    CLOSED_LOOP_ID_STRIDE,
    ClosedLoopClient,
    ClosedLoopSpec,
    PoolEntry,
    ScenarioPool,
    WorkloadSpec,
    apply_ingress_loss,
    generate_workload,
    make_closed_loop_clients,
)

__all__ = [
    "BatchRecord",
    "BoundedPriorityQueue",
    "CLOSED_LOOP_ID_BASE",
    "CLOSED_LOOP_ID_STRIDE",
    "ClosedLoopClient",
    "ClosedLoopSpec",
    "FailoverConfig",
    "FleetConfig",
    "FleetEngine",
    "FleetResult",
    "PerceptionRequest",
    "PoolEntry",
    "RequestKind",
    "RequestRecord",
    "RequestStatus",
    "ScenarioPool",
    "ServeConfig",
    "ServeResult",
    "ServiceModel",
    "ServingEngine",
    "ShardFaultEvent",
    "ShardFaultPlan",
    "ShardFaultView",
    "WorkloadSpec",
    "apply_ingress_loss",
    "build_fleet_report",
    "build_report",
    "fallback_chain",
    "generate_workload",
    "hash_bucket",
    "make_closed_loop_clients",
    "percentile",
    "render_fleet_report",
    "render_report",
    "request_sort_key",
    "route_bucket",
    "route_client",
]
