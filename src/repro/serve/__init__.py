"""Deterministic perception serving for the Cooper reproduction.

The ROADMAP's end-game is many connected vehicles continuously asking a
shared edge service for fused detections — a *serving* problem.  This
package is that layer: an event-driven, virtual-clock engine that takes
concurrent perception requests from simulated client vehicles and turns
them into scheduled, batched, SLO-tracked work on the SPOD pipeline.

* :class:`~repro.serve.requests.PerceptionRequest` /
  :class:`~repro.serve.requests.RequestRecord` — the three request kinds
  (detect, fuse+detect, ROI answer) and their audited lifecycle.
* :class:`~repro.serve.queues.BoundedPriorityQueue` — admission control:
  bounded depth, documented total order, displace-or-refuse backpressure.
* :class:`~repro.serve.engine.ServingEngine` — dynamic batching into
  :meth:`~repro.detection.spod.SPOD.detect_batch`, deadline-based load
  shedding, optional fusion fan-out over :mod:`repro.runtime` workers.
* :mod:`~repro.serve.workload` — seeded open-loop load generation
  (Poisson-like arrivals, bursts, priority mixes, ingress channel
  faults).
* :mod:`~repro.serve.metrics` — p50/p95/p99 latency, throughput, shed
  rates, batch occupancy.

Determinism contract: the request log of
:meth:`~repro.serve.engine.ServingEngine.serve` is a pure function of
``(seed, workload spec, engine config)`` — bit-identical at any worker
count — because every scheduling decision runs on the virtual clock in
the parent process, and the work fanned out to workers is pure.
"""

from __future__ import annotations

from repro.serve.engine import (
    BatchRecord,
    ServeConfig,
    ServeResult,
    ServiceModel,
    ServingEngine,
)
from repro.serve.metrics import build_report, percentile, render_report
from repro.serve.queues import BoundedPriorityQueue, request_sort_key
from repro.serve.requests import (
    PerceptionRequest,
    RequestKind,
    RequestRecord,
    RequestStatus,
)
from repro.serve.workload import (
    PoolEntry,
    ScenarioPool,
    WorkloadSpec,
    apply_ingress_loss,
    generate_workload,
)

__all__ = [
    "BatchRecord",
    "BoundedPriorityQueue",
    "PerceptionRequest",
    "PoolEntry",
    "RequestKind",
    "RequestRecord",
    "RequestStatus",
    "ScenarioPool",
    "ServeConfig",
    "ServeResult",
    "ServiceModel",
    "ServingEngine",
    "WorkloadSpec",
    "apply_ingress_loss",
    "build_report",
    "generate_workload",
    "percentile",
    "render_report",
    "request_sort_key",
]
