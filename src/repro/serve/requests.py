"""Request and record types of the perception serving engine.

A :class:`PerceptionRequest` is one client vehicle's question to the
edge perception service, stamped onto the engine's *virtual clock*
(milliseconds since the workload epoch).  Three kinds exist, mirroring
the three ways a Cooper vehicle consumes remote compute:

* ``DETECT`` — run SPOD on one cloud (the offload case: a vehicle ships
  its scan and wants boxes back).
* ``FUSE_DETECT`` — align + merge cooperator packages into the native
  scan (Eq. 1-3), then detect on the cooperative cloud.
* ``ROI_ANSWER`` — answer a demand-driven :class:`~repro.network.demand.
  RoiRequest` by cropping a cooperator's cloud to the requested regions.

A :class:`RequestRecord` is the engine's authoritative account of what
happened to one request.  Its :meth:`RequestRecord.log_entry` projection
contains only virtual-clock and outcome fields — no wall-clock — which is
the surface the determinism contract covers: the same (seed, workload
spec) must produce bit-identical log entries at any worker count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.fusion.package import ExchangePackage
from repro.geometry.transforms import Pose
from repro.network.demand import RoiRequest
from repro.pointcloud.cloud import PointCloud

__all__ = [
    "RequestKind",
    "RequestStatus",
    "PerceptionRequest",
    "RequestRecord",
]


class RequestKind(enum.Enum):
    """What a client is asking the serving engine to compute."""

    DETECT = "detect"
    FUSE_DETECT = "fuse_detect"
    ROI_ANSWER = "roi_answer"

    @property
    def service_class(self) -> str:
        """Batching compatibility class.

        ``DETECT`` and ``FUSE_DETECT`` both end in a detector pass over
        one cloud each, so they coalesce into the same
        :meth:`~repro.detection.spod.SPOD.detect_batch` dispatch;
        ``ROI_ANSWER`` is pure geometry (no detector) and batches only
        with its own kind.
        """
        return "roi" if self is RequestKind.ROI_ANSWER else "detect"


class RequestStatus(enum.Enum):
    """Terminal outcome of one request."""

    COMPLETED = "completed"
    SHED_DEADLINE = "shed_deadline"
    REJECTED_QUEUE_FULL = "rejected_queue_full"
    LOST_INGRESS = "lost_ingress"
    FAILED_SHARD_DOWN = "failed_shard_down"
    SHED_BROWNOUT = "shed_brownout"


@dataclass(frozen=True)
class PerceptionRequest:
    """One client's perception request on the virtual clock.

    Attributes:
        request_id: dense index assigned in (arrival, client) order by the
            workload generator — the deterministic identity every log and
            tie-break keys on.
        client: requesting vehicle's name.
        kind: what to compute.
        arrival_ms: virtual arrival time at the service ingress.
        deadline_ms: absolute virtual deadline; a response completing
            after it missed its SLO, and the engine sheds requests that
            provably cannot meet it.
        priority: higher is served first under contention (safety-path
            requests over bulk refreshes).
        model: name of the detector model the client's fleet runs.  The
            engine maps it to one of its detectors and co-batches only
            requests whose detectors are interchangeable
            (:meth:`~repro.detection.spod.SPOD.equivalent_to`).
        cloud: the native cloud (DETECT / FUSE_DETECT) or the cooperator
            cloud to crop (ROI_ANSWER).
        pose: the receiver's measured pose (FUSE_DETECT) or the
            cooperator's pose (ROI_ANSWER); unused for DETECT.
        packages: cooperator exchange packages to fuse (FUSE_DETECT).
        roi: the demand-driven region request (ROI_ANSWER).
    """

    request_id: int
    client: str
    kind: RequestKind
    arrival_ms: float
    deadline_ms: float
    priority: int = 0
    cloud: PointCloud | None = None
    pose: Pose | None = None
    packages: tuple[ExchangePackage, ...] = ()
    roi: RoiRequest | None = None
    model: str = "default"

    def __post_init__(self) -> None:
        object.__setattr__(self, "packages", tuple(self.packages))
        if self.arrival_ms < 0:
            raise ValueError("arrival_ms must be non-negative")
        if self.deadline_ms <= self.arrival_ms:
            raise ValueError("deadline_ms must be after arrival_ms")
        if self.cloud is None:
            raise ValueError(f"{self.kind.value} request needs a cloud")
        if self.kind is RequestKind.FUSE_DETECT and self.pose is None:
            raise ValueError("fuse_detect request needs the receiver pose")
        if self.kind is RequestKind.ROI_ANSWER and (
            self.roi is None or self.pose is None
        ):
            raise ValueError("roi_answer request needs roi + cooperator pose")

    @property
    def num_points(self) -> int:
        """Total points the request carries (the service-cost driver)."""
        total = len(self.cloud)
        for package in self.packages:
            total += len(package.cloud)
        return total


@dataclass
class RequestRecord:
    """The engine's account of one request's lifecycle.

    Virtual-clock fields (``*_ms``) and outcome fields are part of the
    determinism contract; ``wall_service_seconds`` is real measured time
    and deliberately excluded from :meth:`log_entry`.

    Attributes:
        request_id / client / kind / priority / model / arrival_ms /
            deadline_ms: echoed from the request.
        status: terminal outcome (None while in flight).
        decided_ms: when the terminal decision fell (rejection time,
            shed time, or completion time).
        dispatch_ms: when the request's batch started service.
        queue_ms: time spent queued (dispatch - arrival).
        service_ms: virtual service time of its batch.
        latency_ms: completion - arrival (completed requests only).
        deadline_met: completed at or before the deadline.
        batch_id: which dispatch served it (-1 when never dispatched).
        batch_size: how many requests shared that dispatch.
        num_results: detections returned (detect kinds) or reply points
            (ROI_ANSWER).
        attempts: delivery attempts the router made (1 without faults).
        failovers: how many times the request moved past its primary
            shard in the fallback chain (0 = served at home).
        wall_service_seconds: measured wall-clock share of its batch's
            real compute (observability only — never in the log).
    """

    request_id: int
    client: str
    kind: RequestKind
    priority: int
    arrival_ms: float
    deadline_ms: float
    model: str = "default"
    status: RequestStatus | None = None
    decided_ms: float = -1.0
    dispatch_ms: float = -1.0
    queue_ms: float = -1.0
    service_ms: float = -1.0
    latency_ms: float = -1.0
    deadline_met: bool = False
    batch_id: int = -1
    batch_size: int = 0
    num_results: int = 0
    attempts: int = 1
    failovers: int = 0
    wall_service_seconds: float = field(default=0.0, repr=False)

    @classmethod
    def for_request(cls, request: PerceptionRequest) -> "RequestRecord":
        """A fresh in-flight record echoing the request's identity."""
        return cls(
            request_id=request.request_id,
            client=request.client,
            kind=request.kind,
            priority=request.priority,
            model=request.model,
            arrival_ms=request.arrival_ms,
            deadline_ms=request.deadline_ms,
        )

    def log_entry(self) -> dict:
        """The determinism-covered projection of this record.

        Virtual times are rounded to nanosecond-of-virtual-time precision
        (6 decimals of a millisecond) purely to make the JSON stable to
        the eye; the underlying floats are already bit-identical across
        worker counts because every one of them is computed parent-side.
        """
        return {
            "id": self.request_id,
            "client": self.client,
            "kind": self.kind.value,
            "priority": self.priority,
            "model": self.model,
            "arrival_ms": round(self.arrival_ms, 6),
            "deadline_ms": round(self.deadline_ms, 6),
            "status": self.status.value if self.status else "in_flight",
            "decided_ms": round(self.decided_ms, 6),
            "dispatch_ms": round(self.dispatch_ms, 6),
            "queue_ms": round(self.queue_ms, 6),
            "service_ms": round(self.service_ms, 6),
            "latency_ms": round(self.latency_ms, 6),
            "deadline_met": self.deadline_met,
            "batch_id": self.batch_id,
            "batch_size": self.batch_size,
            "num_results": self.num_results,
            "attempts": self.attempts,
            "failovers": self.failovers,
        }
