"""Synthetic T&J scenarios: 16-beam parking lots with distance-swept pairs.

The paper runs 15 cooperative experiments on the T&J dataset across four
parking-lot scenarios (Fig. 6), each pairing a test car with cooperators at
increasing separations.  We reproduce the same structure — 15 cases whose
delta-d values match the paper's annotations (5.5 ... 33.1 m) — over
procedurally generated lots of varying congestion.  Some cooperators sit in
a different aisle, giving the cross-row viewpoints that let fusion reveal
cars neither vehicle saw (the Fig. 5 effect).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import CooperativeCase, make_case
from repro.scene.layouts import parking_lot
from repro.sensors.lidar import VLP_16

__all__ = ["TJ_SCENARIOS", "tj_cases"]

# Per scenario: lot generation knobs + observer positions (x, y, yaw) +
# the (a, b, delta_d) pair list.  delta-d values follow paper Fig. 6.
TJ_SCENARIOS: dict[str, dict] = {
    "tj-1": {
        "lot": dict(seed=11, rows=3, cols=6, occupancy=0.70),
        "cars": {
            "car1": (0.0, 0.0, 0.0),
            "car2": (5.5, 0.0, 0.0),
            "car3": (14.5, 0.0, 0.0),
            "car4": (24.32, 11.5, np.pi),
        },
        "pairs": [("car1", "car2", 5.5), ("car1", "car3", 14.5), ("car1", "car4", 26.9)],
    },
    "tj-2": {
        "lot": dict(seed=12, rows=3, cols=7, occupancy=0.85),
        "cars": {
            "car1": (0.0, 0.0, 0.0),
            "car2": (15.0, 1.0, 0.0),
            "car3": (31.04, 11.5, np.pi),
            "car4": (13.1, 0.0, 0.0),
            "car5": (23.79, 11.5, np.pi),
        },
        "pairs": [
            ("car1", "car2", 15.03),
            ("car1", "car3", 33.1),
            ("car3", "car4", 20.02),
            ("car4", "car5", 15.7),
        ],
    },
    "tj-3": {
        "lot": dict(seed=13, rows=3, cols=6, occupancy=0.60),
        "cars": {
            "car1": (0.0, 0.0, 0.0),
            "car2": (4.8, 0.4, 0.0),
            "car3": (16.6, 0.0, 0.0),
            "car4": (18.52, 11.5, np.pi),
            "car5": (3.78, 0.0, 0.0),
        },
        "pairs": [
            ("car1", "car2", 4.82),
            ("car1", "car3", 16.6),
            ("car1", "car4", 21.8),
            ("car4", "car5", 18.7),
        ],
    },
    "tj-4": {
        "lot": dict(seed=14, rows=3, cols=8, occupancy=0.75),
        "cars": {
            "car1": (0.0, 0.0, 0.0),
            "car2": (3.9, 0.0, 0.0),
            "car3": (9.9, 0.0, 0.0),
            "car4": (15.7, 0.0, 0.0),
            "car5": (20.03, 11.5, np.pi),
        },
        "pairs": [
            ("car1", "car2", 3.9),
            ("car1", "car3", 9.9),
            ("car1", "car4", 15.7),
            ("car1", "car5", 23.1),
        ],
    },
}


def tj_cases(seed: int = 0) -> list[CooperativeCase]:
    """Build all 15 T&J cooperative cases (matching the paper's count)."""
    cases = []
    for s_index, (scenario, spec) in enumerate(TJ_SCENARIOS.items()):
        viewpoints = {
            name: tuple(position) for name, position in spec["cars"].items()
        }
        layout = parking_lot(viewpoint_offsets=viewpoints, **spec["lot"])
        for p_index, (a, b, _paper_dd) in enumerate(spec["pairs"]):
            poses = {a: layout.viewpoint(a), b: layout.viewpoint(b)}
            cases.append(
                make_case(
                    name=f"{scenario}/{a}+{b}",
                    scenario=scenario,
                    world=layout.world,
                    poses=poses,
                    receiver=a,
                    pattern=VLP_16,
                    seed=seed + 10_000 * s_index + 1_000 * p_index,
                )
            )
    return cases
