"""Synthetic stand-ins for the paper's two datasets.

KITTI and the authors' T&J recordings are not redistributable here, so we
generate procedurally what Cooper's evaluation actually consumes: pairs (or
small sets) of LiDAR scans of one scene taken from different poses, plus
ground truth.  ``synthetic_kitti`` mirrors the four 64-beam road scenarios
of Fig. 3 (T-junction, stop sign, left turn, curve, with the paper's
delta-d separations); ``tj`` mirrors the 16-beam parking-lot scenarios of
Fig. 6 with distance-swept cooperator pairs.
"""

from repro.datasets.base import CooperativeCase, make_case
from repro.datasets.synthetic_kitti import kitti_cases, KITTI_SCENARIOS
from repro.datasets.tj import tj_cases, TJ_SCENARIOS
from repro.datasets.safety import safety_cases, SAFETY_SCENARIOS

__all__ = [
    "CooperativeCase",
    "make_case",
    "kitti_cases",
    "KITTI_SCENARIOS",
    "tj_cases",
    "TJ_SCENARIOS",
    "safety_cases",
    "SAFETY_SCENARIOS",
]
