"""Cooperative-perception dataset primitives.

A :class:`CooperativeCase` is the unit the paper evaluates: one static
world observed by two (or more) vehicles, each contributing a LiDAR scan
and a measured GPS+IMU pose.  It carries everything the experiment
harness needs — per-observer clouds, exchange packages, and ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fusion.package import ExchangePackage
from repro.geometry.boxes import Box3D
from repro.geometry.transforms import Pose
from repro.scene.world import World
from repro.sensors.gps import GpsSkew
from repro.sensors.lidar import BeamPattern, LidarModel, VLP_16
from repro.sensors.rig import RigObservation, SensorRig

__all__ = ["CooperativeCase", "make_case"]


@dataclass
class CooperativeCase:
    """One evaluation unit: a world seen from several vehicle poses.

    Attributes:
        name: case identifier, e.g. ``"t_junction/t1+t2"``.
        scenario: scenario family ("t_junction", "parking_lot-2", ...).
        world: the shared static world.
        observations: observer name -> that vehicle's rig observation.
        receiver: which observer's frame hosts the cooperative cloud.
        delta_d: paper's distance between the two capture positions.
    """

    name: str
    scenario: str
    world: World
    observations: dict[str, RigObservation]
    receiver: str
    delta_d: float = 0.0

    def __post_init__(self) -> None:
        if self.receiver not in self.observations:
            raise ValueError(f"receiver {self.receiver!r} has no observation")

    @property
    def observer_names(self) -> list[str]:
        """Observers in insertion order (receiver included)."""
        return list(self.observations)

    def cloud_of(self, observer: str):
        """An observer's own cloud (its own sensor frame)."""
        return self.observations[observer].scan.cloud

    def packages_for_receiver(self) -> list[ExchangePackage]:
        """Exchange packages from every non-receiver observer."""
        return [
            ExchangePackage(
                cloud=obs.scan.cloud,
                pose=obs.measured_pose,
                sender=name,
                timestamp=0.0,
            )
            for name, obs in self.observations.items()
            if name != self.receiver
        ]

    def receiver_measured_pose(self) -> Pose:
        """The receiver's GPS+IMU pose estimate."""
        return self.observations[self.receiver].measured_pose

    def ground_truth_in(self, observer: str) -> list[Box3D]:
        """Ground-truth car boxes expressed in one observer's sensor frame."""
        to_sensor = self.observations[observer].true_pose.from_world()
        return [b.transformed(to_sensor) for b in self.world.target_boxes()]

    def ground_truth_names(self) -> list[str]:
        """Names of the ground-truth cars, aligned with the box lists."""
        return [a.name for a in self.world.targets()]


def make_case(
    name: str,
    scenario: str,
    world: World,
    poses: dict[str, Pose],
    receiver: str,
    pattern: BeamPattern = VLP_16,
    seed: int = 0,
    gps_skew: dict[str, GpsSkew] | None = None,
    dropout: float = 0.05,
) -> CooperativeCase:
    """Scan ``world`` from every pose and assemble a case.

    Each observer gets an independent sensor-noise seed; ``gps_skew`` maps
    observer names to Fig. 10 skew protocols (default: none).
    """
    gps_skew = gps_skew or {}
    observations: dict[str, RigObservation] = {}
    for index, (obs_name, pose) in enumerate(poses.items()):
        rig = SensorRig(
            lidar=LidarModel(pattern=pattern, dropout=dropout), name=obs_name
        )
        observations[obs_name] = rig.observe(
            world,
            pose,
            seed=seed + 1000 * index,
            gps_skew=gps_skew.get(obs_name, GpsSkew.NONE),
        )
    names = list(poses)
    delta_d = (
        float(np.linalg.norm(poses[names[0]].position - poses[names[1]].position))
        if len(names) >= 2
        else 0.0
    )
    return CooperativeCase(
        name=name,
        scenario=scenario,
        world=world,
        observations=observations,
        receiver=receiver,
        delta_d=delta_d,
    )
