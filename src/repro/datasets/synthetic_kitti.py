"""Synthetic KITTI-like scenarios: 64-beam, four road situations (Fig. 3).

Scenario 1 T-junction (delta-d 14.7 m), scenario 2 stop sign (13.3 m),
scenario 3 left turn (0 m — the same spot, two headings), scenario 4 curve
(48.1 m), matching the separations reported under the paper's Fig. 3.
"""

from __future__ import annotations

from repro.datasets.base import CooperativeCase, make_case
from repro.scene.layouts import Layout, curve, left_turn, stop_sign, t_junction
from repro.sensors.lidar import HDL_64E

__all__ = ["KITTI_SCENARIOS", "kitti_cases"]

#: scenario name -> (layout builder, observer names as in the paper)
KITTI_SCENARIOS: dict[str, tuple] = {
    "t_junction": (t_junction, ("t1", "t2")),
    "stop_sign": (stop_sign, ("t3", "t4")),
    "left_turn": (left_turn, ("t5", "t6")),
    "curve": (curve, ("t7", "t8")),
}


def kitti_cases(seed: int = 0) -> list[CooperativeCase]:
    """Build the four cooperative cases of the KITTI evaluation."""
    cases = []
    for index, (scenario, (builder, observers)) in enumerate(
        KITTI_SCENARIOS.items()
    ):
        layout: Layout = builder()
        poses = {name: layout.viewpoint(name) for name in observers}
        cases.append(
            make_case(
                name=f"{scenario}/{'+'.join(observers)}",
                scenario=scenario,
                world=layout.world,
                poses=poses,
                receiver=observers[0],
                pattern=HDL_64E,
                seed=seed + 10_000 * index,
            )
        )
    return cases
