"""Safety-scenario dataset: the paper's motivating incidents, evaluable.

Section I-A motivates Cooper with single-sensor crashes — a vehicle pulling
out against hidden oncoming traffic, a pedestrian crossing mid-block.  The
two corresponding scenarios (``highway_overtake``, ``crosswalk``) are
packaged here as standard :class:`CooperativeCase`s so the full evaluation
harness (grids, counts, difficulty, improvement CDF) runs on them exactly
like on the KITTI/T&J sets.
"""

from __future__ import annotations

from repro.datasets.base import CooperativeCase, make_case
from repro.scene.layouts import crosswalk, highway_overtake
from repro.sensors.lidar import HDL_64E

__all__ = ["SAFETY_SCENARIOS", "safety_cases"]

#: scenario name -> (layout builder, (receiver, cooperator)).
SAFETY_SCENARIOS: dict[str, tuple] = {
    "highway_overtake": (highway_overtake, ("follower", "helper")),
    "crosswalk": (crosswalk, ("approach", "opposite")),
}


def safety_cases(seed: int = 0) -> list[CooperativeCase]:
    """Build the two safety cases (64-beam, one cooperator each)."""
    cases = []
    for index, (scenario, (builder, observers)) in enumerate(
        SAFETY_SCENARIOS.items()
    ):
        layout = builder()
        poses = {name: layout.viewpoint(name) for name in observers}
        cases.append(
            make_case(
                name=f"{scenario}/{'+'.join(observers)}",
                scenario=scenario,
                world=layout.world,
                poses=poses,
                receiver=observers[0],
                pattern=HDL_64E,
                seed=seed + 20_000 * index,
            )
        )
    return cases
