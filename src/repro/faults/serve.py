"""Seeded shard-failure injection for the serving fleet.

PR 3 chaos-tests the perception *session* loop; this module does the
same for the serving tier (:mod:`repro.serve`).  A
:class:`ShardFaultPlan` is a complete seeded failure schedule for a
fleet of engine shards:

* **Crash/restart windows** — each shard crashes at seeded exponential
  intervals and stays down for a seeded duration.  A crash is total:
  queued requests are lost, in-flight batches die mid-service, and
  arrivals during the window are refused.
* **Brownout windows** — intervals where a shard still serves but its
  service times inflate by :attr:`ShardFaultPlan.brownout_factor`
  (thermal throttling, a noisy neighbour, a failing accelerator).
* **Gilbert-Elliott ingress drop** — the client→shard link loses
  request attempts in bursts, driven by the same two-state chain the
  DSRC exchange channel uses (:class:`~repro.faults.models.
  BurstLossModel`).

Everything is a pure function of ``(plan.seed, shard, virtual-time)``
via CRC-32 seed derivation (:func:`repro.runtime.derive_seed`): the
window lists are computed once per shard from a derived RNG stream, and
per-attempt ingress drops hash the ``(shard, request, attempt)``
triple.  The same plan therefore produces the same failure schedule in
every process and at every worker count — the precondition for the
fleet determinism contract to survive fault injection.

Like :class:`~repro.faults.plan.FaultPlan`, the plan never touches
serving objects; it only answers questions.  A :class:`ShardFaultView`
binds the plan to one shard index so a single
:class:`~repro.serve.engine.ServingEngine` can consume its own slice of
the schedule without knowing the fleet exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.models import BurstLossModel
from repro.faults.plan import parse_fault_spec
from repro.runtime import derive_seed

__all__ = ["ShardFaultEvent", "ShardFaultPlan", "ShardFaultView"]

#: Windows shorter than this are dropped — a zero-length window would
#: make "down at t" ambiguous at its own boundary.
_MIN_WINDOW_MS = 1e-6


@dataclass(frozen=True)
class ShardFaultEvent:
    """One scripted shard fault: a pinned crash or brownout window.

    Attributes:
        kind: ``"crash"`` or ``"brownout"``.
        start_ms: virtual start of the window.
        duration_ms: window length.
        shard: shard index, or ``-1`` for every shard.
    """

    kind: str
    start_ms: float
    duration_ms: float
    shard: int = -1

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "brownout"):
            raise ValueError(
                f"shard fault kind must be 'crash' or 'brownout', "
                f"got {self.kind!r}"
            )
        if self.start_ms < 0:
            raise ValueError("start_ms must be non-negative")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")

    def applies(self, shard: int) -> bool:
        """Does this event hit ``shard``?"""
        return self.shard in (-1, shard)


@dataclass(frozen=True)
class ShardFaultPlan:
    """A complete seeded failure schedule for a serving fleet.

    Attributes:
        seed: base seed every stochastic window derives from.
        horizon_ms: schedule length — windows are generated over
            ``[0, horizon_ms)``; queries past the horizon see no
            stochastic faults (scripted events still apply).
        crash_rate_per_min: expected crashes per shard per virtual
            minute (exponential inter-crash gaps).
        crash_duration_ms: ``(min, max)`` of the seeded uniform
            crash-window length.
        brownout_rate_per_min: expected brownouts per shard per minute.
        brownout_duration_ms: ``(min, max)`` brownout-window length.
        brownout_factor: service-time multiplier inside a brownout
            window (>= 1).
        ingress_burst: Gilbert-Elliott model of the client→shard link
            (None — no ingress loss).
        events: scripted windows on top of the stochastic schedule.
    """

    seed: int = 0
    horizon_ms: float = 60_000.0
    crash_rate_per_min: float = 0.0
    crash_duration_ms: tuple[float, float] = (200.0, 600.0)
    brownout_rate_per_min: float = 0.0
    brownout_duration_ms: tuple[float, float] = (300.0, 1200.0)
    brownout_factor: float = 2.5
    ingress_burst: BurstLossModel | None = None
    events: tuple[ShardFaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive")
        if self.crash_rate_per_min < 0 or self.brownout_rate_per_min < 0:
            raise ValueError("fault rates must be non-negative")
        for name in ("crash_duration_ms", "brownout_duration_ms"):
            lo, hi = getattr(self, name)
            if not 0 < lo <= hi:
                raise ValueError(f"{name} must satisfy 0 < min <= max")
        if self.brownout_factor < 1.0:
            raise ValueError("brownout_factor must be >= 1")
        object.__setattr__(self, "events", tuple(self.events))
        # Per-shard window cache: windows are pure functions of
        # (seed, shard), so memoising them is observationally invisible.
        object.__setattr__(self, "_window_cache", {})

    # -- window generation -------------------------------------------------
    def _stochastic_windows(
        self, shard: int, label: str, rate_per_min: float,
        duration_range: tuple[float, float],
    ) -> list[tuple[float, float]]:
        """Seeded exponential-gap windows over ``[0, horizon_ms)``."""
        if rate_per_min <= 0:
            return []
        rng = np.random.default_rng(derive_seed(self.seed, label, shard))
        mean_gap_ms = 60_000.0 / rate_per_min
        lo, hi = duration_range
        windows: list[tuple[float, float]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(mean_gap_ms))
            if t >= self.horizon_ms:
                return windows
            duration = lo + (hi - lo) * float(rng.random())
            windows.append((t, t + duration))
            t += duration

    def _windows(self, shard: int, kind: str) -> tuple[tuple[float, float], ...]:
        """Merged (stochastic + scripted) sorted disjoint windows."""
        cache = self._window_cache
        key = (shard, kind)
        if key in cache:
            return cache[key]
        if kind == "crash":
            windows = self._stochastic_windows(
                shard, "shard-crash", self.crash_rate_per_min,
                self.crash_duration_ms,
            )
        else:
            windows = self._stochastic_windows(
                shard, "shard-brownout", self.brownout_rate_per_min,
                self.brownout_duration_ms,
            )
        windows += [
            (event.start_ms, event.start_ms + event.duration_ms)
            for event in self.events
            if event.kind == kind and event.applies(shard)
        ]
        windows.sort()
        # Coalesce overlaps so "the window containing t" is unique.
        merged: list[tuple[float, float]] = []
        for start, end in windows:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            elif end - start > _MIN_WINDOW_MS:
                merged.append((start, end))
        cache[key] = tuple(merged)
        return cache[key]

    def crash_windows(self, shard: int) -> tuple[tuple[float, float], ...]:
        """Sorted disjoint ``[start, end)`` crash windows of one shard."""
        return self._windows(shard, "crash")

    def brownout_windows(self, shard: int) -> tuple[tuple[float, float], ...]:
        """Sorted disjoint ``[start, end)`` brownout windows of one shard."""
        return self._windows(shard, "brownout")

    # -- queries -----------------------------------------------------------
    def is_down(self, shard: int, t_ms: float) -> bool:
        """Is ``shard`` inside a crash window at ``t_ms``?

        Windows are start-inclusive, end-exclusive: a shard that crashes
        at ``t`` refuses the arrival at exactly ``t``, and the first
        arrival at the restart instant is served.
        """
        for start, end in self.crash_windows(shard):
            if start <= t_ms < end:
                return True
            if start > t_ms:
                return False
        return False

    def down_until(self, shard: int, t_ms: float) -> float | None:
        """End of the crash window covering ``t_ms`` (None when up)."""
        for start, end in self.crash_windows(shard):
            if start <= t_ms < end:
                return end
            if start > t_ms:
                return None
        return None

    def service_factor(self, shard: int, t_ms: float) -> float:
        """Service-time multiplier of one dispatch starting at ``t_ms``."""
        for start, end in self.brownout_windows(shard):
            if start <= t_ms < end:
                return self.brownout_factor
            if start > t_ms:
                break
        return 1.0

    def ingress_dropped(
        self, shard: int, request_id: int, attempt: int, t_ms: float
    ) -> bool:
        """Is one delivery attempt lost on the client→shard link?

        The link's Gilbert-Elliott chain advances one transition per
        virtual second (the exchange channel's cadence); the attempt's
        fate is a pure hash of ``(seed, shard, request_id, attempt)``,
        so retries of the same request face fresh, deterministic draws.
        """
        if self.ingress_burst is None:
            return False
        state = self.ingress_burst.state_at(
            derive_seed(self.seed, "shard-link", shard),
            int(t_ms // 1000.0),
        )
        rate = self.ingress_burst.loss_rate(state)
        if rate <= 0.0:
            return False
        rng = np.random.default_rng(
            derive_seed(self.seed, "shard-ingress", shard, request_id, attempt)
        )
        return bool(rng.random() < rate)

    def view(self, shard: int) -> "ShardFaultView":
        """This plan's schedule as seen by one shard."""
        return ShardFaultView(plan=self, shard=shard)

    # -- constructors ------------------------------------------------------
    @classmethod
    def none(cls) -> "ShardFaultPlan":
        """The empty plan: no shard ever fails."""
        return cls()

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "ShardFaultPlan":
        """Parse a CLI shard-fault spec.

        Comma-separated ``key=value`` entries (no presets), e.g.
        ``"crash-rate=2,crash-ms=400,ingress-loss=0.1"``.

        Keys: ``crash-rate`` / ``brownout-rate`` (windows per shard per
        minute), ``crash-ms`` / ``brownout-ms`` (window length — a fixed
        value or a ``lo:hi`` range to sample from),
        ``brownout-factor`` (service-time multiplier), ``ingress-loss``
        (target long-run client→shard loss), ``horizon`` (schedule
        length, ms), ``seed``.  Unknown keys are rejected with the valid
        set listed — the same contract as
        :meth:`~repro.faults.plan.FaultPlan.from_spec`, via the shared
        :func:`~repro.faults.plan.parse_fault_spec` parser.
        """
        valid_keys = (
            "crash-rate", "crash-ms", "brownout-rate", "brownout-ms",
            "brownout-factor", "ingress-loss", "horizon", "seed",
        )
        _, entries = parse_fault_spec(spec, valid_keys)

        def duration(raw: str) -> tuple[float, float]:
            lo, _, hi = raw.partition(":")
            return (float(lo), float(hi)) if hi else (float(lo), float(lo))

        kwargs: dict = {"seed": seed}
        for key, raw in entries:
            if key == "crash-ms":
                kwargs["crash_duration_ms"] = duration(raw)
                continue
            if key == "brownout-ms":
                kwargs["brownout_duration_ms"] = duration(raw)
                continue
            value = float(raw)
            if key == "crash-rate":
                kwargs["crash_rate_per_min"] = value
            elif key == "brownout-rate":
                kwargs["brownout_rate_per_min"] = value
            elif key == "brownout-factor":
                kwargs["brownout_factor"] = value
            elif key == "ingress-loss":
                kwargs["ingress_burst"] = BurstLossModel.for_target_loss(value)
            elif key == "horizon":
                kwargs["horizon_ms"] = value
            elif key == "seed":
                kwargs["seed"] = int(value)
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        bits = []
        if self.crash_rate_per_min > 0:
            lo, hi = self.crash_duration_ms
            bits.append(
                f"crashes {self.crash_rate_per_min:g}/min "
                f"({lo:g}-{hi:g} ms)"
            )
        if self.brownout_rate_per_min > 0:
            bits.append(
                f"brownouts {self.brownout_rate_per_min:g}/min "
                f"x{self.brownout_factor:g}"
            )
        if self.ingress_burst is not None:
            bits.append(
                f"ingress loss ~{self.ingress_burst.expected_loss_rate:.2f}"
            )
        if self.events:
            bits.append(f"{len(self.events)} scripted window(s)")
        return "; ".join(bits) if bits else "no shard faults"


@dataclass(frozen=True)
class ShardFaultView:
    """One shard's slice of a :class:`ShardFaultPlan`.

    The :class:`~repro.serve.engine.ServingEngine` consumes this — it
    never sees the fleet-wide plan, so a standalone engine can be
    chaos-tested with exactly the machinery the fleet uses.
    """

    plan: ShardFaultPlan
    shard: int = 0

    def crash_windows(self) -> tuple[tuple[float, float], ...]:
        """Sorted disjoint crash windows of this shard."""
        return self.plan.crash_windows(self.shard)

    def is_down(self, t_ms: float) -> bool:
        """Is this shard down at ``t_ms``?"""
        return self.plan.is_down(self.shard, t_ms)

    def down_until(self, t_ms: float) -> float | None:
        """End of the crash window covering ``t_ms`` (None when up)."""
        return self.plan.down_until(self.shard, t_ms)

    def service_factor(self, t_ms: float) -> float:
        """Service-time multiplier of a dispatch starting at ``t_ms``."""
        return self.plan.service_factor(self.shard, t_ms)
