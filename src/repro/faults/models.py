"""Stochastic fault models: bursty channel loss and latency jitter.

Real DSRC links do not lose packets independently: fading, shadowing by
trucks and contention produce *bursts* of consecutive losses, which is
exactly the regime where per-message retries stop helping and a receiver
must fall back to stale data.  The classic two-state Gilbert-Elliott
chain captures this with four numbers: a GOOD state with low loss, a BAD
state with high loss, and the transition probabilities between them.

Latency behaves the same way — a quiet channel adds a bounded jitter,
while occasional contention spikes add tens of milliseconds, blowing the
per-frame deadline of a 10 Hz perception loop.

Both models are pure functions of seeds: the state of a link at step
``k`` is computed by advancing the chain from step 0 under a
CRC-32-derived seed, so every process (and every worker count) sees the
same fault schedule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.runtime import derive_seed

__all__ = ["ChannelState", "BurstLossModel", "LatencyJitterModel"]


class ChannelState(enum.Enum):
    """The two Gilbert-Elliott link states."""

    GOOD = "good"
    BAD = "bad"


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class BurstLossModel:
    """Gilbert-Elliott two-state bursty loss.

    Attributes:
        p_good_to_bad: per-step probability of entering the BAD state.
        p_bad_to_good: per-step probability of recovering to GOOD.
        loss_good: per-attempt loss probability while GOOD.
        loss_bad: per-attempt loss probability while BAD.
    """

    p_good_to_bad: float = 0.15
    p_bad_to_good: float = 0.5
    loss_good: float = 0.02
    loss_bad: float = 0.85

    def __post_init__(self) -> None:
        _check_probability("p_good_to_bad", self.p_good_to_bad)
        _check_probability("p_bad_to_good", self.p_bad_to_good)
        _check_probability("loss_good", self.loss_good)
        _check_probability("loss_bad", self.loss_bad)

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of steps spent in the BAD state."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        return self.p_good_to_bad / denom if denom > 0 else 0.0

    @property
    def expected_loss_rate(self) -> float:
        """Long-run per-attempt loss probability of the chain."""
        bad = self.stationary_bad_fraction
        return bad * self.loss_bad + (1.0 - bad) * self.loss_good

    def state_at(self, link_seed: int, step: int) -> ChannelState:
        """The chain state of one link at one session step.

        The chain starts GOOD at step 0 and advances one transition per
        step, drawing from a single RNG stream derived from
        ``link_seed`` — a pure function of ``(link_seed, step)`` that is
        identical in every process and at every worker count.
        """
        if step < 0:
            raise ValueError("step must be non-negative")
        rng = np.random.default_rng(derive_seed(link_seed, "ge-chain"))
        state = ChannelState.GOOD
        for _ in range(step):
            draw = rng.random()
            if state is ChannelState.GOOD:
                if draw < self.p_good_to_bad:
                    state = ChannelState.BAD
            elif draw < self.p_bad_to_good:
                state = ChannelState.GOOD
        return state

    def loss_rate(self, state: ChannelState) -> float:
        """The per-attempt loss probability while in ``state``."""
        return self.loss_bad if state is ChannelState.BAD else self.loss_good

    @classmethod
    def for_target_loss(
        cls,
        target_loss: float,
        loss_bad: float = 0.95,
        loss_good: float = 0.02,
        p_bad_to_good: float = 0.4,
    ) -> "BurstLossModel":
        """A chain whose long-run loss rate approximates ``target_loss``.

        Solves the stationary BAD fraction needed for the mixture
        ``bad * loss_bad + (1 - bad) * loss_good`` to hit the target,
        then derives ``p_good_to_bad`` from the fixed recovery rate
        (slowing recovery instead when the required entry rate would
        exceed 1).  Used by the chaos sweep to place points on a
        loss-rate axis; a target outside ``[loss_good, loss_bad]`` is
        unreachable and raises.
        """
        _check_probability("target_loss", target_loss)
        span = loss_bad - loss_good
        if span <= 0:
            raise ValueError("loss_bad must exceed loss_good")
        if not loss_good <= target_loss <= loss_bad:
            raise ValueError(
                f"target_loss {target_loss} is outside the reachable range "
                f"[{loss_good}, {loss_bad}]"
            )
        bad_fraction = (target_loss - loss_good) / span
        if bad_fraction >= 1.0:
            p_good_to_bad = 1.0
            p_bad_to_good = 0.0
        else:
            p_good_to_bad = p_bad_to_good * bad_fraction / (1.0 - bad_fraction)
            if p_good_to_bad > 1.0:
                p_good_to_bad = 1.0
                p_bad_to_good = (1.0 - bad_fraction) / bad_fraction
        return cls(
            p_good_to_bad=p_good_to_bad,
            p_bad_to_good=p_bad_to_good,
            loss_good=loss_good,
            loss_bad=loss_bad,
        )


@dataclass(frozen=True)
class LatencyJitterModel:
    """Per-message latency jitter with occasional contention spikes.

    Attributes:
        jitter_ms: upper bound of the uniform per-attempt jitter.
        spike_prob: probability a message hits a contention spike.
        spike_ms: extra latency such a spike adds.
    """

    jitter_ms: float = 1.0
    spike_prob: float = 0.0
    spike_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.jitter_ms < 0 or self.spike_ms < 0:
            raise ValueError("jitter/spike latencies must be non-negative")
        _check_probability("spike_prob", self.spike_prob)

    def sample_ms(self, rng: np.random.Generator) -> float:
        """Draw one message's extra latency in milliseconds."""
        extra = rng.uniform(0.0, self.jitter_ms) if self.jitter_ms > 0 else 0.0
        if self.spike_prob > 0 and rng.random() < self.spike_prob:
            extra += self.spike_ms
        return extra
