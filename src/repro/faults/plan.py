"""The :class:`FaultPlan`: a seeded, deterministic fault schedule.

A plan combines *stochastic* fault processes (Gilbert-Elliott burst
loss, latency jitter, per-step sensor fault probabilities) with
*scripted* :class:`FaultEvent`\\ s pinned to exact (step, agent) pairs.
Everything is resolved through pure functions of
``(plan.seed, step, agent)`` via CRC-32 seed derivation
(:func:`repro.runtime.derive_seed`), so the same plan produces the same
fault schedule in every process and at every worker count — the
precondition for the session determinism contract to survive fault
injection.

The plan never touches simulation objects itself; it only *answers
questions*: :meth:`FaultPlan.channel_conditions` for the network layer
and :meth:`FaultPlan.sensor_faults` for the sensor rig boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

import numpy as np

from repro.faults.models import BurstLossModel, ChannelState, LatencyJitterModel
from repro.runtime import derive_seed

__all__ = [
    "FaultKind",
    "FaultEvent",
    "ChannelConditions",
    "SensorFaults",
    "NO_SENSOR_FAULTS",
    "FaultPlan",
    "parse_fault_spec",
]


def parse_fault_spec(
    spec: str, valid_keys: tuple[str, ...], presets: tuple[str, ...] = ()
) -> tuple[str | None, list[tuple[str, str]]]:
    """Parse a CLI fault spec into ``(preset, [(key, raw_value), ...])``.

    Shared by every fault-plan parser (:meth:`FaultPlan.from_spec`,
    :meth:`repro.faults.serve.ShardFaultPlan.from_spec`) so the spec
    grammar — an optional leading preset name followed by comma-separated
    ``key=value`` entries — and its error messages stay uniform.  Unknown
    keys and presets are rejected with an error that lists the valid
    choices, so a typo on the command line points straight at the fix.
    """
    parts = [p.strip() for p in spec.split(",") if p.strip()]
    preset = None
    if parts and "=" not in parts[0]:
        preset = parts.pop(0)
        if preset not in presets:
            raise ValueError(
                f"unknown fault preset {preset!r} "
                f"(expected one of {sorted(presets)})"
            )
    entries: list[tuple[str, str]] = []
    for part in parts:
        key, _, raw = part.partition("=")
        if not raw:
            raise ValueError(f"malformed fault spec entry {part!r}")
        if key not in valid_keys:
            raise ValueError(
                f"unknown fault spec key {key!r} "
                f"(valid keys: {', '.join(sorted(valid_keys))})"
            )
        entries.append((key, raw))
    return preset, entries


class FaultKind(enum.Enum):
    """Scriptable fault types."""

    CHANNEL_BLACKOUT = "channel_blackout"
    LATENCY_SPIKE = "latency_spike"
    GPS_DROPOUT = "gps_dropout"
    GPS_BIAS = "gps_bias"
    IMU_YAW_GLITCH = "imu_yaw_glitch"
    LIDAR_BLACKOUT = "lidar_blackout"


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault: ``kind`` hits ``agent`` at ``step``.

    Attributes:
        kind: what fails.
        step: the session step index it fires at.
        agent: vehicle name, or ``"*"`` for every agent.
        magnitude: fault-specific size (metres for GPS_BIAS, degrees for
            IMU_YAW_GLITCH, milliseconds for LATENCY_SPIKE; unused
            otherwise).
    """

    kind: FaultKind
    step: int
    agent: str = "*"
    magnitude: float = 0.0

    def applies(self, step: int, agent: str) -> bool:
        """Does this event fire for ``agent`` at ``step``?"""
        return self.step == step and self.agent in ("*", agent)


@dataclass(frozen=True)
class ChannelConditions:
    """Resolved channel faults for one (step, sender) broadcast.

    Attributes:
        loss_rate: effective per-attempt loss probability, or None to use
            the channel's own configured rate.
        extra_latency_ms: jitter/spike latency added to every attempt.
        blackout: scripted total outage — the broadcast is lost outright.
        state: the Gilbert-Elliott state behind ``loss_rate`` (or None
            when no burst model is configured).
    """

    loss_rate: float | None = None
    extra_latency_ms: float = 0.0
    blackout: bool = False
    state: ChannelState | None = None


@dataclass(frozen=True)
class SensorFaults:
    """Resolved sensor faults for one (step, agent) observation.

    Injected at the :meth:`repro.sensors.rig.SensorRig.observe` boundary.

    Attributes:
        gps_dropout: GPS fix lost — position degrades to a dead-reckoned
            estimate with error up to ``gps_error_m``.
        gps_error_m: magnitude bound of the dropout position error.
        gps_bias: additive (x, y, z) position bias in metres (drift).
        imu_yaw_offset_deg: additive yaw glitch in degrees.
        lidar_blackout: the scan returns zero points this step.
    """

    gps_dropout: bool = False
    gps_error_m: float = 3.0
    gps_bias: tuple[float, float, float] = (0.0, 0.0, 0.0)
    imu_yaw_offset_deg: float = 0.0
    lidar_blackout: bool = False

    @property
    def any(self) -> bool:
        """True when at least one fault is active."""
        return (
            self.gps_dropout
            or self.lidar_blackout
            or self.imu_yaw_offset_deg != 0.0
            or self.gps_bias != (0.0, 0.0, 0.0)
        )


#: Shared "no faults" value returned for fault-free (step, agent) pairs.
NO_SENSOR_FAULTS = SensorFaults()

#: Preset plans for the CLI's ``--faults`` flag.
_PRESETS = {
    "none": {},
    "mild": {
        "burst": BurstLossModel(p_good_to_bad=0.1, loss_bad=0.6),
        "jitter": LatencyJitterModel(jitter_ms=2.0, spike_prob=0.05),
        "gps_dropout_prob": 0.05,
        "lidar_blackout_prob": 0.02,
    },
    "heavy": {
        "burst": BurstLossModel(p_good_to_bad=0.3, p_bad_to_good=0.3,
                                loss_bad=0.9),
        "jitter": LatencyJitterModel(jitter_ms=4.0, spike_prob=0.15,
                                     spike_ms=80.0),
        "gps_dropout_prob": 0.2,
        "gps_bias_drift_m_per_step": 0.05,
        "imu_glitch_prob": 0.1,
        "lidar_blackout_prob": 0.1,
    },
}


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded fault schedule for one session.

    Attributes:
        seed: base seed every stochastic fault derives from.
        burst: bursty channel loss model (None — channel's own loss).
        jitter: latency jitter model (None — no extra latency).
        gps_dropout_prob: per-(step, agent) GPS fix-loss probability.
        gps_dropout_error_m: position error bound during a dropout.
        gps_bias_drift_m_per_step: linear GPS bias growth per step, in a
            per-agent fixed random direction (slow drift).
        imu_glitch_prob: per-(step, agent) yaw glitch probability.
        imu_glitch_deg: yaw glitch magnitude bound (degrees).
        lidar_blackout_prob: per-(step, agent) blackout-frame probability.
        events: scripted faults on top of the stochastic processes.
    """

    seed: int = 0
    burst: BurstLossModel | None = None
    jitter: LatencyJitterModel | None = None
    gps_dropout_prob: float = 0.0
    gps_dropout_error_m: float = 3.0
    gps_bias_drift_m_per_step: float = 0.0
    imu_glitch_prob: float = 0.0
    imu_glitch_deg: float = 5.0
    lidar_blackout_prob: float = 0.0
    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in ("gps_dropout_prob", "imu_glitch_prob",
                     "lidar_blackout_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.gps_dropout_error_m < 0 or self.gps_bias_drift_m_per_step < 0:
            raise ValueError("GPS fault magnitudes must be non-negative")
        object.__setattr__(self, "events", tuple(self.events))

    # -- channel side -----------------------------------------------------
    def channel_conditions(self, step: int, sender: str) -> ChannelConditions:
        """Resolve the channel faults of one broadcast.

        Pure in ``(seed, step, sender)``: the Gilbert-Elliott state comes
        from the per-link chain, jitter from a per-(link, step) stream,
        scripted blackouts/spikes from :attr:`events`.
        """
        blackout = any(
            e.kind is FaultKind.CHANNEL_BLACKOUT and e.applies(step, sender)
            for e in self.events
        )
        state = None
        loss_rate = None
        if self.burst is not None:
            state = self.burst.state_at(
                derive_seed(self.seed, "link", sender), step
            )
            loss_rate = self.burst.loss_rate(state)
        extra_ms = 0.0
        if self.jitter is not None:
            rng = np.random.default_rng(
                derive_seed(self.seed, "jitter", sender, step)
            )
            extra_ms = self.jitter.sample_ms(rng)
        for event in self.events:
            if event.kind is FaultKind.LATENCY_SPIKE and event.applies(
                step, sender
            ):
                extra_ms += event.magnitude
        return ChannelConditions(
            loss_rate=loss_rate,
            extra_latency_ms=extra_ms,
            blackout=blackout,
            state=state,
        )

    # -- sensor side ------------------------------------------------------
    def sensor_faults(self, step: int, agent: str) -> SensorFaults:
        """Resolve the sensor faults of one observation.

        Pure in ``(seed, step, agent)``; returns the shared
        :data:`NO_SENSOR_FAULTS` when nothing fires, so the fault-free
        path allocates nothing.
        """
        rng = np.random.default_rng(
            derive_seed(self.seed, "sensor", agent, step)
        )
        # One draw per fault class, always consumed, so adding a fault
        # type never reshuffles the schedule of the others.
        draws = rng.random(3)
        gps_dropout = bool(draws[0] < self.gps_dropout_prob)
        imu_glitch = bool(draws[1] < self.imu_glitch_prob)
        lidar_blackout = bool(draws[2] < self.lidar_blackout_prob)

        bias = np.zeros(3)
        if self.gps_bias_drift_m_per_step > 0 and step > 0:
            direction_rng = np.random.default_rng(
                derive_seed(self.seed, "gps-bias-direction", agent)
            )
            angle = direction_rng.uniform(0.0, 2.0 * np.pi)
            magnitude = self.gps_bias_drift_m_per_step * step
            bias[:2] = magnitude * np.array([np.cos(angle), np.sin(angle)])

        imu_offset_deg = 0.0
        if imu_glitch:
            imu_offset_deg = float(
                rng.uniform(-self.imu_glitch_deg, self.imu_glitch_deg)
            )

        for event in self.events:
            if not event.applies(step, agent):
                continue
            if event.kind is FaultKind.GPS_DROPOUT:
                gps_dropout = True
            elif event.kind is FaultKind.GPS_BIAS:
                bias[0] += event.magnitude
            elif event.kind is FaultKind.IMU_YAW_GLITCH:
                imu_offset_deg += event.magnitude
            elif event.kind is FaultKind.LIDAR_BLACKOUT:
                lidar_blackout = True

        if not (
            gps_dropout
            or lidar_blackout
            or imu_offset_deg != 0.0
            or bias.any()
        ):
            return NO_SENSOR_FAULTS
        return SensorFaults(
            gps_dropout=gps_dropout,
            gps_error_m=self.gps_dropout_error_m,
            gps_bias=(float(bias[0]), float(bias[1]), float(bias[2])),
            imu_yaw_offset_deg=imu_offset_deg,
            lidar_blackout=lidar_blackout,
        )

    # -- constructors -----------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: no faults ever fire."""
        return cls()

    @classmethod
    def lossy(cls, target_loss: float, seed: int = 0) -> "FaultPlan":
        """A pure channel-loss plan whose long-run loss is ~``target_loss``."""
        if target_loss <= 0:
            return cls(seed=seed)
        return cls(seed=seed, burst=BurstLossModel.for_target_loss(target_loss))

    @classmethod
    def chaos(cls, seed: int) -> "FaultPlan":
        """A randomized everything-at-once plan for property-style tests.

        Fault intensities are drawn from the seed itself (burst loss up
        to 0.9 in the BAD state, GPS dropouts, LiDAR blackouts, latency
        spikes), so sweeping seeds sweeps fault schedules.
        """
        rng = np.random.default_rng(derive_seed(seed, "chaos-plan"))
        return cls(
            seed=seed,
            burst=BurstLossModel(
                p_good_to_bad=float(rng.uniform(0.05, 0.6)),
                p_bad_to_good=float(rng.uniform(0.2, 0.7)),
                loss_good=float(rng.uniform(0.0, 0.1)),
                loss_bad=float(rng.uniform(0.5, 0.9)),
            ),
            jitter=LatencyJitterModel(
                jitter_ms=float(rng.uniform(0.0, 5.0)),
                spike_prob=float(rng.uniform(0.0, 0.3)),
                spike_ms=float(rng.uniform(20.0, 120.0)),
            ),
            gps_dropout_prob=float(rng.uniform(0.0, 0.4)),
            gps_bias_drift_m_per_step=float(rng.uniform(0.0, 0.1)),
            imu_glitch_prob=float(rng.uniform(0.0, 0.2)),
            lidar_blackout_prob=float(rng.uniform(0.0, 0.3)),
        )

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI fault spec.

        A spec is a preset name (``none``, ``mild``, ``heavy``) optionally
        followed by comma-separated ``key=value`` overrides, e.g.
        ``"heavy,loss=0.5,gps-dropout=0.3"`` or just ``"loss=0.4"``.

        Keys: ``loss`` (target long-run channel loss), ``jitter`` (ms),
        ``spike`` (probability), ``gps-dropout``, ``gps-drift`` (m/step),
        ``imu-glitch`` (probability), ``lidar-blackout`` (probability),
        ``seed``.  Unknown keys are rejected with the valid set listed.
        """
        valid_keys = (
            "loss", "jitter", "spike", "gps-dropout", "gps-drift",
            "imu-glitch", "lidar-blackout", "seed",
        )
        preset, entries = parse_fault_spec(
            spec, valid_keys, presets=tuple(_PRESETS)
        )
        kwargs: dict = {"seed": seed}
        if preset is not None:
            kwargs.update(_PRESETS[preset])
        for key, raw in entries:
            value = float(raw)
            if key == "loss":
                kwargs["burst"] = BurstLossModel.for_target_loss(value)
            elif key == "jitter":
                jitter = kwargs.get("jitter") or LatencyJitterModel()
                kwargs["jitter"] = replace(jitter, jitter_ms=value)
            elif key == "spike":
                jitter = kwargs.get("jitter") or LatencyJitterModel()
                kwargs["jitter"] = replace(jitter, spike_prob=value)
            elif key == "gps-dropout":
                kwargs["gps_dropout_prob"] = value
            elif key == "gps-drift":
                kwargs["gps_bias_drift_m_per_step"] = value
            elif key == "imu-glitch":
                kwargs["imu_glitch_prob"] = value
            elif key == "lidar-blackout":
                kwargs["lidar_blackout_prob"] = value
            elif key == "seed":
                kwargs["seed"] = int(value)
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        bits = []
        if self.burst is not None:
            bits.append(f"burst loss ~{self.burst.expected_loss_rate:.2f}")
        if self.jitter is not None:
            bits.append(
                f"jitter {self.jitter.jitter_ms:g}ms"
                + (
                    f" (spikes p={self.jitter.spike_prob:g})"
                    if self.jitter.spike_prob > 0
                    else ""
                )
            )
        if self.gps_dropout_prob > 0:
            bits.append(f"gps-dropout p={self.gps_dropout_prob:g}")
        if self.gps_bias_drift_m_per_step > 0:
            bits.append(f"gps-drift {self.gps_bias_drift_m_per_step:g}m/step")
        if self.imu_glitch_prob > 0:
            bits.append(f"imu-glitch p={self.imu_glitch_prob:g}")
        if self.lidar_blackout_prob > 0:
            bits.append(f"lidar-blackout p={self.lidar_blackout_prob:g}")
        if self.events:
            bits.append(f"{len(self.events)} scripted event(s)")
        return "; ".join(bits) if bits else "no faults"
