"""Seeded, deterministic fault injection for the Cooper reproduction.

Cooper's viability argument (Section IV-G) assumes DSRC delivers; real
vehicular channels fail in bursts, spike in latency, and the GPS/IMU
feeds that drive the Eq. (1)-(3) alignment glitch exactly when they are
needed most.  This package models those failures so the rest of the
system can demonstrate *graceful degradation* instead of assuming a
clean world:

* :class:`BurstLossModel` — Gilbert-Elliott two-state bursty loss.
* :class:`LatencyJitterModel` — per-message jitter + contention spikes.
* :class:`FaultPlan` — one seeded schedule combining the stochastic
  models with scripted :class:`FaultEvent`\\ s; resolved per
  ``(step, agent)`` through pure CRC-32-seeded functions, so fault
  schedules are bit-identical at any worker count.

Injection points live where the faults physically occur: channel faults
in :class:`repro.network.dsrc.DsrcChannel` (driven by
:meth:`FaultPlan.channel_conditions`), sensor faults at the
:meth:`repro.sensors.rig.SensorRig.observe` boundary (driven by
:meth:`FaultPlan.sensor_faults`).  The resilience mechanisms that absorb
them — stale-package fallback, circuit breaker, sanity gate — live in
:mod:`repro.fusion.agent`.
"""

from __future__ import annotations

from repro.faults.models import BurstLossModel, ChannelState, LatencyJitterModel
from repro.faults.plan import (
    NO_SENSOR_FAULTS,
    ChannelConditions,
    FaultEvent,
    FaultKind,
    FaultPlan,
    SensorFaults,
    parse_fault_spec,
)
from repro.faults.serve import ShardFaultEvent, ShardFaultPlan, ShardFaultView

__all__ = [
    "BurstLossModel",
    "ChannelState",
    "LatencyJitterModel",
    "ChannelConditions",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "SensorFaults",
    "NO_SENSOR_FAULTS",
    "parse_fault_spec",
    "ShardFaultEvent",
    "ShardFaultPlan",
    "ShardFaultView",
]
