"""Frame-delta (temporal) inference state — warm paths, cold-path bits.

Cooper's OBU loop runs at sensor frame rate, and consecutive frames are
nearly identical: a handful of moving actors against static geometry.
This package carries the per-agent state that lets every stage exploit
that delta:

* **scan** — a :class:`repro.sensors.lidar.ScanGeometryCache`: the
  per-actor raycast matrix is reused across frames for a repeated pose,
  re-raycasting only actors whose geometry changed.
* **voxel** — a :class:`repro.pointcloud.voxel.VoxelDeltaCache`: identical
  clouds return the previous grid; same-assignment clouds rescatter only
  touched voxels; shared-prefix clouds reuse the prefix's assignments.
* **rulebook** — the previous frame's sparse-conv rulebook, patched by
  active-site delta via :func:`repro.detection.nn.sparse.patch_rulebook`.
* **detect memo** — the previous frame's post-NMS detections, returned
  outright when the exact cloud recurs (the steady state of a stationary
  scene re-detecting the same frame).

**Determinism contract.**  Every cache is content-keyed and verified
exactly (stored keys/arrays compared element-for-element), and every
delta algorithm reproduces the cold path's operation order — so every
warm-path output (detections, scores, logs) is bit-identical to a cold
run, at any worker count, under any invalidation schedule.  Temporal
state can only change *when* work is done, never *what* is computed.

**Invalidation rules.**  The session invalidates an agent's state on
LiDAR blackout frames and pose jumps (``scope="all"``: the scan cache is
geometry-bound) and on circuit-breaker skips or stale-package fallbacks
among its peers (``scope="fuse"``: only the fusion-side caches — voxel,
rulebook, detect memo — see the inbox).  Because hits are verified
exactly, invalidation is pure hygiene: skipping one can never corrupt a
result, it only wastes a lookup.

Profiler surfaces: ``temporal.scan_*``, ``temporal.voxel_*``,
``temporal.rulebook_patched``, ``temporal.detect_*`` counters and the
``temporal.rulebook_patch`` stage, mirrored from the per-state totals in
:meth:`TemporalState.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pointcloud.voxel import VoxelDeltaCache
from repro.profiling import PROFILER
from repro.sensors.lidar import ScanGeometryCache

__all__ = ["TemporalConfig", "TemporalState"]


@dataclass(frozen=True)
class TemporalConfig:
    """Knobs of the frame-delta layer.

    Attributes:
        scan_cache_entries: pose cells the scan geometry cache retains.
        detect_memo: memoise the previous frame's post-NMS detections.
        voxel_delta: enable the incremental voxelisation tiers.
        rulebook_delta: patch the previous frame's rulebook on cache miss.
        max_rulebook_delta_fraction: largest active-site delta (as a
            fraction of the new site count) worth patching; beyond it a
            fresh build is cheaper.
        pose_jump_m: measured-pose displacement per step above which the
            session invalidates the agent's temporal state (a GPS glitch
            or teleport, not frame-to-frame motion).
    """

    scan_cache_entries: int = 4
    detect_memo: bool = True
    voxel_delta: bool = True
    rulebook_delta: bool = True
    max_rulebook_delta_fraction: float = 0.5
    pose_jump_m: float = 5.0

    def __post_init__(self) -> None:
        if self.scan_cache_entries < 1:
            raise ValueError("scan_cache_entries must be at least 1")
        if not 0.0 <= self.max_rulebook_delta_fraction <= 1.0:
            raise ValueError("max_rulebook_delta_fraction must be in [0, 1]")
        if self.pose_jump_m <= 0:
            raise ValueError("pose_jump_m must be positive")


class TemporalState:
    """Per-agent frame-delta state threaded through scan → voxel → detect.

    One instance belongs to one (agent, detector) stream of frames; the
    session keeps one per agent and hands it to ``observe`` and
    ``perceive``/``detect``.  All members are caches in the strict sense:
    dropping the whole object (or calling :meth:`invalidate`) at any
    moment changes nothing but speed.
    """

    def __init__(self, config: TemporalConfig | None = None) -> None:
        self.config = config or TemporalConfig()
        self.scan = ScanGeometryCache(maxsize=self.config.scan_cache_entries)
        self.voxel = VoxelDeltaCache()
        self._rulebooks: dict[tuple, object] = {}
        self._detect_data: np.ndarray | None = None
        self._detect_result: list | None = None
        self.detect_hits = 0
        self.detect_misses = 0
        self.invalidations: dict[str, int] = {}

    # -- rulebook handoff --------------------------------------------------
    def previous_rulebook(self, kernel_size: int, grid_shape: tuple):
        """The last stored rulebook for this (kernel, grid), if any."""
        if not self.config.rulebook_delta:
            return None
        return self._rulebooks.get((kernel_size, grid_shape))

    def store_rulebook(
        self, kernel_size: int, grid_shape: tuple, rulebook
    ) -> None:
        """Remember this frame's rulebook as the next frame's patch base."""
        self._rulebooks[(kernel_size, grid_shape)] = rulebook

    # -- detect memo -------------------------------------------------------
    def detect_recall(self, cloud) -> list | None:
        """The previous frame's detections iff ``cloud`` recurs bit-exactly."""
        if not self.config.detect_memo or self._detect_result is None:
            return None
        data = cloud.data
        prev = self._detect_data
        if data.shape == prev.shape and (
            data is prev or np.array_equal(data, prev)
        ):
            self.detect_hits += 1
            PROFILER.count("temporal.detect_hits")
            return self._detect_result
        self.detect_misses += 1
        PROFILER.count("temporal.detect_misses")
        return None

    def detect_store(self, cloud, detections: list) -> None:
        """Install this frame's (cloud, post-NMS detections) as the memo."""
        if not self.config.detect_memo:
            return
        self._detect_data = cloud.data
        self._detect_result = list(detections)

    # -- invalidation ------------------------------------------------------
    def invalidate(self, reason: str, scope: str = "all") -> None:
        """Drop cached state; ``scope="fuse"`` keeps the scan cache.

        Purely hygienic — every cache verifies its key exactly, so a
        skipped (or spurious) invalidation can never change a result.
        ``reason`` is tallied in :attr:`invalidations`; the *session*
        counts its parent-side invalidation decisions separately so
        log-relevant totals stay exact at any worker count.
        """
        if scope not in ("all", "fuse"):
            raise ValueError("scope must be 'all' or 'fuse'")
        if scope == "all":
            self.scan.clear()
        self.voxel.clear()
        self._rulebooks.clear()
        self._detect_data = None
        self._detect_result = None
        self.invalidations[reason] = self.invalidations.get(reason, 0) + 1

    # -- reporting ---------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot across every cache surface (for benchmarks)."""
        return {
            "scan": self.scan.stats(),
            "voxel": self.voxel.stats(),
            "detect": {"hits": self.detect_hits, "misses": self.detect_misses},
            "invalidations": dict(self.invalidations),
        }
