"""Experiment runners regenerating the paper's evaluation figures.

``run_case`` produces everything one column-triple of Fig. 3/6 contains:
per-car raw scores for each single shot and for the cooperative cloud,
distance bands, detection counts and accuracies.  The aggregators on top
of it produce Figs. 4/7 (summaries), Fig. 8 (improvement CDF by
difficulty), Fig. 9 (timing) and Fig. 10 (GPS drift).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import CooperativeCase, make_case
from repro.detection.spod import SPOD
from repro.eval.cdf import improvement_percent
from repro.eval.difficulty import Difficulty, classify_difficulty
from repro.eval.matching import match_detections
from repro.fusion.align import merge_packages
from repro.geometry.boxes import Box3D
from repro.runtime import fork_available, parallel_map, resolve_workers

__all__ = [
    "CarRecord",
    "CaseResult",
    "run_case",
    "run_cases",
    "improvement_samples",
    "timing_experiment",
    "gps_drift_experiment",
]

#: Distance bands of the Fig. 3/6 cell shading.
NEAR_LIMIT = 10.0
MEDIUM_LIMIT = 25.0


@dataclass
class CarRecord:
    """Everything the grids report about one ground-truth car in one case.

    Attributes:
        car_name: actor name in the world.
        single_scores: observer -> raw score (None when out of that
            observer's detection area).
        single_detected: observer -> True when at/above the reporting
            threshold (a score cell in the figure; False is the X).
        cooper_score / cooper_detected: same for the cooperative cloud.
        bands: observer -> "near" / "medium" / "far" / "out".
        difficulty: easy / moderate / hard per Section IV-E.
    """

    car_name: str
    single_scores: dict[str, float | None]
    single_detected: dict[str, bool]
    cooper_score: float | None
    cooper_detected: bool
    bands: dict[str, str]
    difficulty: Difficulty


@dataclass
class CaseResult:
    """One cooperative case fully evaluated (one column-triple of Fig. 3/6)."""

    case_name: str
    scenario: str
    delta_d: float
    records: list[CarRecord]
    counts: dict[str, int]
    accuracies: dict[str, float]
    false_positives: dict[str, int]
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def cooper_superset(self) -> bool:
        """True when cooperation missed nothing any single shot found."""
        for record in self.records:
            if any(record.single_detected.values()) and not record.cooper_detected:
                return False
        return True


def _band(distance: float) -> str:
    if distance < NEAR_LIMIT:
        return "near"
    if distance <= MEDIUM_LIMIT:
        return "medium"
    return "far"


def _in_area(box: Box3D, detector: SPOD, max_eval_range: float) -> bool:
    x, y = box.center[:2]
    r = detector.config.voxel_spec.point_range
    if not (r[0] <= x <= r[3] and r[1] <= y <= r[4]):
        return False
    return float(np.hypot(x, y)) <= max_eval_range


def run_case(
    case: CooperativeCase,
    detector: SPOD | None = None,
    gate_distance: float = 2.5,
    max_eval_range: float = 60.0,
) -> CaseResult:
    """Evaluate one cooperative case: every single shot plus the merge.

    ``timings`` on the returned result is always populated (per-observer
    and cooperative detection seconds) — it is wall-clock data and the
    only field excluded from the determinism contract of
    :func:`run_cases`.
    """
    detector = detector or SPOD.pretrained()
    threshold = detector.config.detection_threshold
    gt_names = case.ground_truth_names()
    columns: dict[str, tuple[list, list[Box3D]]] = {}
    timings: dict[str, float] = {}

    for observer in case.observer_names:
        gt_boxes = case.ground_truth_in(observer)
        start = time.perf_counter()
        detections = detector.detect_all(case.cloud_of(observer))
        timings[observer] = time.perf_counter() - start
        columns[observer] = (detections, gt_boxes)

    receiver_obs = case.observations[case.receiver]
    packages = case.packages_for_receiver()
    merged = merge_packages(
        case.cloud_of(case.receiver), packages, case.receiver_measured_pose()
    )
    gt_cooper = case.ground_truth_in(case.receiver)
    start = time.perf_counter()
    cooper_detections = detector.detect_all(merged)
    timings["cooper"] = time.perf_counter() - start
    columns["cooper"] = (cooper_detections, gt_cooper)

    matches = {
        name: match_detections(dets, gts, gate_distance)
        for name, (dets, gts) in columns.items()
    }
    in_area = {
        name: [_in_area(b, detector, max_eval_range) for b in gts]
        for name, (_dets, gts) in columns.items()
    }

    records: list[CarRecord] = []
    for gt_idx, car_name in enumerate(gt_names):
        single_scores: dict[str, float | None] = {}
        single_detected: dict[str, bool] = {}
        bands: dict[str, str] = {}
        for observer in case.observer_names:
            _dets, gts = columns[observer]
            visible = in_area[observer][gt_idx]
            score = float(matches[observer].gt_scores[gt_idx])
            single_scores[observer] = score if visible else None
            single_detected[observer] = visible and score >= threshold
            distance = float(np.hypot(*gts[gt_idx].center[:2]))
            bands[observer] = _band(distance) if visible else "out"
        cooper_visible = in_area["cooper"][gt_idx]
        cooper_score = (
            float(matches["cooper"].gt_scores[gt_idx]) if cooper_visible else None
        )
        cooper_detected = bool(
            cooper_visible and cooper_score is not None and cooper_score >= threshold
        )
        records.append(
            CarRecord(
                car_name=car_name,
                single_scores=single_scores,
                single_detected=single_detected,
                cooper_score=cooper_score,
                cooper_detected=cooper_detected,
                bands=bands,
                difficulty=classify_difficulty(list(single_detected.values())),
            )
        )

    counts: dict[str, int] = {}
    accuracies: dict[str, float] = {}
    false_positives: dict[str, int] = {}
    for name in list(case.observer_names) + ["cooper"]:
        if name == "cooper":
            detected = [r.cooper_detected for r in records]
            scores = [
                (r.cooper_score or 0.0) if r.cooper_score is not None else None
                for r in records
            ]
        else:
            detected = [r.single_detected[name] for r in records]
            scores = [r.single_scores[name] for r in records]
        visible_scores = [
            (s if d else 0.0)
            for s, d in zip(scores, detected)
            if s is not None
        ]
        counts[name] = int(sum(detected))
        accuracies[name] = (
            100.0 * float(np.mean(visible_scores)) if visible_scores else 0.0
        )
        dets, _gts = columns[name]
        reported = [d for d in dets if d.score >= threshold]
        fp_match = match_detections(reported, columns[name][1], gate_distance)
        false_positives[name] = len(fp_match.false_positives)

    return CaseResult(
        case_name=case.name,
        scenario=case.scenario,
        delta_d=case.delta_d,
        records=records,
        counts=counts,
        accuracies=accuracies,
        false_positives=false_positives,
        timings=timings,
    )


#: Per-worker detector built once by :func:`_case_worker_init` (the pool
#: warm-up hook), so parallel evaluation does not rebuild SPOD per case.
_CASE_DETECTOR: SPOD | None = None

#: Case list published by :func:`run_cases` just before the pool forks;
#: workers inherit it through copy-on-write memory, so tasks ship a bare
#: index instead of a multi-megabyte pickled case.
_CASE_SET: list[CooperativeCase] | None = None


def _case_worker_init(detector: SPOD | None) -> None:
    """Worker warm-up: install the shared per-process detector."""
    global _CASE_DETECTOR
    _CASE_DETECTOR = detector if detector is not None else SPOD.pretrained()


def _case_task(payload: tuple[int, dict]) -> CaseResult:
    """Evaluate one fork-inherited case using the warmed-up detector."""
    index, kwargs = payload
    return run_case(_CASE_SET[index], _CASE_DETECTOR, **kwargs)


def run_cases(
    cases: list[CooperativeCase],
    detector: SPOD | None = None,
    workers: int | None = None,
    **kwargs,
) -> list[CaseResult]:
    """Evaluate a list of cases with a shared detector.

    ``workers`` > 1 fans the (independent) cases out over a forked
    process pool — ``None`` defers to the ``REPRO_WORKERS`` environment
    variable, default 1.  Results keep the input order and are
    bit-identical to a ``workers=1`` run apart from the wall-clock
    ``timings`` field; per-worker profiler snapshots are merged back into
    the parent so ``--profile`` stays exact.
    """
    global _CASE_SET
    workers = resolve_workers(workers)
    if workers <= 1 or len(cases) <= 1 or not fork_available():
        _case_worker_init(detector)
        return [run_case(case, _CASE_DETECTOR, **kwargs) for case in cases]
    _CASE_SET = list(cases)
    try:
        return parallel_map(
            _case_task,
            [(index, dict(kwargs)) for index in range(len(cases))],
            workers=workers,
            initializer=_case_worker_init,
            initargs=(detector,),
        )
    finally:
        _CASE_SET = None


def improvement_samples(
    results: list[CaseResult],
) -> dict[Difficulty, list[float]]:
    """Fig. 8 inputs: per-difficulty score-improvement percentages.

    For every ground-truth car the cooperative cloud detected, the
    improvement is measured against the best raw score any single shot
    achieved (sub-threshold candidates included).
    """
    samples: dict[Difficulty, list[float]] = {d: [] for d in Difficulty}
    for result in results:
        for record in result.records:
            if not record.cooper_detected or record.cooper_score is None:
                continue
            singles = [s for s in record.single_scores.values() if s is not None]
            best_single = max(singles) if singles else 0.0
            samples[record.difficulty].append(
                improvement_percent(best_single, record.cooper_score)
            )
    return samples


def timing_experiment(
    cases: list[CooperativeCase],
    detector: SPOD | None = None,
    repeats: int = 1,
) -> dict[str, dict[str, float]]:
    """Fig. 9: mean detection time, single shot vs cooperative, per dataset.

    Returns ``{case_name: {"single": s, "cooper": s}}``; averaging over
    cases (and datasets) is left to the caller/bench.
    """
    detector = detector or SPOD.pretrained()
    timings: dict[str, dict[str, float]] = {}
    for case in cases:
        merged = merge_packages(
            case.cloud_of(case.receiver),
            case.packages_for_receiver(),
            case.receiver_measured_pose(),
        )
        single_cloud = case.cloud_of(case.receiver)
        single_times = []
        cooper_times = []
        for _ in range(repeats):
            start = time.perf_counter()
            detector.detect(single_cloud)
            single_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            detector.detect(merged)
            cooper_times.append(time.perf_counter() - start)
        timings[case.name] = {
            "single": float(np.mean(single_times)),
            "cooper": float(np.mean(cooper_times)),
        }
    return timings


def gps_drift_experiment(
    scenario_builder,
    observers: tuple[str, str],
    pattern,
    skews,
    seed: int = 0,
    detector: SPOD | None = None,
) -> dict[str, dict[str, float]]:
    """Fig. 10: cooperative per-car scores under GPS skew protocols.

    ``scenario_builder`` is a layout factory (e.g. ``parking_lot``);
    ``skews`` maps protocol label -> :class:`~repro.sensors.gps.GpsSkew`
    applied to the *transmitting* observer.  Returns
    ``{protocol: {car_name: cooper_score}}`` (0.0 for misses).
    """
    detector = detector or SPOD.pretrained()
    results: dict[str, dict[str, float]] = {}
    for label, skew in skews.items():
        layout = scenario_builder()
        poses = {name: layout.viewpoint(name) for name in observers}
        case = make_case(
            name=f"gps-drift/{label}",
            scenario="gps-drift",
            world=layout.world,
            poses=poses,
            receiver=observers[0],
            pattern=pattern,
            seed=seed,
            gps_skew={observers[1]: skew},
        )
        result = run_case(case, detector)
        results[label] = {
            r.car_name: (r.cooper_score or 0.0) if r.cooper_detected else 0.0
            for r in result.records
        }
    return results
