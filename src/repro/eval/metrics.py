"""Detection metrics: counts, accuracy, precision/recall, AP.

``detection_accuracy`` is the Figs. 4/7 bottom-panel quantity: the mean
detection score over ground-truth cars in the evaluated area, counting
misses as zero — so both missing a car and detecting it weakly lower it.
Precision/recall and AP are provided for completeness (the VoxelNet-style
quality numbers Section III-A quotes).
"""

from __future__ import annotations

import numpy as np

from repro.detection.detections import Detection
from repro.eval.matching import MatchResult, match_detections
from repro.geometry.boxes import Box3D

__all__ = [
    "detection_count",
    "detection_accuracy",
    "precision_recall",
    "average_precision",
]


def detection_count(match: MatchResult) -> int:
    """Number of ground-truth cars detected (the Figs. 4/7 top panels)."""
    return match.num_matched


def detection_accuracy(match: MatchResult) -> float:
    """Mean detection score over ground truth, in percent (0 for misses)."""
    if len(match.gt_scores) == 0:
        return 0.0
    return float(match.gt_scores.mean()) * 100.0


def precision_recall(
    detections: list[Detection],
    ground_truth: list[Box3D],
    gate_distance: float = 2.5,
) -> tuple[float, float]:
    """Precision and recall of a detection set against ground truth."""
    match = match_detections(detections, ground_truth, gate_distance)
    tp = match.num_matched
    precision = tp / len(detections) if detections else 0.0
    recall = tp / len(ground_truth) if ground_truth else 0.0
    return precision, recall


def average_precision(
    detections: list[Detection],
    ground_truth: list[Box3D],
    gate_distance: float = 2.5,
) -> float:
    """11-point interpolated AP (the KITTI-era convention VoxelNet reports).

    Detections are swept by descending score; at each score threshold the
    precision/recall point is computed, then precision is interpolated at
    recalls 0.0, 0.1, ..., 1.0.
    """
    if not ground_truth:
        return 0.0
    if not detections:
        return 0.0
    ordered = sorted(detections, key=lambda d: d.score, reverse=True)
    precisions = []
    recalls = []
    for k in range(1, len(ordered) + 1):
        p, r = precision_recall(ordered[:k], ground_truth, gate_distance)
        precisions.append(p)
        recalls.append(r)
    precisions = np.array(precisions)
    recalls = np.array(recalls)
    ap = 0.0
    for level in np.linspace(0.0, 1.0, 11):
        mask = recalls >= level - 1e-9
        ap += float(precisions[mask].max()) if mask.any() else 0.0
    return ap / 11.0
