"""ASCII bird's-eye-view rendering of scenes, clouds and detections.

A terminal-friendly stand-in for the paper's point-cloud screenshots
(Figs. 2/5): obstacle density as shades, ground-truth cars as ``#``/``o``
(detected/missed), detections as ``D`` and the sensor as ``^``.  Used by
the examples; handy when debugging scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.detections import Detection
from repro.geometry.boxes import Box3D
from repro.pointcloud.cloud import PointCloud

__all__ = ["BevCanvas", "render_bev"]

_DENSITY_RAMP = " .:-=+*"


@dataclass
class BevCanvas:
    """A character raster over a BEV window.

    Attributes:
        x_range / y_range: metres covered (x up the screen, y across).
        cell: metres per character cell.
    """

    x_range: tuple[float, float] = (-10.0, 60.0)
    y_range: tuple[float, float] = (-30.0, 30.0)
    cell: float = 1.0

    def __post_init__(self) -> None:
        if self.cell <= 0:
            raise ValueError("cell size must be positive")
        self.rows = int(np.ceil((self.x_range[1] - self.x_range[0]) / self.cell))
        self.cols = int(np.ceil((self.y_range[1] - self.y_range[0]) / self.cell))
        self.grid = np.full((self.rows, self.cols), " ", dtype="<U1")

    def _to_cell(self, x: float, y: float) -> tuple[int, int] | None:
        row = int((x - self.x_range[0]) / self.cell)
        col = int((y - self.y_range[0]) / self.cell)
        if 0 <= row < self.rows and 0 <= col < self.cols:
            return row, col
        return None

    def draw_cloud(self, cloud: PointCloud) -> None:
        """Shade cells by point density."""
        if cloud.is_empty():
            return
        counts = np.zeros((self.rows, self.cols))
        for x, y in cloud.xyz[:, :2]:
            cell = self._to_cell(float(x), float(y))
            if cell:
                counts[cell] += 1
        if counts.max() == 0:
            return
        levels = np.clip(
            (np.log1p(counts) / np.log1p(counts.max()) * (len(_DENSITY_RAMP) - 1)),
            0,
            len(_DENSITY_RAMP) - 1,
        ).astype(int)
        for row in range(self.rows):
            for col in range(self.cols):
                if counts[row, col] > 0 and self.grid[row, col] == " ":
                    self.grid[row, col] = _DENSITY_RAMP[levels[row, col]]

    def draw_box(self, box: Box3D, mark: str) -> None:
        """Stamp a box's footprint centre with ``mark``."""
        cell = self._to_cell(float(box.center[0]), float(box.center[1]))
        if cell:
            self.grid[cell] = mark

    def draw_sensor(self, x: float = 0.0, y: float = 0.0) -> None:
        """Mark the sensor location."""
        cell = self._to_cell(x, y)
        if cell:
            self.grid[cell] = "^"

    def render(self) -> str:
        """Render top-down: +x upward, +y to the left (vehicle convention)."""
        lines = []
        for row in range(self.rows - 1, -1, -1):
            lines.append("".join(self.grid[row, ::-1]))
        return "\n".join(lines)


def render_bev(
    cloud: PointCloud,
    ground_truth: list[Box3D] = (),
    detections: list[Detection] = (),
    x_range: tuple[float, float] = (-10.0, 60.0),
    y_range: tuple[float, float] = (-30.0, 30.0),
    cell: float = 1.0,
    gate: float = 2.5,
) -> str:
    """One-call scene rendering.

    Ground-truth cars show as ``#`` when some detection is within ``gate``
    metres and ``o`` otherwise; unmatched detections show as ``D``.
    """
    canvas = BevCanvas(x_range=x_range, y_range=y_range, cell=cell)
    canvas.draw_cloud(cloud)
    det_centers = np.array([d.box.center[:2] for d in detections]).reshape(-1, 2)
    for box in ground_truth:
        detected = bool(
            len(det_centers)
            and np.linalg.norm(det_centers - box.center[:2], axis=1).min() <= gate
        )
        canvas.draw_box(box, "#" if detected else "o")
    gt_centers = np.array([b.center[:2] for b in ground_truth]).reshape(-1, 2)
    for detection in detections:
        unmatched = not (
            len(gt_centers)
            and np.linalg.norm(
                gt_centers - detection.box.center[:2], axis=1
            ).min()
            <= gate
        )
        if unmatched:
            canvas.draw_box(detection.box, "D")
    canvas.draw_sensor()
    return canvas.render()
