"""Distance-band analysis (the near/medium/far shading of Figs. 3 and 6).

"According to the actual detection distance of LiDAR, we divide it into
three scales of near (<10m), medium (10-25m) and far (>25m)."  The paper's
§IV-D observation is that "cooperative perception enables global detection
of objects located at far, medium, and near distance" — this module
aggregates per-band detection rates so that claim is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.experiments import CaseResult

__all__ = ["BandStats", "band_analysis"]

BANDS = ("near", "medium", "far")


@dataclass
class BandStats:
    """Detection statistics for one distance band.

    Attributes:
        band: "near" / "medium" / "far".
        single_detected / single_total: pooled over every single-shot
            column (a car counts once per observer whose area it is in).
        cooper_detected / cooper_total: the cooperative column, with the
            band taken from the receiver's viewpoint.
    """

    band: str
    single_detected: int = 0
    single_total: int = 0
    cooper_detected: int = 0
    cooper_total: int = 0

    @property
    def single_rate(self) -> float:
        """Single-shot detection rate in this band."""
        return self.single_detected / self.single_total if self.single_total else 0.0

    @property
    def cooper_rate(self) -> float:
        """Cooperative detection rate in this band."""
        return self.cooper_detected / self.cooper_total if self.cooper_total else 0.0


def band_analysis(results: list[CaseResult]) -> dict[str, BandStats]:
    """Pool per-band detection rates over evaluated cases."""
    stats = {band: BandStats(band) for band in BANDS}
    for result in results:
        observers = list(result.records[0].single_scores) if result.records else []
        receiver = observers[0] if observers else None
        for record in result.records:
            for observer in observers:
                band = record.bands[observer]
                if band not in stats:
                    continue
                stats[band].single_total += 1
                if record.single_detected[observer]:
                    stats[band].single_detected += 1
            if receiver is None:
                continue
            receiver_band = record.bands[receiver]
            if receiver_band in stats and record.cooper_score is not None:
                stats[receiver_band].cooper_total += 1
                if record.cooper_detected:
                    stats[receiver_band].cooper_detected += 1
    return stats


def render_band_table(stats: dict[str, BandStats]) -> str:
    """ASCII table of per-band single vs cooperative detection rates."""
    lines = [
        f"{'band':8s} {'single det/total':>18s} {'rate':>6s}"
        f" {'cooper det/total':>18s} {'rate':>6s}"
    ]
    for band in BANDS:
        s = stats[band]
        lines.append(
            f"{band:8s} {s.single_detected:>8d}/{s.single_total:<9d}"
            f" {s.single_rate*100:5.1f}%"
            f" {s.cooper_detected:>8d}/{s.cooper_total:<9d}"
            f" {s.cooper_rate*100:5.1f}%"
        )
    return "\n".join(lines)
