"""Empirical CDFs and score-improvement percentages (paper Fig. 8)."""

from __future__ import annotations

import numpy as np

__all__ = ["empirical_cdf", "improvement_percent"]

#: Floor for the single-shot score when computing relative improvement;
#: prevents division blow-ups for targets with essentially zero single-shot
#: evidence (the paper's "hard" class).
_SCORE_FLOOR = 0.05


def improvement_percent(single_score: float, cooper_score: float) -> float:
    """Percent increase in detection score from cooperation.

    ``single_score`` is the best raw score any single shot gave the target
    (sub-threshold candidates included); the relative increase is what the
    paper's Fig. 8 x-axis plots.
    """
    base = max(single_score, _SCORE_FLOOR)
    return 100.0 * (cooper_score - base) / base


def empirical_cdf(samples) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_probabilities)``.

    Probabilities use the standard ``k / n`` convention so the last value
    maps to 1.0.
    """
    values = np.sort(np.asarray(list(samples), dtype=float))
    if len(values) == 0:
        return values, np.zeros(0)
    probabilities = np.arange(1, len(values) + 1) / len(values)
    return values, probabilities
