"""Evaluation harness: matching, metrics, difficulty classes, experiments.

Everything needed to regenerate the paper's evaluation section: detection
<-> ground-truth matching, the per-case detection grids of Figs. 3/6, the
count/accuracy summaries of Figs. 4/7, the difficulty-stratified
improvement CDF of Fig. 8, the timing comparison of Fig. 9 and the GPS
drift study of Fig. 10 — plus the beyond-paper chaos-sweep robustness
experiment (recall under injected channel and sensor faults).
"""

from repro.eval.matching import match_detections, MatchResult
from repro.eval.metrics import (
    detection_accuracy,
    detection_count,
    precision_recall,
    average_precision,
)
from repro.eval.difficulty import Difficulty, classify_difficulty
from repro.eval.cdf import empirical_cdf, improvement_percent
from repro.eval.experiments import (
    CaseResult,
    CarRecord,
    run_case,
    run_cases,
    improvement_samples,
    timing_experiment,
    gps_drift_experiment,
)
from repro.eval.chaos import (
    ChaosRunResult,
    build_chaos_session,
    session_recall,
    loss_sweep,
    gps_error_sweep,
    stale_fallback_comparison,
    chaos_sweep,
)
from repro.eval.frontier import (
    FRONTIER_MODES,
    case_frontier,
    fusion_frontier,
    session_determinism,
)
from repro.eval.reporting import (
    render_detection_grid,
    render_case_summary,
    render_cdf_table,
)
from repro.eval.viz import BevCanvas, render_bev
from repro.eval.bands import BandStats, band_analysis, render_band_table

__all__ = [
    "match_detections",
    "MatchResult",
    "detection_accuracy",
    "detection_count",
    "precision_recall",
    "average_precision",
    "Difficulty",
    "classify_difficulty",
    "empirical_cdf",
    "improvement_percent",
    "CaseResult",
    "CarRecord",
    "run_case",
    "run_cases",
    "improvement_samples",
    "timing_experiment",
    "gps_drift_experiment",
    "ChaosRunResult",
    "build_chaos_session",
    "session_recall",
    "loss_sweep",
    "gps_error_sweep",
    "stale_fallback_comparison",
    "chaos_sweep",
    "FRONTIER_MODES",
    "case_frontier",
    "fusion_frontier",
    "session_determinism",
    "render_detection_grid",
    "render_case_summary",
    "render_cdf_table",
    "BevCanvas",
    "render_bev",
    "BandStats",
    "band_analysis",
    "render_band_table",
]
