"""Detection <-> ground-truth matching.

One-to-one assignment by BEV centre distance (Hungarian algorithm via
scipy), with a gating radius: a detection farther than the gate from every
ground-truth car is a false positive.  Centre-distance gating is the right
metric here because the analytic SPOD path fits template-sized boxes — what
the paper's grids report is *which* cars were found and with what score,
not box tightness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.detection.detections import Detection
from repro.geometry.boxes import Box3D

__all__ = ["MatchResult", "match_detections"]

_UNMATCHABLE = 1e6


@dataclass
class MatchResult:
    """Outcome of matching detections to ground truth.

    Attributes:
        assignments: gt index -> detection index for every matched pair.
        gt_scores: per-gt detection score (0.0 where unmatched).
        unmatched_gt: indices of ground-truth boxes nobody claimed.
        false_positives: detection indices matched to nothing.
    """

    assignments: dict[int, int] = field(default_factory=dict)
    gt_scores: np.ndarray = field(default_factory=lambda: np.zeros(0))
    unmatched_gt: list[int] = field(default_factory=list)
    false_positives: list[int] = field(default_factory=list)

    @property
    def num_matched(self) -> int:
        """Count of matched ground-truth objects."""
        return len(self.assignments)


def match_detections(
    detections: list[Detection],
    ground_truth: list[Box3D],
    gate_distance: float = 2.5,
) -> MatchResult:
    """Assign detections to ground-truth boxes one-to-one.

    Cost is BEV centre distance; pairs farther apart than ``gate_distance``
    can never match.
    """
    if gate_distance <= 0:
        raise ValueError("gate_distance must be positive")
    result = MatchResult(gt_scores=np.zeros(len(ground_truth)))
    if not detections or not ground_truth:
        result.unmatched_gt = list(range(len(ground_truth)))
        result.false_positives = list(range(len(detections)))
        return result

    det_centers = np.array([d.box.center[:2] for d in detections])
    gt_centers = np.array([b.center[:2] for b in ground_truth])
    cost = np.linalg.norm(
        gt_centers[:, None, :] - det_centers[None, :, :], axis=-1
    )
    cost = np.where(cost <= gate_distance, cost, _UNMATCHABLE)
    rows, cols = linear_sum_assignment(cost)
    matched_dets: set[int] = set()
    for gt_idx, det_idx in zip(rows, cols):
        if cost[gt_idx, det_idx] >= _UNMATCHABLE:
            continue
        result.assignments[int(gt_idx)] = int(det_idx)
        result.gt_scores[gt_idx] = detections[det_idx].score
        matched_dets.add(int(det_idx))
    result.unmatched_gt = [
        i for i in range(len(ground_truth)) if i not in result.assignments
    ]
    result.false_positives = [
        i for i in range(len(detections)) if i not in matched_dets
    ]
    return result
