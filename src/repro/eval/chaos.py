"""Chaos-sweep experiment: cooperative recall under escalating faults.

The paper evaluates Cooper on clean channels; a deployable system has to
keep perceiving when the channel and the sensors misbehave.  This module
runs the full :class:`~repro.fusion.agent.CooperSession` loop under
seeded :class:`~repro.faults.FaultPlan` schedules of increasing severity
and reports how recall degrades:

* :func:`loss_sweep` — recall vs Gilbert-Elliott channel loss rate,
* :func:`gps_error_sweep` — recall vs GPS dead-reckoning error,
* :func:`stale_fallback_comparison` — the stale-package fallback against
  plain drop-to-ego at moderate loss (the graceful-degradation claim),
* :func:`chaos_sweep` — all of the above as one JSON-ready report
  (``benchmarks/bench_robustness_chaos.py`` writes it to
  ``results/BENCH_robustness.json``).

Every sweep point is deterministic: the fault schedule is a pure
function of its plan seed, so reports are bit-identical at any worker
count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.spod import SPOD
from repro.eval.matching import match_detections
from repro.faults import FaultPlan
from repro.fusion.agent import AgentStep, CooperAgent, CooperSession, ResilienceConfig
from repro.fusion.cooper import Cooper
from repro.network.dsrc import DsrcChannel
from repro.network.roi_policy import RoiCategory, RoiPolicy
from repro.scene.layouts import parking_lot
from repro.scene.trajectories import StationaryTrajectory, StraightTrajectory
from repro.sensors.lidar import BeamPattern, LidarModel
from repro.sensors.rig import SensorRig

__all__ = [
    "ChaosRunResult",
    "build_chaos_session",
    "session_recall",
    "loss_sweep",
    "gps_error_sweep",
    "stale_fallback_comparison",
    "chaos_sweep",
]

#: The sweeps' sensing pattern: the paper's 16-beam class, pruned for speed.
CHAOS_16 = BeamPattern("chaos-16", tuple(np.linspace(-15.0, 15.0, 16)), 0.8)


@dataclass
class ChaosRunResult:
    """One faulted session run, reduced to its robustness numbers.

    Attributes:
        recall: matched fraction of visible ground-truth cars, pooled
            over every agent and step.
        matched: pooled matched ground-truth count.
        visible: pooled visible ground-truth count.
        mean_received: mean merged packages per agent-step (fresh+stale).
        degradation: the session's degradation event counts.
        steps: session length in exchange periods.
    """

    recall: float
    matched: int
    visible: int
    mean_received: float
    degradation: dict[str, int]
    steps: int

    def as_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "recall": self.recall,
            "matched": self.matched,
            "visible": self.visible,
            "mean_received": self.mean_received,
            "degradation": self.degradation,
            "steps": self.steps,
        }


def build_chaos_session(
    detector: SPOD | None = None,
    faults: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    channel: DsrcChannel | None = None,
) -> CooperSession:
    """The sweeps' scenario: a two-agent parking lot, one mover.

    Mirrors the pipeline bench session so robustness numbers are read
    against the same workload the perf numbers come from.
    """
    layout = parking_lot(seed=51, rows=3, cols=6, occupancy=0.8)
    cooper = Cooper(detector=detector or SPOD.pretrained())

    def make_agent(name: str, viewpoint: str, speed: float = 0.0) -> CooperAgent:
        pose = layout.viewpoint(viewpoint)
        trajectory = (
            StraightTrajectory(pose, speed=speed)
            if speed
            else StationaryTrajectory(pose)
        )
        return CooperAgent(
            name=name,
            rig=SensorRig(lidar=LidarModel(pattern=CHAOS_16), name=name),
            trajectory=trajectory,
            policy=RoiPolicy(category=RoiCategory.FULL_FRAME),
            cooper=cooper,
        )

    agents = [
        make_agent("alpha", "car1", speed=2.0),
        make_agent("beta", "car2"),
    ]
    return CooperSession(
        world=layout.world,
        agents=agents,
        channel=channel or DsrcChannel(),
        faults=faults,
        resilience=resilience or ResilienceConfig(),
    )


def _step_recall_counts(
    session: CooperSession,
    step: AgentStep,
    detector: SPOD,
    gate_distance: float,
    max_eval_range: float,
) -> tuple[int, int]:
    """(matched, visible) ground-truth cars for one agent-step."""
    to_sensor = step.observation.true_pose.from_world()
    gt_boxes = [b.transformed(to_sensor) for b in session.world.target_boxes()]
    r = detector.config.voxel_spec.point_range
    visible = [
        b
        for b in gt_boxes
        if r[0] <= b.center[0] <= r[3]
        and r[1] <= b.center[1] <= r[4]
        and float(np.hypot(b.center[0], b.center[1])) <= max_eval_range
    ]
    if not visible:
        return 0, 0
    threshold = detector.config.detection_threshold
    reported = [d for d in step.detections if d.score >= threshold]
    match = match_detections(reported, visible, gate_distance)
    return match.num_matched, len(visible)


def session_recall(
    session: CooperSession,
    logs: dict[str, list[AgentStep]],
    gate_distance: float = 2.5,
    max_eval_range: float = 60.0,
) -> ChaosRunResult:
    """Reduce one finished session run to its robustness numbers.

    Recall pools every (agent, step) pair: each agent's per-step
    detections are matched against the ground-truth cars visible from its
    *true* pose at that step, so channel faults show up exactly as the
    perception they cost.
    """
    detector = session.agents[0].cooper.detector
    matched = 0
    visible = 0
    received = 0
    agent_steps = 0
    for steps in logs.values():
        for step in steps:
            m, v = _step_recall_counts(
                session, step, detector, gate_distance, max_eval_range
            )
            matched += m
            visible += v
            received += len(step.received_packages)
            agent_steps += 1
    return ChaosRunResult(
        recall=matched / visible if visible else 0.0,
        matched=matched,
        visible=visible,
        mean_received=received / agent_steps if agent_steps else 0.0,
        degradation=dict(session.degradation),
        steps=len(next(iter(logs.values()))) if logs else 0,
    )


def _run_point(
    faults: FaultPlan | None,
    detector: SPOD | None,
    resilience: ResilienceConfig | None,
    duration_seconds: float,
    seed: int,
    workers: int | None,
) -> ChaosRunResult:
    session = build_chaos_session(
        detector=detector, faults=faults, resilience=resilience
    )
    logs = session.run(
        duration_seconds=duration_seconds, period_seconds=1.0, seed=seed,
        workers=workers,
    )
    return session_recall(session, logs)


def loss_sweep(
    loss_rates: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9),
    duration_seconds: float = 6.0,
    seed: int = 0,
    detector: SPOD | None = None,
    resilience: ResilienceConfig | None = None,
    workers: int | None = None,
) -> list[dict]:
    """Recall vs Gilbert-Elliott target loss rate (bursty, not i.i.d.).

    ``loss_rate`` 0.0 runs fault-free (the clean baseline the degradation
    curve is read against).
    """
    points = []
    for loss in loss_rates:
        plan = (
            None
            if loss <= 0.0
            else FaultPlan.lossy(loss, seed=seed + int(round(loss * 1000)))
        )
        result = _run_point(
            plan, detector, resilience, duration_seconds, seed, workers
        )
        points.append({"loss_rate": loss, **result.as_dict()})
    return points


def gps_error_sweep(
    errors_m: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0),
    duration_seconds: float = 6.0,
    seed: int = 0,
    detector: SPOD | None = None,
    resilience: ResilienceConfig | None = None,
    workers: int | None = None,
) -> list[dict]:
    """Recall vs GPS dead-reckoning error under permanent GPS dropout.

    Every agent's fix degrades to truth plus up to ``error_m`` of
    seed-determined offset each step — the Fig. 10 drift study pushed
    through the full resilient session loop.
    """
    points = []
    for error in errors_m:
        plan = (
            None
            if error <= 0.0
            else FaultPlan(
                seed=seed + int(round(error * 100)),
                gps_dropout_prob=1.0,
                gps_dropout_error_m=error,
            )
        )
        result = _run_point(
            plan, detector, resilience, duration_seconds, seed, workers
        )
        points.append({"gps_error_m": error, **result.as_dict()})
    return points


def stale_fallback_comparison(
    loss_rate: float = 0.5,
    duration_seconds: float = 6.0,
    seed: int = 0,
    detector: SPOD | None = None,
    workers: int | None = None,
) -> dict:
    """Stale-package fallback vs drop-to-ego at moderate bursty loss.

    Both runs see the *identical* fault schedule (same plan seed); the
    only difference is whether a lost peer's last delivery is re-aligned
    into the merge or the receiver falls back to its own scan.
    """
    plan = FaultPlan.lossy(loss_rate, seed=seed + 77)
    with_stale = _run_point(
        plan, detector, ResilienceConfig(stale_fallback=True),
        duration_seconds, seed, workers,
    )
    drop_to_ego = _run_point(
        plan, detector, ResilienceConfig(stale_fallback=False),
        duration_seconds, seed, workers,
    )
    return {
        "loss_rate": loss_rate,
        "stale_fallback": with_stale.as_dict(),
        "drop_to_ego": drop_to_ego.as_dict(),
        "recall_gain": with_stale.recall - drop_to_ego.recall,
    }


def chaos_sweep(
    smoke: bool = False,
    seed: int = 0,
    detector: SPOD | None = None,
    workers: int | None = None,
) -> dict:
    """The full robustness report (the ``BENCH_robustness.json`` payload).

    ``smoke`` shrinks the session and the sweep grids for CI: three loss
    rates, two GPS errors, four exchange periods.
    """
    detector = detector or SPOD.pretrained()
    duration = 4.0 if smoke else 6.0
    loss_rates = (0.0, 0.5, 0.9) if smoke else (0.0, 0.1, 0.3, 0.5, 0.7, 0.9)
    gps_errors = (0.0, 4.0) if smoke else (0.0, 1.0, 2.0, 4.0, 8.0)
    return {
        "bench": "robustness_chaos",
        "mode": "smoke" if smoke else "full",
        "seed": seed,
        "duration_seconds": duration,
        "scenario": "parking_lot(seed=51, rows=3, cols=6) / 2 agents",
        "loss_sweep": loss_sweep(
            loss_rates, duration, seed, detector, workers=workers
        ),
        "gps_error_sweep": gps_error_sweep(
            gps_errors, duration, seed, detector, workers=workers
        ),
        "stale_vs_ego": stale_fallback_comparison(
            0.5, duration, seed, detector, workers=workers
        ),
    }
