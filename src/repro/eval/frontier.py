"""Recall-vs-bandwidth frontier across fusion levels.

The paper's raw-cloud exchange buys its recall with hundreds of
kilobytes per frame; this module measures what each cheaper exchange
level gives up.  Four points span the frontier:

* ``raw`` — full-frame exchange packages (the paper's Cooper),
* ``roi`` — FRONT_SECTOR-cropped packages (the Fig. 11 category-2 diet),
* ``feature`` — F-Cooper-style voxel-feature packages, maxout-fused,
* ``gated`` — Where2comm-style confidence-gated feature packages (the
  receiver broadcasts where it is already confident; senders ship only
  the rest).

:func:`fusion_frontier` evaluates every mode on the Fig. 4 KITTI cases
(bytes on the wire vs recall against visible ground truth) and then runs
the chaos-scenario :class:`~repro.fusion.agent.CooperSession` in each
session mode at two worker counts, hashing the canonical logs — the
determinism contract — and reading the per-frame bandwidth ledger from
:attr:`CooperSession.comm`.  ``benchmarks/bench_fusion_frontier.py``
writes the report to ``results/BENCH_fusion.json``.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.datasets.base import CooperativeCase
from repro.datasets.synthetic_kitti import kitti_cases
from repro.detection.spod import SPOD
from repro.eval.chaos import build_chaos_session, session_recall
from repro.eval.matching import match_detections
from repro.faults import FaultPlan
from repro.fusion.align import merge_packages
from repro.fusion.feature import (
    FeatureFusionConfig,
    FeaturePackage,
    build_feature_package,
    build_request,
    perceive_features,
    rpn_confidence,
)
from repro.fusion.package import ExchangePackage
from repro.network.roi_policy import RoiCategory, RoiPolicy, extract_roi
from repro.runtime import fork_available

__all__ = [
    "FRONTIER_MODES",
    "case_frontier",
    "fusion_frontier",
    "session_determinism",
]

#: The frontier's exchange levels, cheapest-last.
FRONTIER_MODES = ("raw", "roi", "feature", "gated")

#: Session fusion modes exercised by the determinism section ("roi" is a
#: packaging policy of the raw mode, not a separate session mode).
_SESSION_MODES = ("raw", "feature", "gated")


def _visible_ground_truth(
    case: CooperativeCase, detector: SPOD, max_eval_range: float
) -> list:
    """Ground-truth boxes the receiver could possibly be scored on."""
    r = detector.config.voxel_spec.point_range
    return [
        b
        for b in case.ground_truth_in(case.receiver)
        if r[0] <= b.center[0] <= r[3]
        and r[1] <= b.center[1] <= r[4]
        and float(np.hypot(*b.center[:2])) <= max_eval_range
    ]


def _sender_tap(detector: SPOD, cloud) -> tuple[np.ndarray, np.ndarray, dict | None]:
    """(coords, features, tap) for one observer; empty arrays if no points."""
    if len(cloud) == 0:
        return (
            np.zeros((0, 3), dtype=np.int64),
            np.zeros((0, 4), dtype=np.float64),
            None,
        )
    tap = detector.forward_features(cloud, tap=True)
    return (
        np.asarray(tap["grid"].coords),
        np.asarray(tap["middle"].features, dtype=np.float64),
        tap,
    )


def _feature_exchange(
    case: CooperativeCase,
    detector: SPOD,
    config: FeatureFusionConfig,
    gated: bool,
) -> tuple[list[FeaturePackage], int]:
    """Build (and roundtrip) every sender's feature package for one case.

    Returns the deserialized packages the receiver fuses plus the total
    bytes on the wire — gated mode includes the receiver's confidence
    request, exactly the messages the session ledger would record.
    """
    spec = detector.config.voxel_spec
    receiver_pose = case.receiver_measured_pose()
    total_bytes = 0
    requests = ()
    if gated:
        coords, _features, tap = _sender_tap(
            detector, case.cloud_of(case.receiver)
        )
        if tap is None:
            heat = np.zeros(tuple(spec.grid_shape[:2]), dtype=np.float64)
        else:
            heat = rpn_confidence(detector, tap["bev"])
        request = build_request(
            heat, receiver_pose, case.receiver, config=config
        )
        requests = (request,)
        total_bytes += request.size_bytes()
    packages: list[FeaturePackage] = []
    for name, obs in case.observations.items():
        if name == case.receiver:
            continue
        coords, features, tap = _sender_tap(detector, obs.scan.cloud)
        heat = None
        if gated and tap is not None:
            heat = rpn_confidence(detector, tap["bev"])
        elif gated:
            heat = np.zeros(tuple(spec.grid_shape[:2]), dtype=np.float64)
        package = build_feature_package(
            spec,
            coords,
            features,
            obs.measured_pose,
            name,
            heat=heat,
            requests=requests,
            config=config,
        )
        payload = package.serialize()
        total_bytes += len(payload)
        packages.append(FeaturePackage.deserialize(payload))
    return packages, total_bytes


def case_frontier(
    case: CooperativeCase,
    detector: SPOD,
    config: FeatureFusionConfig | None = None,
    gate_distance: float = 2.5,
    max_eval_range: float = 60.0,
) -> dict:
    """Evaluate every frontier mode on one cooperative case.

    Each mode's ``bytes`` is what one exchange round puts on the air for
    this case; ``recall`` matches the receiver's detections against the
    ground-truth cars visible from its true pose.
    """
    config = config or FeatureFusionConfig()
    visible = _visible_ground_truth(case, detector, max_eval_range)
    threshold = detector.config.detection_threshold
    receiver_cloud = case.cloud_of(case.receiver)
    receiver_pose = case.receiver_measured_pose()

    modes: dict[str, dict] = {}

    def score(detections, total_bytes: int) -> dict:
        reported = [d for d in detections if d.score >= threshold]
        match = match_detections(reported, visible, gate_distance)
        return {
            "bytes": int(total_bytes),
            "matched": int(match.num_matched),
            "detections": len(reported),
            "recall": (
                match.num_matched / len(visible) if visible else 0.0
            ),
        }

    # raw: the paper's full-frame exchange.
    raw_packages = case.packages_for_receiver()
    raw_bytes = sum(p.size_bytes() for p in raw_packages)
    merged = merge_packages(receiver_cloud, raw_packages, receiver_pose)
    modes["raw"] = score(detector.detect_all(merged), raw_bytes)

    # roi: FRONT_SECTOR crop before packaging (Fig. 11 category 2).
    policy = RoiPolicy(category=RoiCategory.FRONT_SECTOR)
    roi_packages = [
        ExchangePackage(
            cloud=extract_roi(obs.scan.cloud, policy),
            pose=obs.measured_pose,
            sender=name,
        )
        for name, obs in case.observations.items()
        if name != case.receiver
    ]
    roi_bytes = sum(p.size_bytes() for p in roi_packages)
    roi_merged = merge_packages(receiver_cloud, roi_packages, receiver_pose)
    modes["roi"] = score(detector.detect_all(roi_merged), roi_bytes)

    # feature / gated: voxel-feature exchange through the real wire format.
    for mode, gated in (("feature", False), ("gated", True)):
        packages, total_bytes = _feature_exchange(
            case, detector, config, gated
        )
        detections = perceive_features(
            detector, receiver_cloud, receiver_pose, packages
        )
        modes[mode] = score(detections, total_bytes)

    return {
        "case": case.name,
        "scenario": case.scenario,
        "visible": len(visible),
        "modes": modes,
    }


def _canonical_session_logs(logs) -> bytes:
    """Project session logs onto the bit-exact primitives tests compare."""
    projected = []
    for name in sorted(logs):
        for step in logs[name]:
            projected.append(
                (
                    name,
                    step.time,
                    step.sent_bits,
                    tuple(step.delivered),
                    step.stale_count,
                    tuple(
                        (p.sender, len(p.serialize()))
                        for p in step.received_packages
                    ),
                    step.observation.scan.cloud.data.tobytes(),
                    tuple(
                        (d.box.center.tobytes(), float(d.score), d.label)
                        for d in step.detections
                    ),
                )
            )
    return repr(projected).encode()


def session_determinism(
    mode: str,
    detector: SPOD | None = None,
    duration_seconds: float = 4.0,
    seed: int = 3,
    worker_counts: tuple[int, int] = (1, 4),
    faults: FaultPlan | None = None,
) -> dict:
    """Run the chaos session in one fusion mode at two worker counts.

    Returns the two canonical-log digests (which must be equal — the
    determinism contract), the bandwidth-ledger summary and the pooled
    session recall.  Falls back to two single-process runs when fork is
    unavailable (the parallel path needs it), noting so in the result.
    """
    forkable = fork_available()
    counts = worker_counts if forkable else (1, 1)
    digests = []
    summary = None
    recall = None
    for workers in counts:
        session = build_chaos_session(detector=detector, faults=faults)
        session.fusion_mode = mode
        logs = session.run(
            duration_seconds=duration_seconds,
            period_seconds=1.0,
            seed=seed,
            workers=workers,
        )
        digests.append(
            hashlib.sha256(_canonical_session_logs(logs)).hexdigest()
        )
        summary = session.comm.summary()
        recall = session_recall(session, logs).recall
    return {
        "mode": mode,
        "worker_counts": list(counts),
        "fork_available": forkable,
        "digests": digests,
        "identical": digests[0] == digests[-1],
        "recall": recall,
        "comm": summary,
    }


def fusion_frontier(
    smoke: bool = False,
    seed: int = 0,
    detector: SPOD | None = None,
    worker_counts: tuple[int, int] = (1, 4),
    config: FeatureFusionConfig | None = None,
) -> dict:
    """The full frontier report (the ``BENCH_fusion.json`` payload).

    Case section: every frontier mode on the Fig. 4 KITTI cases (all
    four, or the first two in ``smoke`` mode).  Determinism section: the
    chaos session in every session fusion mode — clean and under a
    chaos fault plan — hashed at two worker counts, with the bandwidth
    ledger each run recorded.
    """
    detector = detector or SPOD.pretrained()
    config = config or FeatureFusionConfig()
    cases = kitti_cases(seed=seed)
    if smoke:
        cases = cases[:2]
    case_rows = [case_frontier(case, detector, config) for case in cases]

    def mean(values: list[float]) -> float:
        return float(np.mean(values)) if values else 0.0

    frontier = {
        mode: {
            "mean_bytes_per_frame": mean(
                [row["modes"][mode]["bytes"] for row in case_rows]
            ),
            "mean_recall": mean(
                [row["modes"][mode]["recall"] for row in case_rows]
            ),
        }
        for mode in FRONTIER_MODES
    }

    duration = 2.0 if smoke else 4.0
    determinism = {
        mode: session_determinism(
            mode,
            detector=detector,
            duration_seconds=duration,
            seed=seed + 3,
            worker_counts=worker_counts,
        )
        for mode in _SESSION_MODES
    }
    chaos = {
        mode: session_determinism(
            mode,
            detector=detector,
            duration_seconds=duration,
            seed=seed + 3,
            worker_counts=worker_counts,
            faults=FaultPlan.chaos(seed + 2),
        )
        for mode in _SESSION_MODES
    }

    raw_bytes = frontier["raw"]["mean_bytes_per_frame"]
    feature_bytes = frontier["feature"]["mean_bytes_per_frame"]
    gated_bytes = frontier["gated"]["mean_bytes_per_frame"]
    contract = {
        "feature_vs_raw_bytes_ratio": (
            raw_bytes / feature_bytes if feature_bytes else float("inf")
        ),
        "feature_recall_drop_points": 100.0
        * (frontier["raw"]["mean_recall"] - frontier["feature"]["mean_recall"]),
        "gated_below_feature_bytes": bool(gated_bytes < feature_bytes),
        "gated_below_feature_every_case": all(
            row["modes"]["gated"]["bytes"] < row["modes"]["feature"]["bytes"]
            for row in case_rows
        ),
        "all_modes_deterministic": all(
            entry["identical"]
            for section in (determinism, chaos)
            for entry in section.values()
        ),
    }

    return {
        "bench": "fusion_frontier",
        "mode": "smoke" if smoke else "full",
        "seed": seed,
        "gate_distance": 2.5,
        "max_eval_range": 60.0,
        "cases": case_rows,
        "frontier": frontier,
        "determinism": determinism,
        "determinism_chaos": chaos,
        "contract": contract,
    }
