"""ASCII renderers for the paper's figures.

The benches print these tables so a terminal run of the harness shows the
same information the paper's figures carry: the per-car score grids with X
for misses and distance bands (Figs. 3/6), the per-case count/accuracy
summaries (Figs. 4/7) and CDF tables (Fig. 8).
"""

from __future__ import annotations

import numpy as np

from repro.eval.cdf import empirical_cdf
from repro.eval.experiments import CaseResult

__all__ = ["render_detection_grid", "render_case_summary", "render_cdf_table"]

_BAND_MARK = {"near": "n", "medium": "m", "far": "f", "out": " "}


def _cell(score: float | None, detected: bool, band: str) -> str:
    """Render one grid cell: '0.67m', 'X   f', or blank when out of area."""
    if score is None or band == "out":
        return "     "
    mark = _BAND_MARK.get(band, "?")
    if detected:
        return f"{score:4.2f}{mark}"
    return f"X   {mark}"


def render_detection_grid(result: CaseResult) -> str:
    """Fig. 3/6-style grid: rows are cars, columns are shots + cooper."""
    observers = list(result.records[0].single_scores) if result.records else []
    header = ["car".ljust(12)] + [o.center(6) for o in observers] + ["cooper".center(6)]
    lines = [
        f"case {result.case_name}  (delta-d = {result.delta_d:.1f} m)",
        "  ".join(header),
    ]
    for record in result.records:
        cells = [record.car_name.ljust(12)]
        for observer in observers:
            cells.append(
                _cell(
                    record.single_scores[observer],
                    record.single_detected[observer],
                    record.bands[observer],
                ).center(6)
            )
        receiver = observers[0] if observers else ""
        cooper_band = record.bands.get(receiver, "near")
        if record.cooper_score is not None and cooper_band == "out":
            cooper_band = "far"  # contributed by a cooperator's viewpoint
        cells.append(
            _cell(record.cooper_score, record.cooper_detected, cooper_band).center(6)
        )
        lines.append("  ".join(cells))
    lines.append(
        "  ".join(
            ["detected".ljust(12)]
            + [str(result.counts[o]).center(6) for o in observers]
            + [str(result.counts["cooper"]).center(6)]
        )
    )
    return "\n".join(lines)


def render_case_summary(results: list[CaseResult]) -> str:
    """Fig. 4/7-style summary: counts and accuracy per case."""
    lines = [
        f"{'case':28s} {'singles (count)':>18s} {'cooper':>7s}"
        f" {'singles (acc%)':>20s} {'cooper%':>8s}"
    ]
    for result in results:
        observers = [k for k in result.counts if k != "cooper"]
        single_counts = "/".join(str(result.counts[o]) for o in observers)
        single_accs = "/".join(f"{result.accuracies[o]:.0f}" for o in observers)
        lines.append(
            f"{result.case_name:28s} {single_counts:>18s}"
            f" {result.counts['cooper']:>7d}"
            f" {single_accs:>20s} {result.accuracies['cooper']:>7.0f}%"
        )
    return "\n".join(lines)


def render_cdf_table(
    samples: dict, percentiles: tuple[float, ...] = (0.1, 0.25, 0.5, 0.8, 0.9)
) -> str:
    """Fig. 8-style table: improvement percentiles per difficulty class."""
    lines = [f"{'difficulty':12s} {'n':>4s} " + " ".join(f"p{int(p*100):02d}%".rjust(8) for p in percentiles)]
    for difficulty, values in samples.items():
        label = getattr(difficulty, "value", str(difficulty))
        if not values:
            lines.append(f"{label:12s} {0:>4d} " + " ".join("-".rjust(8) for _ in percentiles))
            continue
        sorted_vals, probs = empirical_cdf(values)
        row = []
        for p in percentiles:
            idx = min(int(np.ceil(p * len(sorted_vals))) - 1, len(sorted_vals) - 1)
            row.append(f"{sorted_vals[max(idx, 0)]:+8.1f}")
        lines.append(f"{label:12s} {len(values):>4d} " + " ".join(row))
    return "\n".join(lines)
