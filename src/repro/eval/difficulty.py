"""Difficulty classes (paper Section IV-E).

"Some of the targets in cooperative perception are detected by both, some
by only one, and some are detected by neither.  Detection difficulty is
thereby classified as easy, moderate and hard, respectively."
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

__all__ = ["Difficulty", "classify_difficulty"]


class Difficulty(enum.Enum):
    """How hard a target was for the individual vehicles."""

    EASY = "easy"  # detected by two or more single shots
    MODERATE = "moderate"  # detected by exactly one single shot
    HARD = "hard"  # detected by none


def classify_difficulty(
    single_shot_detected: Sequence[bool], threshold_note: str | None = None
) -> Difficulty:
    """Classify a target from its per-single-shot detection outcomes.

    Args:
        single_shot_detected: for each cooperating vehicle, whether its own
            single-shot detection found this target.
        threshold_note: unused placeholder kept for API symmetry with the
            experiment records (documents that "detected" means score at or
            above the reporting threshold).
    """
    count = sum(bool(d) for d in single_shot_detected)
    if count >= 2:
        return Difficulty.EASY
    if count == 1:
        return Difficulty.MODERATE
    return Difficulty.HARD
