"""Collision-checked actor placement shared by layouts and the DSL.

Two placement paths used to exist: the hand-coded layout builders in
:mod:`repro.scene.layouts` jittered cars onto fixed slots, and nothing
guarded generated scenes against cars materialising inside each other.
This module is the single shared sampler:

* :func:`scatter_cars` — the layouts' historical slot scatter, moved here
  verbatim (same RNG draw sequence, so every seeded layout is byte-identical
  to before the extraction).
* :class:`ClearanceIndex` + :func:`place_with_clearance` — rejection
  sampling for the scenario grammar: a candidate position is accepted only
  when its clearance disc does not intersect any already-placed actor's
  disc, and the sampler bails out deterministically after a bounded number
  of attempts (drop the actor and count it, or raise
  :class:`PlacementError` — never an unbounded loop).

Clearance uses a conservative BEV disc per actor (half the box diagonal
plus the requested clearance margin).  Discs slightly over-reject versus
exact oriented-box tests, which is the right bias for scene generation:
no accepted scene ever contains interpenetrating actors, and the check is
a couple of flops per candidate so rejection sampling stays cheap at
thousands of scenarios.
"""

from __future__ import annotations

import numpy as np

from repro.scene.objects import Actor, make_car, sample_car_dimensions

__all__ = [
    "PlacementError",
    "ClearanceIndex",
    "scatter_cars",
    "place_with_clearance",
    "bev_radius",
]


class PlacementError(RuntimeError):
    """Rejection sampling exhausted its attempt budget for one actor."""


def bev_radius(length: float, width: float) -> float:
    """Radius of the conservative BEV disc covering an oriented box."""
    return float(np.hypot(length, width)) / 2.0


def scatter_cars(
    rng: np.random.Generator,
    slots: list[tuple[float, float, float]],
    prefix: str,
) -> list[Actor]:
    """Instantiate cars with sampled dimensions at the given (x, y, yaw).

    Each slot draws KITTI-like dimensions, a small position jitter and a
    small yaw jitter from ``rng`` in a fixed order — the draw sequence the
    seeded layout builders have always used, so moving the helper here
    changed no world.  Slots are trusted (no clearance check): layout
    authors space them by construction, and the jitter is far smaller than
    any slot pitch.
    """
    cars = []
    for i, (x, y, yaw) in enumerate(slots):
        length, width, height = sample_car_dimensions(rng)
        jitter = rng.normal(0.0, 0.15, size=2)
        cars.append(
            make_car(
                x + jitter[0],
                y + jitter[1],
                yaw + rng.normal(0.0, 0.03),
                length,
                width,
                height,
                name=f"{prefix}-{i}",
            )
        )
    return cars


class ClearanceIndex:
    """Occupied BEV discs of a scene under construction.

    Tracks ``(x, y, radius)`` per placed actor (plus any reserved keep-out
    discs, e.g. around observer viewpoints) and answers whether a candidate
    disc fits.  Purely geometric — it never touches an RNG — so the
    accept/reject pattern is a deterministic function of the candidate
    sequence.
    """

    def __init__(self) -> None:
        self._centers: list[tuple[float, float]] = []
        self._radii: list[float] = []

    def __len__(self) -> int:
        return len(self._centers)

    def reserve(self, x: float, y: float, radius: float) -> None:
        """Mark a disc occupied (an actor footprint or a keep-out zone)."""
        self._centers.append((float(x), float(y)))
        self._radii.append(float(radius))

    def reserve_actor(self, actor: Actor, margin: float = 0.0) -> None:
        """Mark an actor's BEV disc (plus ``margin``) occupied."""
        self.reserve(
            actor.box.center[0],
            actor.box.center[1],
            bev_radius(actor.box.length, actor.box.width) + margin,
        )

    def fits(self, x: float, y: float, radius: float) -> bool:
        """True when a disc at ``(x, y)`` overlaps nothing reserved."""
        if not self._centers:
            return True
        centers = np.asarray(self._centers)
        radii = np.asarray(self._radii)
        distances = np.hypot(centers[:, 0] - x, centers[:, 1] - y)
        return bool(np.all(distances >= radii + radius))


def place_with_clearance(
    rng: np.random.Generator,
    sample_candidate,
    index: ClearanceIndex,
    radius: float,
    clearance: float,
    max_attempts: int,
    on_exhausted: str = "drop",
    what: str = "actor",
):
    """Rejection-sample one position whose clearance disc fits the scene.

    ``sample_candidate(rng) -> (x, y, yaw)`` draws a fresh candidate each
    attempt; the accepted position is reserved in ``index`` (footprint
    ``radius`` plus ``clearance``) and returned.  After ``max_attempts``
    rejections the bail-out is deterministic: ``on_exhausted="drop"``
    returns ``None`` (the caller records the drop), ``"raise"`` raises
    :class:`PlacementError` naming the actor — no retry loop ever spins
    forever on an over-constrained spec.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    if on_exhausted not in ("drop", "raise"):
        raise ValueError(
            f"on_exhausted must be 'drop' or 'raise', got {on_exhausted!r}"
        )
    for _ in range(max_attempts):
        x, y, yaw = sample_candidate(rng)
        if index.fits(x, y, radius + clearance):
            index.reserve(x, y, radius + clearance)
            return float(x), float(y), float(yaw)
    if on_exhausted == "raise":
        raise PlacementError(
            f"could not place {what} after {max_attempts} attempts "
            f"(footprint radius {radius:.2f} m + clearance {clearance:.2f} m)"
        )
    return None
