"""The declarative scenario grammar and its seeded compiler.

A :class:`ScenarioSpec` describes a *distribution over scenes* — which
actors appear, how many, where, facing which way, observed from which
(possibly sampled) viewpoints through which (possibly mixed) sensor rigs.
:func:`compile_scenario` collapses one spec + one seed into a concrete
:class:`~repro.scene.world.World` with named observer poses and per-observer
beam patterns.  Compilation is a pure function of ``(spec, seed)``:

* every random draw flows from ``np.random.default_rng`` streams keyed by
  :func:`repro.runtime.derive_seed` (CRC-32, process-stable), one stream
  per construct, so adding a construct never reshuffles the others and the
  same ``(spec, seed)`` produces byte-identical worlds in any process at
  any worker count;
* placement is rejection-sampled against a :class:`ClearanceIndex` with a
  deterministic bail-out (:mod:`repro.scenario.placement`), so compilation
  always terminates and never emits interpenetrating actors.

Specs with ``legacy_seed=True`` instead share a single
``np.random.default_rng(seed)`` stream across constructs in order — the
exact draw discipline of the hand-coded builders in
:mod:`repro.scene.layouts` — which is what lets the point-mass specs in
:mod:`repro.scenario.families` regenerate those layouts bit for bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.transforms import Pose
from repro.runtime.seeding import derive_seed
from repro.scenario.placement import (
    ClearanceIndex,
    PlacementError,
    bev_radius,
    place_with_clearance,
    scatter_cars,
)
from repro.scene.objects import (
    Actor,
    make_building,
    make_car,
    make_cyclist,
    make_pedestrian,
    make_tree,
    make_truck,
    sample_car_dimensions,
)
from repro.scene.world import World
from repro.sensors.lidar import HDL_32E, HDL_64E, VLP_16, BeamPattern

__all__ = [
    "Dist",
    "Constant",
    "Uniform",
    "UniformInt",
    "TruncNormal",
    "Choice",
    "as_dist",
    "PlacementRegion",
    "LaneRegion",
    "RectRegion",
    "RingRegion",
    "Scatter",
    "OccupancyGrid",
    "FixedActors",
    "ActorDist",
    "Convoy",
    "OccludedGroup",
    "ViewpointSpec",
    "RigDist",
    "BEAM_PATTERNS",
    "FUZZ_16",
    "FUZZ_64",
    "ScenarioSpec",
    "CompiledScenario",
    "compile_scenario",
    "compile_world",
    "world_fingerprint",
    "scenario_fingerprint",
]

#: KITTI velodyne mounting height — observer LiDAR origins sit here.
SENSOR_HEIGHT = 1.73

#: Mass-fuzzing beam tables: the paper's 16/64-beam classes at half the
#: azimuth resolution, so a contract evaluation costs half the rays while
#: keeping the sparse-vs-dense contrast the beam-count contracts probe.
FUZZ_16 = BeamPattern("fuzz-16", tuple(np.linspace(-15.0, 15.0, 16)), 0.8, 100.0)
FUZZ_64 = BeamPattern("fuzz-64", tuple(np.linspace(-24.8, 2.0, 64)), 0.8, 120.0)

#: Named beam patterns a :class:`RigDist` can sample from.
BEAM_PATTERNS: dict[str, BeamPattern] = {
    "vlp16": VLP_16,
    "hdl32": HDL_32E,
    "hdl64": HDL_64E,
    "fuzz16": FUZZ_16,
    "fuzz64": FUZZ_64,
}


def beam_pattern(name: str) -> BeamPattern:
    """Look up a named beam pattern, failing fast with the valid set."""
    try:
        return BEAM_PATTERNS[name]
    except KeyError:
        raise KeyError(
            f"unknown beam pattern {name!r} "
            f"(valid patterns: {', '.join(sorted(BEAM_PATTERNS))})"
        ) from None


# ---------------------------------------------------------------------------
# Distributions
# ---------------------------------------------------------------------------


class Dist:
    """A scalar distribution the grammar can sample from.

    Subclasses implement :meth:`sample`; :meth:`sample_int` adapts any
    distribution to count-valued fields (rounding, except where a subclass
    has an exact integer law).
    """

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value from the distribution."""
        raise NotImplementedError

    def sample_int(self, rng: np.random.Generator) -> int:
        """Sample and round to the nearest integer."""
        return int(round(self.sample(rng)))


@dataclass(frozen=True)
class Constant(Dist):
    """A point mass: always ``value`` and never consumes randomness.

    The degenerate distribution the parity specs are built from — a spec
    whose every field is a :class:`Constant` compiles to the same world at
    every seed position a richer spec would have drawn at.
    """

    value: float

    def sample(self, rng: np.random.Generator) -> float:
        """Return the point mass; ``rng`` is untouched."""
        return float(self.value)

    def sample_int(self, rng: np.random.Generator) -> int:
        """Return the point mass rounded; ``rng`` is untouched."""
        return int(round(self.value))


@dataclass(frozen=True)
class Uniform(Dist):
    """Continuous uniform on ``[lo, hi]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"Uniform needs lo <= hi, got [{self.lo}, {self.hi}]")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw uniformly from ``[lo, hi]``."""
        return float(rng.uniform(self.lo, self.hi))


@dataclass(frozen=True)
class UniformInt(Dist):
    """Integer uniform on ``{lo, ..., hi}`` inclusive (for counts)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(
                f"UniformInt needs lo <= hi, got [{self.lo}, {self.hi}]"
            )

    def sample(self, rng: np.random.Generator) -> float:
        """Draw an integer and return it as a float."""
        return float(self.sample_int(rng))

    def sample_int(self, rng: np.random.Generator) -> int:
        """Draw uniformly from ``{lo, ..., hi}`` inclusive."""
        return int(rng.integers(self.lo, self.hi + 1))


@dataclass(frozen=True)
class TruncNormal(Dist):
    """A normal draw clipped to ``[lo, hi]`` (one draw, then clip).

    Clipping (rather than resampling) keeps the draw count fixed at one,
    so a tightened bound never reshuffles downstream randomness.
    """

    mean: float
    std: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.std < 0:
            raise ValueError("std must be non-negative")
        if self.hi < self.lo:
            raise ValueError(
                f"TruncNormal needs lo <= hi, got [{self.lo}, {self.hi}]"
            )

    def sample(self, rng: np.random.Generator) -> float:
        """Draw once from the normal, clip to ``[lo, hi]``."""
        return float(np.clip(rng.normal(self.mean, self.std), self.lo, self.hi))


@dataclass(frozen=True)
class Choice(Dist):
    """A categorical draw over ``options`` with optional ``weights``.

    Options may be any hashable values (beam-pattern names, yaw constants);
    :meth:`sample` requires numeric options, :meth:`pick` returns the raw
    option.
    """

    options: tuple
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.options:
            raise ValueError("Choice needs at least one option")
        if self.weights is not None:
            if len(self.weights) != len(self.options):
                raise ValueError("weights must match options length")
            if min(self.weights) < 0 or sum(self.weights) <= 0:
                raise ValueError("weights must be non-negative with a positive sum")

    def pick(self, rng: np.random.Generator):
        """Draw one option (any type)."""
        if self.weights is None:
            return self.options[int(rng.integers(0, len(self.options)))]
        probs = np.asarray(self.weights, dtype=float)
        probs = probs / probs.sum()
        return self.options[int(rng.choice(len(self.options), p=probs))]

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one option and coerce it to a float."""
        return float(self.pick(rng))


def as_dist(value) -> Dist:
    """Coerce a literal number to a :class:`Constant`; pass dists through."""
    if isinstance(value, Dist):
        return value
    if isinstance(value, (int, float)):
        return Constant(float(value))
    raise TypeError(f"expected a number or Dist, got {type(value).__name__}")


# ---------------------------------------------------------------------------
# Placement regions
# ---------------------------------------------------------------------------


class PlacementRegion:
    """A distribution over ``(x, y, yaw)`` slots.

    ``sample_slot(rng)`` draws one candidate; the yaw is the region's
    natural heading at that position (lane direction, ring tangent), which
    constructs may further jitter.
    """

    def sample_slot(self, rng: np.random.Generator) -> tuple[float, float, float]:
        """Draw one ``(x, y, yaw)`` candidate slot."""
        raise NotImplementedError


@dataclass(frozen=True)
class LaneRegion(PlacementRegion):
    """A straight lane segment from ``(x0, y0)`` to ``(x1, y1)``.

    Positions are uniform along the segment with gaussian lateral jitter;
    the yaw is the segment heading (set ``reverse=True`` for oncoming
    traffic without flipping the endpoints).
    """

    x0: float
    y0: float
    x1: float
    y1: float
    lateral_std: float = 0.0
    reverse: bool = False

    def sample_slot(self, rng: np.random.Generator) -> tuple[float, float, float]:
        """Uniform along the segment, gaussian lateral, yaw = heading."""
        t = rng.uniform(0.0, 1.0)
        dx, dy = self.x1 - self.x0, self.y1 - self.y0
        heading = float(np.arctan2(dy, dx))
        if self.reverse:
            heading = float(np.arctan2(-dy, -dx))
        x = self.x0 + t * dx
        y = self.y0 + t * dy
        if self.lateral_std > 0:
            offset = rng.normal(0.0, self.lateral_std)
            x += -np.sin(heading) * offset
            y += np.cos(heading) * offset
        return float(x), float(y), heading


@dataclass(frozen=True)
class RectRegion(PlacementRegion):
    """An axis-aligned rectangle; yaw drawn from ``yaw`` (default uniform)."""

    x0: float
    x1: float
    y0: float
    y1: float
    yaw: Dist = field(default_factory=lambda: Uniform(-np.pi, np.pi))

    def sample_slot(self, rng: np.random.Generator) -> tuple[float, float, float]:
        """Uniform in the rectangle; yaw from the ``yaw`` dist."""
        x = rng.uniform(self.x0, self.x1)
        y = rng.uniform(self.y0, self.y1)
        return float(x), float(y), float(self.yaw.sample(rng))


@dataclass(frozen=True)
class RingRegion(PlacementRegion):
    """An arc of a circle; yaw is the (counter-clockwise) tangent.

    ``radius_std`` blurs positions radially; ``angle0``/``angle1`` bound
    the arc in radians (full circle by default).
    """

    cx: float
    cy: float
    radius: float
    angle0: float = -np.pi
    angle1: float = np.pi
    radius_std: float = 0.0

    def sample_slot(self, rng: np.random.Generator) -> tuple[float, float, float]:
        """Uniform angle on the arc; yaw is the CCW tangent."""
        angle = rng.uniform(self.angle0, self.angle1)
        radius = self.radius
        if self.radius_std > 0:
            radius += rng.normal(0.0, self.radius_std)
        x = self.cx + radius * np.cos(angle)
        y = self.cy + radius * np.sin(angle)
        return float(x), float(y), float(angle + np.pi / 2.0)


# ---------------------------------------------------------------------------
# Constructs
# ---------------------------------------------------------------------------


class _BuildContext:
    """Mutable state threaded through one compilation."""

    def __init__(self, spec: "ScenarioSpec", viewpoints: dict[str, Pose]) -> None:
        self.spec = spec
        self.viewpoints = viewpoints
        self.index = ClearanceIndex()
        self.dropped: dict[str, int] = {}

    def record_drop(self, prefix: str) -> None:
        self.dropped[prefix] = self.dropped.get(prefix, 0) + 1


class Construct:
    """One ordered element of a spec: materialises a batch of actors."""

    def materialize(
        self, rng: np.random.Generator, ctx: _BuildContext
    ) -> list[Actor]:
        """Sample this construct's actors into the world under build."""
        raise NotImplementedError


def _make_actor(
    kind: str,
    x: float,
    y: float,
    yaw: float,
    dims: tuple[float, float, float] | None,
    name: str,
) -> Actor:
    """Build one actor of a named kind at a pose (dims optional)."""
    if kind == "car":
        length, width, height = dims or (4.2, 1.8, 1.6)
        return make_car(x, y, yaw, length, width, height, name=name)
    if kind == "truck":
        length, width, height = dims or (8.5, 2.5, 3.2)
        return make_truck(x, y, yaw, length=length, width=width,
                          height=height, name=name)
    if kind == "pedestrian":
        height = dims[2] if dims else 1.8
        return make_pedestrian(x, y, height=height, name=name)
    if kind == "cyclist":
        return make_cyclist(x, y, yaw, name=name)
    if kind == "building":
        length, width, height = dims or (20.0, 12.0, 8.0)
        return make_building(x, y, length=length, width=width,
                             height=height, yaw=yaw, name=name)
    if kind == "tree":
        height = dims[2] if dims else 6.0
        return make_tree(x, y, height=height, name=name)
    raise ValueError(
        f"unknown actor kind {kind!r} (valid kinds: building, car, cyclist, "
        "pedestrian, tree, truck)"
    )


#: Fixed BEV footprints used for clearance checks of non-car kinds.
_KIND_FOOTPRINT = {
    "car": (4.2, 1.8),
    "truck": (8.5, 2.5),
    "pedestrian": (0.5, 0.5),
    "cyclist": (1.8, 0.6),
    "building": (20.0, 12.0),
    "tree": (0.8, 0.8),
}


@dataclass(frozen=True)
class Scatter(Construct):
    """Cars on an explicit slot list — the layouts' historical scatter.

    A degenerate (point-mass) construct: the slot list is fixed, only the
    per-slot dimension/jitter draws consume randomness, in exactly the
    order :func:`repro.scenario.placement.scatter_cars` has always drawn
    them.  Used by the parity specs; generated actors are still reserved
    in the clearance index so later generative constructs avoid them.
    """

    slots: tuple[tuple[float, float, float], ...]
    prefix: str = "car"

    def materialize(self, rng, ctx) -> list[Actor]:
        """Scatter cars on the fixed slots and reserve them."""
        cars = scatter_cars(rng, list(self.slots), self.prefix)
        for car in cars:
            ctx.index.reserve_actor(car)
        return cars


@dataclass(frozen=True)
class OccupancyGrid(Construct):
    """Parking-lot rows: a grid of stalls, each occupied with ``occupancy``.

    Draws one occupancy coin per stall (always, so the draw sequence is a
    pure function of the grid shape) and then scatters cars on the occupied
    stalls — the exact discipline of the hand-coded ``parking_lot`` layout,
    which its point-mass spec reproduces bit for bit.  Even rows face
    ``yaw_even``, odd rows ``yaw_odd`` (nose-in/nose-out alternation).
    """

    rows: int
    cols: int
    occupancy: float
    origin_x: float = 10.0
    origin_y: float = 6.0
    row_pitch: float = 11.0
    col_pitch: float = 3.0
    yaw_even: float = np.pi / 2
    yaw_odd: float = -np.pi / 2
    prefix: str = "parked"

    def materialize(self, rng, ctx) -> list[Actor]:
        """Coin-flip each stall, then scatter cars on the occupied ones."""
        slots: list[tuple[float, float, float]] = []
        for r in range(self.rows):
            for c in range(self.cols):
                if rng.random() > self.occupancy:
                    continue
                x = self.origin_x + c * self.col_pitch
                y = self.origin_y + r * self.row_pitch
                yaw = self.yaw_even if r % 2 == 0 else self.yaw_odd
                slots.append((x, y, yaw))
        cars = scatter_cars(rng, slots, self.prefix)
        for car in cars:
            ctx.index.reserve_actor(car)
        return cars


@dataclass(frozen=True)
class FixedActors(Construct):
    """Literal actors (occluder trucks, buildings, trees) — no randomness."""

    actors: tuple[Actor, ...]

    def materialize(self, rng, ctx) -> list[Actor]:
        """Reserve and return the literal actors; ``rng`` is untouched."""
        for actor in self.actors:
            ctx.index.reserve_actor(actor)
        return list(self.actors)


@dataclass(frozen=True)
class ActorDist(Construct):
    """``count`` actors of one kind rejection-sampled into a region.

    The generative workhorse: per actor, dimensions are drawn first (cars
    sample KITTI-like stats unless ``dims`` pins them), then candidate
    positions from ``region`` until one clears every already-placed actor
    and viewpoint keep-out disc.  Exhausted budgets follow the spec's
    deterministic bail-out (drop-and-count or raise).  ``yaw_std`` jitters
    the region's natural heading.
    """

    kind: str
    count: Dist
    region: PlacementRegion
    prefix: str
    yaw_std: float = 0.03
    dims: tuple[Dist, Dist, Dist] | None = None

    def materialize(self, rng, ctx) -> list[Actor]:
        """Draw dims, then rejection-sample a clear slot per actor."""
        spec = ctx.spec
        n = max(0, self.count.sample_int(rng))
        actors: list[Actor] = []
        for i in range(n):
            if self.dims is not None:
                dims = tuple(d.sample(rng) for d in self.dims)
            elif self.kind == "car":
                dims = sample_car_dimensions(rng)
            else:
                length, width = _KIND_FOOTPRINT[self.kind]
                dims = None
            if dims is not None:
                radius = bev_radius(dims[0], dims[1])
            else:
                radius = bev_radius(*_KIND_FOOTPRINT[self.kind])

            def candidate(r, _region=self.region, _std=self.yaw_std):
                x, y, yaw = _region.sample_slot(r)
                if _std > 0:
                    yaw += r.normal(0.0, _std)
                return x, y, yaw

            placed = place_with_clearance(
                rng,
                candidate,
                ctx.index,
                radius,
                spec.clearance_m,
                spec.max_attempts,
                on_exhausted=spec.on_exhausted,
                what=f"{self.prefix}-{i} ({self.kind})",
            )
            if placed is None:
                ctx.record_drop(self.prefix)
                continue
            x, y, yaw = placed
            actors.append(
                _make_actor(self.kind, x, y, yaw, dims, f"{self.prefix}-{i}")
            )
        return actors


@dataclass(frozen=True)
class Convoy(Construct):
    """A line of vehicles: a lead position, then followers at spacing gaps.

    The lead slot comes from ``region``; each follower sits ``spacing``
    metres behind the previous vehicle along the convoy heading (one
    spacing draw per gap).  Followers that would land inside another actor
    are dropped (a convoy tail meeting cross traffic shortens rather than
    overlaps).
    """

    count: Dist
    region: PlacementRegion
    prefix: str = "convoy"
    kind: str = "car"
    spacing: Dist = field(default_factory=lambda: Uniform(7.0, 10.0))

    def materialize(self, rng, ctx) -> list[Actor]:
        """Place the lead with clearance, trail followers behind it."""
        spec = ctx.spec
        n = max(0, self.count.sample_int(rng))
        if n == 0:
            return []
        actors: list[Actor] = []
        lead = place_with_clearance(
            rng,
            lambda r: self.region.sample_slot(r),
            ctx.index,
            bev_radius(*_KIND_FOOTPRINT[self.kind]),
            spec.clearance_m,
            spec.max_attempts,
            on_exhausted=spec.on_exhausted,
            what=f"{self.prefix}-0 ({self.kind})",
        )
        if lead is None:
            ctx.record_drop(self.prefix)
            return []
        x, y, yaw = lead
        back = np.array([-np.cos(yaw), -np.sin(yaw)])
        for i in range(n):
            if i > 0:
                gap = max(float(self.spacing.sample(rng)), 5.0)
                x, y = np.array([x, y]) + back * gap
                radius = bev_radius(*_KIND_FOOTPRINT[self.kind])
                if not ctx.index.fits(x, y, radius + spec.clearance_m):
                    ctx.record_drop(self.prefix)
                    continue
                ctx.index.reserve(x, y, radius + spec.clearance_m)
            dims = (
                sample_car_dimensions(rng) if self.kind == "car" else None
            )
            actors.append(
                _make_actor(
                    self.kind, float(x), float(y), yaw, dims,
                    f"{self.prefix}-{i}",
                )
            )
        return actors


@dataclass(frozen=True)
class OccludedGroup(Construct):
    """Actors hidden from one viewpoint behind a purpose-placed occluder.

    Samples an anchor in ``region``, drops an occluder (broadside to the
    sight line) at ``frac`` of the way from the named viewpoint to the
    anchor, then scatters ``count`` hidden actors around the anchor — the
    AutoCast-style geometry where cooperative perception must help: the
    named viewpoint cannot see the hidden actors, any differently-placed
    cooperator can.
    """

    viewpoint: str
    region: PlacementRegion
    count: Dist
    hidden_kind: str = "pedestrian"
    occluder_kind: str = "truck"
    frac: Dist = field(default_factory=lambda: Uniform(0.5, 0.7))
    spread: float = 1.2
    prefix: str = "hidden"
    occluder_dims: tuple[Dist, Dist, Dist] | None = None

    def materialize(self, rng, ctx) -> list[Actor]:
        """Drop an occluder on the sight line, huddle actors behind it."""
        spec = ctx.spec
        if self.viewpoint not in ctx.viewpoints:
            raise KeyError(
                f"OccludedGroup viewpoint {self.viewpoint!r} not in spec "
                f"(valid viewpoints: {', '.join(sorted(ctx.viewpoints))})"
            )
        eye = ctx.viewpoints[self.viewpoint].position[:2]
        if self.occluder_dims is not None:
            odims = tuple(d.sample(rng) for d in self.occluder_dims)
            occ_radius = bev_radius(odims[0], odims[1])
        else:
            odims = None
            occ_radius = bev_radius(*_KIND_FOOTPRINT[self.occluder_kind])
        # The anchor itself is virtual (the hidden actors' rally point), so
        # only the derived occluder position is clearance-checked — checking
        # a truck-sized disc at the anchor would wall the hidden actors out
        # of their own huddle.
        found = None
        for _ in range(spec.max_attempts):
            ax, ay, _ = self.region.sample_slot(rng)
            frac = float(np.clip(self.frac.sample(rng), 0.1, 0.9))
            sight = np.array([ax, ay]) - eye
            ox, oy = eye + frac * sight
            if ctx.index.fits(ox, oy, occ_radius + spec.clearance_m):
                found = (float(ax), float(ay), float(ox), float(oy), sight)
                break
        if found is None:
            if spec.on_exhausted == "raise":
                raise PlacementError(
                    f"could not place {self.prefix}-occluder after "
                    f"{spec.max_attempts} attempts"
                )
            ctx.record_drop(self.prefix)
            return []
        ax, ay, ox, oy, sight = found
        heading = float(np.arctan2(sight[1], sight[0]))
        actors = [
            _make_actor(
                self.occluder_kind,
                ox,
                oy,
                heading + np.pi / 2.0,  # broadside to the sight line
                odims,
                f"{self.prefix}-occluder",
            )
        ]
        ctx.index.reserve_actor(actors[0])
        n = max(1, self.count.sample_int(rng))
        radius = bev_radius(*_KIND_FOOTPRINT[self.hidden_kind])
        for i in range(n):
            placed = place_with_clearance(
                rng,
                lambda r: (
                    ax + r.normal(0.0, self.spread),
                    ay + r.normal(0.0, self.spread),
                    r.uniform(-np.pi, np.pi),
                ),
                ctx.index,
                radius,
                min(spec.clearance_m, 0.3),  # hidden actors huddle close
                spec.max_attempts,
                on_exhausted=spec.on_exhausted,
                what=f"{self.prefix}-{i} ({self.hidden_kind})",
            )
            if placed is None:
                ctx.record_drop(self.prefix)
                continue
            x, y, yaw = placed
            actors.append(
                _make_actor(self.hidden_kind, x, y, yaw, None,
                            f"{self.prefix}-{i}")
            )
        return actors


# ---------------------------------------------------------------------------
# Viewpoints, rigs, spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ViewpointSpec:
    """One observer: a named pose whose coordinates may be distributions."""

    name: str
    x: Dist
    y: Dist
    yaw: Dist = field(default_factory=lambda: Constant(0.0))

    @classmethod
    def fixed(cls, name: str, x: float, y: float, yaw: float = 0.0
              ) -> "ViewpointSpec":
        """A point-mass viewpoint (the layouts' fixed observer poses)."""
        return cls(name, Constant(x), Constant(y), Constant(yaw))

    def sample(self, rng: np.random.Generator) -> Pose:
        """Draw the observer pose (z pinned at sensor height)."""
        return Pose(
            np.array([
                self.x.sample(rng), self.y.sample(rng), SENSOR_HEIGHT
            ]),
            yaw=float(self.yaw.sample(rng)),
        )


@dataclass(frozen=True)
class RigDist:
    """Per-viewpoint sensor-rig distribution over named beam patterns.

    ``pattern`` is a pattern name (point mass) or a :class:`Choice` over
    names — ``Choice(("fuzz16", "fuzz64"))`` models the paper's mixed
    16/64-beam fleets.  One draw per viewpoint, in viewpoint order.
    """

    pattern: str | Choice = "fuzz16"

    def __post_init__(self) -> None:
        for name in self.pattern_names():
            beam_pattern(name)  # fail fast on unknown names

    def pattern_names(self) -> tuple[str, ...]:
        """Every pattern name this distribution can produce."""
        if isinstance(self.pattern, Choice):
            return tuple(str(o) for o in self.pattern.options)
        return (str(self.pattern),)

    def sample(self, rng: np.random.Generator) -> BeamPattern:
        """Draw one beam pattern from the registry."""
        if isinstance(self.pattern, Choice):
            return beam_pattern(str(self.pattern.pick(rng)))
        return beam_pattern(str(self.pattern))


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative distribution over worlds, observers and rigs.

    Attributes:
        name: scenario identifier (family name or layout name).
        constructs: ordered actor-producing elements.
        viewpoints: named observer pose distributions.
        rig: beam-pattern distribution, sampled per viewpoint.
        receiver: the viewpoint hosting cooperative fusion (default: the
            first one).
        clearance_m: minimum disc gap between generatively placed actors.
        viewpoint_clearance_m: keep-out radius around each observer.
        max_attempts: rejection-sampling budget per actor.
        on_exhausted: deterministic bail-out — ``"drop"`` (record and
            continue) or ``"raise"`` (:class:`PlacementError`).
        legacy_seed: share one ``default_rng(seed)`` stream across
            constructs (the hand-coded layouts' draw discipline) instead
            of per-construct :func:`derive_seed` streams.
    """

    name: str
    constructs: tuple[Construct, ...]
    viewpoints: tuple[ViewpointSpec, ...]
    rig: RigDist = field(default_factory=RigDist)
    receiver: str | None = None
    clearance_m: float = 0.6
    viewpoint_clearance_m: float = 3.0
    max_attempts: int = 30
    on_exhausted: str = "drop"
    legacy_seed: bool = False

    def __post_init__(self) -> None:
        if not self.viewpoints:
            raise ValueError("a scenario needs at least one viewpoint")
        names = [v.name for v in self.viewpoints]
        if len(set(names)) != len(names):
            raise ValueError("viewpoint names must be unique")
        if self.receiver is not None and self.receiver not in names:
            raise ValueError(
                f"receiver {self.receiver!r} is not a viewpoint "
                f"(valid viewpoints: {', '.join(sorted(names))})"
            )
        if self.on_exhausted not in ("drop", "raise"):
            raise ValueError("on_exhausted must be 'drop' or 'raise'")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    @property
    def receiver_name(self) -> str:
        """The fusion-hosting viewpoint (explicit or the first)."""
        return self.receiver or self.viewpoints[0].name


@dataclass(frozen=True)
class CompiledScenario:
    """One concrete sample of a spec: world + observers + rigs.

    Attributes:
        name: the spec's name.
        seed: the compile seed.
        world: the sampled world.
        viewpoints: observer name -> sampled pose.
        rigs: observer name -> sampled beam pattern.
        receiver: the fusion-hosting observer.
        dropped: construct prefix -> actors dropped at placement bail-out.
    """

    name: str
    seed: int
    world: World
    viewpoints: dict[str, Pose]
    rigs: dict[str, BeamPattern]
    receiver: str
    dropped: dict[str, int] = field(default_factory=dict)

    def layout(self):
        """Bridge to the layout-consuming APIs (:class:`Layout`)."""
        from repro.scene.layouts import Layout

        return Layout(self.name, self.world, dict(self.viewpoints))

    def fingerprint(self) -> str:
        """Process-stable digest of everything compiled (see module docs)."""
        return scenario_fingerprint(self)


def compile_scenario(spec: ScenarioSpec, seed: int) -> CompiledScenario:
    """Sample one concrete scenario — a pure function of ``(spec, seed)``.

    Viewpoints are sampled first (their keep-out discs constrain actor
    placement), then each construct in order, then one rig per viewpoint.
    In the default mode each stage draws from its own
    :func:`~repro.runtime.derive_seed`-keyed stream; ``legacy_seed`` specs
    share a single ``default_rng(seed)`` in stage order, matching the
    hand-coded layout builders draw for draw.
    """
    if spec.legacy_seed:
        shared = np.random.default_rng(seed)
        vp_rng = construct_rng = rig_rng = shared
        construct_rngs = [shared] * len(spec.constructs)
    else:
        vp_rng = np.random.default_rng(
            derive_seed(seed, "scenario", spec.name, "viewpoints")
        )
        construct_rngs = [
            np.random.default_rng(
                derive_seed(seed, "scenario", spec.name, "construct", i)
            )
            for i in range(len(spec.constructs))
        ]
        rig_rng = np.random.default_rng(
            derive_seed(seed, "scenario", spec.name, "rigs")
        )

    viewpoints = {v.name: v.sample(vp_rng) for v in spec.viewpoints}
    ctx = _BuildContext(spec, viewpoints)
    if not spec.legacy_seed:
        # Observers own a keep-out disc: no sampled actor may sit on a
        # sensor.  Legacy specs skip this — the hand-coded layouts place
        # by fixed slots and never clearance-check.
        for pose in viewpoints.values():
            ctx.index.reserve(
                pose.position[0], pose.position[1], spec.viewpoint_clearance_m
            )
    actors: list[Actor] = []
    for construct, rng in zip(spec.constructs, construct_rngs):
        actors.extend(construct.materialize(rng, ctx))
    world = World(tuple(actors))
    rigs = {v.name: spec.rig.sample(rig_rng) for v in spec.viewpoints}
    return CompiledScenario(
        name=spec.name,
        seed=int(seed),
        world=world,
        viewpoints=viewpoints,
        rigs=rigs,
        receiver=spec.receiver_name,
        dropped=dict(ctx.dropped),
    )


def compile_world(spec: ScenarioSpec, seed: int) -> World:
    """Compile and return just the sampled :class:`World`."""
    return compile_scenario(spec, seed).world


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def _hash_floats(h, values) -> None:
    h.update("|".join(float(v).hex() for v in values).encode("ascii"))


def world_fingerprint(world: World) -> str:
    """A process-stable digest of a world's exact contents.

    Hashes every actor's name, kind, reflectance and full box geometry via
    ``float.hex`` (exact, no rounding), so two worlds share a fingerprint
    iff they are bit-identical — the equality the parity and determinism
    tests assert without comparing numpy arrays field by field.
    """
    h = hashlib.sha256()
    _hash_floats(h, [world.ground_z])
    for actor in world.actors:
        h.update(
            f"|{actor.name}|{actor.kind.value}|".encode("utf-8")
        )
        _hash_floats(h, [actor.reflectance])
        box = actor.box
        _hash_floats(
            h,
            list(box.center) + [box.length, box.width, box.height, box.yaw],
        )
    return h.hexdigest()


def scenario_fingerprint(compiled: CompiledScenario) -> str:
    """World fingerprint extended with viewpoints, rigs and drop counts."""
    h = hashlib.sha256()
    h.update(world_fingerprint(compiled.world).encode("ascii"))
    h.update(f"|{compiled.name}|{compiled.receiver}|".encode("utf-8"))
    for name in sorted(compiled.viewpoints):
        pose = compiled.viewpoints[name]
        h.update(f"|vp:{name}|".encode("utf-8"))
        _hash_floats(
            h, list(pose.position) + [pose.yaw, pose.pitch, pose.roll]
        )
    for name in sorted(compiled.rigs):
        h.update(f"|rig:{name}:{compiled.rigs[name].name}|".encode("utf-8"))
    for prefix in sorted(compiled.dropped):
        h.update(f"|drop:{prefix}:{compiled.dropped[prefix]}|".encode("utf-8"))
    return h.hexdigest()
