"""Declarative scenario DSL, family library, and seeded mass fuzzing.

The ROADMAP's "as many scenarios as you can imagine" item as a generator,
not a file: :mod:`repro.scenario.dsl` is a small Scenic-style grammar
(distributions over actor counts, placements, occluders and sensor rigs)
whose :func:`~repro.scenario.dsl.compile_scenario` collapses a spec + seed
into a concrete :class:`~repro.scene.world.World` with observer poses and
beam patterns — a pure, process-stable function of ``(spec, seed)``.
:mod:`repro.scenario.families` ships five generative families plus
point-mass specs that reproduce every hand-coded layout byte for byte,
and :mod:`repro.scenario.fuzz` fans seeded sweeps over the worker pool
with per-family recall contracts and violation shrinking.

Exports resolve lazily (PEP 562): :mod:`repro.scene.layouts` imports the
shared placement sampler from this package, so an eager ``from .dsl
import *`` here would close an import cycle through
:mod:`repro.sensors.lidar`.  Lazy resolution keeps
``repro.scenario.placement`` importable mid-way through the scene
package's own import.
"""

import importlib

_EXPORTS = {
    # dsl
    "ActorDist": "repro.scenario.dsl",
    "BEAM_PATTERNS": "repro.scenario.dsl",
    "Choice": "repro.scenario.dsl",
    "CompiledScenario": "repro.scenario.dsl",
    "Constant": "repro.scenario.dsl",
    "Convoy": "repro.scenario.dsl",
    "Dist": "repro.scenario.dsl",
    "FixedActors": "repro.scenario.dsl",
    "LaneRegion": "repro.scenario.dsl",
    "OccludedGroup": "repro.scenario.dsl",
    "OccupancyGrid": "repro.scenario.dsl",
    "RectRegion": "repro.scenario.dsl",
    "RigDist": "repro.scenario.dsl",
    "RingRegion": "repro.scenario.dsl",
    "Scatter": "repro.scenario.dsl",
    "ScenarioSpec": "repro.scenario.dsl",
    "TruncNormal": "repro.scenario.dsl",
    "Uniform": "repro.scenario.dsl",
    "UniformInt": "repro.scenario.dsl",
    "ViewpointSpec": "repro.scenario.dsl",
    "beam_pattern": "repro.scenario.dsl",
    "compile_scenario": "repro.scenario.dsl",
    "compile_world": "repro.scenario.dsl",
    "scenario_fingerprint": "repro.scenario.dsl",
    "world_fingerprint": "repro.scenario.dsl",
    # families
    "FAMILIES": "repro.scenario.families",
    "FAMILY_CONTRACTS": "repro.scenario.families",
    "LAYOUT_SEEDS": "repro.scenario.families",
    "family": "repro.scenario.families",
    "layout_parity_specs": "repro.scenario.families",
    # fuzz
    "CONTRACT_NAMES": "repro.scenario.fuzz",
    "ContractResult": "repro.scenario.fuzz",
    "FamilyReport": "repro.scenario.fuzz",
    "build_case": "repro.scenario.fuzz",
    "compile_sweep": "repro.scenario.fuzz",
    "determinism_digests": "repro.scenario.fuzz",
    "fuzz_family": "repro.scenario.fuzz",
    "fuzz_report": "repro.scenario.fuzz",
    "scenario_seed": "repro.scenario.fuzz",
    "shrink_world": "repro.scenario.fuzz",
    "sweep_digest": "repro.scenario.fuzz",
    # placement
    "ClearanceIndex": "repro.scenario.placement",
    "PlacementError": "repro.scenario.placement",
    "bev_radius": "repro.scenario.placement",
    "place_with_clearance": "repro.scenario.placement",
    "scatter_cars": "repro.scenario.placement",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.scenario' has no attribute {name!r}"
        ) from None
    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
