"""Seeded mass scenario fuzzing with per-family recall contracts.

The harness fans thousands of compiled scenarios over the
:mod:`repro.runtime` worker pool and checks property-based contracts per
family:

* ``fusion_never_hurts`` — on occlusion-by-construction families, the
  cooperative cloud's detection count is at least the receiver's own on
  every sampled scenario (AutoCast's promise, fuzzed instead of curated).
* ``monotone_beam`` — pooled over the sampled scenarios, a 64-beam fleet
  detects at least as many targets as a 16-beam fleet on identical scenes
  (the paper's Fig. 4 vs Fig. 7 contrast as an inequality).
* ``no_crash`` — compile, scan, fuse and detect survive a randomized
  :meth:`~repro.faults.plan.FaultPlan.chaos` schedule (blackouts, GPS
  dropouts, IMU glitches) without raising.

Every scenario is a pure function of ``(family, base_seed, index)`` via
:func:`scenario_seed`, so sweeps are reproducible, bit-identical at any
worker count (the compile sweep digest is asserted at workers 1 vs N),
and every violation names a replayable seed.  When a contract fails, the
harness greedily shrinks the offending world (:func:`shrink_world`) and
reports the minimal failing seed and actor set.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import CooperativeCase
from repro.detection.spod import SPOD
from repro.eval.experiments import run_case
from repro.faults.plan import FaultPlan
from repro.runtime import (
    derive_seed,
    fork_available,
    parallel_map,
    resolve_workers,
)
from repro.scenario.dsl import (
    CompiledScenario,
    ScenarioSpec,
    beam_pattern,
    compile_scenario,
    scenario_fingerprint,
)
from repro.scenario.families import FAMILY_CONTRACTS, family
from repro.scene.world import World
from repro.sensors.gps import GpsSkew
from repro.sensors.lidar import LidarModel
from repro.sensors.rig import SensorRig

__all__ = [
    "CONTRACT_NAMES",
    "scenario_seed",
    "build_case",
    "compile_sweep",
    "sweep_digest",
    "determinism_digests",
    "shrink_world",
    "ContractResult",
    "FamilyReport",
    "fuzz_family",
    "fuzz_report",
]

#: Every contract the harness knows how to evaluate.
CONTRACT_NAMES: tuple[str, ...] = (
    "fusion_never_hurts",
    "monotone_beam",
    "no_crash",
)


def scenario_seed(base_seed: int, family_name: str, index: int) -> int:
    """The compile seed of scenario ``index`` in one family sweep.

    Derived (CRC-32, process-stable) rather than sequential, so two
    families fuzzed from the same base seed explore unrelated scenarios.
    """
    return derive_seed(base_seed, "fuzz", family_name, index)


def build_case(
    compiled: CompiledScenario,
    pattern_override: str | None = None,
    fault_plan: FaultPlan | None = None,
    dropout: float = 0.05,
) -> CooperativeCase:
    """Scan a compiled scenario into a :class:`CooperativeCase`.

    Unlike :func:`repro.datasets.base.make_case` (one shared beam
    pattern), each observer scans through its *own* sampled rig — the
    mixed-fleet case the DSL models.  ``pattern_override`` forces every
    observer onto one named pattern (the monotone-beam contract's matched
    16- vs 64-beam pair); ``fault_plan`` resolves per-observer sensor
    faults at step 0 (the no-crash contract's chaos input).  All noise
    seeds derive from the compile seed, so the case is as replayable as
    the world.
    """
    observations = {}
    for name in compiled.viewpoints:
        pattern = (
            beam_pattern(pattern_override)
            if pattern_override is not None
            else compiled.rigs[name]
        )
        rig = SensorRig(
            lidar=LidarModel(pattern=pattern, dropout=dropout), name=name
        )
        faults = (
            fault_plan.sensor_faults(step=0, agent=name)
            if fault_plan is not None
            else None
        )
        observations[name] = rig.observe(
            compiled.world,
            compiled.viewpoints[name],
            seed=derive_seed(compiled.seed, "scan", name),
            gps_skew=GpsSkew.NONE,
            faults=faults,
        )
    names = list(compiled.viewpoints)
    positions = [compiled.viewpoints[n].position for n in names]
    delta_d = (
        float(np.linalg.norm(positions[0] - positions[1]))
        if len(names) >= 2
        else 0.0
    )
    return CooperativeCase(
        name=f"{compiled.name}/{compiled.seed}",
        scenario=compiled.name,
        world=compiled.world,
        observations=observations,
        receiver=compiled.receiver,
        delta_d=delta_d,
    )


# ---------------------------------------------------------------------------
# Compile sweep (structural pass over every scenario)
# ---------------------------------------------------------------------------

#: Spec published by the sweep drivers just before the pool forks; workers
#: inherit it copy-on-write, so tasks ship a bare index (same pattern as
#: ``repro.eval.experiments.run_cases``).
_FUZZ_SPEC: ScenarioSpec | None = None
_FUZZ_DETECTOR: SPOD | None = None
_FUZZ_CONTRACTS: tuple[str, ...] = ()
_FUZZ_BASE_SEED: int = 0


def _sweep_worker_init(
    spec: ScenarioSpec,
    base_seed: int,
    detector: SPOD | None = None,
    contracts: tuple[str, ...] = (),
) -> None:
    """Worker warm-up: install the fork-shared spec (and detector)."""
    global _FUZZ_SPEC, _FUZZ_BASE_SEED, _FUZZ_DETECTOR, _FUZZ_CONTRACTS
    _FUZZ_SPEC = spec
    _FUZZ_BASE_SEED = base_seed
    _FUZZ_CONTRACTS = contracts
    if contracts:
        _FUZZ_DETECTOR = detector if detector is not None else SPOD.pretrained()


def _compile_task(index: int) -> dict:
    """Compile one scenario and return its structural summary."""
    seed = scenario_seed(_FUZZ_BASE_SEED, _FUZZ_SPEC.name, index)
    compiled = compile_scenario(_FUZZ_SPEC, seed)
    return {
        "index": index,
        "seed": seed,
        "fingerprint": scenario_fingerprint(compiled),
        "actors": len(compiled.world.actors),
        "targets": len(compiled.world.targets()),
        "dropped": int(sum(compiled.dropped.values())),
    }


def compile_sweep(
    spec: ScenarioSpec,
    count: int,
    base_seed: int = 0,
    workers: int | None = None,
) -> list[dict]:
    """Compile ``count`` seeded scenarios, fanned over the worker pool.

    This is the structural pass: every scenario is compiled (placement
    constraints exercised, fingerprint taken) with no sensor or detector
    work, so thousands of scenarios cost seconds.  Results keep index
    order and are bit-identical at any worker count.
    """
    global _FUZZ_SPEC, _FUZZ_BASE_SEED
    workers = resolve_workers(workers)
    if workers <= 1 or count <= 1 or not fork_available():
        _sweep_worker_init(spec, base_seed)
        return [_compile_task(index) for index in range(count)]
    _FUZZ_SPEC = spec
    _FUZZ_BASE_SEED = base_seed
    try:
        return parallel_map(
            _compile_task,
            list(range(count)),
            workers=workers,
            initializer=_sweep_worker_init,
            initargs=(spec, base_seed),
        )
    finally:
        _FUZZ_SPEC = None


def sweep_digest(summaries: list[dict]) -> str:
    """One digest over a sweep's ordered scenario fingerprints."""
    h = hashlib.sha256()
    for summary in summaries:
        h.update(summary["fingerprint"].encode("ascii"))
    return h.hexdigest()


def determinism_digests(
    spec: ScenarioSpec,
    count: int,
    base_seed: int = 0,
    worker_counts: tuple[int, ...] = (1, 4),
) -> dict[str, str]:
    """The sweep digest at each worker count (they must all agree)."""
    return {
        str(workers): sweep_digest(
            compile_sweep(spec, count, base_seed, workers=workers)
        )
        for workers in worker_counts
    }


# ---------------------------------------------------------------------------
# Contracts (detection pass over a sampled subset)
# ---------------------------------------------------------------------------


def _contract_task(index: int) -> dict:
    """Measure every requested contract on one compiled scenario."""
    seed = scenario_seed(_FUZZ_BASE_SEED, _FUZZ_SPEC.name, index)
    compiled = compile_scenario(_FUZZ_SPEC, seed)
    out: dict = {"index": index, "seed": seed}
    if "fusion_never_hurts" in _FUZZ_CONTRACTS:
        result = run_case(build_case(compiled), _FUZZ_DETECTOR)
        out["fusion"] = {
            "receiver": result.counts[compiled.receiver],
            "cooper": result.counts["cooper"],
        }
    if "monotone_beam" in _FUZZ_CONTRACTS:
        sparse = run_case(
            build_case(compiled, pattern_override="fuzz16"), _FUZZ_DETECTOR
        )
        dense = run_case(
            build_case(compiled, pattern_override="fuzz64"), _FUZZ_DETECTOR
        )
        out["beam"] = {
            "cooper16": sparse.counts["cooper"],
            "cooper64": dense.counts["cooper"],
        }
    if "no_crash" in _FUZZ_CONTRACTS:
        try:
            run_case(
                build_case(
                    compiled,
                    fault_plan=FaultPlan.chaos(derive_seed(seed, "chaos")),
                ),
                _FUZZ_DETECTOR,
            )
            out["crash"] = None
        except Exception as exc:  # noqa: BLE001 - the contract IS "no raise"
            out["crash"] = f"{type(exc).__name__}: {exc}"
    return out


def _contract_sweep(
    spec: ScenarioSpec,
    indices: list[int],
    base_seed: int,
    contracts: tuple[str, ...],
    detector: SPOD | None,
    workers: int,
) -> list[dict]:
    """Run the detection contracts over the sampled scenario indices."""
    global _FUZZ_SPEC, _FUZZ_BASE_SEED
    if workers <= 1 or len(indices) <= 1 or not fork_available():
        _sweep_worker_init(spec, base_seed, detector, contracts)
        return [_contract_task(index) for index in indices]
    _FUZZ_SPEC = spec
    _FUZZ_BASE_SEED = base_seed
    try:
        return parallel_map(
            _contract_task,
            indices,
            workers=workers,
            initializer=_sweep_worker_init,
            initargs=(spec, base_seed, detector, contracts),
        )
    finally:
        _FUZZ_SPEC = None


def sample_indices(count: int, sample: int) -> list[int]:
    """Evenly spaced scenario indices for the detection pass.

    Deterministic (no RNG): the same ``(count, sample)`` always probes
    the same scenarios, so contract verdicts are replayable.
    """
    if sample >= count:
        return list(range(count))
    positions = np.linspace(0, count - 1, sample)
    return sorted({int(round(p)) for p in positions})


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def shrink_world(world: World, failing, protect: tuple[str, ...] = ()) -> World:
    """Greedily remove actors while ``failing(world)`` stays true.

    Classic delta-debugging at actor granularity: try deleting each actor
    in turn (skipping ``protect``); keep any deletion that preserves the
    failure, and repeat until a full pass removes nothing.  Deterministic
    — actors are tried in world order — and the result is 1-minimal: no
    single remaining actor can be removed without losing the failure.
    """
    if not failing(world):
        raise ValueError("shrink_world needs a failing world to start from")
    current = world
    changed = True
    while changed:
        changed = False
        for actor in list(current.actors):
            if actor.name in protect:
                continue
            candidate = World(
                tuple(a for a in current.actors if a.name != actor.name)
            )
            if failing(candidate):
                current = candidate
                changed = True
    return current


def _shrink_fusion_violation(
    compiled: CompiledScenario, detector: SPOD | None
) -> dict:
    """Shrink one fusion violation to its minimal failing actor set."""

    def failing(world: World) -> bool:
        if not world.actors:
            return False
        candidate = dataclasses.replace(compiled, world=world)
        result = run_case(build_case(candidate), detector)
        return result.counts["cooper"] < result.counts[compiled.receiver]

    minimal = shrink_world(compiled.world, failing)
    return {
        "seed": compiled.seed,
        "actors": [a.name for a in minimal.actors],
    }


# ---------------------------------------------------------------------------
# Family reports
# ---------------------------------------------------------------------------


@dataclass
class ContractResult:
    """One contract's verdict over a family's sampled scenarios.

    Attributes:
        name: contract identifier (see :data:`CONTRACT_NAMES`).
        checked: scenarios the contract evaluated.
        violations: per-violation detail (seed, index, measurements).
        minimal: shrunk reproduction of the worst violation (minimal
            failing seed + actor names), when one exists.
    """

    name: str
    checked: int
    violations: list[dict] = field(default_factory=list)
    minimal: dict | None = None

    @property
    def passed(self) -> bool:
        """True when no sampled scenario violated the contract."""
        return not self.violations

    def to_json(self) -> dict:
        """Serialize the verdict for the bench report."""
        return {
            "checked": self.checked,
            "violations": len(self.violations),
            "passed": self.passed,
            "detail": self.violations,
            "minimal": self.minimal,
        }


@dataclass
class FamilyReport:
    """One family fully fuzzed: structural sweep plus contract verdicts."""

    family: str
    count: int
    base_seed: int
    digest: str
    actors_mean: float
    targets_mean: float
    dropped_total: int
    sampled: list[int]
    contracts: list[ContractResult]

    @property
    def passed(self) -> bool:
        """True when every contract passed."""
        return all(c.passed for c in self.contracts)

    def to_json(self) -> dict:
        """Serialize the family report for the bench report."""
        return {
            "count": self.count,
            "seed": self.base_seed,
            "digest": self.digest,
            "actors_mean": round(self.actors_mean, 3),
            "targets_mean": round(self.targets_mean, 3),
            "dropped_total": self.dropped_total,
            "sampled": self.sampled,
            "passed": self.passed,
            "contracts": {c.name: c.to_json() for c in self.contracts},
        }


def _evaluate_contracts(
    spec: ScenarioSpec,
    measurements: list[dict],
    contracts: tuple[str, ...],
    detector: SPOD | None,
    shrink: bool,
) -> list[ContractResult]:
    """Turn per-scenario measurements into per-contract verdicts."""
    results: list[ContractResult] = []
    for name in contracts:
        result = ContractResult(name=name, checked=len(measurements))
        if name == "fusion_never_hurts":
            for m in measurements:
                if m["fusion"]["cooper"] < m["fusion"]["receiver"]:
                    result.violations.append(
                        {"index": m["index"], "seed": m["seed"], **m["fusion"]}
                    )
            if result.violations and shrink:
                worst = min(result.violations, key=lambda v: v["seed"])
                compiled = compile_scenario(spec, worst["seed"])
                result.minimal = _shrink_fusion_violation(compiled, detector)
        elif name == "monotone_beam":
            # Pooled over the sample: per-scenario beam comparisons are
            # noisy near the detection threshold, the family aggregate is
            # the paper's actual claim (Fig. 4 vs Fig. 7).
            total16 = sum(m["beam"]["cooper16"] for m in measurements)
            total64 = sum(m["beam"]["cooper64"] for m in measurements)
            if total64 < total16:
                result.violations.append(
                    {
                        "cooper16_total": total16,
                        "cooper64_total": total64,
                        "seeds": [m["seed"] for m in measurements],
                    }
                )
        elif name == "no_crash":
            for m in measurements:
                if m["crash"] is not None:
                    result.violations.append(
                        {
                            "index": m["index"],
                            "seed": m["seed"],
                            "error": m["crash"],
                        }
                    )
        else:
            raise ValueError(
                f"unknown contract {name!r} "
                f"(valid contracts: {', '.join(sorted(CONTRACT_NAMES))})"
            )
        results.append(result)
    return results


def fuzz_family(
    family_name: str,
    count: int,
    base_seed: int = 0,
    workers: int | None = None,
    detector: SPOD | None = None,
    contracts: tuple[str, ...] | None = None,
    sample: int = 6,
    shrink: bool = True,
) -> FamilyReport:
    """Fuzz one family: compile ``count`` scenarios, contract-check a sample.

    The structural pass compiles every scenario (cheap, fully parallel);
    the detection pass evaluates ``contracts`` (default: the family's
    entry in :data:`FAMILY_CONTRACTS`) on ``sample`` evenly spaced
    scenarios.  ``shrink=True`` delta-debugs the first fusion violation
    down to its minimal failing actor set.
    """
    spec = family(family_name)
    workers = resolve_workers(workers)
    summaries = compile_sweep(spec, count, base_seed, workers=workers)
    if contracts is None:
        contracts = FAMILY_CONTRACTS.get(family_name, ("no_crash",))
    contracts = tuple(contracts)
    indices = sample_indices(count, sample) if contracts else []
    measurements = (
        _contract_sweep(spec, indices, base_seed, contracts, detector, workers)
        if indices
        else []
    )
    contract_results = _evaluate_contracts(
        spec, measurements, contracts, detector, shrink
    )
    return FamilyReport(
        family=family_name,
        count=count,
        base_seed=base_seed,
        digest=sweep_digest(summaries),
        actors_mean=float(np.mean([s["actors"] for s in summaries])),
        targets_mean=float(np.mean([s["targets"] for s in summaries])),
        dropped_total=int(sum(s["dropped"] for s in summaries)),
        sampled=indices,
        contracts=contract_results,
    )


def fuzz_report(
    families: tuple[str, ...],
    count: int,
    base_seed: int = 0,
    workers: int | None = None,
    detector: SPOD | None = None,
    contracts: tuple[str, ...] | None = None,
    sample: int = 6,
    worker_counts: tuple[int, ...] = (1, 4),
) -> dict:
    """Fuzz several families and assemble the ``BENCH_scenarios`` payload.

    Includes the per-family reports plus the worker-count determinism
    digests (the compile sweep re-run at each count in ``worker_counts``
    — every digest must match the family's own).
    """
    report: dict = {"count": count, "seed": base_seed, "families": {}}
    for family_name in families:
        family_report = fuzz_family(
            family_name,
            count,
            base_seed,
            workers=workers,
            detector=detector,
            contracts=contracts,
            sample=sample,
        )
        payload = family_report.to_json()
        digests = determinism_digests(
            family(family_name),
            min(count, 32),
            base_seed,
            worker_counts=worker_counts,
        )
        payload["determinism"] = {
            "digests": digests,
            "bit_identical": len(set(digests.values())) == 1,
        }
        report["families"][family_name] = payload
    report["passed"] = all(
        f["passed"] and f["determinism"]["bit_identical"]
        for f in report["families"].values()
    )
    return report
