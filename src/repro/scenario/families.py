"""The scenario family library: generative specs plus layout parity specs.

Two kinds of spec live here:

* **Generative families** (:data:`FAMILIES`) — roundabout, highway merge,
  occluded pedestrian, convoy, mixed-fleet intersection.  Each is a
  distribution over worlds; sweeping the compile seed sweeps thousands of
  distinct, collision-free scenes with the occlusion structure the family
  name promises (the substrate :mod:`repro.scenario.fuzz` runs its recall
  contracts over).
* **Layout parity specs** (:func:`layout_parity_specs`) — every hand-coded
  builder in :mod:`repro.scene.layouts` restated as a degenerate
  (point-mass) spec: fixed slots, fixed viewpoints, ``legacy_seed=True``.
  Compiling one at the layout's default seed reproduces the layout's
  ``World`` byte for byte, which the parity tests assert — the proof that
  the DSL subsumes the hand-coded scenarios rather than approximating
  them.

Geometry convention: receivers sit near the origin facing +x, actors live
roughly in x ∈ [0, 60], y ∈ [-20, 20] — inside SPOD's detection area and
the 60 m evaluation range for every sampled viewpoint.
"""

from __future__ import annotations

import numpy as np

from repro.scene.objects import (
    make_building,
    make_cyclist,
    make_pedestrian,
    make_tree,
    make_truck,
)
from repro.scenario.dsl import (
    ActorDist,
    Choice,
    Constant,
    Convoy,
    FixedActors,
    LaneRegion,
    OccludedGroup,
    OccupancyGrid,
    RectRegion,
    RigDist,
    RingRegion,
    Scatter,
    ScenarioSpec,
    TruncNormal,
    Uniform,
    UniformInt,
    ViewpointSpec,
)

__all__ = [
    "FAMILIES",
    "FAMILY_CONTRACTS",
    "family",
    "roundabout",
    "highway_merge",
    "occluded_pedestrian",
    "convoy",
    "mixed_fleet_intersection",
    "layout_parity_specs",
    "LAYOUT_SEEDS",
]


# ---------------------------------------------------------------------------
# Generative families
# ---------------------------------------------------------------------------


def roundabout() -> ScenarioSpec:
    """Cars circulating a central island, watched from two opposite arms.

    The island building blocks each arm's view of the far side of the
    ring, so the two observers see complementary halves — the geometry the
    paper's Fig. 3 junctions approximate with corner buildings.
    """
    return ScenarioSpec(
        name="roundabout",
        constructs=(
            FixedActors((
                make_building(28.0, 0.0, length=6.0, width=6.0,
                              name="island"),
                make_tree(28.0, 16.0, name="tree-n"),
            )),
            ActorDist(
                kind="car",
                count=UniformInt(3, 7),
                region=RingRegion(28.0, 0.0, radius=10.0, radius_std=0.4),
                prefix="ring",
            ),
            ActorDist(
                kind="car",
                count=UniformInt(1, 2),
                region=LaneRegion(8.0, -1.8, 15.0, -1.8, lateral_std=0.2),
                prefix="west",
            ),
            ActorDist(
                kind="car",
                count=UniformInt(1, 2),
                region=LaneRegion(48.0, 1.8, 41.0, 1.8, lateral_std=0.2),
                prefix="east",
            ),
        ),
        viewpoints=(
            ViewpointSpec("west-arm", Uniform(0.0, 3.0), Uniform(-2.4, -1.2)),
            ViewpointSpec(
                "east-arm", Uniform(53.0, 56.0), Uniform(1.2, 2.4),
                Constant(np.pi),
            ),
        ),
        rig=RigDist("fuzz16"),
        receiver="west-arm",
    )


def highway_merge() -> ScenarioSpec:
    """An on-ramp joining a two-lane highway with a convoy in the slow lane.

    The mainline observer's view of the ramp is skimmed by the sound wall;
    the ramp observer cannot see past the convoy — each needs the other.
    """
    ramp_heading = float(np.arctan2(9.2, 26.0))
    return ScenarioSpec(
        name="highway_merge",
        constructs=(
            FixedActors((
                make_building(30.0, 13.0, length=30.0, width=4.0,
                              name="sound-wall"),
                make_tree(8.0, 8.0, name="tree-0"),
            )),
            Convoy(
                count=UniformInt(3, 5),
                region=LaneRegion(26.0, -1.8, 34.0, -1.8, lateral_std=0.2),
                prefix="convoy",
                spacing=Uniform(6.5, 9.0),
            ),
            ActorDist(
                kind="car",
                count=UniformInt(1, 3),
                region=LaneRegion(14.0, 1.8, 50.0, 1.8, lateral_std=0.2),
                prefix="fast",
            ),
            ActorDist(
                kind="car",
                count=UniformInt(1, 3),
                region=LaneRegion(14.0, -14.8, 40.0, -5.6, lateral_std=0.3),
                prefix="ramp",
            ),
        ),
        viewpoints=(
            ViewpointSpec("mainline", Uniform(-2.0, 2.0), Constant(-1.8)),
            ViewpointSpec(
                "ramp", Uniform(10.0, 14.0), Uniform(-16.5, -15.0),
                Constant(ramp_heading),
            ),
        ),
        rig=RigDist("fuzz16"),
        receiver="mainline",
    )


def occluded_pedestrian() -> ScenarioSpec:
    """The crosswalk incident as a distribution: hidden-by-construction.

    An :class:`OccludedGroup` plants a van broadside on the approach
    vehicle's sight line to a kerb-side anchor and huddles pedestrians
    behind it; a cooperator on the opposite side sees the crossing
    cleanly.  This is the family the fusion-never-hurts contract fuzzes:
    the receiver is blind to the hidden actors by construction, so fused
    recall must be at least the receiver's own on every sampled scene.
    """
    van_dims = (Constant(5.5), Constant(2.0), TruncNormal(2.4, 0.1, 2.2, 2.8))
    return ScenarioSpec(
        name="occluded_pedestrian",
        constructs=(
            FixedActors((
                make_building(10.0, 14.0, length=12.0, width=8.0,
                              name="bldg-n"),
                make_tree(34.0, -8.0, name="tree-0"),
            )),
            ActorDist(
                kind="car",
                count=UniformInt(1, 3),
                region=LaneRegion(44.0, 3.4, 28.0, 3.4, lateral_std=0.15),
                prefix="queue",
            ),
            OccludedGroup(
                viewpoint="approach",
                region=RectRegion(18.0, 28.0, -6.5, -3.5, yaw=Constant(0.0)),
                count=UniformInt(1, 2),
                hidden_kind="pedestrian",
                occluder_kind="truck",
                frac=Uniform(0.45, 0.65),
                spread=1.1,
                prefix="hidden",
                occluder_dims=van_dims,
            ),
            ActorDist(
                kind="pedestrian",
                count=UniformInt(0, 1),
                region=RectRegion(16.0, 24.0, 1.0, 3.0),
                prefix="walker",
            ),
        ),
        viewpoints=(
            ViewpointSpec("approach", Uniform(-2.0, 2.0), Uniform(-2.0, -1.2)),
            ViewpointSpec(
                "opposite", Uniform(31.0, 38.0), Uniform(0.2, 2.0),
                Constant(np.pi),
            ),
        ),
        rig=RigDist("fuzz16"),
        receiver="approach",
    )


def convoy() -> ScenarioSpec:
    """A platoon on a two-lane road, observed from its tail and a scout.

    Nose-to-tail cars occlude one another almost completely from the tail
    vehicle; the scout ahead sees the platoon from the front.  Dense
    self-occlusion at near range is the regime where beam count matters
    most, so this family also anchors the monotone-beam contract.
    """
    return ScenarioSpec(
        name="convoy",
        constructs=(
            FixedActors((
                make_tree(12.0, 8.0, name="tree-0"),
                make_tree(36.0, -8.0, name="tree-1"),
            )),
            Convoy(
                count=UniformInt(4, 7),
                region=LaneRegion(30.0, -1.8, 38.0, -1.8, lateral_std=0.15),
                prefix="convoy",
                spacing=Uniform(6.5, 9.0),
            ),
            ActorDist(
                kind="car",
                count=UniformInt(1, 3),
                region=LaneRegion(46.0, 1.8, 22.0, 1.8, lateral_std=0.2),
                prefix="oncoming",
            ),
        ),
        viewpoints=(
            ViewpointSpec("tail", Uniform(-2.0, 2.0), Constant(-1.8)),
            ViewpointSpec("scout", Uniform(48.0, 54.0), Constant(-1.8)),
        ),
        rig=RigDist("fuzz16"),
        receiver="tail",
    )


def mixed_fleet_intersection() -> ScenarioSpec:
    """A T-junction swept by a mixed 16/64-beam fleet (paper Section IV).

    Three observers — the ego on the main road, one on the side road, one
    parked past the mouth — each independently drawing a sparse or dense
    rig, the heterogeneous-fleet regime of the paper's KITTI/T&J split.
    """
    return ScenarioSpec(
        name="mixed_fleet_intersection",
        constructs=(
            FixedActors((
                make_building(18.0, 19.0, length=14.0, width=8.0,
                              name="bldg-nw"),
                make_building(52.0, 15.0, length=12.0, width=8.0,
                              name="bldg-ne"),
                make_building(30.0, -13.0, length=26.0, width=6.0,
                              name="bldg-s"),
                make_truck(24.0, -0.5, yaw=0.0, name="truck-occluder"),
            )),
            ActorDist(
                kind="car",
                count=UniformInt(2, 4),
                region=LaneRegion(44.0, 3.5, 16.0, 3.5, lateral_std=0.2),
                prefix="main",
            ),
            ActorDist(
                kind="car",
                count=UniformInt(1, 3),
                region=LaneRegion(35.0, 20.0, 35.0, 8.0, lateral_std=0.25),
                prefix="side",
            ),
            ActorDist(
                kind="cyclist",
                count=UniformInt(0, 1),
                region=LaneRegion(40.0, 6.5, 48.0, 6.5),
                prefix="cyclist",
            ),
        ),
        viewpoints=(
            ViewpointSpec("ego", Uniform(-2.0, 2.0), Uniform(-2.0, -1.0)),
            ViewpointSpec(
                "side", Constant(35.0), Uniform(22.0, 26.0),
                Constant(-np.pi / 2),
            ),
            ViewpointSpec(
                "parked", Uniform(44.0, 48.0), Uniform(6.5, 8.0),
                Constant(np.pi),
            ),
        ),
        rig=RigDist(Choice(("fuzz16", "fuzz64"))),
        receiver="ego",
    )


#: The generative families, by name (the `--family` vocabulary).
FAMILIES: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        roundabout(),
        highway_merge(),
        occluded_pedestrian(),
        convoy(),
        mixed_fleet_intersection(),
    )
}

#: Default contract set per family (see :mod:`repro.scenario.fuzz`).
#: Fusion-never-hurts runs on the occlusion-by-construction families;
#: monotone-beam where self-occlusion makes beam density decisive;
#: no-crash-under-chaos everywhere.
FAMILY_CONTRACTS: dict[str, tuple[str, ...]] = {
    "roundabout": ("no_crash",),
    "highway_merge": ("no_crash",),
    "occluded_pedestrian": ("fusion_never_hurts", "no_crash"),
    "convoy": ("fusion_never_hurts", "monotone_beam", "no_crash"),
    "mixed_fleet_intersection": ("monotone_beam", "no_crash"),
}


def family(name: str) -> ScenarioSpec:
    """Look up a generative family, failing fast with the valid set."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario family {name!r} "
            f"(valid families: {', '.join(sorted(FAMILIES))})"
        ) from None


# ---------------------------------------------------------------------------
# Layout parity specs (point-mass restatements of scene.layouts)
# ---------------------------------------------------------------------------

#: Default compile seed per hand-coded layout (the builders' defaults).
LAYOUT_SEEDS: dict[str, int] = {
    "t_junction": 0,
    "stop_sign": 1,
    "left_turn": 2,
    "curve": 3,
    "parking_lot": 10,
    "two_lane_road": 20,
    "highway_overtake": 25,
    "crosswalk": 27,
}


def _curve_slots() -> tuple[tuple[float, float, float], ...]:
    """The hand-coded curve arc: radius 60 centred at (0, 60), +24 m in x."""
    slots = []
    for angle_deg in (-18.0, -8.0, 2.0, 12.0, 22.0, 32.0):
        angle = np.deg2rad(angle_deg)
        x = 60.0 * np.sin(angle) + 24.0
        y = 60.0 - 60.0 * np.cos(angle)
        slots.append((x, y, angle))
    slots.append((10.0, -4.5, 0.0))
    slots.append((52.0, 16.0, np.deg2rad(40.0)))
    return tuple(slots)


def _two_lane_slots(num_cars: int = 6) -> tuple[tuple[float, float, float], ...]:
    """The hand-coded two-lane slots: alternating lanes every 9 m."""
    slots = []
    for i in range(num_cars):
        lane = 1.8 if i % 2 == 0 else -1.8
        heading = np.pi if lane > 0 else 0.0
        slots.append((12.0 + i * 9.0, lane, heading))
    return tuple(slots)


def layout_parity_specs() -> dict[str, ScenarioSpec]:
    """Point-mass specs reproducing every hand-coded layout byte for byte.

    Each spec uses ``legacy_seed=True`` (one shared ``default_rng(seed)``
    across constructs, the builders' draw discipline), fixed slots and
    fixed viewpoints; compiled at :data:`LAYOUT_SEEDS`, the resulting
    ``World`` equals the builder's exactly — asserted by the parity tests.
    """
    vp = ViewpointSpec.fixed
    specs = [
        ScenarioSpec(
            name="t_junction",
            constructs=(
                Scatter(
                    (
                        (18.0, 3.5, np.pi),
                        (28.0, 3.5, np.pi),
                        (40.0, 3.5, np.pi),
                        (26.0, -3.5, 0.0),
                        (46.0, -3.5, 0.0),
                        (35.0, 10.0, -np.pi / 2),
                        (35.0, 18.0, -np.pi / 2),
                        (38.5, 13.0, np.pi / 2),
                        (44.0, 7.0, 0.0),
                    ),
                    "car",
                ),
                FixedActors((
                    make_truck(24.0, -0.5, yaw=0.0, name="truck-occluder"),
                    make_building(18.0, 19.0, length=14.0, width=8.0,
                                  name="bldg-nw"),
                    make_building(52.0, 15.0, length=12.0, width=8.0,
                                  name="bldg-ne"),
                    make_building(30.0, -13.0, length=26.0, width=6.0,
                                  name="bldg-s"),
                    make_tree(10.0, 7.0, name="tree-0"),
                    make_tree(56.0, 7.0, name="tree-1"),
                )),
            ),
            viewpoints=(
                vp("t1", 0.0, -1.5, 0.0),
                vp("t2", 14.55, -0.2, 0.0),
            ),
            legacy_seed=True,
        ),
        ScenarioSpec(
            name="stop_sign",
            constructs=(
                Scatter(
                    (
                        (18.5, 2.0, np.pi),
                        (29.0, 1.8, np.pi),
                        (20.0, 9.0, -np.pi / 2),
                        (20.0, 16.0, -np.pi / 2),
                        (35.0, -1.8, 0.0),
                        (43.0, -1.8, 0.0),
                        (25.0, 6.0, 0.0),
                    ),
                    "car",
                ),
                FixedActors((
                    make_truck(26.0, -1.8, yaw=0.0, name="truck-occluder"),
                    make_building(8.0, 11.0, length=10.0, width=8.0,
                                  name="bldg-nw"),
                    make_building(33.0, 13.0, length=12.0, width=8.0,
                                  name="bldg-ne"),
                    make_building(4.0, -16.0, length=10.0, width=6.0,
                                  name="bldg-sw"),
                    make_tree(14.0, -6.0, name="tree-0"),
                )),
            ),
            viewpoints=(
                vp("t3", 0.0, -1.8, 0.0),
                vp("t4", 11.5, -8.5, np.pi / 2),
            ),
            legacy_seed=True,
        ),
        ScenarioSpec(
            name="left_turn",
            constructs=(
                Scatter(
                    (
                        (16.0, 4.0, np.pi),
                        (25.0, 4.0, np.pi),
                        (21.0, -5.0, 0.0),
                        (34.0, -8.0, -np.pi / 2),
                        (34.0, -16.0, -np.pi / 2),
                        (40.0, 2.0, np.pi),
                        (13.0, 12.0, np.pi / 2),
                    ),
                    "car",
                ),
                FixedActors((
                    make_building(28.0, 16.0, length=16.0, width=10.0,
                                  name="bldg-a"),
                    make_tree(10.0, -8.0, name="tree-0"),
                    make_tree(44.0, -6.0, name="tree-1"),
                )),
            ),
            viewpoints=(
                vp("t5", 0.0, 0.0, 0.0),
                vp("t6", 0.0, 0.0, float(np.deg2rad(35.0))),
            ),
            legacy_seed=True,
        ),
        ScenarioSpec(
            name="curve",
            constructs=(
                Scatter(_curve_slots(), "car"),
                FixedActors((
                    make_building(30.0, 24.0, length=18.0, width=10.0,
                                  yaw=0.4, name="bldg-inner"),
                    make_building(6.0, 14.0, length=10.0, width=8.0,
                                  name="bldg-a"),
                    make_tree(40.0, -4.0, name="tree-0"),
                )),
            ),
            viewpoints=(
                vp("t7", 0.0, 0.0, 0.0),
                vp("t8", 46.0, 14.0, float(np.deg2rad(35.0))),
            ),
            legacy_seed=True,
        ),
        ScenarioSpec(
            name="parking_lot",
            constructs=(
                OccupancyGrid(rows=3, cols=6, occupancy=0.7, prefix="parked"),
                FixedActors((
                    make_building(14.0, -14.0, length=22.0, width=9.0,
                                  name="bldg-office"),
                    make_tree(2.0, 16.0, name="tree-0"),
                    make_tree(30.0, 16.0, name="tree-1"),
                )),
            ),
            viewpoints=(
                vp("car1", 0.0, 0.0, 0.0),
                vp("car2", 5.5, 0.0, 0.0),
            ),
            legacy_seed=True,
        ),
        ScenarioSpec(
            name="two_lane_road",
            constructs=(
                Scatter(_two_lane_slots(), "car"),
                FixedActors((
                    make_building(30.0, 14.0, length=26.0, width=8.0,
                                  name="bldg-n"),
                    make_building(30.0, -14.0, length=26.0, width=8.0,
                                  name="bldg-s"),
                )),
            ),
            viewpoints=(
                vp("ego", 0.0, -1.8, 0.0),
                vp("oncoming", 66.0, 1.8, np.pi),
                vp("leader", 18.0, -1.8, 0.0),
            ),
            legacy_seed=True,
        ),
        ScenarioSpec(
            name="highway_overtake",
            constructs=(
                Scatter(
                    (
                        (52.0, 1.9, np.pi),
                        (80.0, 1.9, np.pi),
                        (46.0, -1.8, 0.0),
                    ),
                    "car",
                ),
                FixedActors((
                    make_truck(24.0, -0.3, yaw=0.0, name="truck-slow"),
                    make_tree(14.0, 9.0, name="tree-0"),
                    make_tree(40.0, -9.0, name="tree-1"),
                    make_building(60.0, 14.0, length=16.0, width=8.0,
                                  name="barn"),
                )),
            ),
            viewpoints=(
                vp("follower", 10.0, -1.8, 0.0),
                vp("helper", 64.0, 1.9, np.pi),
            ),
            legacy_seed=True,
        ),
        ScenarioSpec(
            name="crosswalk",
            constructs=(
                Scatter(
                    (
                        (30.0, 3.4, np.pi),
                        (38.0, 3.4, np.pi),
                    ),
                    "car",
                ),
                FixedActors((
                    make_truck(16.0, -4.6, length=5.5, width=2.0, height=2.4,
                               name="van-kerb"),
                    make_pedestrian(20.6, -4.7, name="ped-hidden"),
                    make_pedestrian(19.0, 2.0, name="ped-visible"),
                    make_cyclist(26.0, 6.2, yaw=np.pi, name="cyclist-0"),
                    make_building(10.0, 14.0, length=12.0, width=8.0,
                                  name="bldg-n"),
                    make_tree(34.0, -8.0, name="tree-0"),
                )),
            ),
            viewpoints=(
                vp("approach", 0.0, -1.6, 0.0),
                vp("opposite", 33.0, 0.2, np.pi),
            ),
            legacy_seed=True,
        ),
    ]
    return {spec.name: spec for spec in specs}
