"""Fusion-level baselines (paper Section I-B).

The paper classifies multi-sensor fusion into low-level (raw data),
feature-level and high-level (object) fusion [23], and argues object-level
fusion "relies too heavily on single vehicular sensors ... objects
[undetected by both] will remain undetected even after fusion".  These
baselines make that argument measurable:

* :func:`single_shot_baseline` — no cooperation at all.
* :func:`object_level_fusion` — each vehicle detects on its own cloud;
  only the resulting *boxes* are exchanged, aligned and merged by NMS.
* :func:`feature_level_fusion` — vehicles exchange BEV feature maps; the
  receiver detects on the element-wise-max fused map (only meaningful for
  co-located/aligned grids; we align the raw clouds first and re-encode,
  which is the standard way feature fusion is realised on voxel grids).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.detection.detections import Detection
from repro.detection.nms import rotated_nms
from repro.detection.spod import SPOD
from repro.fusion.align import align_package, alignment_transform
from repro.fusion.package import ExchangePackage
from repro.geometry.transforms import Pose
from repro.pointcloud.cloud import PointCloud

__all__ = ["single_shot_baseline", "object_level_fusion", "feature_level_fusion"]


def single_shot_baseline(detector: SPOD, cloud: PointCloud) -> list[Detection]:
    """Detect on the vehicle's own cloud only."""
    return detector.detect(cloud)


def object_level_fusion(
    detector: SPOD,
    native_cloud: PointCloud,
    receiver_pose: Pose,
    packages: Sequence[ExchangePackage],
    nms_iou: float = 0.3,
) -> list[Detection]:
    """High-level fusion: merge per-vehicle *detections*, not points.

    Each cooperator runs SPOD on its own cloud; detected boxes are
    transformed into the receiver frame and deduplicated with NMS.  Objects
    below every single vehicle's detection threshold can never appear in
    the output — the structural weakness the paper's low-level fusion
    avoids.
    """
    fused = list(detector.detect(native_cloud))
    for package in packages:
        remote_detections = detector.detect(package.cloud)
        transform = alignment_transform(package.pose, receiver_pose)
        fused.extend(d.transformed(transform) for d in remote_detections)
    return rotated_nms(fused, nms_iou)


def feature_level_fusion(
    detector: SPOD,
    native_cloud: PointCloud,
    receiver_pose: Pose,
    packages: Sequence[ExchangePackage],
) -> list[Detection]:
    """Mid-level fusion: combine BEV feature maps by element-wise max.

    The receiver voxelises its own cloud and each aligned cooperator cloud
    *separately*, runs the VFE + middle extractor on each, max-fuses the
    BEV maps, and decodes detections from the fused map.  Compared with raw
    fusion this loses cross-cloud intra-voxel structure (points from two
    vehicles never meet inside one voxel feature), which is the fidelity
    gap the paper's low-level choice closes.
    """
    from repro.detection.preprocess import preprocess
    from repro.pointcloud.voxel import voxelize

    clouds = [native_cloud]
    clouds.extend(align_package(p, receiver_pose) for p in packages)

    fused_bev: np.ndarray | None = None
    pres = []
    for cloud in clouds:
        pre = preprocess(cloud)
        pres.append(pre)
        grid = voxelize(pre.obstacles, detector.config.voxel_spec)
        bev = detector.middle(detector.vfe(grid))
        fused_bev = bev if fused_bev is None else np.maximum(fused_bev, bev)
    if fused_bev is None:
        return []

    cls_logits, reg = detector.rpn(fused_bev)
    # Decode against the union of obstacle points so refinement/calibration
    # see the same evidence the fused features encode.
    merged_obstacles = np.vstack([p.obstacles.xyz for p in pres])
    ground_z = float(np.median([p.ground_z for p in pres]))
    tensors = {
        "pre": _FusedPre(merged_obstacles, ground_z),
        "cls_logits": cls_logits,
        "reg": reg,
    }
    raw = detector._decode_analytic(tensors)
    return [
        d
        for d in rotated_nms(raw, detector.config.nms_iou)
        if d.score >= detector.config.detection_threshold
    ]


class _FusedPre:
    """Minimal preprocess-result stand-in for the fused decode path."""

    def __init__(self, obstacle_xyz: np.ndarray, ground_z: float) -> None:
        self.obstacles = _XyzView(obstacle_xyz)
        # Feature fusion discards raw ground returns; the decode path's
        # ground-shadow test degrades gracefully without them.
        self.full = _XyzView(obstacle_xyz)
        self.ground_z = ground_z


class _XyzView:
    def __init__(self, xyz: np.ndarray) -> None:
        self.xyz = xyz
