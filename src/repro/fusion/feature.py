"""Feature-level and confidence-gated fusion (F-Cooper / Where2comm style).

Cooper's raw-cloud exchange is the bandwidth bottleneck: even ROI-cropped
clouds are megabits per frame.  F-Cooper showed that exchanging *voxel
feature maps* and fusing them by elementwise maxout carries the same
detection signal at 10-100x fewer bytes; Where2comm pushed the frontier
further by gating the exchange on a cheap confidence map — the receiver
tells its peers where it is already confident, and peers reply only with
features elsewhere.

This module implements both on top of the existing SPOD pipeline:

* :class:`FeaturePackage` — the wire format: per-voxel grid coordinates
  (uint16) plus per-channel uint8-quantised features, with the sender's
  pose so the receiver can run the paper's Eq. (1)-(3) alignment on voxel
  *centers* instead of raw points.
* :class:`ConfidenceRequest` — the gating control message: a bit-packed
  window of the requester's high-confidence BEV cells plus its pose.
* :func:`fuse_feature_packages` — spatial alignment of received feature
  maps onto the receiver's voxel grid and elementwise maxout with the
  receiver's own features, feeding the *shared* RPN head.
* Proxy-point reconstruction — the analytic decode stage needs point
  evidence (box refinement + confidence calibration); it is reconstructed
  strictly from wire content: each received voxel contributes points at
  its cell center, at the height encoded in the max-z feature channel,
  with multiplicity from the count channel.  No raw points ever cross the
  wire.

The feature channels consumed here are the analytic VFE's (occupancy,
max normalised z, max reflectance, normalised count); see
:meth:`repro.detection.vfe.VoxelFeatureEncoder.analytic_init`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.detection.detections import Detection
from repro.detection.nms import rotated_nms
from repro.detection.nn.sparse import SparseTensor3d
from repro.detection.spod import SPOD
from repro.fusion.align import alignment_transform
from repro.fusion.package import encode_sender
from repro.geometry.transforms import Pose
from repro.pointcloud.cloud import PointCloud
from repro.pointcloud.voxel import VoxelGridSpec
from repro.profiling import PROFILER

__all__ = [
    "FeatureFusionConfig",
    "FeaturePackage",
    "ConfidenceRequest",
    "rpn_confidence",
    "build_request",
    "build_feature_package",
    "fuse_feature_packages",
    "FusedFeatures",
    "DecodeEvidence",
    "feature_bev",
    "decode_fused",
    "perceive_features",
    "feature_package_intrinsically_sane",
]

_FEAT_MAGIC = b"CPFV"  # Cooper Point-cloud Feature Voxels
_FEAT_HEADER = struct.Struct("<4sB16sdIB3H")
_REQ_MAGIC = b"CPRQ"  # Cooper Request
_REQ_HEADER = struct.Struct("<4sB16sd6H")
_POSE_STRUCT = struct.Struct("<6d")


@dataclass(frozen=True)
class FeatureFusionConfig:
    """Knobs of the confidence-gated exchange.

    Attributes:
        request_threshold: RPN confidence at or above which the requester
            marks a BEV cell as already covered (peers need not send
            features there).
        request_dilation: dilation (in cells) of the covered mask — a
            safety margin so a peer's slightly offset evidence for an
            already-seen object is still suppressed.
        foreground_threshold: a *sender* only ships voxels whose own RPN
            confidence suggests content; cells below this are background
            clutter (walls, vegetation) that no receiver benefits from.
        foreground_dilation: dilation of the sender's foreground mask —
            keeps the voxels at object boundaries that carry the box
            extent.
    """

    request_threshold: float = 0.5
    request_dilation: int = 1
    foreground_threshold: float = 0.1
    foreground_dilation: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.request_threshold <= 1.0:
            raise ValueError("request_threshold must be in (0, 1]")
        if not 0.0 < self.foreground_threshold <= 1.0:
            raise ValueError("foreground_threshold must be in (0, 1]")
        if self.request_dilation < 0 or self.foreground_dilation < 0:
            raise ValueError("dilations must be non-negative")


@dataclass(frozen=True)
class FeaturePackage:
    """Per-voxel features + coordinates: the feature-level wire format.

    Attributes:
        coords: ``(V, 3)`` integer voxel coordinates in the *sender's*
            grid (uint16 on the wire).
        features: ``(V, C)`` per-voxel features (uint8-quantised per
            channel on the wire; deserialised packages carry the
            dequantised values).
        pose: the sender's measured pose — what the receiver's Eq. (1)-(3)
            alignment consumes.
        sender: vehicle identifier (16 UTF-8 bytes max, validated).
        timestamp: capture time in seconds.
        grid_shape: the sender's ``(nx, ny, nz)`` voxel grid — receivers
            reject packages from a mismatched grid geometry.
    """

    coords: np.ndarray
    features: np.ndarray
    pose: Pose
    sender: str = "vehicle"
    timestamp: float = 0.0
    grid_shape: tuple[int, int, int] = (0, 0, 0)

    def __post_init__(self) -> None:
        encode_sender(self.sender)  # fail fast on an over-long name
        if len(self.coords) != len(self.features):
            raise ValueError("coords and features must have equal length")

    @property
    def num_voxels(self) -> int:
        """Number of active voxels shipped."""
        return len(self.coords)

    @property
    def num_channels(self) -> int:
        """Feature channels per voxel."""
        return int(self.features.shape[1]) if self.features.size else 4

    def serialize(self) -> bytes:
        """Encode: header + pose + per-channel quant params + payload."""
        with PROFILER.stage("feature.serialize"):
            v = len(self.coords)
            c = self.num_channels
            if v and int(self.coords.max(initial=0)) > np.iinfo(np.uint16).max:
                raise ValueError("voxel coordinates exceed uint16 range")
            header = _FEAT_HEADER.pack(
                _FEAT_MAGIC, 1, encode_sender(self.sender), self.timestamp,
                v, c, *self.grid_shape,
            )
            pose = _POSE_STRUCT.pack(
                *self.pose.position, self.pose.yaw, self.pose.pitch,
                self.pose.roll,
            )
            if v == 0:
                quant = struct.pack(f"<{2 * c}f", *([0.0] * (2 * c)))
                return header + pose + quant
            feats = np.asarray(self.features, dtype=np.float64)
            lo = feats.min(axis=0)
            span = np.maximum(feats.max(axis=0) - lo, 1e-6)
            quant = struct.pack(
                f"<{2 * c}f",
                *np.column_stack([lo, span]).reshape(-1).astype(np.float32),
            )
            q = np.clip(
                np.round((feats - lo) / span * 255.0), 0, 255
            ).astype(np.uint8)
            coords = np.ascontiguousarray(self.coords, dtype=np.uint16)
            return header + pose + quant + coords.tobytes() + q.tobytes()

    @staticmethod
    def deserialize(payload: bytes) -> "FeaturePackage":
        """Decode the wire format produced by :meth:`serialize`."""
        with PROFILER.stage("feature.deserialize"):
            if len(payload) < _FEAT_HEADER.size + _POSE_STRUCT.size:
                raise ValueError("payload too short for a feature package")
            (magic, version, sender_bytes, timestamp, v, c, nx, ny, nz) = (
                _FEAT_HEADER.unpack_from(payload)
            )
            if magic != _FEAT_MAGIC:
                raise ValueError("bad magic: not a feature package")
            if version != 1:
                raise ValueError(f"unsupported feature package version {version}")
            offset = _FEAT_HEADER.size
            x, y, z, yaw, pitch, roll = _POSE_STRUCT.unpack_from(payload, offset)
            offset += _POSE_STRUCT.size
            quant = np.array(
                struct.unpack_from(f"<{2 * c}f", payload, offset),
                dtype=np.float64,
            ).reshape(c, 2)
            offset += 2 * c * 4
            coords = np.frombuffer(
                payload, dtype=np.uint16, count=v * 3, offset=offset
            ).reshape(v, 3).astype(np.int64)
            offset += v * 6
            q = np.frombuffer(
                payload, dtype=np.uint8, count=v * c, offset=offset
            ).reshape(v, c)
            features = q.astype(np.float64) / 255.0 * quant[:, 1] + quant[:, 0]
            return FeaturePackage(
                coords=coords,
                features=features,
                pose=Pose(np.array([x, y, z]), yaw=yaw, pitch=pitch, roll=roll),
                sender=sender_bytes.rstrip(b"\0").decode("utf-8"),
                timestamp=timestamp,
                grid_shape=(nx, ny, nz),
            )

    def size_bytes(self) -> int:
        """Wire size in bytes, computed analytically (no serialisation)."""
        v, c = len(self.coords), self.num_channels
        return _FEAT_HEADER.size + _POSE_STRUCT.size + 8 * c + v * (6 + c)


@dataclass(frozen=True)
class ConfidenceRequest:
    """Where2comm's control message: "here is what I already see".

    Attributes:
        confident: ``(nx, ny)`` boolean BEV mask of cells the requester's
            own RPN already covers at high confidence.  Peers reply with
            features only *outside* this mask.  The wire format bit-packs
            the mask's bounding window, so a typical request (a handful
            of car-sized blobs) costs a few hundred bytes.
        pose: the requester's measured pose — senders align their voxel
            centers into the requester's grid to test the mask.
        sender: requester identifier.
        timestamp: request time in seconds.
    """

    confident: np.ndarray
    pose: Pose
    sender: str = "vehicle"
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        encode_sender(self.sender)

    def _window(self) -> tuple[int, int, int, int]:
        rows = np.flatnonzero(self.confident.any(axis=1))
        cols = np.flatnonzero(self.confident.any(axis=0))
        if len(rows) == 0:
            return 0, 0, 0, 0
        return (
            int(rows[0]), int(cols[0]),
            int(rows[-1] - rows[0] + 1), int(cols[-1] - cols[0] + 1),
        )

    def serialize(self) -> bytes:
        """Encode: header + pose + bit-packed confident window."""
        nx, ny = self.confident.shape
        r0, c0, h, w = self._window()
        header = _REQ_HEADER.pack(
            _REQ_MAGIC, 1, encode_sender(self.sender), self.timestamp,
            nx, ny, r0, c0, h, w,
        )
        pose = _POSE_STRUCT.pack(
            *self.pose.position, self.pose.yaw, self.pose.pitch, self.pose.roll
        )
        if h == 0:
            return header + pose
        window = self.confident[r0:r0 + h, c0:c0 + w]
        return header + pose + np.packbits(window.reshape(-1)).tobytes()

    @staticmethod
    def deserialize(payload: bytes) -> "ConfidenceRequest":
        """Decode the wire format produced by :meth:`serialize`."""
        if len(payload) < _REQ_HEADER.size + _POSE_STRUCT.size:
            raise ValueError("payload too short for a confidence request")
        magic, version, sender_bytes, timestamp, nx, ny, r0, c0, h, w = (
            _REQ_HEADER.unpack_from(payload)
        )
        if magic != _REQ_MAGIC:
            raise ValueError("bad magic: not a confidence request")
        if version != 1:
            raise ValueError(f"unsupported request version {version}")
        offset = _REQ_HEADER.size
        x, y, z, yaw, pitch, roll = _POSE_STRUCT.unpack_from(payload, offset)
        offset += _POSE_STRUCT.size
        confident = np.zeros((nx, ny), dtype=bool)
        if h and w:
            bits = np.frombuffer(payload, dtype=np.uint8, offset=offset)
            window = np.unpackbits(bits, count=h * w).reshape(h, w)
            confident[r0:r0 + h, c0:c0 + w] = window.astype(bool)
        return ConfidenceRequest(
            confident=confident,
            pose=Pose(np.array([x, y, z]), yaw=yaw, pitch=pitch, roll=roll),
            sender=sender_bytes.rstrip(b"\0").decode("utf-8"),
            timestamp=timestamp,
        )

    def size_bytes(self) -> int:
        """Wire size in bytes, computed analytically."""
        _r0, _c0, h, w = self._window()
        return _REQ_HEADER.size + _POSE_STRUCT.size + (h * w + 7) // 8


def feature_package_intrinsically_sane(package: FeaturePackage) -> bool:
    """Receiver-independent corruption checks on one feature package.

    The feature-mode analogue of
    :func:`repro.fusion.align.package_intrinsically_sane`: a corrupted
    pose poisons the Eq. (1)-(3) alignment, non-finite features poison
    the maxout, and out-of-grid coordinates mark a mangled payload.
    """
    pose = package.pose
    if not (
        np.all(np.isfinite(pose.position))
        and np.isfinite(pose.yaw)
        and np.isfinite(pose.pitch)
        and np.isfinite(pose.roll)
    ):
        return False
    if len(package.coords) == 0:
        return True
    if not np.all(np.isfinite(package.features)):
        return False
    shape = np.asarray(package.grid_shape)
    if np.any(shape <= 0):
        return False
    coords = np.asarray(package.coords)
    return bool(np.all(coords >= 0) and np.all(coords < shape))


# -- confidence maps and builders -----------------------------------------

def rpn_confidence(detector: SPOD, bev: np.ndarray) -> np.ndarray:
    """Max-over-yaw RPN objectness probability per BEV cell, ``(nx, ny)``.

    This is the "cheap confidence map" of the gated exchange: one RPN
    head pass over a BEV map the sender has already computed.
    """
    cls_logits, _reg = detector.rpn_apply(bev)
    prob = 1.0 / (1.0 + np.exp(-np.clip(cls_logits[0], -60, 60)))
    return prob.max(axis=0)


def build_request(
    heat: np.ndarray,
    pose: Pose,
    sender: str,
    timestamp: float = 0.0,
    config: FeatureFusionConfig | None = None,
) -> ConfidenceRequest:
    """Turn a requester's confidence map into the gating control message."""
    config = config or FeatureFusionConfig()
    confident = heat >= config.request_threshold
    if config.request_dilation:
        confident = ndimage.binary_dilation(
            confident, iterations=config.request_dilation
        )
    return ConfidenceRequest(
        confident=confident, pose=pose, sender=sender, timestamp=timestamp
    )


def _align_coords(
    coords: np.ndarray,
    sender_pose: Pose,
    receiver_pose: Pose,
    spec: VoxelGridSpec,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. (1)-(3) on voxel *centers*: sender grid -> receiver grid.

    Returns ``(indices, in_bounds)``: the receiver-grid integer
    coordinates of every sender voxel center after the rigid alignment,
    and the mask of voxels that land inside the receiver's grid.
    """
    if len(coords) == 0:
        return np.zeros((0, 3), dtype=np.int64), np.zeros(0, dtype=bool)
    transform = alignment_transform(sender_pose, receiver_pose)
    moved = transform.apply(spec.voxel_center(np.asarray(coords)))
    origin = np.asarray(spec.point_range[:3], dtype=np.float64)
    size = np.asarray(spec.voxel_size, dtype=np.float64)
    idx = np.floor((moved - origin) / size).astype(np.int64)
    shape = np.asarray(spec.grid_shape)
    ok = np.all(idx >= 0, axis=1) & np.all(idx < shape, axis=1)
    return idx, ok


def _maxout(
    coords: np.ndarray, features: np.ndarray, grid_shape: tuple[int, int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicate voxel coordinates, elementwise-maxing their features.

    Stable and scheduling-independent: rows are ordered by linear grid
    index (stable sort), so the output is a pure function of the input
    *set* regardless of row order.
    """
    if len(coords) == 0:
        return coords, features
    _nx, ny, nz = grid_shape
    linear = (coords[:, 0] * ny + coords[:, 1]) * nz + coords[:, 2]
    order = np.argsort(linear, kind="stable")
    linear, coords, features = linear[order], coords[order], features[order]
    _unique, starts = np.unique(linear, return_index=True)
    return coords[starts], np.maximum.reduceat(features, starts, axis=0)


def build_feature_package(
    spec: VoxelGridSpec,
    coords: np.ndarray,
    features: np.ndarray,
    pose: Pose,
    sender: str,
    timestamp: float = 0.0,
    heat: np.ndarray | None = None,
    requests: tuple[ConfidenceRequest, ...] = (),
    config: FeatureFusionConfig | None = None,
) -> FeaturePackage:
    """Assemble one sender's outgoing feature package.

    Ungated (no ``requests``): every active voxel ships.  Gated: the
    sender keeps a voxel only where its *own* confidence map marks
    foreground (content worth shipping) AND at least one requester's
    grid wants the cell (the requester is not already confident there).
    DSRC is a broadcast medium, so the union over requesters ships once.
    """
    config = config or FeatureFusionConfig()
    coords = np.asarray(coords)
    features = np.asarray(features, dtype=np.float64)
    if requests:
        if heat is None:
            raise ValueError("gated packaging requires the sender's heat map")
        foreground = heat >= config.foreground_threshold
        if config.foreground_dilation:
            foreground = ndimage.binary_dilation(
                foreground, iterations=config.foreground_dilation
            )
        keep = foreground[coords[:, 0], coords[:, 1]]
        wanted = np.zeros(len(coords), dtype=bool)
        for request in requests:
            idx, ok = _align_coords(coords, pose, request.pose, spec)
            if not ok.any():
                continue
            inside = np.flatnonzero(ok)
            wanted[inside] |= ~request.confident[
                idx[inside, 0], idx[inside, 1]
            ]
        keep &= wanted
        coords, features = coords[keep], features[keep]
    return FeaturePackage(
        coords=coords,
        features=features,
        pose=pose,
        sender=sender,
        timestamp=timestamp,
        grid_shape=tuple(int(n) for n in spec.grid_shape),
    )


# -- receiver-side fusion --------------------------------------------------

@dataclass(frozen=True)
class FusedFeatures:
    """One receiver's fused sparse feature map plus decode evidence.

    Attributes:
        coords: ``(M, 3)`` receiver-grid voxel coordinates (deduplicated).
        features: ``(M, C)`` maxout-fused features.
        proxy_xyz: ``(P, 3)`` points reconstructed from *received*
            voxels only — the decode stage's stand-in for the raw points
            that never crossed the wire.
    """

    coords: np.ndarray
    features: np.ndarray
    proxy_xyz: np.ndarray


def _proxy_points(
    coords: np.ndarray, features: np.ndarray, spec: VoxelGridSpec
) -> np.ndarray:
    """Reconstruct decode evidence from received voxel features.

    Each voxel contributes points at its receiver-grid cell center, at
    the height the max-z channel encodes, with multiplicity from the
    count channel — exactly the evidence density the confidence
    calibrator's point-count and coverage terms need to score a cluster
    the way they would score the raw points.
    """
    if len(coords) == 0:
        return np.zeros((0, 3), dtype=np.float64)
    if features.shape[1] < 4:
        raise ValueError(
            "proxy-point decode needs the 4 analytic VFE channels"
        )
    centers = spec.voxel_center(np.asarray(coords))
    z_lo, z_hi = spec.point_range[2], spec.point_range[5]
    z = z_lo + np.clip(features[:, 1], 0.0, 1.0) * (z_hi - z_lo)
    multiplicity = np.maximum(
        1,
        np.round(
            np.clip(features[:, 3], 0.0, 1.0) * spec.max_points_per_voxel
        ).astype(np.int64),
    )
    points = np.column_stack([centers[:, 0], centers[:, 1], z])
    return np.repeat(points, multiplicity, axis=0)


def fuse_feature_packages(
    spec: VoxelGridSpec,
    ego_coords: np.ndarray,
    ego_features: np.ndarray,
    packages: list[FeaturePackage],
    receiver_pose: Pose,
) -> FusedFeatures:
    """Align every package onto the receiver grid and maxout-fuse.

    The F-Cooper rule: spatially aligned voxel features combine by
    elementwise max, which needs no weights, is permutation-invariant
    over cooperators, and keeps the strongest evidence for every cell.
    Packages from a mismatched grid geometry are the caller's problem
    (the session's sanity gate rejects them before this point).
    """
    with PROFILER.stage("feature.fuse"):
        all_coords = [np.asarray(ego_coords)]
        all_features = [np.asarray(ego_features, dtype=np.float64)]
        proxies = []
        for package in packages:
            idx, ok = _align_coords(
                package.coords, package.pose, receiver_pose, spec
            )
            feats = np.asarray(package.features, dtype=np.float64)[ok]
            idx = idx[ok]
            idx, feats = _maxout(idx, feats, spec.grid_shape)
            all_coords.append(idx)
            all_features.append(feats)
            proxies.append(_proxy_points(idx, feats, spec))
        coords = np.vstack(all_coords)
        features = np.vstack(all_features)
        coords, features = _maxout(coords, features, spec.grid_shape)
        proxy = (
            np.vstack(proxies)
            if proxies
            else np.zeros((0, 3), dtype=np.float64)
        )
        return FusedFeatures(coords=coords, features=features, proxy_xyz=proxy)


# -- detection on fused features ------------------------------------------

@dataclass(frozen=True)
class DecodeEvidence:
    """The point evidence the analytic decode stage consumes.

    Attributes:
        obstacle_xyz: ego obstacle points plus proxy points.
        full_xyz: ego full-cloud points plus proxy points (the
            ground-shadow test's denominator).
        ground_z: the ego's fitted ground height.
    """

    obstacle_xyz: np.ndarray
    full_xyz: np.ndarray
    ground_z: float


class _EvidencePre:
    """Preprocess-result stand-in built from :class:`DecodeEvidence`."""

    def __init__(self, evidence: DecodeEvidence) -> None:
        self.obstacles = _XyzView(evidence.obstacle_xyz)
        self.full = _XyzView(evidence.full_xyz)
        self.ground_z = evidence.ground_z


class _XyzView:
    def __init__(self, xyz: np.ndarray) -> None:
        self.xyz = xyz


def decode_evidence(pre, proxy_xyz: np.ndarray) -> DecodeEvidence:
    """Combine the ego's preprocess result with received proxy points."""
    return DecodeEvidence(
        obstacle_xyz=np.vstack([pre.obstacles.xyz, proxy_xyz]),
        full_xyz=np.vstack([pre.full.xyz, proxy_xyz]),
        ground_z=pre.ground_z,
    )


def feature_bev(detector: SPOD, fused: FusedFeatures) -> np.ndarray:
    """Densify a fused sparse feature map for the shared RPN head."""
    tensor = SparseTensor3d(
        fused.coords,
        fused.features.astype(detector.dtype),
        detector.config.voxel_spec.grid_shape,
    )
    return detector.middle.to_dense(tensor)


def decode_fused(
    detector: SPOD,
    cls_logits: np.ndarray,
    reg: np.ndarray,
    evidence: DecodeEvidence,
) -> list[Detection]:
    """Analytic decode + NMS + threshold over a fused RPN output."""
    tensors = {
        "pre": _EvidencePre(evidence),
        "cls_logits": cls_logits,
        "reg": reg,
    }
    with PROFILER.stage("spod.decode"):
        raw = detector._decode_analytic(tensors)
    with PROFILER.stage("spod.nms"):
        kept = rotated_nms(raw, detector.config.nms_iou)
    threshold = detector.config.detection_threshold
    return [d for d in kept if d.score >= threshold]


def perceive_features(
    detector: SPOD,
    native_cloud: PointCloud,
    receiver_pose: Pose,
    packages: list[FeaturePackage],
) -> list[Detection]:
    """One full feature-level perception cycle (tap -> fuse -> detect).

    The one-call form the benches and tests use; the session loop runs
    the same stages split across its phases.
    """
    if len(native_cloud) == 0 and not any(p.num_voxels for p in packages):
        return []
    if len(native_cloud) == 0:
        return []  # no ego tap: no ground model to decode against
    tap = detector.forward_features(native_cloud, tap=True)
    spec = detector.config.voxel_spec
    fused = fuse_feature_packages(
        spec,
        tap["grid"].coords,
        np.asarray(tap["middle"].features),
        packages,
        receiver_pose,
    )
    if len(fused.coords) == 0:
        return []
    bev = feature_bev(detector, fused)
    cls_logits, reg = detector.rpn_apply(bev)
    evidence = decode_evidence(tap["pre"], fused.proxy_xyz)
    return decode_fused(detector, cls_logits, reg, evidence)
