"""The on-board Cooper agent: the full per-timestep OBU loop.

Ties every subsystem into the loop a deployed vehicle would run each
exchange period:

1. **observe** — scan the world, read GPS + IMU (``repro.sensors``),
2. **share** — ROI-extract, background-subtract, compress and serialise an
   exchange package (``repro.network.roi_policy`` / ``repro.fusion.package``),
3. **transmit** — fragment the package over the DSRC channel
   (``repro.network``),
4. **fuse + detect** — align received packages, merge, run SPOD
   (``repro.fusion`` / ``repro.detection``).

:class:`CooperSession` drives two or more agents through a timeline,
delivering each agent's package to the others — the system-level
simulation behind the paper's end-to-end claims.

The session is built to *degrade*, not crash, under faults: an optional
:class:`repro.faults.FaultPlan` injects bursty channel loss, latency
spikes and sensor faults, and the resilience mechanisms configured by
:class:`ResilienceConfig` absorb them — a pre-merge sanity gate
quarantines corrupted packages, an age-bounded stale-package cache
re-aligns a peer's last delivery through the same Eq. (1)-(3) transform
when a fresh one is lost, and a per-peer circuit breaker stops burning
airtime on dark links.  When every peer is dark the loop falls back to
ego-only perception.  Every degradation event is mirrored into the
session's :attr:`CooperSession.degradation` table and the
:mod:`repro.profiling` registry, and all fault/resilience decisions run
in the parent process or as pure seeded functions, so logs stay
bit-identical at any worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.detection.detections import Detection
from repro.detection.spod import SPOD
from repro.faults.plan import FaultPlan, SensorFaults
from repro.fusion.align import package_intrinsically_sane, pose_delta_plausible
from repro.fusion.cooper import Cooper
from repro.fusion.feature import (
    ConfidenceRequest,
    FeatureFusionConfig,
    FeaturePackage,
    build_feature_package,
    build_request,
    decode_evidence,
    decode_fused,
    feature_bev,
    feature_package_intrinsically_sane,
    fuse_feature_packages,
    rpn_confidence,
)
from repro.fusion.package import ExchangePackage
from repro.fusion.temporal import StalePackageCache
from repro.network.comm import CommRecorder
from repro.network.dsrc import DsrcChannel
from repro.network.messages import MessageFramer
from repro.network.roi_policy import RoiPolicy, extract_roi
from repro.network.scheduler import Demand, SharedChannelScheduler
from repro.profiling import PROFILER
from repro.runtime import WorkerPool, fork_available, resolve_workers, stable_hash
from repro.scene.trajectories import Trajectory
from repro.scene.world import World
from repro.sensors.rig import RigObservation, SensorRig
from repro.temporal import TemporalConfig, TemporalState

__all__ = [
    "AgentStep",
    "CooperAgent",
    "CooperSession",
    "FUSION_MODES",
    "PeerHealth",
    "ResilienceConfig",
]

#: Session fusion modes: raw-cloud merge (the paper's low-level fusion;
#: ROI policies make it the "roi" point of the frontier), F-Cooper style
#: feature-map exchange, and Where2comm style confidence-gated features.
FUSION_MODES = ("raw", "feature", "gated")


def _observe_seed(session_seed: int, step_index: int, agent_index: int) -> int:
    """Per-agent sensing seed for one exchange period."""
    return session_seed + 101 * step_index + agent_index


def _channel_seed(session_seed: int, step_index: int, sender: str) -> int:
    """Per-broadcast DSRC seed, stable across processes.

    The sender's name is mixed in through :func:`repro.runtime.stable_hash`
    (CRC-32) rather than built-in ``hash``, whose value changes with
    ``PYTHONHASHSEED`` — channel losses must be identical run-to-run and
    worker-to-worker for the determinism contract to hold.
    """
    return session_seed + 7 * step_index + stable_hash(sender) % 97


@dataclass
class AgentStep:
    """One agent's record of one exchange period.

    Attributes:
        time: simulation time (seconds).
        observation: the agent's own sensing this period.
        sent_bits: size of the package it broadcast.
        received_packages: decoded packages that reached the merge (fresh
            deliveries plus any stale-cache fallbacks).  In the feature
            fusion modes these are :class:`FeaturePackage` instances.
        delivered: per-peer channel outcome for this period's broadcasts
            (False covers loss, deadline drops, blackouts and circuit-
            breaker skips — the fresh package did not arrive).
        stale_count: how many of ``received_packages`` were age-bounded
            stale-cache fallbacks rather than fresh deliveries.
        detections: SPOD output on the fused cloud.
    """

    time: float
    observation: RigObservation
    sent_bits: int
    received_packages: list[ExchangePackage] = field(default_factory=list)
    delivered: list[bool] = field(default_factory=list)
    stale_count: int = 0
    detections: list[Detection] = field(default_factory=list)


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the session's graceful-degradation machinery.

    Attributes:
        stale_fallback: merge a peer's last delivered package (re-aligned
            by its own recorded pose through Eq. (1)-(3)) when the fresh
            one is lost.
        max_stale_steps: oldest cache entry the fallback may use.
        breaker_threshold: consecutive delivery failures that open a
            peer's circuit breaker (0 disables the breaker).
        breaker_cooldown_steps: steps a tripped breaker skips the peer
            before probing it again.
        sanity_gate: reject corrupted packages (non-finite or implausible
            points/poses) before they reach the merge.
        max_peer_distance_m: sanity bound on the sender-receiver BEV
            distance (DSRC is a sub-kilometre radio).
        max_point_range_m: sanity bound on received point coordinates.
        max_pose_jump_m_per_step: sanity bound on how far a peer's
            claimed pose may move per step from its last delivery (50 m
            in one second is 180 km/h — anything above is a corrupted
            fix, not a vehicle).
    """

    stale_fallback: bool = True
    max_stale_steps: int = 3
    breaker_threshold: int = 3
    breaker_cooldown_steps: int = 2
    sanity_gate: bool = True
    max_peer_distance_m: float = 500.0
    max_point_range_m: float = 300.0
    max_pose_jump_m_per_step: float = 50.0

    def __post_init__(self) -> None:
        if self.max_stale_steps < 0:
            raise ValueError("max_stale_steps must be non-negative")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be non-negative")
        if self.breaker_cooldown_steps < 1:
            raise ValueError("breaker_cooldown_steps must be at least 1")
        if self.max_pose_jump_m_per_step <= 0:
            raise ValueError("max_pose_jump_m_per_step must be positive")


@dataclass
class PeerHealth:
    """Circuit-breaker state of one broadcasting peer's link.

    Attributes:
        consecutive_failures: current run of failed deliveries.
        open_until_step: the breaker skips the peer for steps strictly
            below this; the first step at or past it is the probe.
    """

    consecutive_failures: int = 0
    open_until_step: int = 0

    def is_open(self, step: int) -> bool:
        """Should this step skip the peer entirely?"""
        return step < self.open_until_step

    def record_success(self) -> None:
        """A delivery landed: close the breaker's failure run."""
        self.consecutive_failures = 0

    def record_failure(self, step: int, threshold: int, cooldown: int) -> None:
        """A delivery failed; trip the breaker once the run hits threshold."""
        self.consecutive_failures += 1
        if threshold > 0 and self.consecutive_failures >= threshold:
            self.open_until_step = step + 1 + cooldown


@dataclass
class _Broadcast:
    """Parent-side fate of one sender's per-step broadcast.

    Attributes:
        delivered: did the fresh package clear the channel?
        payload: reassembled wire bytes (None unless delivered).
        package: decoded package for gating (None unless delivered).
        intrinsically_sane: receiver-independent sanity verdict.
        breaker_skipped: the circuit breaker skipped this sender (a
            distinct degradation from channel loss — receivers invalidate
            fusion-side temporal state on it).
    """

    delivered: bool
    payload: bytes | None = None
    package: "ExchangePackage | FeaturePackage | None" = None
    intrinsically_sane: bool = True
    breaker_skipped: bool = False


@dataclass
class CooperAgent:
    """One connected vehicle's Cooper stack.

    Attributes:
        name: vehicle identifier.
        rig: its sensors.
        trajectory: its motion through the session.
        policy: what it shares each period.
        cooper: fusion + detection pipeline (detector shared across agents
            is fine — SPOD is stateless between calls).
    """

    name: str
    rig: SensorRig
    trajectory: Trajectory
    policy: RoiPolicy = field(default_factory=RoiPolicy)
    cooper: Cooper = field(default_factory=lambda: Cooper(SPOD.pretrained()))

    def observe(
        self,
        world: World,
        t: float,
        seed: int,
        faults: SensorFaults | None = None,
        scan_cache=None,
    ) -> RigObservation:
        """Sense the world at time ``t`` (optionally under sensor faults).

        ``scan_cache`` threads the temporal layer's per-agent raycast
        cache into the rig; scans are bit-identical with or without it.
        """
        return self.rig.observe(
            world,
            self.trajectory.pose_at(t),
            seed=seed,
            faults=faults,
            scan_cache=scan_cache,
        )

    def build_package(
        self, world: World, observation: RigObservation, t: float
    ) -> ExchangePackage:
        """Produce this period's outgoing exchange package."""
        with PROFILER.stage("agent.build_package"):
            background = [
                a.box.transformed(observation.true_pose.from_world())
                for a in world.background()
            ]
            roi = extract_roi(observation.scan.cloud, self.policy, background)
            return ExchangePackage(
                cloud=roi,
                pose=observation.measured_pose,
                sender=self.name,
                beam_count=self.rig.lidar.pattern.num_beams,
                timestamp=t,
            )

    def perceive(
        self,
        observation: RigObservation,
        packages: list[ExchangePackage],
        temporal: TemporalState | None = None,
    ) -> list[Detection]:
        """Fuse received packages with the native scan and detect."""
        result = self.cooper.perceive(
            observation.scan.cloud,
            observation.measured_pose,
            packages,
            temporal=temporal,
        )
        return result.detections


@dataclass
class CooperSession:
    """Drives multiple agents through a shared timeline.

    Attributes:
        world: the shared environment.
        agents: the participating vehicles.
        channel: the (shared) DSRC link model.
        framer: link-layer fragmentation.
        faults: optional seeded fault schedule injected into the channel
            and every rig (None — the clean-world behaviour).
        resilience: the graceful-degradation knobs (defaults are inert in
            a fault-free run: nothing is ever stale, insane or dark).
        batch_detection: when every agent's detector is interchangeable
            (:meth:`repro.detection.spod.SPOD.equivalent_to`), fuse all
            agents first and run detection as ONE batched RPN pass per
            step instead of one per agent.  The batched pass always runs
            parent-side over the full agent set, so its batch composition
            — and therefore its results — cannot depend on the worker
            count.  Set False to force the per-agent path.
        temporal: carry per-agent frame-delta state (``repro.temporal``)
            across steps — scan geometry cache, incremental voxelisation,
            rulebook patching and the detect memo.  Warm-path logs are
            bit-identical to a cold run at any worker count; the state is
            invalidated on LiDAR blackout frames, measured-pose jumps and
            circuit-breaker/stale-fallback events, with every
            invalidation decision made parent-side.
        temporal_config: knobs for the temporal layer (None — defaults).
        fusion_mode: what crosses the wire each period — ``"raw"``
            (exchange packages of points; an agent's :class:`RoiPolicy`
            decides how much cloud), ``"feature"`` (F-Cooper style
            :class:`FeaturePackage` broadcasts, fused by elementwise
            maxout on the receiver grid), or ``"gated"`` (Where2comm
            style: every agent additionally broadcasts a small
            :class:`ConfidenceRequest` and senders ship only foreground
            features some requester is missing).  The feature modes are
            incompatible with ``temporal`` (the frame-delta caches track
            raw merged clouds).
        feature_config: gating thresholds for the feature modes.
        scheduler: optional :class:`SharedChannelScheduler` admitting
            every period's broadcasts against one shared channel budget
            before the per-link DSRC model runs.  Deferred broadcasts are
            dropped for the period (the next period's package supersedes
            them — freshest-only) and counted as ``scheduler_deferrals``.
        comm: the per-frame bandwidth ledger, re-created by every
            :meth:`run`.  Records every message actually put on the air
            (packages and confidence requests), parent-side only, so the
            ledger is bit-identical at any worker count.
        degradation: per-run degradation event counts, populated by
            :meth:`run` (also mirrored into ``PROFILER`` counters under
            ``session.*`` when profiling is enabled).
    """

    world: World
    agents: list[CooperAgent]
    channel: DsrcChannel = field(default_factory=DsrcChannel)
    framer: MessageFramer = field(default_factory=MessageFramer)
    faults: FaultPlan | None = None
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    batch_detection: bool = True
    temporal: bool = False
    temporal_config: TemporalConfig | None = None
    fusion_mode: str = "raw"
    feature_config: FeatureFusionConfig = field(
        default_factory=FeatureFusionConfig
    )
    scheduler: SharedChannelScheduler | None = None
    comm: CommRecorder = field(default_factory=CommRecorder, repr=False)
    degradation: dict[str, int] = field(
        default_factory=dict, init=False, repr=False
    )
    _shared_detector: SPOD | None = field(default=None, init=False, repr=False)
    _health: dict[str, PeerHealth] = field(
        default_factory=dict, init=False, repr=False
    )
    _stale_cache: StalePackageCache = field(
        default_factory=StalePackageCache, init=False, repr=False
    )
    _temporal: dict[str, TemporalState] = field(
        default_factory=dict, init=False, repr=False
    )
    _last_measured: dict[str, np.ndarray] = field(
        default_factory=dict, init=False, repr=False
    )
    _pending_invalidations: dict[str, list[str]] = field(
        default_factory=dict, init=False, repr=False
    )

    def run(
        self,
        duration_seconds: float = 8.0,
        period_seconds: float = 1.0,
        seed: int = 0,
        workers: int | None = None,
    ) -> dict[str, list[AgentStep]]:
        """Simulate the session; returns each agent's step log.

        ``workers`` > 1 runs each agent's observe -> package and fuse ->
        detect work of every step on a forked worker pool (``None`` defers
        to ``REPRO_WORKERS``, default 1).  Logs are bit-identical at any
        worker count even with ``faults`` set: sensing, channel and fault
        seeds are derived per (step, agent) independently of scheduling,
        and all delivery/resilience decisions run in the parent.
        """
        if period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        if self.fusion_mode not in FUSION_MODES:
            raise ValueError(
                f"fusion_mode must be one of {FUSION_MODES}, "
                f"got {self.fusion_mode!r}"
            )
        if self.temporal and self.fusion_mode != "raw":
            raise ValueError(
                "temporal frame-delta state requires fusion_mode='raw' "
                "(the caches track raw merged clouds)"
            )
        self.comm = CommRecorder()
        self.degradation = {}
        self._health = {}
        self._stale_cache = StalePackageCache(
            max_age_steps=self.resilience.max_stale_steps
        )
        self._shared_detector = self._resolve_shared_detector()
        worker_temporal_config = None
        if self.temporal:
            worker_temporal_config = self.temporal_config or TemporalConfig()
            self._temporal = {
                agent.name: TemporalState(worker_temporal_config)
                for agent in self.agents
            }
        else:
            self._temporal = {}
        self._last_measured = {}
        self._pending_invalidations = {}
        logs: dict[str, list[AgentStep]] = {a.name: [] for a in self.agents}
        times = np.arange(0.0, duration_seconds, period_seconds)
        workers = resolve_workers(workers)
        if workers <= 1 or len(self.agents) <= 1 or not fork_available():
            for step_index, t in enumerate(times):
                with PROFILER.stage("session.step"):
                    if self.fusion_mode == "raw":
                        self._step(logs, float(t), step_index, seed)
                    else:
                        self._step_features(logs, float(t), step_index, seed)
            return logs
        # One pool for the whole session: workers warm up once and serve
        # every step's two fan-out phases.  Chunk size 1 keeps each
        # agent's (heavy) task a separate unit of work.
        with WorkerPool(
            workers,
            initializer=_session_worker_init,
            initargs=(self.world, self.agents, worker_temporal_config),
            chunk_size=1,
        ) as pool:
            for step_index, t in enumerate(times):
                with PROFILER.stage("session.step"):
                    if self.fusion_mode == "raw":
                        self._step_parallel(
                            pool, logs, float(t), step_index, seed
                        )
                    else:
                        self._step_features(
                            logs, float(t), step_index, seed, pool=pool
                        )
        return logs

    # -- batched detection -------------------------------------------------
    def _resolve_shared_detector(self) -> SPOD | None:
        """The detector to batch every agent's step through, if any.

        Resolved once per :meth:`run`: all agents' detectors must be
        interchangeable (equal config, dtype and live weights — identity
        is not required, since the default agent factory builds
        separate-but-identical instances).  ``None`` keeps the per-agent
        path.
        """
        if not self.batch_detection or len(self.agents) < 2:
            return None
        first = self.agents[0].cooper.detector
        for agent in self.agents[1:]:
            if not first.equivalent_to(agent.cooper.detector):
                return None
        return first

    def _detect_batched(
        self, merged_clouds: list, temporals: list | None = None
    ) -> list[list[Detection]]:
        """One batched detector pass over every agent's fused cloud.

        Always runs in the parent over the full agent set (batch
        composition must not depend on worker layout).  The wall-clock
        cost is attributed to ``cooper.detect`` in equal per-agent shares
        so profiler totals keep reconciling with the per-agent path.
        """
        detector = self._shared_detector
        start = time.perf_counter()
        all_detections = detector.detect_batch(merged_clouds, temporals=temporals)
        share = (time.perf_counter() - start) / max(1, len(merged_clouds))
        threshold = detector.config.detection_threshold
        kept: list[list[Detection]] = []
        for detections in all_detections:
            PROFILER.record("cooper.detect", share)
            kept.append([d for d in detections if d.score >= threshold])
        return kept

    # -- degradation accounting -------------------------------------------
    def _count(self, name: str, value: int = 1) -> None:
        """Record a degradation event in both observability surfaces."""
        self.degradation[name] = self.degradation.get(name, 0) + value
        PROFILER.count(f"session.{name}", value)

    def _resolve_sensor_faults(
        self, step_index: int, agent_name: str
    ) -> SensorFaults | None:
        """Resolve (and count) one agent's sensor faults for one step."""
        if self.faults is None:
            return None
        faults = self.faults.sensor_faults(step_index, agent_name)
        if faults.lidar_blackout:
            self._count("lidar_blackouts")
        if faults.gps_dropout:
            self._count("gps_dropouts")
        if faults.imu_yaw_offset_deg != 0.0:
            self._count("imu_glitches")
        if faults.gps_bias != (0.0, 0.0, 0.0):
            self._count("gps_bias_steps")
        return faults if faults.any else None

    # -- temporal state management (parent-side decisions) -----------------
    def temporal_states(self) -> dict[str, TemporalState]:
        """The parent-side per-agent temporal states of the last run."""
        return dict(self._temporal)

    def _invalidate_temporal(self, name: str, reason: str, scope: str) -> None:
        """Apply + count one parent-side invalidation decision."""
        state = self._temporal.get(name)
        if state is not None:
            state.invalidate(reason, scope=scope)
        self._count("temporal_invalidations")

    def _pre_observe_invalidations(
        self, faults_by_agent: dict[str, SensorFaults | None]
    ) -> dict[str, tuple[str, ...]]:
        """All-scope invalidation reasons decided before this step's sensing.

        A LiDAR blackout frame invalidates the agent's whole temporal
        state (counted here); pose jumps detected *last* step drain from
        the pending queue (already counted at detection) so worker-side
        scan caches drop them too.  The returned reasons ship in the
        phase-1 task payloads; parent-side states are updated in place.
        """
        reasons: dict[str, tuple[str, ...]] = {}
        if not self._temporal:
            return {agent.name: () for agent in self.agents}
        for agent in self.agents:
            name = agent.name
            agent_reasons = list(self._pending_invalidations.pop(name, ()))
            for reason in agent_reasons:
                # Counted when the jump was detected; re-apply is hygiene.
                state = self._temporal.get(name)
                if state is not None:
                    state.invalidate(reason, scope="all")
            faults = faults_by_agent.get(name)
            if faults is not None and faults.lidar_blackout:
                agent_reasons.append("lidar_blackout")
                self._invalidate_temporal(name, "lidar_blackout", "all")
            reasons[name] = tuple(agent_reasons)
        return reasons

    def _detect_pose_jumps(
        self, observations: dict[str, RigObservation]
    ) -> None:
        """Invalidate on physically implausible measured-pose motion.

        A GPS dropout/teleport makes the merged geometry jump wholesale;
        the temporal caches would all miss anyway (they verify content),
        so this is hygiene plus an observability signal.  Decided in the
        parent in agent order — identical at any worker count.  The
        reason is queued for the next step's phase-1 payloads so
        worker-side scan caches are dropped too.
        """
        if not self._temporal:
            return
        limit = (self.temporal_config or TemporalConfig()).pose_jump_m
        for agent in self.agents:
            name = agent.name
            position = observations[name].measured_pose.position
            prev = self._last_measured.get(name)
            self._last_measured[name] = position
            if prev is None:
                continue
            if float(np.hypot(*(position[:2] - prev[:2]))) > limit:
                self._invalidate_temporal(name, "pose_jump", "all")
                self._pending_invalidations.setdefault(name, []).append(
                    "pose_jump"
                )

    def _fuse_invalidations(
        self,
        outcomes: dict[str, _Broadcast],
        inboxes: dict[str, tuple],
    ) -> dict[str, tuple[str, ...]]:
        """Fuse-scope invalidation reasons for each receiver this step.

        A circuit-breaker skip among the receiver's peers or a
        stale-cache fallback in its inbox changes the merged cloud's
        provenance discontinuously; the fusion-side caches (voxel,
        rulebook, detect memo) are dropped, the scan cache — pure ego
        geometry — survives.  Parent-side states are updated in place;
        the reasons ship in phase-3 payloads for worker-side states.
        """
        reasons: dict[str, tuple[str, ...]] = {}
        if not self._temporal:
            return {agent.name: () for agent in self.agents}
        for agent in self.agents:
            name = agent.name
            agent_reasons = []
            if any(
                outcomes[peer.name].breaker_skipped
                for peer in self.agents
                if peer.name != name
            ):
                agent_reasons.append("breaker_skip")
            if inboxes[name][2] > 0:
                agent_reasons.append("stale_fallback")
            for reason in agent_reasons:
                self._invalidate_temporal(name, reason, "fuse")
            reasons[name] = tuple(agent_reasons)
        return reasons

    # -- exchange (parent-side in both execution paths) -------------------
    def _deserialize_package(self, data: bytes):
        """Decode one wire payload per the session's fusion mode."""
        if self.fusion_mode == "raw":
            return ExchangePackage.deserialize(data)
        return FeaturePackage.deserialize(data)

    def _package_intrinsically_sane(self, package) -> bool:
        """The receiver-independent sanity verdict for either wire format."""
        if isinstance(package, FeaturePackage):
            return feature_package_intrinsically_sane(package)
        return package_intrinsically_sane(
            package, self.resilience.max_point_range_m
        )

    def _admitted_senders(
        self, wire: dict[str, tuple[bytes, int]], step_index: int
    ) -> set[str] | None:
        """Shared-channel admission for this step's broadcasts (or None).

        Senders whose circuit breaker is open never reach the channel and
        therefore never compete for capacity.  Deferred demands are
        dropped rather than retransmitted later: the sender's next-period
        package supersedes this one (freshest-only), so the scheduler's
        backlog is cleared after each admission round.
        """
        if self.scheduler is None:
            return None
        resilience = self.resilience
        demands = [
            Demand(sender=agent.name, bits=wire[agent.name][1])
            for agent in self.agents
            if not (
                resilience.breaker_threshold > 0
                and self._health.setdefault(
                    agent.name, PeerHealth()
                ).is_open(step_index)
            )
        ]
        report = self.scheduler.schedule_second(demands)
        self.scheduler.drop_backlog()
        if report.deferred:
            self._count("scheduler_deferrals", len(report.deferred))
        return {demand.sender for demand in report.delivered}

    def _broadcast_outcomes(
        self,
        wire: dict[str, tuple[bytes, int]],
        step_index: int,
        seed: int,
    ) -> dict[str, _Broadcast]:
        """Decide every sender's broadcast fate for one step.

        The shared DSRC channel, the optional shared-channel scheduler,
        the fault plan's per-link conditions and the circuit breaker all
        act here, in the parent, in agent order — the single ordering
        both execution paths share, which is what keeps fault schedules
        and health state identical at any worker count.  Delivered
        packages are decoded once for the receiver-independent sanity
        checks and cached for fallback.  Every transmission that reaches
        the air is entered into the :attr:`comm` ledger.
        """
        resilience = self.resilience
        self.comm.note_frame(step_index)
        kind = "cloud" if self.fusion_mode == "raw" else "features"
        admitted = self._admitted_senders(wire, step_index)
        outcomes: dict[str, _Broadcast] = {}
        for agent in self.agents:
            sender = agent.name
            payload, bits = wire[sender]
            health = self._health.setdefault(sender, PeerHealth())
            conditions = (
                self.faults.channel_conditions(step_index, sender)
                if self.faults is not None
                else None
            )
            if resilience.breaker_threshold > 0 and health.is_open(step_index):
                self._count("breaker_skips")
                outcomes[sender] = _Broadcast(
                    delivered=False, breaker_skipped=True
                )
                continue
            if admitted is not None and sender not in admitted:
                # Deferred by the shared-channel scheduler: never reached
                # the air this period, so nothing enters the ledger.
                health.record_failure(
                    step_index,
                    resilience.breaker_threshold,
                    resilience.breaker_cooldown_steps,
                )
                outcomes[sender] = _Broadcast(delivered=False)
                continue
            if conditions is not None and conditions.blackout:
                self._count("channel_blackouts")
                health.record_failure(
                    step_index,
                    resilience.breaker_threshold,
                    resilience.breaker_cooldown_steps,
                )
                outcomes[sender] = _Broadcast(delivered=False)
                continue
            report = self.channel.transmit(
                bits,
                seed=_channel_seed(seed, step_index, sender),
                loss_rate=conditions.loss_rate if conditions else None,
                extra_latency_ms=(
                    conditions.extra_latency_ms if conditions else 0.0
                ),
            )
            self.comm.record(
                step_index, sender, kind, len(payload),
                delivered=report.delivered,
            )
            if report.timed_out:
                self._count("deadline_drops")
            if not report.delivered:
                health.record_failure(
                    step_index,
                    resilience.breaker_threshold,
                    resilience.breaker_cooldown_steps,
                )
                outcomes[sender] = _Broadcast(delivered=False)
                continue
            health.record_success()
            frames = self.framer.fragment(payload)
            data = MessageFramer.reassemble(frames)
            package = self._deserialize_package(data)
            sane = (
                not resilience.sanity_gate
                or self._package_intrinsically_sane(package)
            )
            if sane and resilience.sanity_gate:
                # Pose-jump check against the peer's own last delivery: a
                # physically impossible move marks a corrupted fix and
                # must not poison the fallback cache.
                prev = self._stale_cache.last(sender)
                if prev is not None:
                    jump = np.hypot(
                        *(package.pose.position[:2] - prev.package.pose.position[:2])
                    )
                    limit = resilience.max_pose_jump_m_per_step * max(
                        1, step_index - prev.step
                    )
                    sane = bool(jump <= limit)
            if sane:
                self._stale_cache.store(sender, data, package, step_index)
            else:
                self._count("sanity_rejects")
            outcomes[sender] = _Broadcast(
                delivered=True,
                payload=data,
                package=package,
                intrinsically_sane=sane,
            )
        return outcomes

    def _receiver_inbox(
        self,
        receiver: str,
        receiver_pose,
        outcomes: dict[str, _Broadcast],
        step_index: int,
    ) -> tuple[list[bytes], list[bool], int]:
        """Assemble one receiver's merge inbox from the broadcast fates.

        Returns ``(payloads, delivered_flags, stale_count)``: the wire
        payloads to decode and merge (fresh deliveries that passed the
        sanity gate, then stale-cache fallbacks for peers that went
        dark), the per-peer channel outcome flags, and how many payloads
        came from the cache.
        """
        resilience = self.resilience
        payloads: list[bytes] = []
        flags: list[bool] = []
        stale = 0
        for agent in self.agents:
            sender = agent.name
            if sender == receiver:
                continue
            outcome = outcomes[sender]
            flags.append(outcome.delivered)
            usable = outcome.delivered and outcome.intrinsically_sane
            if (
                usable
                and resilience.sanity_gate
                and not pose_delta_plausible(
                    outcome.package,
                    receiver_pose,
                    resilience.max_peer_distance_m,
                )
            ):
                self._count("sanity_rejects")
                usable = False
            if usable:
                payloads.append(outcome.payload)
                continue
            if not resilience.stale_fallback:
                continue
            entry = self._stale_cache.recall(sender, step_index)
            # A same-step entry is the very package just rejected for
            # this receiver — only genuinely older deliveries qualify.
            if (
                entry is not None
                and entry.step < step_index
                and (
                    not resilience.sanity_gate
                    or pose_delta_plausible(
                        entry.package,
                        receiver_pose,
                        resilience.max_peer_distance_m,
                    )
                )
            ):
                payloads.append(entry.payload)
                stale += 1
                self._count("stale_fallbacks")
        if flags and not payloads:
            self._count("ego_only_steps")
        return payloads, flags, stale

    # -- execution paths --------------------------------------------------
    def _step(
        self,
        logs: dict[str, list[AgentStep]],
        t: float,
        step_index: int,
        seed: int,
    ) -> None:
        """Run one exchange period for every agent (inline path)."""
        faults_by_agent = {
            agent.name: self._resolve_sensor_faults(step_index, agent.name)
            for agent in self.agents
        }
        self._pre_observe_invalidations(faults_by_agent)
        observations = {
            agent.name: agent.observe(
                self.world,
                t,
                seed=_observe_seed(seed, step_index, i),
                faults=faults_by_agent[agent.name],
                scan_cache=(
                    self._temporal[agent.name].scan
                    if agent.name in self._temporal
                    else None
                ),
            )
            for i, agent in enumerate(self.agents)
        }
        self._detect_pose_jumps(observations)
        # Every agent broadcasts one package per period.
        wire: dict[str, tuple[bytes, int]] = {}
        for agent in self.agents:
            package = agent.build_package(self.world, observations[agent.name], t)
            payload = package.serialize()
            wire[agent.name] = (payload, len(payload) * 8)

        outcomes = self._broadcast_outcomes(wire, step_index, seed)
        inboxes: dict[str, tuple[list[ExchangePackage], list[bool], int]] = {}
        for agent in self.agents:
            payloads, delivered_flags, stale = self._receiver_inbox(
                agent.name,
                observations[agent.name].measured_pose,
                outcomes,
                step_index,
            )
            received = [ExchangePackage.deserialize(p) for p in payloads]
            fresh = len(received) - stale
            PROFILER.count("session.packages_received", fresh)
            PROFILER.count(
                "session.packages_lost", len(delivered_flags) - fresh
            )
            inboxes[agent.name] = (received, delivered_flags, stale)

        self._fuse_invalidations(outcomes, inboxes)
        if self._shared_detector is not None:
            merged = [
                agent.cooper.fuse(
                    observations[agent.name].scan.cloud,
                    observations[agent.name].measured_pose,
                    inboxes[agent.name][0],
                )[0]
                for agent in self.agents
            ]
            detections_by_agent = self._detect_batched(
                merged,
                temporals=[self._temporal.get(a.name) for a in self.agents],
            )
        else:
            detections_by_agent = [
                agent.perceive(
                    observations[agent.name],
                    inboxes[agent.name][0],
                    temporal=self._temporal.get(agent.name),
                )
                for agent in self.agents
            ]
        for agent, detections in zip(self.agents, detections_by_agent):
            received, delivered_flags, stale = inboxes[agent.name]
            logs[agent.name].append(
                AgentStep(
                    time=t,
                    observation=observations[agent.name],
                    sent_bits=wire[agent.name][1],
                    received_packages=received,
                    delivered=delivered_flags,
                    stale_count=stale,
                    detections=detections,
                )
            )

    def _step_parallel(
        self,
        pool: WorkerPool,
        logs: dict[str, list[AgentStep]],
        t: float,
        step_index: int,
        seed: int,
    ) -> None:
        """One exchange period with per-agent work fanned out to ``pool``.

        Phase 1 (workers): observe + build + serialize, one task per
        agent (resolved sensor faults ride along in the task payload).
        Phase 2 (parent): the shared DSRC channel, fault plan and
        resilience state decide each receiver's inbox — cheap, and keeps
        the link model and all stateful decisions in one place.
        Phase 3 (workers): decode + fuse (+ detect on the per-agent
        path), one task per agent.  With batched detection active the
        workers stop after fusing and the parent runs the single batched
        detector pass over every agent — the same call, over the same
        clouds, that the inline path makes, so logs stay bit-identical
        at any worker count.
        Seeds match :meth:`_step` exactly, so logs are bit-identical.
        Temporal-state decisions (which caches to invalidate, and when)
        are made here in the parent and shipped inside the task payloads;
        worker-side states only ever change *how fast* a task runs, never
        its result, so scheduling nondeterminism cannot leak into logs.
        """
        faults_by_agent = {
            agent.name: self._resolve_sensor_faults(step_index, agent.name)
            for agent in self.agents
        }
        scan_invalidations = self._pre_observe_invalidations(faults_by_agent)
        built = pool.map(
            _observe_build_task,
            [
                (
                    i,
                    t,
                    _observe_seed(seed, step_index, i),
                    faults_by_agent[agent.name],
                    scan_invalidations[agent.name],
                )
                for i, agent in enumerate(self.agents)
            ],
        )
        observations: dict[str, RigObservation] = {}
        wire: dict[str, tuple[bytes, int]] = {}
        for agent, (observation, payload) in zip(self.agents, built):
            observations[agent.name] = observation
            wire[agent.name] = (payload, len(payload) * 8)
        self._detect_pose_jumps(observations)

        outcomes = self._broadcast_outcomes(wire, step_index, seed)
        inboxes: dict[str, tuple[list[bytes], list[bool], int]] = {
            agent.name: self._receiver_inbox(
                agent.name,
                observations[agent.name].measured_pose,
                outcomes,
                step_index,
            )
            for agent in self.agents
        }
        fuse_invalidations = self._fuse_invalidations(outcomes, inboxes)

        if self._shared_detector is not None:
            fused = pool.map(
                _fuse_task,
                [
                    (i, observations[agent.name], inboxes[agent.name][0])
                    for i, agent in enumerate(self.agents)
                ],
            )
            # Batched detection runs parent-side, so it uses the
            # parent's temporal states — deterministic at any worker
            # count, and the detect memo works even with workers > 1.
            detections_by_agent = self._detect_batched(
                [cloud for _received, cloud in fused],
                temporals=[self._temporal.get(a.name) for a in self.agents],
            )
            perceived = [
                (received, detections)
                for (received, _cloud), detections in zip(
                    fused, detections_by_agent
                )
            ]
        else:
            perceived = pool.map(
                _perceive_task,
                [
                    (
                        i,
                        observations[agent.name],
                        inboxes[agent.name][0],
                        fuse_invalidations[agent.name],
                    )
                    for i, agent in enumerate(self.agents)
                ],
            )
        for agent, (received, detections) in zip(self.agents, perceived):
            _payloads, delivered_flags, stale = inboxes[agent.name]
            fresh = len(received) - stale
            PROFILER.count("session.packages_received", fresh)
            PROFILER.count(
                "session.packages_lost", len(delivered_flags) - fresh
            )
            logs[agent.name].append(
                AgentStep(
                    time=t,
                    observation=observations[agent.name],
                    sent_bits=wire[agent.name][1],
                    received_packages=received,
                    delivered=delivered_flags,
                    stale_count=stale,
                    detections=detections,
                )
            )

    # -- feature-level execution path --------------------------------------
    def _build_feature_wire(
        self,
        observations: dict[str, RigObservation],
        taps: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray | None]],
        t: float,
        step_index: int,
    ) -> dict[str, tuple[bytes, int]]:
        """Phase-2 packaging: confidence requests, then one package each.

        Runs in the parent in agent order.  In gated mode every agent
        first broadcasts its confidence request (a tiny control message,
        entered into the ledger but exempt from scheduler admission the
        way safety beacons are), then each sender packages the union of
        what the other requesters still want.  An agent whose LiDAR
        produced no points this step ships an empty package and — gated —
        an all-clear request, so the wire schedule never depends on
        sensor faults.
        """
        gated = self.fusion_mode == "gated"
        requests: dict[str, ConfidenceRequest] = {}
        if gated:
            for agent in self.agents:
                name = agent.name
                coords, features, heat = taps[name]
                if heat is None:
                    nx, ny = agent.cooper.detector.config.voxel_spec.grid_shape[:2]
                    heat = np.zeros((nx, ny), dtype=np.float64)
                request = build_request(
                    heat,
                    observations[name].measured_pose,
                    name,
                    timestamp=t,
                    config=self.feature_config,
                )
                requests[name] = request
                self.comm.record(
                    step_index, name, "request", request.size_bytes()
                )
        wire: dict[str, tuple[bytes, int]] = {}
        for agent in self.agents:
            name = agent.name
            spec = agent.cooper.detector.config.voxel_spec
            coords, features, heat = taps[name]
            if gated and heat is None:
                nx, ny = spec.grid_shape[:2]
                heat = np.zeros((nx, ny), dtype=np.float64)
            package = build_feature_package(
                spec,
                coords,
                features,
                observations[name].measured_pose,
                name,
                timestamp=t,
                heat=heat,
                requests=(
                    tuple(
                        requests[peer.name]
                        for peer in self.agents
                        if peer.name != name
                    )
                    if gated
                    else ()
                ),
                config=self.feature_config,
            )
            payload = package.serialize()
            wire[name] = (payload, len(payload) * 8)
        return wire

    def _detect_fused(
        self,
        fused: list[tuple[list[FeaturePackage], np.ndarray | None, object]],
    ) -> list[list[Detection]]:
        """RPN + analytic decode over every agent's fused feature map.

        Always runs in the parent, in both execution paths.  The RPN
        treats batch rows independently, so batching through the shared
        detector produces the same per-agent output as separate passes —
        logs cannot depend on whether detectors were interchangeable.
        Agents with no BEV map this step (empty scan, or nothing fused)
        detect nothing.
        """
        detections: list[list[Detection]] = [[] for _ in self.agents]
        live = [i for i, (_r, bev, _e) in enumerate(fused) if bev is not None]
        if not live:
            return detections
        with PROFILER.stage("cooper.detect"):
            if self._shared_detector is not None:
                detector = self._shared_detector
                batch = np.concatenate([fused[i][1] for i in live], axis=0)
                cls_logits, reg = detector.rpn_apply(batch)
                for row, i in enumerate(live):
                    detections[i] = decode_fused(
                        detector,
                        cls_logits[row : row + 1],
                        reg[row : row + 1],
                        fused[i][2],
                    )
            else:
                for i in live:
                    detector = self.agents[i].cooper.detector
                    cls_logits, reg = detector.rpn_apply(fused[i][1])
                    detections[i] = decode_fused(
                        detector, cls_logits, reg, fused[i][2]
                    )
        return detections

    def _step_features(
        self,
        logs: dict[str, list[AgentStep]],
        t: float,
        step_index: int,
        seed: int,
        pool: WorkerPool | None = None,
    ) -> None:
        """One exchange period at feature level (both execution paths).

        The phase layout mirrors the raw path exactly.  Phase 1: every
        agent senses and runs its detector up to the feature tap (plus
        the cheap RPN confidence map in gated mode) — inline, or one
        worker task per agent.  Phase 2 (always parent-side): confidence
        requests and feature packages are built in agent order, the
        shared channel/scheduler/fault/breaker machinery decides each
        broadcast's fate, and every transmission lands in the
        :attr:`comm` ledger.  Phase 3: each receiver aligns and
        maxout-fuses its inbox onto its own grid — inline the phase-1
        tap is reused; a worker recomputes it (a pure function of the
        observation, so the result is identical) because sparse tensors
        stay worker-local.  Detection over the fused maps then runs in
        the parent, batched when detectors are interchangeable.  Seeds
        and every stateful decision match the inline path, so logs are
        bit-identical at any worker count.
        """
        gated = self.fusion_mode == "gated"
        faults_by_agent = {
            agent.name: self._resolve_sensor_faults(step_index, agent.name)
            for agent in self.agents
        }
        observations: dict[str, RigObservation] = {}
        lite: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray | None]] = {}
        taps: dict[str, dict | None] = {}
        if pool is None:
            for i, agent in enumerate(self.agents):
                observation = agent.observe(
                    self.world,
                    t,
                    seed=_observe_seed(seed, step_index, i),
                    faults=faults_by_agent[agent.name],
                )
                observations[agent.name] = observation
                tapped = _tap_features(
                    agent.cooper.detector, observation.scan.cloud, gated
                )
                taps[agent.name] = None if tapped is None else tapped[0]
                lite[agent.name] = _lite_tap(tapped)
        else:
            built = pool.map(
                _observe_tap_task,
                [
                    (
                        i,
                        t,
                        _observe_seed(seed, step_index, i),
                        faults_by_agent[agent.name],
                        gated,
                    )
                    for i, agent in enumerate(self.agents)
                ],
            )
            for agent, (observation, coords, features, heat) in zip(
                self.agents, built
            ):
                observations[agent.name] = observation
                lite[agent.name] = (coords, features, heat)
        self._detect_pose_jumps(observations)

        wire = self._build_feature_wire(observations, lite, t, step_index)
        outcomes = self._broadcast_outcomes(wire, step_index, seed)
        inboxes: dict[str, tuple[list[bytes], list[bool], int]] = {
            agent.name: self._receiver_inbox(
                agent.name,
                observations[agent.name].measured_pose,
                outcomes,
                step_index,
            )
            for agent in self.agents
        }

        if pool is None:
            fused = [
                _fuse_features_one(
                    agent.cooper.detector,
                    observations[agent.name],
                    taps[agent.name],
                    inboxes[agent.name][0],
                )
                for agent in self.agents
            ]
        else:
            fused = pool.map(
                _feature_fuse_task,
                [
                    (i, observations[agent.name], inboxes[agent.name][0])
                    for i, agent in enumerate(self.agents)
                ],
            )
        detections_by_agent = self._detect_fused(fused)
        for agent, detections, (received, _bev, _evidence) in zip(
            self.agents, detections_by_agent, fused
        ):
            name = agent.name
            _payloads, delivered_flags, stale = inboxes[name]
            fresh = len(received) - stale
            PROFILER.count("session.packages_received", fresh)
            PROFILER.count(
                "session.packages_lost", len(delivered_flags) - fresh
            )
            logs[name].append(
                AgentStep(
                    time=t,
                    observation=observations[name],
                    sent_bits=wire[name][1],
                    received_packages=received,
                    delivered=delivered_flags,
                    stale_count=stale,
                    detections=detections,
                )
            )


def _tap_features(
    detector: SPOD, cloud, want_heat: bool
) -> tuple[dict, np.ndarray | None] | None:
    """Run one agent's feature tap (and optional confidence map).

    Returns ``None`` for an empty scan — there is no ground model to
    decode against, matching the raw path's empty-cloud behaviour.
    """
    if len(cloud) == 0:
        return None
    tap = detector.forward_features(cloud, tap=True)
    heat = rpn_confidence(detector, tap["bev"]) if want_heat else None
    return tap, heat


def _lite_tap(
    tapped: tuple[dict, np.ndarray | None] | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Reduce a tap to the arrays the packaging stage ships to the parent."""
    if tapped is None:
        return (
            np.zeros((0, 3), dtype=np.int64),
            np.zeros((0, 4), dtype=np.float64),
            None,
        )
    tap, heat = tapped
    return (
        np.asarray(tap["grid"].coords),
        np.asarray(tap["middle"].features, dtype=np.float64),
        heat,
    )


def _fuse_features_one(
    detector: SPOD,
    observation: RigObservation,
    tap: dict | None,
    payloads: list[bytes],
) -> tuple[list[FeaturePackage], np.ndarray | None, object]:
    """Decode + align + maxout-fuse one receiver's feature inbox.

    Returns ``(received, bev, evidence)``; ``bev`` is ``None`` when the
    agent has no tap (empty scan) or nothing fused, which the detection
    stage maps to zero detections.
    """
    received = [FeaturePackage.deserialize(p) for p in payloads]
    if tap is None:
        return received, None, None
    spec = detector.config.voxel_spec
    fused = fuse_feature_packages(
        spec,
        np.asarray(tap["grid"].coords),
        np.asarray(tap["middle"].features, dtype=np.float64),
        received,
        observation.measured_pose,
    )
    if len(fused.coords) == 0:
        return received, None, None
    bev = feature_bev(detector, fused)
    evidence = decode_evidence(tap["pre"], fused.proxy_xyz)
    return received, bev, evidence


#: Session state installed in each worker by :func:`_session_worker_init`;
#: the world and agent stacks are shipped once per worker, not per task.
_WORKER_WORLD: World | None = None
_WORKER_AGENTS: list[CooperAgent] | None = None
#: Worker-local temporal states, one per agent index.  Which worker ran an
#: agent's previous task depends on scheduling, so these states hit or
#: miss nondeterministically — which is fine: every temporal cache
#: verifies content exactly, so worker-side state changes only speed,
#: never results.  Invalidation *decisions* still arrive from the parent
#: in the task payloads (as reason tuples) so hygiene matches the plan.
_WORKER_TEMPORAL_CONFIG: TemporalConfig | None = None
_WORKER_TEMPORAL: dict[int, TemporalState] = {}


def _session_worker_init(
    world: World,
    agents: list[CooperAgent],
    temporal_config: TemporalConfig | None = None,
) -> None:
    """Worker warm-up: install the session's world and agent stacks."""
    global _WORKER_WORLD, _WORKER_AGENTS, _WORKER_TEMPORAL_CONFIG
    _WORKER_WORLD = world
    _WORKER_AGENTS = agents
    _WORKER_TEMPORAL_CONFIG = temporal_config
    _WORKER_TEMPORAL.clear()


def _worker_temporal(agent_index: int) -> TemporalState | None:
    """This worker's temporal state for one agent (None — temporal off)."""
    if _WORKER_TEMPORAL_CONFIG is None:
        return None
    state = _WORKER_TEMPORAL.get(agent_index)
    if state is None:
        state = TemporalState(_WORKER_TEMPORAL_CONFIG)
        _WORKER_TEMPORAL[agent_index] = state
    return state


def _observe_build_task(
    payload: tuple[int, float, int, SensorFaults | None, tuple[str, ...]],
) -> tuple[RigObservation, bytes]:
    """Phase-1 worker task: one agent senses and serialises its package."""
    agent_index, t, obs_seed, faults, invalidations = payload
    agent = _WORKER_AGENTS[agent_index]
    state = _worker_temporal(agent_index)
    if state is not None:
        for reason in invalidations:
            state.invalidate(reason, scope="all")
    observation = agent.observe(
        _WORKER_WORLD,
        t,
        seed=obs_seed,
        faults=faults,
        scan_cache=None if state is None else state.scan,
    )
    package = agent.build_package(_WORKER_WORLD, observation, t)
    return observation, package.serialize()


def _perceive_task(
    payload: tuple[int, RigObservation, list[bytes], tuple[str, ...]],
) -> tuple[list[ExchangePackage], list[Detection]]:
    """Phase-3 worker task: one agent decodes, fuses and detects."""
    agent_index, observation, package_payloads, invalidations = payload
    agent = _WORKER_AGENTS[agent_index]
    state = _worker_temporal(agent_index)
    if state is not None:
        for reason in invalidations:
            state.invalidate(reason, scope="fuse")
    received = [ExchangePackage.deserialize(p) for p in package_payloads]
    return received, agent.perceive(observation, received, temporal=state)


def _fuse_task(payload: tuple[int, RigObservation, list[bytes]]):
    """Phase-3 worker task (batched mode): decode + fuse, no detection.

    Fusion is a pure function of the observation and payloads, so doing
    it in a worker instead of the parent cannot change the merged cloud;
    the parent then batches detection over every agent's result.
    """
    agent_index, observation, package_payloads = payload
    agent = _WORKER_AGENTS[agent_index]
    received = [ExchangePackage.deserialize(p) for p in package_payloads]
    merged, _accepted, _rejected, _seconds = agent.cooper.fuse(
        observation.scan.cloud, observation.measured_pose, received
    )
    return received, merged


def _observe_tap_task(
    payload: tuple[int, float, int, SensorFaults | None, bool],
) -> tuple[RigObservation, np.ndarray, np.ndarray, np.ndarray | None]:
    """Phase-1 worker task (feature modes): sense + feature tap (+ heat).

    Ships back only the arrays the parent's packaging stage needs — the
    sparse tensors and preprocess result stay worker-local and are
    recomputed by the phase-3 task, which is a pure function of the
    observation.
    """
    agent_index, t, obs_seed, faults, want_heat = payload
    agent = _WORKER_AGENTS[agent_index]
    observation = agent.observe(
        _WORKER_WORLD, t, seed=obs_seed, faults=faults
    )
    tapped = _tap_features(
        agent.cooper.detector, observation.scan.cloud, want_heat
    )
    coords, features, heat = _lite_tap(tapped)
    return observation, coords, features, heat


def _feature_fuse_task(
    payload: tuple[int, RigObservation, list[bytes]],
) -> tuple[list[FeaturePackage], np.ndarray | None, object]:
    """Phase-3 worker task (feature modes): re-tap, decode and fuse.

    The tap is recomputed from the observation (deterministic), the
    inbox payloads are decoded and fused, and the dense BEV + decode
    evidence ship back for the parent's detection pass.
    """
    agent_index, observation, package_payloads = payload
    agent = _WORKER_AGENTS[agent_index]
    detector = agent.cooper.detector
    tapped = _tap_features(detector, observation.scan.cloud, want_heat=False)
    tap = None if tapped is None else tapped[0]
    return _fuse_features_one(detector, observation, tap, package_payloads)
