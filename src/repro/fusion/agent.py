"""The on-board Cooper agent: the full per-timestep OBU loop.

Ties every subsystem into the loop a deployed vehicle would run each
exchange period:

1. **observe** — scan the world, read GPS + IMU (``repro.sensors``),
2. **share** — ROI-extract, background-subtract, compress and serialise an
   exchange package (``repro.network.roi_policy`` / ``repro.fusion.package``),
3. **transmit** — fragment the package over the DSRC channel
   (``repro.network``),
4. **fuse + detect** — align received packages, merge, run SPOD
   (``repro.fusion`` / ``repro.detection``).

:class:`CooperSession` drives two or more agents through a timeline,
delivering each agent's package to the others — the system-level
simulation behind the paper's end-to-end claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.detections import Detection
from repro.detection.spod import SPOD
from repro.fusion.cooper import Cooper
from repro.fusion.package import ExchangePackage
from repro.network.dsrc import DsrcChannel
from repro.network.messages import MessageFramer
from repro.network.roi_policy import RoiPolicy, extract_roi
from repro.profiling import PROFILER
from repro.scene.trajectories import Trajectory
from repro.scene.world import World
from repro.sensors.rig import RigObservation, SensorRig

__all__ = ["AgentStep", "CooperAgent", "CooperSession"]


@dataclass
class AgentStep:
    """One agent's record of one exchange period.

    Attributes:
        time: simulation time (seconds).
        observation: the agent's own sensing this period.
        sent_bits: size of the package it broadcast.
        received_packages: decoded packages from cooperators.
        delivered: per-received-package channel outcome.
        detections: SPOD output on the fused cloud.
    """

    time: float
    observation: RigObservation
    sent_bits: int
    received_packages: list[ExchangePackage] = field(default_factory=list)
    delivered: list[bool] = field(default_factory=list)
    detections: list[Detection] = field(default_factory=list)


@dataclass
class CooperAgent:
    """One connected vehicle's Cooper stack.

    Attributes:
        name: vehicle identifier.
        rig: its sensors.
        trajectory: its motion through the session.
        policy: what it shares each period.
        cooper: fusion + detection pipeline (detector shared across agents
            is fine — SPOD is stateless between calls).
    """

    name: str
    rig: SensorRig
    trajectory: Trajectory
    policy: RoiPolicy = field(default_factory=RoiPolicy)
    cooper: Cooper = field(default_factory=lambda: Cooper(SPOD.pretrained()))

    def observe(self, world: World, t: float, seed: int) -> RigObservation:
        """Sense the world at time ``t``."""
        return self.rig.observe(world, self.trajectory.pose_at(t), seed=seed)

    def build_package(
        self, world: World, observation: RigObservation, t: float
    ) -> ExchangePackage:
        """Produce this period's outgoing exchange package."""
        with PROFILER.stage("agent.build_package"):
            background = [
                a.box.transformed(observation.true_pose.from_world())
                for a in world.background()
            ]
            roi = extract_roi(observation.scan.cloud, self.policy, background)
            return ExchangePackage(
                cloud=roi,
                pose=observation.measured_pose,
                sender=self.name,
                beam_count=self.rig.lidar.pattern.num_beams,
                timestamp=t,
            )

    def perceive(
        self,
        observation: RigObservation,
        packages: list[ExchangePackage],
    ) -> list[Detection]:
        """Fuse received packages with the native scan and detect."""
        result = self.cooper.perceive(
            observation.scan.cloud, observation.measured_pose, packages
        )
        return result.detections


@dataclass
class CooperSession:
    """Drives multiple agents through a shared timeline.

    Attributes:
        world: the shared environment.
        agents: the participating vehicles.
        channel: the (shared) DSRC link model.
        framer: link-layer fragmentation.
    """

    world: World
    agents: list[CooperAgent]
    channel: DsrcChannel = field(default_factory=DsrcChannel)
    framer: MessageFramer = field(default_factory=MessageFramer)

    def run(
        self,
        duration_seconds: float = 8.0,
        period_seconds: float = 1.0,
        seed: int = 0,
    ) -> dict[str, list[AgentStep]]:
        """Simulate the session; returns each agent's step log."""
        if period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        logs: dict[str, list[AgentStep]] = {a.name: [] for a in self.agents}
        times = np.arange(0.0, duration_seconds, period_seconds)
        for step_index, t in enumerate(times):
            with PROFILER.stage("session.step"):
                self._step(logs, float(t), step_index, seed)
        return logs

    def _step(
        self,
        logs: dict[str, list[AgentStep]],
        t: float,
        step_index: int,
        seed: int,
    ) -> None:
        """Run one exchange period for every agent."""
        observations = {
            agent.name: agent.observe(
                self.world, t, seed=seed + 101 * step_index + i
            )
            for i, agent in enumerate(self.agents)
        }
        # Every agent broadcasts one package per period.
        wire: dict[str, tuple[bytes, int]] = {}
        for agent in self.agents:
            package = agent.build_package(self.world, observations[agent.name], t)
            payload = package.serialize()
            wire[agent.name] = (payload, len(payload) * 8)

        for agent in self.agents:
            received: list[ExchangePackage] = []
            delivered_flags: list[bool] = []
            for other in self.agents:
                if other.name == agent.name:
                    continue
                payload, bits = wire[other.name]
                report = self.channel.transmit(
                    bits, seed=seed + 7 * step_index + hash(other.name) % 97
                )
                delivered_flags.append(report.delivered)
                if report.delivered:
                    frames = self.framer.fragment(payload)
                    received.append(
                        ExchangePackage.deserialize(
                            MessageFramer.reassemble(frames)
                        )
                    )
            PROFILER.count("session.packages_received", len(received))
            PROFILER.count(
                "session.packages_lost", len(delivered_flags) - len(received)
            )
            detections = agent.perceive(observations[agent.name], received)
            logs[agent.name].append(
                AgentStep(
                    time=t,
                    observation=observations[agent.name],
                    sent_bits=wire[agent.name][1],
                    received_packages=received,
                    delivered=delivered_flags,
                    detections=detections,
                )
            )
