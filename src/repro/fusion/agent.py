"""The on-board Cooper agent: the full per-timestep OBU loop.

Ties every subsystem into the loop a deployed vehicle would run each
exchange period:

1. **observe** — scan the world, read GPS + IMU (``repro.sensors``),
2. **share** — ROI-extract, background-subtract, compress and serialise an
   exchange package (``repro.network.roi_policy`` / ``repro.fusion.package``),
3. **transmit** — fragment the package over the DSRC channel
   (``repro.network``),
4. **fuse + detect** — align received packages, merge, run SPOD
   (``repro.fusion`` / ``repro.detection``).

:class:`CooperSession` drives two or more agents through a timeline,
delivering each agent's package to the others — the system-level
simulation behind the paper's end-to-end claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.detections import Detection
from repro.detection.spod import SPOD
from repro.fusion.cooper import Cooper
from repro.fusion.package import ExchangePackage
from repro.network.dsrc import DsrcChannel
from repro.network.messages import MessageFramer
from repro.network.roi_policy import RoiPolicy, extract_roi
from repro.profiling import PROFILER
from repro.runtime import WorkerPool, fork_available, resolve_workers, stable_hash
from repro.scene.trajectories import Trajectory
from repro.scene.world import World
from repro.sensors.rig import RigObservation, SensorRig

__all__ = ["AgentStep", "CooperAgent", "CooperSession"]


def _observe_seed(session_seed: int, step_index: int, agent_index: int) -> int:
    """Per-agent sensing seed for one exchange period."""
    return session_seed + 101 * step_index + agent_index


def _channel_seed(session_seed: int, step_index: int, sender: str) -> int:
    """Per-broadcast DSRC seed, stable across processes.

    The sender's name is mixed in through :func:`repro.runtime.stable_hash`
    (CRC-32) rather than built-in ``hash``, whose value changes with
    ``PYTHONHASHSEED`` — channel losses must be identical run-to-run and
    worker-to-worker for the determinism contract to hold.
    """
    return session_seed + 7 * step_index + stable_hash(sender) % 97


@dataclass
class AgentStep:
    """One agent's record of one exchange period.

    Attributes:
        time: simulation time (seconds).
        observation: the agent's own sensing this period.
        sent_bits: size of the package it broadcast.
        received_packages: decoded packages from cooperators.
        delivered: per-received-package channel outcome.
        detections: SPOD output on the fused cloud.
    """

    time: float
    observation: RigObservation
    sent_bits: int
    received_packages: list[ExchangePackage] = field(default_factory=list)
    delivered: list[bool] = field(default_factory=list)
    detections: list[Detection] = field(default_factory=list)


@dataclass
class CooperAgent:
    """One connected vehicle's Cooper stack.

    Attributes:
        name: vehicle identifier.
        rig: its sensors.
        trajectory: its motion through the session.
        policy: what it shares each period.
        cooper: fusion + detection pipeline (detector shared across agents
            is fine — SPOD is stateless between calls).
    """

    name: str
    rig: SensorRig
    trajectory: Trajectory
    policy: RoiPolicy = field(default_factory=RoiPolicy)
    cooper: Cooper = field(default_factory=lambda: Cooper(SPOD.pretrained()))

    def observe(self, world: World, t: float, seed: int) -> RigObservation:
        """Sense the world at time ``t``."""
        return self.rig.observe(world, self.trajectory.pose_at(t), seed=seed)

    def build_package(
        self, world: World, observation: RigObservation, t: float
    ) -> ExchangePackage:
        """Produce this period's outgoing exchange package."""
        with PROFILER.stage("agent.build_package"):
            background = [
                a.box.transformed(observation.true_pose.from_world())
                for a in world.background()
            ]
            roi = extract_roi(observation.scan.cloud, self.policy, background)
            return ExchangePackage(
                cloud=roi,
                pose=observation.measured_pose,
                sender=self.name,
                beam_count=self.rig.lidar.pattern.num_beams,
                timestamp=t,
            )

    def perceive(
        self,
        observation: RigObservation,
        packages: list[ExchangePackage],
    ) -> list[Detection]:
        """Fuse received packages with the native scan and detect."""
        result = self.cooper.perceive(
            observation.scan.cloud, observation.measured_pose, packages
        )
        return result.detections


@dataclass
class CooperSession:
    """Drives multiple agents through a shared timeline.

    Attributes:
        world: the shared environment.
        agents: the participating vehicles.
        channel: the (shared) DSRC link model.
        framer: link-layer fragmentation.
    """

    world: World
    agents: list[CooperAgent]
    channel: DsrcChannel = field(default_factory=DsrcChannel)
    framer: MessageFramer = field(default_factory=MessageFramer)

    def run(
        self,
        duration_seconds: float = 8.0,
        period_seconds: float = 1.0,
        seed: int = 0,
        workers: int | None = None,
    ) -> dict[str, list[AgentStep]]:
        """Simulate the session; returns each agent's step log.

        ``workers`` > 1 runs each agent's observe -> package and fuse ->
        detect work of every step on a forked worker pool (``None`` defers
        to ``REPRO_WORKERS``, default 1).  Logs are bit-identical at any
        worker count: sensing and channel seeds are derived per
        (step, agent) independently of scheduling.
        """
        if period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        logs: dict[str, list[AgentStep]] = {a.name: [] for a in self.agents}
        times = np.arange(0.0, duration_seconds, period_seconds)
        workers = resolve_workers(workers)
        if workers <= 1 or len(self.agents) <= 1 or not fork_available():
            for step_index, t in enumerate(times):
                with PROFILER.stage("session.step"):
                    self._step(logs, float(t), step_index, seed)
            return logs
        # One pool for the whole session: workers warm up once and serve
        # every step's two fan-out phases.  Chunk size 1 keeps each
        # agent's (heavy) task a separate unit of work.
        with WorkerPool(
            workers,
            initializer=_session_worker_init,
            initargs=(self.world, self.agents),
            chunk_size=1,
        ) as pool:
            for step_index, t in enumerate(times):
                with PROFILER.stage("session.step"):
                    self._step_parallel(pool, logs, float(t), step_index, seed)
        return logs

    def _step(
        self,
        logs: dict[str, list[AgentStep]],
        t: float,
        step_index: int,
        seed: int,
    ) -> None:
        """Run one exchange period for every agent (inline path)."""
        observations = {
            agent.name: agent.observe(
                self.world, t, seed=_observe_seed(seed, step_index, i)
            )
            for i, agent in enumerate(self.agents)
        }
        # Every agent broadcasts one package per period.
        wire: dict[str, tuple[bytes, int]] = {}
        for agent in self.agents:
            package = agent.build_package(self.world, observations[agent.name], t)
            payload = package.serialize()
            wire[agent.name] = (payload, len(payload) * 8)

        for agent in self.agents:
            received: list[ExchangePackage] = []
            delivered_flags: list[bool] = []
            for other in self.agents:
                if other.name == agent.name:
                    continue
                payload, bits = wire[other.name]
                report = self.channel.transmit(
                    bits, seed=_channel_seed(seed, step_index, other.name)
                )
                delivered_flags.append(report.delivered)
                if report.delivered:
                    frames = self.framer.fragment(payload)
                    received.append(
                        ExchangePackage.deserialize(
                            MessageFramer.reassemble(frames)
                        )
                    )
            PROFILER.count("session.packages_received", len(received))
            PROFILER.count(
                "session.packages_lost", len(delivered_flags) - len(received)
            )
            detections = agent.perceive(observations[agent.name], received)
            logs[agent.name].append(
                AgentStep(
                    time=t,
                    observation=observations[agent.name],
                    sent_bits=wire[agent.name][1],
                    received_packages=received,
                    delivered=delivered_flags,
                    detections=detections,
                )
            )

    def _step_parallel(
        self,
        pool: WorkerPool,
        logs: dict[str, list[AgentStep]],
        t: float,
        step_index: int,
        seed: int,
    ) -> None:
        """One exchange period with per-agent work fanned out to ``pool``.

        Phase 1 (workers): observe + build + serialize, one task per
        agent.  Phase 2 (parent): the shared DSRC channel decides delivery
        per broadcast — cheap, and keeps the link model in one place.
        Phase 3 (workers): decode + fuse + detect, one task per agent.
        Seeds match :meth:`_step` exactly, so logs are bit-identical.
        """
        built = pool.map(
            _observe_build_task,
            [
                (i, t, _observe_seed(seed, step_index, i))
                for i in range(len(self.agents))
            ],
        )
        observations: dict[str, RigObservation] = {}
        wire: dict[str, tuple[bytes, int]] = {}
        for agent, (observation, payload) in zip(self.agents, built):
            observations[agent.name] = observation
            wire[agent.name] = (payload, len(payload) * 8)

        received_payloads: dict[str, list[bytes]] = {}
        delivered: dict[str, list[bool]] = {}
        for agent in self.agents:
            received_payloads[agent.name] = []
            delivered[agent.name] = []
            for other in self.agents:
                if other.name == agent.name:
                    continue
                payload, bits = wire[other.name]
                report = self.channel.transmit(
                    bits, seed=_channel_seed(seed, step_index, other.name)
                )
                delivered[agent.name].append(report.delivered)
                if report.delivered:
                    frames = self.framer.fragment(payload)
                    received_payloads[agent.name].append(
                        MessageFramer.reassemble(frames)
                    )

        perceived = pool.map(
            _perceive_task,
            [
                (i, observations[agent.name], received_payloads[agent.name])
                for i, agent in enumerate(self.agents)
            ],
        )
        for agent, (received, detections) in zip(self.agents, perceived):
            PROFILER.count("session.packages_received", len(received))
            PROFILER.count(
                "session.packages_lost",
                len(delivered[agent.name]) - len(received),
            )
            logs[agent.name].append(
                AgentStep(
                    time=t,
                    observation=observations[agent.name],
                    sent_bits=wire[agent.name][1],
                    received_packages=received,
                    delivered=delivered[agent.name],
                    detections=detections,
                )
            )


#: Session state installed in each worker by :func:`_session_worker_init`;
#: the world and agent stacks are shipped once per worker, not per task.
_WORKER_WORLD: World | None = None
_WORKER_AGENTS: list[CooperAgent] | None = None


def _session_worker_init(world: World, agents: list[CooperAgent]) -> None:
    """Worker warm-up: install the session's world and agent stacks."""
    global _WORKER_WORLD, _WORKER_AGENTS
    _WORKER_WORLD = world
    _WORKER_AGENTS = agents


def _observe_build_task(
    payload: tuple[int, float, int],
) -> tuple[RigObservation, bytes]:
    """Phase-1 worker task: one agent senses and serialises its package."""
    agent_index, t, obs_seed = payload
    agent = _WORKER_AGENTS[agent_index]
    observation = agent.observe(_WORKER_WORLD, t, seed=obs_seed)
    package = agent.build_package(_WORKER_WORLD, observation, t)
    return observation, package.serialize()


def _perceive_task(
    payload: tuple[int, RigObservation, list[bytes]],
) -> tuple[list[ExchangePackage], list[Detection]]:
    """Phase-3 worker task: one agent decodes, fuses and detects."""
    agent_index, observation, package_payloads = payload
    agent = _WORKER_AGENTS[agent_index]
    received = [ExchangePackage.deserialize(p) for p in package_payloads]
    return received, agent.perceive(observation, received)
