"""Cooper's cooperative-perception core (paper Sections II and III).

The data plane: a transmitting vehicle packs its (ROI-cropped, compressed)
LiDAR cloud together with its GPS and IMU readings into an
:class:`ExchangePackage`; the receiver aligns the package's points into its
own frame using the Eq. (1)-(3) transform and merges them with its native
cloud; SPOD then runs once on the merged cloud.

Baselines the paper argues against are also implemented: single-shot
(no cooperation), object-level (late) fusion — which "will only work when
both vehicles share a reference object" and can never recover objects
neither vehicle detected — and feature-level fusion of BEV feature maps.
"""

from repro.fusion.package import ExchangePackage
from repro.fusion.align import alignment_transform, align_package, merge_packages
from repro.fusion.cooper import Cooper, CooperResult
from repro.fusion.baselines import (
    single_shot_baseline,
    object_level_fusion,
    feature_level_fusion,
)
from repro.fusion.temporal import merge_timeline
from repro.fusion.feature import (
    ConfidenceRequest,
    FeatureFusionConfig,
    FeaturePackage,
    FusedFeatures,
    build_feature_package,
    build_request,
    fuse_feature_packages,
    perceive_features,
    rpn_confidence,
)
from repro.fusion.agent import (
    FUSION_MODES,
    AgentStep,
    CooperAgent,
    CooperSession,
)
from repro.fusion.diagnostics import AlignmentReport, alignment_residual, validate_package

__all__ = [
    "ExchangePackage",
    "ConfidenceRequest",
    "FeatureFusionConfig",
    "FeaturePackage",
    "FusedFeatures",
    "build_feature_package",
    "build_request",
    "fuse_feature_packages",
    "perceive_features",
    "rpn_confidence",
    "FUSION_MODES",
    "alignment_transform",
    "align_package",
    "merge_packages",
    "Cooper",
    "CooperResult",
    "single_shot_baseline",
    "object_level_fusion",
    "feature_level_fusion",
    "merge_timeline",
    "AgentStep",
    "CooperAgent",
    "CooperSession",
    "AlignmentReport",
    "alignment_residual",
    "validate_package",
]
