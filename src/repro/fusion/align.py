"""Point-cloud alignment: the paper's Eq. (1)-(3) made executable.

"A rotation matrix R will be generated in Equation 1 ... The transform is
calculated by Equation 1, using the IMU value difference between the
transmitter and the receiver."  The translation comes from the GPS
difference, and the merged frame is the union of Eq. (2).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.fusion.package import ExchangePackage
from repro.geometry.transforms import Pose, RigidTransform
from repro.pointcloud.cloud import PointCloud, merge_clouds
from repro.profiling import PROFILER

__all__ = [
    "alignment_transform",
    "align_package",
    "merge_packages",
    "package_intrinsically_sane",
    "pose_delta_plausible",
    "package_sane",
]


def alignment_transform(
    transmitter_pose: Pose, receiver_pose: Pose
) -> RigidTransform:
    """The Eq. (3) transform mapping transmitter-frame points to receiver frame.

    ``R`` is built from the yaw/pitch/roll difference of the two IMU
    readings (Eq. 1); the translation is the GPS position difference
    expressed in the receiver's frame.
    """
    return transmitter_pose.relative_to(receiver_pose)


def align_package(
    package: ExchangePackage, receiver_pose: Pose
) -> PointCloud:
    """Express a received package's points in the receiver's LiDAR frame."""
    with PROFILER.stage("fuse.align"):
        transform = alignment_transform(package.pose, receiver_pose)
        return package.cloud.transformed(
            transform, frame_id=f"{package.sender}->receiver"
        )


def merge_packages(
    native: PointCloud,
    packages: Sequence[ExchangePackage],
    receiver_pose: Pose,
) -> PointCloud:
    """Produce the cooperative cloud: Eq. (2)'s union over all cooperators."""
    with PROFILER.stage("fuse.merge"):
        aligned = [align_package(p, receiver_pose) for p in packages]
        return merge_clouds([native, *aligned], frame_id="cooperative")


def package_intrinsically_sane(
    package: ExchangePackage, max_point_range_m: float = 300.0
) -> bool:
    """Receiver-independent corruption checks on one package.

    A package that decodes but carries non-finite pose components,
    non-finite points, or points far outside any LiDAR's physical range
    was corrupted in flight (or fabricated) and must never reach the
    Eq. (2) merge — a single NaN poisons voxelisation, and absurd
    coordinates blow up the detector's crop window.
    """
    pose = package.pose
    if not (
        np.all(np.isfinite(pose.position))
        and np.isfinite(pose.yaw)
        and np.isfinite(pose.pitch)
        and np.isfinite(pose.roll)
    ):
        return False
    data = package.cloud.data
    if len(data) == 0:
        return True
    xyz = data[:, :3]
    if not np.all(np.isfinite(xyz)):
        return False
    return bool(np.abs(xyz).max() <= max_point_range_m)


def pose_delta_plausible(
    package: ExchangePackage,
    receiver_pose: Pose,
    max_peer_distance_m: float = 500.0,
) -> bool:
    """Is the sender's claimed pose physically reachable from the receiver?

    DSRC is a single-hop, sub-kilometre radio: a package claiming to come
    from tens of kilometres away is a corrupted (or spoofed) GPS fix, and
    aligning by it would translate the cooperator's points into nonsense.
    """
    delta = package.pose.position - receiver_pose.position
    return bool(np.hypot(delta[0], delta[1]) <= max_peer_distance_m)


def package_sane(
    package: ExchangePackage,
    receiver_pose: Pose,
    max_peer_distance_m: float = 500.0,
    max_point_range_m: float = 300.0,
) -> bool:
    """The full pre-merge sanity gate: intrinsic checks + pose delta."""
    return package_intrinsically_sane(
        package, max_point_range_m
    ) and pose_delta_plausible(package, receiver_pose, max_peer_distance_m)
