"""Point-cloud alignment: the paper's Eq. (1)-(3) made executable.

"A rotation matrix R will be generated in Equation 1 ... The transform is
calculated by Equation 1, using the IMU value difference between the
transmitter and the receiver."  The translation comes from the GPS
difference, and the merged frame is the union of Eq. (2).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.fusion.package import ExchangePackage
from repro.geometry.transforms import Pose, RigidTransform
from repro.pointcloud.cloud import PointCloud, merge_clouds
from repro.profiling import PROFILER

__all__ = ["alignment_transform", "align_package", "merge_packages"]


def alignment_transform(
    transmitter_pose: Pose, receiver_pose: Pose
) -> RigidTransform:
    """The Eq. (3) transform mapping transmitter-frame points to receiver frame.

    ``R`` is built from the yaw/pitch/roll difference of the two IMU
    readings (Eq. 1); the translation is the GPS position difference
    expressed in the receiver's frame.
    """
    return transmitter_pose.relative_to(receiver_pose)


def align_package(
    package: ExchangePackage, receiver_pose: Pose
) -> PointCloud:
    """Express a received package's points in the receiver's LiDAR frame."""
    with PROFILER.stage("fuse.align"):
        transform = alignment_transform(package.pose, receiver_pose)
        return package.cloud.transformed(
            transform, frame_id=f"{package.sender}->receiver"
        )


def merge_packages(
    native: PointCloud,
    packages: Sequence[ExchangePackage],
    receiver_pose: Pose,
) -> PointCloud:
    """Produce the cooperative cloud: Eq. (2)'s union over all cooperators."""
    with PROFILER.stage("fuse.merge"):
        aligned = [align_package(p, receiver_pose) for p in packages]
        return merge_clouds([native, *aligned], frame_id="cooperative")
