"""Temporal self-fusion: one vehicle merging its own consecutive scans.

The paper's Fig. 2 does exactly this — "by merging t1 and t2's point
clouds, we emulate the cooperative sensing process between two vehicles" —
and the left-turn scenario (delta-d = 0) is pure temporal redundancy.  The
machinery is the same Eq. (1)-(3) alignment, with the vehicle's *own*
earlier pose playing the transmitter.

In a real system this runs on dead-reckoned ego-motion; here the measured
GPS+IMU poses of the rig observations serve, so alignment error matches
the cooperative case.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.fusion.align import alignment_transform
from repro.pointcloud.cloud import PointCloud, merge_clouds
from repro.sensors.rig import RigObservation

__all__ = ["merge_timeline"]


def merge_timeline(
    observations: Sequence[RigObservation],
    reference_index: int = -1,
) -> PointCloud:
    """Merge a vehicle's scan history into one reference frame.

    Args:
        observations: the vehicle's rig observations in time order.
        reference_index: which observation's frame hosts the result
            (default: the latest — the frame the vehicle plans in).

    Static structure accumulates density across the timeline exactly like a
    cooperator's contribution; moving objects smear, which is why the paper
    evaluates static scenes for this emulation.
    """
    observations = list(observations)
    if not observations:
        return PointCloud.empty(frame_id="timeline")
    reference = observations[reference_index]
    aligned = []
    for obs in observations:
        if obs is reference:
            aligned.append(obs.scan.cloud)
            continue
        transform = alignment_transform(
            obs.measured_pose, reference.measured_pose
        )
        aligned.append(obs.scan.cloud.transformed(transform))
    return merge_clouds(aligned, frame_id="timeline")
