"""Temporal self-fusion: one vehicle merging its own consecutive scans.

The paper's Fig. 2 does exactly this — "by merging t1 and t2's point
clouds, we emulate the cooperative sensing process between two vehicles" —
and the left-turn scenario (delta-d = 0) is pure temporal redundancy.  The
machinery is the same Eq. (1)-(3) alignment, with the vehicle's *own*
earlier pose playing the transmitter.

In a real system this runs on dead-reckoned ego-motion; here the measured
GPS+IMU poses of the rig observations serve, so alignment error matches
the cooperative case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.fusion.align import alignment_transform
from repro.fusion.package import ExchangePackage
from repro.pointcloud.cloud import PointCloud, merge_clouds
from repro.sensors.rig import RigObservation

__all__ = ["merge_timeline", "StaleEntry", "StalePackageCache"]


def merge_timeline(
    observations: Sequence[RigObservation],
    reference_index: int = -1,
) -> PointCloud:
    """Merge a vehicle's scan history into one reference frame.

    Args:
        observations: the vehicle's rig observations in time order.
        reference_index: which observation's frame hosts the result
            (default: the latest — the frame the vehicle plans in).

    Static structure accumulates density across the timeline exactly like a
    cooperator's contribution; moving objects smear, which is why the paper
    evaluates static scenes for this emulation.
    """
    observations = list(observations)
    if not observations:
        return PointCloud.empty(frame_id="timeline")
    reference = observations[reference_index]
    aligned = []
    for obs in observations:
        if obs is reference:
            aligned.append(obs.scan.cloud)
            continue
        transform = alignment_transform(
            obs.measured_pose, reference.measured_pose
        )
        aligned.append(obs.scan.cloud.transformed(transform))
    return merge_clouds(aligned, frame_id="timeline")


@dataclass(frozen=True)
class StaleEntry:
    """One cached delivery: the wire payload, its decoded form, its age.

    Attributes:
        payload: the reassembled wire bytes (what a worker re-decodes, so
            fallback packages take the exact path a fresh delivery does).
        package: the decoded package (pose checks without re-decoding).
        step: the session step the package was delivered at.
    """

    payload: bytes
    package: ExchangePackage
    step: int


@dataclass
class StalePackageCache:
    """Per-peer cache of the last delivered package, age-bounded.

    This is the Fig. 2 temporal-emulation argument turned into a
    resilience mechanism: a peer's *earlier* package still carries its
    capture pose, so the Eq. (1)-(3) transform re-aligns it into the
    receiver's current frame exactly as :func:`merge_timeline` re-aligns
    a vehicle's own scan history.  Static structure stays valid; only
    movers smear — which is why the fallback is bounded by
    ``max_age_steps`` rather than kept forever.

    Attributes:
        max_age_steps: oldest usable entry, in session steps (an entry
            from step ``s`` serves requests up to ``s + max_age_steps``).
    """

    max_age_steps: int = 3
    _entries: dict[str, StaleEntry] = field(default_factory=dict)

    def store(self, sender: str, payload: bytes, package: ExchangePackage,
              step: int) -> None:
        """Remember the latest delivered package of one peer."""
        self._entries[sender] = StaleEntry(payload, package, step)

    def last(self, sender: str) -> StaleEntry | None:
        """The peer's most recent delivery, regardless of age.

        The session's sanity gate uses this for its pose-jump check — a
        physically impossible jump from the last known pose marks a
        corrupted package even when the cached entry is too old to merge.
        """
        return self._entries.get(sender)

    def recall(self, sender: str, step: int) -> StaleEntry | None:
        """The peer's last delivery, if it is still young enough."""
        entry = self._entries.get(sender)
        if entry is None or step - entry.step > self.max_age_steps:
            return None
        return entry

    def age(self, sender: str, step: int) -> int | None:
        """Steps since the peer's last delivery (None if never seen)."""
        entry = self._entries.get(sender)
        return step - entry.step if entry is not None else None

    def clear(self) -> None:
        """Drop every entry (a session calls this at run start)."""
        self._entries.clear()
