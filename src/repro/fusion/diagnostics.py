"""Alignment diagnostics and misaligned-package gating.

Section II-B: "the detected results from other cars are hard to
authenticate and trust issues further complicate this matter".  Raw-data
exchange gives the receiver something object lists never can: the received
points must *physically agree* with its own where the views overlap.  The
residual measured here — an upper-quartile nearest-neighbour distance from
the aligned cooperator structure to the native structure in the overlap —
is small (sensor-noise scale) for an honest, well-localised cooperator and
grows directly with GPS/IMU error or a fabricated cloud.  Gating on it
lets :class:`~repro.fusion.cooper.Cooper` quarantine bad packages instead
of corrupting its merged frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.fusion.align import align_package
from repro.fusion.package import ExchangePackage
from repro.geometry.transforms import Pose
from repro.pointcloud.cloud import PointCloud

__all__ = ["AlignmentReport", "alignment_residual", "validate_package"]


@dataclass(frozen=True)
class AlignmentReport:
    """Outcome of checking one aligned cloud against the native one.

    Attributes:
        residual: 80th-percentile nearest-neighbour distance (metres) in
            the overlap region; ``inf`` when there is no overlap to judge.
        overlap_points: how many received points fell inside the native
            cloud's neighbourhood and contributed to the residual.
        consistent: residual at or below the acceptance threshold.
    """

    residual: float
    overlap_points: int
    consistent: bool


def alignment_residual(
    native: PointCloud,
    aligned: PointCloud,
    overlap_radius: float = 1.5,
    max_samples: int = 2000,
    seed: int = 0,
) -> tuple[float, int]:
    """Upper-quartile NN distance from aligned points to the native cloud.

    Only aligned points with *some* native structure within
    ``overlap_radius`` count — regions the receiver cannot see are exactly
    what cooperation adds and must not be penalised.  Returns
    ``(residual, overlap_count)``; ``(inf, 0)`` without usable overlap.
    """
    from repro.detection.preprocess import remove_ground

    if native.is_empty() or aligned.is_empty():
        return float("inf"), 0
    # Ground is a self-similar plane: a mislocalised cloud's ground still
    # lands on ground, hiding the error.  Judge *structure* only, and in
    # BEV — vertical beam-ring offsets between two viewpoints are sampling
    # artefacts, while lateral disagreement is exactly the fault signal.
    native_structure, ground_z = remove_ground(native)
    aligned_structure, _ = remove_ground(aligned, ground_z=ground_z)
    if native_structure.is_empty() or aligned_structure.is_empty():
        return float("inf"), 0
    sample = aligned_structure.subsampled(max_samples, seed=seed)
    tree = cKDTree(native_structure.xyz[:, :2])
    distances, _ = tree.query(sample.xyz[:, :2])
    in_overlap = distances <= overlap_radius
    count = int(in_overlap.sum())
    if count < 30:
        return float("inf"), count
    # Upper-quartile rather than median: self-similar structure (walls
    # along the error direction, periodic parking rows) lets *most* points
    # re-match something, but a localisation fault always strands a
    # substantial tail of structure in empty space.
    return float(np.percentile(distances[in_overlap], 80)), count


def validate_package(
    native: PointCloud,
    package: ExchangePackage,
    receiver_pose: Pose,
    residual_threshold: float = 0.35,
) -> AlignmentReport:
    """Check a received package's physical consistency with the native scan.

    The threshold default sits well above combined sensor noise plus
    in-spec GPS/IMU error (~0.1-0.2 m residual) and well below the residual
    a metre-scale localisation fault produces.  Packages with *no* overlap
    cannot be checked; they are accepted (their content is additive-only)
    with ``residual = inf`` and ``overlap_points = 0``.
    """
    aligned = align_package(package, receiver_pose)
    residual, overlap = alignment_residual(native, aligned)
    if overlap == 0:
        return AlignmentReport(residual, overlap, consistent=True)
    return AlignmentReport(residual, overlap, residual <= residual_threshold)
