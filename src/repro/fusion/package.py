"""The Cooper exchange package (paper Section II-D).

"Additional information is encapsulated into the exchange package ...
constituted from LiDAR sensor installation information and its GPS reading,
which determines the center point position of every frame of point clouds.
Vehicle's IMU reading is also required."

An :class:`ExchangePackage` is exactly that: the (possibly ROI-cropped)
cloud in the sender's LiDAR frame plus the sender's measured pose (GPS
position + IMU attitude) and sensor metadata.  Packages serialise to the
compact wire format used by the networking layer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.transforms import Pose
from repro.pointcloud.cloud import PointCloud
from repro.pointcloud.compression import (
    CompressionSpec,
    compress_cloud,
    compressed_size_bytes,
    decompress_cloud,
)
from repro.profiling import PROFILER

__all__ = ["ExchangePackage", "SENDER_FIELD_BYTES", "encode_sender"]

_POSE_STRUCT = struct.Struct("<6d")
_META_STRUCT = struct.Struct("<16sBd")

#: Width of the fixed sender-name field in every wire format.
SENDER_FIELD_BYTES = 16


def encode_sender(sender: str) -> bytes:
    """Encode a sender name into the fixed 16-byte wire field.

    Raises :class:`ValueError` when the UTF-8 encoding exceeds the field —
    silently truncating would corrupt the name (and could split a
    multi-byte character, making the receiver's decode raise or return a
    *different* sender, which poisons per-peer state like circuit breakers
    and stale caches that key on the name).
    """
    encoded = sender.encode("utf-8")
    if len(encoded) > SENDER_FIELD_BYTES:
        raise ValueError(
            f"sender name {sender!r} is {len(encoded)} UTF-8 bytes; the "
            f"wire format's sender field holds at most {SENDER_FIELD_BYTES}"
        )
    return encoded.ljust(SENDER_FIELD_BYTES, b"\0")


@dataclass(frozen=True)
class ExchangePackage:
    """Everything one vehicle sends another for cooperative perception.

    Attributes:
        cloud: points in the *sender's* LiDAR frame.
        pose: the sender's measured pose (GPS position, IMU attitude).
        sender: vehicle identifier.
        beam_count: sender's LiDAR beam count (sensor installation info —
            lets the receiver reason about the incoming density).
        timestamp: capture time in seconds.
    """

    cloud: PointCloud
    pose: Pose
    sender: str = "vehicle"
    beam_count: int = 16
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.beam_count < 1:
            raise ValueError("beam_count must be positive")
        encode_sender(self.sender)  # fail fast on an over-long name

    def serialize(self, spec: CompressionSpec | None = None) -> bytes:
        """Encode to the wire format: metadata + pose + compressed cloud."""
        with PROFILER.stage("package.serialize"):
            sender_bytes = encode_sender(self.sender)
            meta = _META_STRUCT.pack(
                sender_bytes, self.beam_count, self.timestamp
            )
            pose = _POSE_STRUCT.pack(
                *self.pose.position,
                self.pose.yaw,
                self.pose.pitch,
                self.pose.roll,
            )
            return meta + pose + compress_cloud(self.cloud, spec)

    @staticmethod
    def deserialize(payload: bytes) -> "ExchangePackage":
        """Decode the wire format produced by :meth:`serialize`."""
        with PROFILER.stage("package.deserialize"):
            if len(payload) < _META_STRUCT.size + _POSE_STRUCT.size:
                raise ValueError("payload too short for an exchange package")
            sender_bytes, beam_count, timestamp = _META_STRUCT.unpack_from(
                payload
            )
            offset = _META_STRUCT.size
            x, y, z, yaw, pitch, roll = _POSE_STRUCT.unpack_from(payload, offset)
            offset += _POSE_STRUCT.size
            cloud = decompress_cloud(payload[offset:], frame_id="received")
            return ExchangePackage(
                cloud=cloud,
                pose=Pose(np.array([x, y, z]), yaw=yaw, pitch=pitch, roll=roll),
                sender=sender_bytes.rstrip(b"\0").decode("utf-8"),
                beam_count=beam_count,
                timestamp=timestamp,
            )

    def size_bytes(self, spec: CompressionSpec | None = None) -> int:
        """Wire size of this package in bytes, computed analytically.

        Every wire section has a fixed or arithmetically determined size
        (metadata struct + pose struct + codec header + quantised
        payload), so the size never requires actually serialising —
        which matters to the schedulers and bandwidth ledgers that query
        sizes every frame for every sender.  Guaranteed equal to
        ``len(self.serialize(spec))``.
        """
        return (
            _META_STRUCT.size
            + _POSE_STRUCT.size
            + compressed_size_bytes(len(self.cloud), spec)
        )

    def size_megabits(self, spec: CompressionSpec | None = None) -> float:
        """Wire size in megabits — the unit of the paper's Fig. 12."""
        return self.size_bytes(spec) * 8 / 1e6
