"""The Cooper exchange package (paper Section II-D).

"Additional information is encapsulated into the exchange package ...
constituted from LiDAR sensor installation information and its GPS reading,
which determines the center point position of every frame of point clouds.
Vehicle's IMU reading is also required."

An :class:`ExchangePackage` is exactly that: the (possibly ROI-cropped)
cloud in the sender's LiDAR frame plus the sender's measured pose (GPS
position + IMU attitude) and sensor metadata.  Packages serialise to the
compact wire format used by the networking layer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.transforms import Pose
from repro.pointcloud.cloud import PointCloud
from repro.pointcloud.compression import (
    CompressionSpec,
    compress_cloud,
    decompress_cloud,
)
from repro.profiling import PROFILER

__all__ = ["ExchangePackage"]

_POSE_STRUCT = struct.Struct("<6d")
_META_STRUCT = struct.Struct("<16sBd")


@dataclass(frozen=True)
class ExchangePackage:
    """Everything one vehicle sends another for cooperative perception.

    Attributes:
        cloud: points in the *sender's* LiDAR frame.
        pose: the sender's measured pose (GPS position, IMU attitude).
        sender: vehicle identifier.
        beam_count: sender's LiDAR beam count (sensor installation info —
            lets the receiver reason about the incoming density).
        timestamp: capture time in seconds.
    """

    cloud: PointCloud
    pose: Pose
    sender: str = "vehicle"
    beam_count: int = 16
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.beam_count < 1:
            raise ValueError("beam_count must be positive")

    def serialize(self, spec: CompressionSpec | None = None) -> bytes:
        """Encode to the wire format: metadata + pose + compressed cloud."""
        with PROFILER.stage("package.serialize"):
            sender_bytes = self.sender.encode("utf-8")[:16].ljust(16, b"\0")
            meta = _META_STRUCT.pack(
                sender_bytes, self.beam_count, self.timestamp
            )
            pose = _POSE_STRUCT.pack(
                *self.pose.position,
                self.pose.yaw,
                self.pose.pitch,
                self.pose.roll,
            )
            return meta + pose + compress_cloud(self.cloud, spec)

    @staticmethod
    def deserialize(payload: bytes) -> "ExchangePackage":
        """Decode the wire format produced by :meth:`serialize`."""
        with PROFILER.stage("package.deserialize"):
            if len(payload) < _META_STRUCT.size + _POSE_STRUCT.size:
                raise ValueError("payload too short for an exchange package")
            sender_bytes, beam_count, timestamp = _META_STRUCT.unpack_from(
                payload
            )
            offset = _META_STRUCT.size
            x, y, z, yaw, pitch, roll = _POSE_STRUCT.unpack_from(payload, offset)
            offset += _POSE_STRUCT.size
            cloud = decompress_cloud(payload[offset:], frame_id="received")
            return ExchangePackage(
                cloud=cloud,
                pose=Pose(np.array([x, y, z]), yaw=yaw, pitch=pitch, roll=roll),
                sender=sender_bytes.rstrip(b"\0").decode("utf-8"),
                beam_count=beam_count,
                timestamp=timestamp,
            )

    def size_bytes(self, spec: CompressionSpec | None = None) -> int:
        """Wire size of this package in bytes."""
        return len(self.serialize(spec))

    def size_megabits(self, spec: CompressionSpec | None = None) -> float:
        """Wire size in megabits — the unit of the paper's Fig. 12."""
        return self.size_bytes(spec) * 8 / 1e6
