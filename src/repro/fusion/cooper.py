"""The Cooper pipeline: receive, align, merge, detect.

This is the paper's end-to-end system: a receiving vehicle combines its
native scan with the exchange packages of its cooperators (raw-data-level
fusion) and runs the *same* SPOD detector on the merged cloud that it runs
on single shots — the design that lets fusion recover objects neither
vehicle detected alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.detection.detections import Detection
from repro.detection.spod import SPOD
from repro.fusion.align import merge_packages
from repro.fusion.package import ExchangePackage
from repro.geometry.transforms import Pose
from repro.pointcloud.cloud import PointCloud
from repro.profiling import PROFILER

__all__ = ["Cooper", "CooperResult"]


@dataclass
class CooperResult:
    """Outcome of one cooperative perception cycle.

    Attributes:
        detections: SPOD detections on the merged cloud (receiver frame).
        merged_cloud: the cooperative cloud that was detected on.
        fuse_seconds: time spent aligning + merging.
        detect_seconds: time spent in SPOD.
        num_cooperators: how many packages contributed.
        rejected_packages: packages quarantined by the alignment gate.
    """

    detections: list[Detection]
    merged_cloud: PointCloud
    fuse_seconds: float
    detect_seconds: float
    num_cooperators: int
    rejected_packages: int = 0

    @property
    def total_seconds(self) -> float:
        """Fusion plus detection wall-clock time (the Fig. 9 quantity)."""
        return self.fuse_seconds + self.detect_seconds


@dataclass
class Cooper:
    """Cooperative perception for one receiving vehicle.

    Attributes:
        detector: the shared SPOD instance (one network for dense, sparse
            and merged clouds).
        reject_misaligned: when True, packages whose aligned points
            physically disagree with the native scan (GPS fault, spoofed
            cloud — the paper's II-B trust concern) are quarantined
            instead of merged.
        residual_threshold: acceptance bound (metres) for the alignment
            residual; see :func:`repro.fusion.diagnostics.validate_package`.
    """

    detector: SPOD = field(default_factory=SPOD.pretrained)
    reject_misaligned: bool = False
    residual_threshold: float = 0.35

    def fuse(
        self,
        native_cloud: PointCloud,
        receiver_pose: Pose,
        packages: Sequence[ExchangePackage] = (),
    ) -> tuple[PointCloud, int, int, float]:
        """Validate + align + merge without detecting.

        Returns ``(merged_cloud, accepted, rejected, fuse_seconds)``.  The
        session's batched detection path fuses every agent's cloud first
        and then runs one batched detector pass over all of them;
        :meth:`perceive` composes this with per-agent detection.
        """
        from repro.fusion.diagnostics import validate_package

        accepted = list(packages)
        rejected = 0
        if self.reject_misaligned:
            accepted = []
            with PROFILER.stage("cooper.validate"):
                for package in packages:
                    report = validate_package(
                        native_cloud, package, receiver_pose,
                        residual_threshold=self.residual_threshold,
                    )
                    if report.consistent:
                        accepted.append(package)
                    else:
                        rejected += 1

        fuse_start = time.perf_counter()
        merged = merge_packages(native_cloud, accepted, receiver_pose)
        fuse_seconds = time.perf_counter() - fuse_start
        PROFILER.record("cooper.fuse", fuse_seconds)
        return merged, len(accepted), rejected, fuse_seconds

    def perceive(
        self,
        native_cloud: PointCloud,
        receiver_pose: Pose,
        packages: Sequence[ExchangePackage] = (),
        temporal=None,
    ) -> CooperResult:
        """Run one perception cycle.

        With no packages this degrades gracefully to single-shot detection
        (the baseline the paper compares against).  With
        ``reject_misaligned`` set, inconsistent packages are dropped and
        counted in :attr:`CooperResult.rejected_packages`.  ``temporal``
        (per-agent :class:`repro.temporal.TemporalState`) enables the
        frame-delta detect fast paths; results are bit-identical either way.
        """
        merged, num_accepted, rejected, fuse_seconds = self.fuse(
            native_cloud, receiver_pose, packages
        )

        detect_start = time.perf_counter()
        detections = self.detector.detect(merged, temporal=temporal)
        detect_seconds = time.perf_counter() - detect_start
        # Mirror the externally observable CooperResult times into the
        # profiler so its totals reconcile with total_seconds exactly
        # (cooper.fuse is recorded inside fuse()).
        PROFILER.record("cooper.detect", detect_seconds)
        return CooperResult(
            detections=detections,
            merged_cloud=merged,
            fuse_seconds=fuse_seconds,
            detect_seconds=detect_seconds,
            num_cooperators=num_accepted,
            rejected_packages=rejected,
        )

    def perceive_single(
        self, native_cloud: PointCloud, temporal=None
    ) -> CooperResult:
        """Single-shot perception (no cooperation) with the same detector."""
        detect_start = time.perf_counter()
        detections = self.detector.detect(native_cloud, temporal=temporal)
        detect_seconds = time.perf_counter() - detect_start
        PROFILER.record("cooper.detect", detect_seconds)
        return CooperResult(
            detections=detections,
            merged_cloud=native_cloud,
            fuse_seconds=0.0,
            detect_seconds=detect_seconds,
            num_cooperators=0,
        )
