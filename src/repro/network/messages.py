"""Message framing: fragmenting exchange packages into link-layer frames.

DSRC frames carry at most ~2304 bytes of payload; a compressed ROI cloud of
hundreds of kilobytes therefore crosses the air as an ordered fragment
train.  The framer splits and reassembles, detecting missing fragments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["Frame", "MessageFramer"]

_HEADER = struct.Struct("<IHH")  # message id, fragment index, fragment count


@dataclass(frozen=True)
class Frame:
    """One link-layer fragment of a message."""

    message_id: int
    index: int
    total: int
    payload: bytes

    def encode(self) -> bytes:
        """Serialise header + payload."""
        return _HEADER.pack(self.message_id, self.index, self.total) + self.payload

    @staticmethod
    def decode(raw: bytes) -> "Frame":
        """Parse a frame from the wire."""
        if len(raw) < _HEADER.size:
            raise ValueError("frame too short")
        message_id, index, total = _HEADER.unpack_from(raw)
        return Frame(message_id, index, total, raw[_HEADER.size :])


class MessageFramer:
    """Splits messages into MTU-sized frames and reassembles them."""

    def __init__(self, mtu_bytes: int = 2304) -> None:
        if mtu_bytes <= _HEADER.size:
            raise ValueError("mtu must exceed the frame header size")
        self.mtu_bytes = mtu_bytes
        self._next_id = 0

    @property
    def payload_per_frame(self) -> int:
        """Usable payload bytes per frame."""
        return self.mtu_bytes - _HEADER.size

    def fragment(self, message: bytes) -> list[Frame]:
        """Split a message into an ordered fragment train."""
        message_id = self._next_id
        self._next_id = (self._next_id + 1) % (1 << 32)
        chunk = self.payload_per_frame
        total = max(1, -(-len(message) // chunk))
        if total > 0xFFFF:
            raise ValueError("message too large to fragment (65535 frames max)")
        return [
            Frame(message_id, i, total, message[i * chunk : (i + 1) * chunk])
            for i in range(total)
        ]

    @staticmethod
    def reassemble(frames: list[Frame]) -> bytes:
        """Rebuild a message; raises if fragments are missing or mixed."""
        if not frames:
            raise ValueError("no frames to reassemble")
        message_id = frames[0].message_id
        total = frames[0].total
        if any(f.message_id != message_id or f.total != total for f in frames):
            raise ValueError("frames from different messages")
        by_index = {f.index: f for f in frames}
        missing = [i for i in range(total) if i not in by_index]
        if missing:
            raise ValueError(f"missing fragments: {missing}")
        return b"".join(by_index[i].payload for i in range(total))

    def frame_overhead_bits(self, message_bytes: int) -> int:
        """Total header overhead (bits) to carry a message of given size."""
        total = max(1, -(-message_bytes // self.payload_per_frame))
        return total * _HEADER.size * 8
