"""DSRC channel model.

IEEE 802.11p / DSRC [12] offers 3-27 Mbit/s per channel with a practical
sustained throughput around 6 Mbit/s and single-hop latencies of a few
milliseconds at vehicular ranges.  The model here answers the questions the
paper's Section IV-G asks: how long does a payload take to transmit, does a
frame's worth of ROI data fit in the per-frame budget, and what fraction of
channel capacity does an exchange policy consume?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.profiling import PROFILER

__all__ = ["DsrcChannel", "TransmissionReport"]


@dataclass
class TransmissionReport:
    """Outcome of transmitting one payload.

    Attributes:
        payload_bits: size of the payload itself (one copy — retransmitted
            bits are accounted for by :attr:`total_bits`).
        seconds: total latency (propagation + serialisation + retries).
        delivered: False if loss persisted beyond the retry budget.
        attempts: transmission attempts used.
        timed_out: True when the channel's latency deadline expired before
            delivery — the package was dropped as *late*, not lost.
    """

    payload_bits: int
    seconds: float
    delivered: bool
    attempts: int
    timed_out: bool = False

    @property
    def total_bits(self) -> int:
        """Bits clocked onto the air, including retransmissions' payloads.

        Every attempt re-sends the full payload, so this is
        ``payload_bits * attempts``.
        """
        return self.payload_bits * self.attempts

    @property
    def throughput_mbps(self) -> float:
        """Effective goodput in Mbit/s: *delivered* payload over total time.

        Retransmitted copies consume airtime (the ``seconds`` denominator
        grows with every retry) but never count as delivered data, so a
        lossy link reports a goodput below the channel bandwidth.
        """
        if self.seconds <= 0 or not self.delivered:
            return 0.0
        return self.payload_bits / self.seconds / 1e6


@dataclass(frozen=True)
class DsrcChannel:
    """A point-to-point DSRC link.

    Attributes:
        bandwidth_mbps: sustained throughput (paper-era practical DSRC ~6;
            the standard's channels peak at 27).
        base_latency_ms: fixed per-message overhead (MAC + propagation).
        loss_rate: independent per-attempt probability a message is lost.
        max_retries: retransmission budget before reporting failure.
        backoff_ms: exponential retry backoff — retry ``k`` waits
            ``backoff_ms * 2**(k-1)`` before re-sending (0 disables).
        deadline_ms: per-frame latency budget.  A transmission that cannot
            complete inside the deadline is *dropped as late* (reported
            undelivered with ``timed_out``) rather than blocked on — a
            perception loop must start fusing, not wait.  None disables.
    """

    bandwidth_mbps: float = 6.0
    base_latency_ms: float = 2.0
    loss_rate: float = 0.0
    max_retries: int = 3
    backoff_ms: float = 0.0
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.base_latency_ms < 0:
            raise ValueError("base_latency_ms must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_ms < 0:
            raise ValueError("backoff_ms must be non-negative")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")

    def serialization_seconds(self, payload_bits: int) -> float:
        """Time to clock the payload onto the air."""
        return payload_bits / (self.bandwidth_mbps * 1e6)

    def transmit(
        self,
        payload_bits: int,
        seed: int = 0,
        *,
        loss_rate: float | None = None,
        extra_latency_ms: float = 0.0,
    ) -> TransmissionReport:
        """Transmit a payload, retrying on (seeded) random loss.

        ``loss_rate`` overrides the channel's configured rate for this
        call (a fault plan's Gilbert-Elliott state supplies it);
        ``extra_latency_ms`` adds per-attempt jitter/spike latency.  With
        a ``deadline_ms`` configured, an attempt that cannot finish
        inside the budget is never started: the package is dropped as
        late (``timed_out``) instead of blocking the perception loop.
        """
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
        if extra_latency_ms < 0:
            raise ValueError("extra_latency_ms must be non-negative")
        effective_loss = self.loss_rate if loss_rate is None else loss_rate
        effective_loss = min(max(effective_loss, 0.0), 1.0)
        deadline_s = (
            self.deadline_ms / 1e3 if self.deadline_ms is not None else None
        )
        attempt_cost = (
            (self.base_latency_ms + extra_latency_ms) / 1e3
            + self.serialization_seconds(payload_bits)
        )
        with PROFILER.stage("dsrc.transmit"):
            rng = np.random.default_rng(seed)
            elapsed = 0.0
            attempts = 0
            delivered = False
            timed_out = False
            while attempts <= self.max_retries:
                backoff = (
                    self.backoff_ms / 1e3 * 2 ** (attempts - 1)
                    if attempts > 0 and self.backoff_ms > 0
                    else 0.0
                )
                if (
                    deadline_s is not None
                    and elapsed + backoff + attempt_cost > deadline_s
                ):
                    timed_out = True
                    break
                attempts += 1
                elapsed += backoff + attempt_cost
                if rng.random() >= effective_loss:
                    delivered = True
                    break
            report = TransmissionReport(
                payload_bits, elapsed, delivered, attempts, timed_out
            )
        PROFILER.count("dsrc.payload_bits", payload_bits)
        PROFILER.count("dsrc.total_bits", report.total_bits)
        PROFILER.count("dsrc.attempts", attempts)
        if timed_out:
            PROFILER.count("dsrc.deadline_drops")
        return report

    def fits_in_budget(self, payload_bits: int, budget_seconds: float) -> bool:
        """Can the payload be delivered inside ``budget_seconds``?

        The paper's constraint: at a 1 Hz exchange rate, each frame's ROI
        data must clear the channel within a second.
        """
        return (
            self.base_latency_ms / 1e3 + self.serialization_seconds(payload_bits)
            <= budget_seconds
        )

    def utilization(self, bits_per_second: float) -> float:
        """Fraction of channel capacity a sustained bit-rate consumes."""
        return bits_per_second / (self.bandwidth_mbps * 1e6)
