"""Demand-driven ROI requests (paper Sections II-C and IV-G).

"For object detection purpose, ROI data will be extracted whenever failure
detection happened on this area" — instead of shipping whole frames, a
vehicle identifies *where its own perception is weak* (sub-threshold
candidates, blind sectors behind occluders) and requests only those regions
from cooperators.  The cooperator answers with the matching crop of its own
cloud, typically a small fraction of a full frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.detection.detections import Detection
from repro.geometry.boxes import Box3D, points_in_box
from repro.geometry.transforms import Pose
from repro.pointcloud.cloud import PointCloud, merge_clouds

__all__ = ["RoiRequest", "weak_regions", "answer_request"]


@dataclass(frozen=True)
class RoiRequest:
    """A request for cooperator data covering specific world regions.

    Attributes:
        regions: boxes (in the *requester's* sensor frame) where detection
            failed or was uncertain.
        requester_pose: the requester's measured pose, letting cooperators
            map the regions into their own frames.
    """

    regions: tuple[Box3D, ...]
    requester_pose: Pose

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", tuple(self.regions))

    @property
    def num_regions(self) -> int:
        """Number of requested regions."""
        return len(self.regions)


def weak_regions(
    all_candidates: Sequence[Detection],
    detection_threshold: float = 0.5,
    uncertainty_floor: float = 0.15,
    margin: float = 1.5,
) -> list[Box3D]:
    """Regions where the vehicle's own detection was weak.

    A candidate scoring in ``[uncertainty_floor, detection_threshold)`` is
    evidence of *something* the vehicle could not confirm — exactly the
    areas worth asking cooperators about.  Each yields its box grown by
    ``margin`` metres.
    """
    if not 0.0 <= uncertainty_floor < detection_threshold:
        raise ValueError("need 0 <= uncertainty_floor < detection_threshold")
    return [
        d.box.expanded(margin)
        for d in all_candidates
        if uncertainty_floor <= d.score < detection_threshold
    ]


def answer_request(
    request: RoiRequest,
    cooperator_cloud: PointCloud,
    cooperator_pose: Pose,
    margin: float = 0.0,
) -> PointCloud:
    """A cooperator's reply: its points inside the requested regions.

    The regions arrive in the requester's frame; they are mapped into the
    cooperator's frame before cropping, and the reply stays in the
    cooperator's frame (it travels inside a normal exchange package whose
    pose field lets the requester align it).
    """
    if request.num_regions == 0 or cooperator_cloud.is_empty():
        return PointCloud.empty(frame_id="roi-reply")
    to_cooperator = request.requester_pose.relative_to(cooperator_pose)
    keep = np.zeros(len(cooperator_cloud), dtype=bool)
    for region in request.regions:
        local_region = region.transformed(to_cooperator)
        keep |= points_in_box(cooperator_cloud.data, local_region, margin=margin)
    return cooperator_cloud.select(keep, frame_id="roi-reply")


def fuse_reply(
    native: PointCloud,
    reply: PointCloud,
    cooperator_pose: Pose,
    receiver_pose: Pose,
) -> PointCloud:
    """Merge an ROI reply into the requester's cloud (Eq. 2 on a crop)."""
    aligned = reply.transformed(
        cooperator_pose.relative_to(receiver_pose), frame_id="roi-aligned"
    )
    return merge_clouds([native, aligned], frame_id="demand-cooperative")
