"""Region-of-interest exchange categories (paper Fig. 11).

Three situations, three data shapes:

1. **FULL_FRAME** — opposite-direction traffic separated only by a lane
   divider: "we transfer the entirety of the frame of LiDAR data", the most
   costly case (~1.8 Mbit/frame compressed for a 16-beam scan).
2. **FRONT_SECTOR** — junctions where cars face each other: only the
   driver-perspective 120-degree field of view, exchanged both ways.
3. **FORWARD_CORRIDOR** — a trailing car asking its leader for the road
   ahead: a narrow corridor, transferred one way only.

Background (buildings, trees) that the recipient can map for itself is
subtracted before transmission in every category.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.geometry.boxes import Box3D
from repro.pointcloud.cloud import PointCloud
from repro.pointcloud.roi import crop_sector, forward_corridor, subtract_background
from repro.profiling import PROFILER

__all__ = ["RoiCategory", "RoiPolicy", "extract_roi"]


class RoiCategory(enum.Enum):
    """The three exchange categories of Fig. 11."""

    FULL_FRAME = 1
    FRONT_SECTOR = 2
    FORWARD_CORRIDOR = 3

    @property
    def bidirectional(self) -> bool:
        """Whether both vehicles transmit (categories 1 and 2) or one (3)."""
        return self is not RoiCategory.FORWARD_CORRIDOR


@dataclass(frozen=True)
class RoiPolicy:
    """Parameters of the ROI extraction.

    Attributes:
        category: which Fig. 11 situation applies.
        sector_fov_deg: opening angle for FRONT_SECTOR (the paper's 120).
        corridor_length / corridor_width: FORWARD_CORRIDOR geometry.
        subtract_known_background: drop mapped static structure first.
        exchange_rate_hz: how often packages are sent (the paper settles
            on 1 Hz as sufficient).
    """

    category: RoiCategory = RoiCategory.FULL_FRAME
    sector_fov_deg: float = 120.0
    corridor_length: float = 50.0
    corridor_width: float = 8.0
    subtract_known_background: bool = True
    exchange_rate_hz: float = 1.0

    def __post_init__(self) -> None:
        if self.exchange_rate_hz <= 0:
            raise ValueError("exchange rate must be positive")


def extract_roi(
    cloud: PointCloud,
    policy: RoiPolicy,
    background_boxes: Sequence[Box3D] = (),
) -> PointCloud:
    """Apply an ROI policy to a sender's cloud (sender's LiDAR frame)."""
    with PROFILER.stage("roi.extract"):
        working = cloud
        if policy.subtract_known_background and background_boxes:
            working = subtract_background(working, list(background_boxes))
        if policy.category is RoiCategory.FULL_FRAME:
            return working
        if policy.category is RoiCategory.FRONT_SECTOR:
            return crop_sector(working, fov_deg=policy.sector_fov_deg)
        if policy.category is RoiCategory.FORWARD_CORRIDOR:
            return forward_corridor(
                working,
                length=policy.corridor_length,
                width=policy.corridor_width,
            )
        raise AssertionError(f"unhandled category {policy.category}")
