"""Per-frame bandwidth ledger for cooperative exchange.

Every fusion mode claims a bytes/frame figure; this module makes those
figures *honest* by recording every message a session actually puts on
the air — raw-cloud packages, ROI crops, feature packages and the gated
mode's confidence requests alike — with its step, sender, kind, size and
delivery outcome.  The ledger is populated parent-side by
:class:`repro.fusion.agent.CooperSession`, so it is bit-identical at any
worker count, and it is what the recall-vs-bandwidth frontier bench
reads its x-axis from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CommRecord", "CommRecorder"]


@dataclass(frozen=True)
class CommRecord:
    """One message put on the air.

    Attributes:
        step: session step (exchange period) index.
        sender: transmitting vehicle.
        receiver: intended receiver (``"*"`` for a broadcast).
        kind: message class — ``"cloud"`` (raw/ROI exchange packages),
            ``"features"`` (feature packages), ``"request"`` (confidence
            requests).
        payload_bytes: wire size of one transmitted copy.
        delivered: whether the message cleared the channel.
    """

    step: int
    sender: str
    receiver: str
    kind: str
    payload_bytes: int
    delivered: bool


@dataclass
class CommRecorder:
    """Accumulates :class:`CommRecord` rows and reduces them to a ledger.

    Messages that were never transmitted (circuit-breaker skips, channel
    blackouts, scheduler deferrals) are *not* recorded — the ledger
    counts airtime actually spent.  Retransmission copies are visible in
    the profiler's ``dsrc.total_bits`` counter, not here; the ledger
    charges one copy per transmission.
    """

    records: list[CommRecord] = field(default_factory=list)
    frames: int = 0

    def note_frame(self, step: int) -> None:
        """Tell the ledger a frame happened (even if nothing was sent)."""
        self.frames = max(self.frames, step + 1)

    def record(
        self,
        step: int,
        sender: str,
        kind: str,
        payload_bytes: int,
        delivered: bool = True,
        receiver: str = "*",
    ) -> None:
        """Append one transmission to the ledger."""
        self.note_frame(step)
        self.records.append(
            CommRecord(step, sender, receiver, kind, payload_bytes, delivered)
        )

    def total_bytes(self, kind: str | None = None) -> int:
        """Bytes put on the air (optionally for one message kind)."""
        return sum(
            r.payload_bytes
            for r in self.records
            if kind is None or r.kind == kind
        )

    def delivered_bytes(self, kind: str | None = None) -> int:
        """Bytes that also cleared the channel."""
        return sum(
            r.payload_bytes
            for r in self.records
            if r.delivered and (kind is None or r.kind == kind)
        )

    def by_kind(self) -> dict[str, int]:
        """Total transmitted bytes per message kind."""
        totals: dict[str, int] = {}
        for r in self.records:
            totals[r.kind] = totals.get(r.kind, 0) + r.payload_bytes
        return totals

    def bytes_per_frame(self, kind: str | None = None) -> float:
        """Mean transmitted bytes per session frame — the honest figure."""
        if self.frames == 0:
            return 0.0
        return self.total_bytes(kind) / self.frames

    def summary(self) -> dict:
        """JSON-ready reduction of the ledger."""
        return {
            "frames": self.frames,
            "messages": len(self.records),
            "total_bytes": self.total_bytes(),
            "delivered_bytes": self.delivered_bytes(),
            "bytes_per_frame": self.bytes_per_frame(),
            "by_kind": self.by_kind(),
        }
