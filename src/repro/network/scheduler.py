"""Shared-channel scheduling for multiple cooperating pairs.

DSRC is a broadcast medium: every cooperating pair in radio range shares
the same channel capacity.  The paper warns that "excessive exchanging of
frequencies only leads to unnecessary data, hence needlessly congesting the
communication channels" — this module quantifies that: a
:class:`SharedChannelScheduler` admits per-second transmission demands
from many senders against one capacity budget and reports delivered /
deferred traffic and utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.dsrc import DsrcChannel

__all__ = ["Demand", "ScheduleReport", "SharedChannelScheduler"]


@dataclass(frozen=True)
class Demand:
    """One sender's transmission demand for one second.

    Attributes:
        sender: vehicle identifier.
        bits: payload size.
        priority: higher goes first when the channel saturates (safety
            messages over bulk ROI refreshes).
    """

    sender: str
    bits: int
    priority: int = 0

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ValueError("bits must be non-negative")


@dataclass
class ScheduleReport:
    """Outcome of one scheduled second.

    Attributes:
        delivered: demands fully transmitted this second.
        deferred: demands pushed to the next second (channel saturated).
        utilization: fraction of channel capacity consumed.
    """

    delivered: list[Demand] = field(default_factory=list)
    deferred: list[Demand] = field(default_factory=list)
    utilization: float = 0.0

    @property
    def delivered_bits(self) -> int:
        """Total bits that made it onto the air."""
        return sum(d.bits for d in self.delivered)


class SharedChannelScheduler:
    """Admits transmission demands against one DSRC channel per second.

    Fresh demands are served in the documented ``(-priority, bits,
    sender)`` order — small high-priority messages first, mirroring
    EDCA-style access classes, with the sender name as the final
    tie-break so equal (priority, bits) demands are ordered identically
    in every run regardless of arrival order.

    Unserved demands carry over to the next second via :attr:`backlog`
    **with aging**: a demand deferred for ``aging_boost_seconds`` seconds
    gains one effective priority level (and older demands outrank younger
    ones at equal effective priority).  Without aging, a large
    low-priority demand is leapfrogged forever by a steady trickle of
    small same-priority demands — the ``bits`` tiebreak always sorts the
    newcomers first and greedy fill takes them.  With aging, any demand
    that fits the channel at all is delivered in bounded time: its
    effective priority eventually exceeds every fresh competitor's.
    Demands arriving in the same second (age 0) still follow the
    documented key exactly.
    """

    def __init__(
        self,
        channel: DsrcChannel | None = None,
        aging_boost_seconds: int = 4,
    ) -> None:
        if aging_boost_seconds < 1:
            raise ValueError("aging_boost_seconds must be at least 1")
        self.channel = channel or DsrcChannel()
        self.aging_boost_seconds = aging_boost_seconds
        self._backlog: list[tuple[int, Demand]] = []

    @property
    def backlog(self) -> list[Demand]:
        """Currently deferred demands, oldest first (read-only view)."""
        return [demand for _, demand in self._backlog]

    def drop_backlog(self) -> int:
        """Discard every deferred demand; returns how many were dropped.

        Supports freshest-only flows (the session loop): a deferred
        exchange package is superseded by the sender's next frame, so
        retransmitting the stale payload would waste the airtime the
        deferral was meant to save.
        """
        dropped = len(self._backlog)
        self._backlog = []
        return dropped

    @property
    def capacity_bits_per_second(self) -> float:
        """The channel's sustained capacity."""
        return self.channel.bandwidth_mbps * 1e6

    def schedule_second(self, demands: list[Demand]) -> ScheduleReport:
        """Serve this second's demands (plus aged backlog) within capacity.

        The service order is ``(-(priority + age // aging_boost_seconds),
        -age, bits, sender)`` where ``age`` counts deferred seconds —
        for same-second demands (age 0) this reduces to the documented
        stable key ``(-priority, bits, sender)``.
        """
        aged = self._backlog + [(0, demand) for demand in demands]
        queue = sorted(
            aged,
            key=lambda item: (
                -(item[1].priority + item[0] // self.aging_boost_seconds),
                -item[0],
                item[1].bits,
                item[1].sender,
            ),
        )
        if not queue:
            # Idle second: nothing queued, nothing carried over.
            return ScheduleReport()
        report = ScheduleReport()
        deferred_aged: list[tuple[int, Demand]] = []
        budget = self.capacity_bits_per_second
        used = 0.0
        for age, demand in queue:
            if used + demand.bits <= budget:
                used += demand.bits
                report.delivered.append(demand)
            else:
                report.deferred.append(demand)
                deferred_aged.append((age + 1, demand))
        report.utilization = used / budget if budget else 0.0
        deferred_aged.sort(key=lambda item: -item[0])
        self._backlog = deferred_aged
        return report

    def run(self, per_second_demands: list[list[Demand]]) -> list[ScheduleReport]:
        """Schedule a multi-second trace; backlog carries across seconds."""
        return [self.schedule_second(batch) for batch in per_second_demands]

    @staticmethod
    def saturation_point(
        channel: DsrcChannel, bits_per_pair: float, bidirectional: bool = True
    ) -> int:
        """Max cooperating pairs one channel supports at a given demand.

        The congestion headline: at full-frame exchange each pair costs
        ``bits_per_pair`` per direction per second.
        """
        if bits_per_pair <= 0:
            raise ValueError("bits_per_pair must be positive")
        per_pair = bits_per_pair * (2 if bidirectional else 1)
        return int(np.floor(channel.bandwidth_mbps * 1e6 / per_pair))
