"""Vehicular networking substrate (paper Section IV-G).

Models what the paper's feasibility study measures: a DSRC channel with
finite throughput and per-hop latency, message framing/fragmentation for
exchange packages, the three ROI exchange categories of Fig. 11, and a
frame-by-frame exchange simulator that regenerates the Fig. 12 data-volume
traces and checks them against channel capacity.
"""

from repro.network.dsrc import DsrcChannel, TransmissionReport
from repro.network.messages import MessageFramer, Frame
from repro.network.roi_policy import RoiCategory, RoiPolicy, extract_roi
from repro.network.simulator import ExchangeSimulator, ExchangeTrace
from repro.network.demand import RoiRequest, answer_request, fuse_reply, weak_regions
from repro.network.scheduler import Demand, ScheduleReport, SharedChannelScheduler
from repro.network.comm import CommRecord, CommRecorder

__all__ = [
    "DsrcChannel",
    "TransmissionReport",
    "MessageFramer",
    "Frame",
    "RoiCategory",
    "RoiPolicy",
    "extract_roi",
    "ExchangeSimulator",
    "ExchangeTrace",
    "RoiRequest",
    "answer_request",
    "fuse_reply",
    "weak_regions",
    "Demand",
    "ScheduleReport",
    "SharedChannelScheduler",
    "CommRecord",
    "CommRecorder",
]
