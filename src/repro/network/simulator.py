"""Frame-by-frame exchange simulation (paper Fig. 12).

"We simulated and gathered the total data consumption between two cars,
both utilizing a 16-beam LiDAR, every second over an eight second time
frame."  The simulator drives two vehicles along trajectories through a
world, applies an ROI policy at the configured exchange rate, compresses
each package, and records the per-second data volume plus the DSRC
delivery report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fusion.package import ExchangePackage
from repro.network.dsrc import DsrcChannel
from repro.network.roi_policy import RoiPolicy, extract_roi
from repro.pointcloud.compression import CompressionSpec
from repro.scene.trajectories import Trajectory
from repro.scene.world import World
from repro.sensors.rig import SensorRig

__all__ = ["ExchangeTrace", "ExchangeSimulator"]


@dataclass
class ExchangeTrace:
    """Result of one simulated exchange session.

    Attributes:
        seconds: the sampled timestamps.
        volume_megabits: total Mbit exchanged in each 1-second bucket
            (summing both directions where the policy is bidirectional) —
            the Fig. 12 y-axis.
        per_frame_megabits: Mbit of each individual package sent.
        delivered: per-package DSRC delivery outcome.
        latencies: per-package transmission latency (seconds).
        attempts: per-package transmission attempts — exposes the
            retransmission cost a lossy link adds to the Fig. 12 trace.
    """

    seconds: np.ndarray
    volume_megabits: np.ndarray
    per_frame_megabits: list[float] = field(default_factory=list)
    delivered: list[bool] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    attempts: list[int] = field(default_factory=list)

    @property
    def total_attempts(self) -> int:
        """Transmission attempts summed over every package."""
        return int(sum(self.attempts))

    @property
    def peak_volume_megabits(self) -> float:
        """Largest single-second volume."""
        return float(self.volume_megabits.max()) if len(self.volume_megabits) else 0.0

    @property
    def mean_volume_megabits(self) -> float:
        """Average per-second volume."""
        return float(self.volume_megabits.mean()) if len(self.volume_megabits) else 0.0

    def within_capacity(self, channel: DsrcChannel) -> bool:
        """Does every second's volume fit the channel's sustained rate?"""
        return bool((self.volume_megabits <= channel.bandwidth_mbps).all())


@dataclass
class ExchangeSimulator:
    """Simulates ROI data exchange between two cooperating vehicles.

    Attributes:
        world: the environment both vehicles scan.
        rig_a / rig_b: the two vehicles' sensor rigs (16-beam by default).
        channel: the DSRC link between them.
        compression: wire codec for the packages.
    """

    world: World
    rig_a: SensorRig
    rig_b: SensorRig
    channel: DsrcChannel = field(default_factory=DsrcChannel)
    compression: CompressionSpec = field(default_factory=CompressionSpec)

    def run(
        self,
        trajectory_a: Trajectory,
        trajectory_b: Trajectory,
        policy: RoiPolicy,
        duration_seconds: float = 8.0,
        seed: int = 0,
    ) -> ExchangeTrace:
        """Simulate ``duration_seconds`` of exchange under ``policy``.

        Packages are produced at ``policy.exchange_rate_hz``; category 3
        (forward corridor) is one-way (leader -> follower), the others are
        bidirectional, matching the paper's accounting.
        """
        dt = 1.0 / policy.exchange_rate_hz
        times = np.arange(0.0, duration_seconds, dt)
        buckets = np.zeros(int(np.ceil(duration_seconds)))
        trace = ExchangeTrace(seconds=np.arange(len(buckets)), volume_megabits=buckets)

        background = [a.box for a in self.world.background()]
        for step, t in enumerate(times):
            pose_a = trajectory_a.pose_at(float(t))
            pose_b = trajectory_b.pose_at(float(t))
            senders = [(self.rig_a, pose_a, "a")]
            if policy.category.bidirectional:
                senders.append((self.rig_b, pose_b, "b"))
            for rig, pose, tag in senders:
                obs = rig.observe(self.world, pose, seed=seed + step * 7)
                local_background = [
                    b.transformed(pose.from_world()) for b in background
                ]
                roi_cloud = extract_roi(obs.scan.cloud, policy, local_background)
                package = ExchangePackage(
                    cloud=roi_cloud,
                    pose=obs.measured_pose,
                    sender=f"{rig.name}-{tag}",
                    beam_count=rig.lidar.pattern.num_beams,
                    timestamp=float(t),
                )
                bits = package.size_bytes(self.compression) * 8
                report = self.channel.transmit(bits, seed=seed + step * 13)
                bucket = min(int(t), len(buckets) - 1)
                trace.volume_megabits[bucket] += bits / 1e6
                trace.per_frame_megabits.append(bits / 1e6)
                trace.delivered.append(report.delivered)
                trace.latencies.append(report.seconds)
                trace.attempts.append(report.attempts)
        return trace
