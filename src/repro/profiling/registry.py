"""The stage-timer registry behind :mod:`repro.profiling`.

A :class:`Profiler` owns a flat namespace of named stages.  Each stage
accumulates call count, total/min/max wall-clock seconds and a log-spaced
histogram of per-call durations; free-form counters ride alongside for
non-timing quantities (bits on the wire, retry attempts, ...).

The design constraint is the disabled path: every instrumentation point in
the pipeline runs ``with PROFILER.stage("name"):`` unconditionally, so when
profiling is off the call must cost no more than an attribute check and the
return of a shared no-op context manager — no allocation, no clock read.
"""

from __future__ import annotations

import functools
import json
import time
from collections.abc import Callable
from pathlib import Path

__all__ = ["HISTOGRAM_EDGES", "StageStats", "Profiler", "NULL_STAGE"]

#: Upper edges (seconds) of the per-stage duration histogram: log-spaced
#: from 1 microsecond to ~17 seconds, with a final overflow bucket.
HISTOGRAM_EDGES: tuple[float, ...] = tuple(1e-6 * 4.0**i for i in range(13))


class StageStats:
    """Accumulated wall-clock statistics of one named stage."""

    __slots__ = ("name", "count", "total", "min", "max", "histogram")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.histogram = [0] * (len(HISTOGRAM_EDGES) + 1)

    def record(self, seconds: float) -> None:
        """Fold one observed duration into the stats."""
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        bucket = 0
        for edge in HISTOGRAM_EDGES:
            if seconds <= edge:
                break
            bucket += 1
        self.histogram[bucket] += 1

    @property
    def mean(self) -> float:
        """Mean seconds per call (0 when never called)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: dict) -> None:
        """Fold another stage's exported stats (:meth:`as_dict`) into this.

        Counts, totals and histogram bins add exactly; min/max combine.
        Used by :meth:`Profiler.merge_snapshot` to reconcile per-worker
        profiler snapshots after a parallel run.
        """
        count = int(other["count"])
        if count == 0:
            return
        histogram = other["histogram"]
        if len(histogram) != len(self.histogram):
            raise ValueError(
                f"stage {self.name!r}: histogram has {len(histogram)} bins, "
                f"expected {len(self.histogram)} (mismatched HISTOGRAM_EDGES?)"
            )
        other_min = float(other["min_seconds"])
        self.min = other_min if self.count == 0 else min(self.min, other_min)
        self.max = max(self.max, float(other["max_seconds"]))
        self.count += count
        self.total += float(other["total_seconds"])
        for bucket, value in enumerate(histogram):
            self.histogram[bucket] += int(value)

    def as_dict(self) -> dict:
        """JSON-ready summary of this stage."""
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
            "histogram": list(self.histogram),
        }


class _NullStage:
    """Shared no-op context manager returned while profiling is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_STAGE = _NullStage()


class _StageTimer:
    """Context manager that times one stage invocation."""

    __slots__ = ("_stats", "_start")

    def __init__(self, stats: StageStats) -> None:
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "_StageTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._stats.record(time.perf_counter() - self._start)
        return False


class Profiler:
    """A registry of named stage timers and counters.

    Not thread-safe by design: the OBU loop is single-threaded and lock-free
    increments keep the enabled path cheap.  Use one Profiler per thread if
    that ever changes.  Under process parallelism each worker accumulates
    into its own per-process registry; :meth:`snapshot` /
    :meth:`merge_snapshot` reconcile those back into the parent.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._stages: dict[str, StageStats] = {}
        self._counters: dict[str, float] = {}

    # -- lifecycle --------------------------------------------------------
    def enable(self) -> None:
        """Start recording."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (existing data is kept)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded stages and counters."""
        self._stages.clear()
        self._counters.clear()

    # -- recording --------------------------------------------------------
    def stage(self, name: str):
        """Context manager timing one invocation of stage ``name``.

        When disabled this returns a shared no-op context manager: the
        instrumentation points sprinkled through the pipeline cost one
        attribute check each.
        """
        if not self.enabled:
            return NULL_STAGE
        stats = self._stages.get(name)
        if stats is None:
            stats = self._stages[name] = StageStats(name)
        return _StageTimer(stats)

    def record(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into stage ``name``."""
        if not self.enabled:
            return
        stats = self._stages.get(name)
        if stats is None:
            stats = self._stages[name] = StageStats(name)
        stats.record(seconds)

    def count(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + value

    def profiled(self, name: str | None = None) -> Callable:
        """Decorator timing every call of the wrapped function.

        ``name`` defaults to the function's qualified name.
        """

        def decorate(fn: Callable) -> Callable:
            stage_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.stage(stage_name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # -- introspection ----------------------------------------------------
    def stats(self, name: str) -> StageStats | None:
        """The stats object of one stage, or None if never recorded."""
        return self._stages.get(name)

    def total_seconds(self, name: str) -> float:
        """Total recorded seconds of one stage (0 if never recorded)."""
        stats = self._stages.get(name)
        return stats.total if stats is not None else 0.0

    @property
    def stages(self) -> dict[str, StageStats]:
        """Live view of the recorded stages (do not mutate)."""
        return self._stages

    @property
    def counters(self) -> dict[str, float]:
        """Live view of the counters (do not mutate)."""
        return self._counters

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every stage and counter."""
        return {
            "histogram_edges_seconds": list(HISTOGRAM_EDGES),
            "stages": {
                name: stats.as_dict() for name, stats in self._stages.items()
            },
            "counters": dict(self._counters),
        }

    def snapshot(self) -> dict:
        """A mergeable export of the current state (alias of :meth:`as_dict`).

        Workers call this at the end of a chunk; the parent process folds
        the result back in with :meth:`merge_snapshot`.
        """
        return self.as_dict()

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another process into this registry.

        Stage counts, totals and histogram bins sum exactly and counters
        add, so merging every worker's snapshot reproduces the registry a
        single-process run would have accumulated.  Merging ignores the
        ``enabled`` flag — it is a parent-side aggregation step, not a
        recording one.
        """
        edges = snapshot.get("histogram_edges_seconds")
        if edges is not None and tuple(edges) != HISTOGRAM_EDGES:
            raise ValueError("snapshot recorded with different HISTOGRAM_EDGES")
        for name, data in snapshot.get("stages", {}).items():
            stats = self._stages.get(name)
            if stats is None:
                stats = self._stages[name] = StageStats(name)
            stats.merge(data)
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def export_json(self, path: str | Path) -> Path:
        """Write :meth:`as_dict` to ``path`` and return it."""
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True))
        return path

    def render_table(self) -> str:
        """Human-readable stage table, heaviest total first."""
        if not self._stages:
            return "(no stages recorded)"
        rows = sorted(
            self._stages.values(), key=lambda s: s.total, reverse=True
        )
        header = (
            f"{'stage':28s} {'calls':>7s} {'total ms':>10s} "
            f"{'mean ms':>9s} {'min ms':>9s} {'max ms':>9s}"
        )
        lines = [header, "-" * len(header)]
        for stats in rows:
            lines.append(
                f"{stats.name:28s} {stats.count:7d} "
                f"{stats.total * 1e3:10.2f} {stats.mean * 1e3:9.3f} "
                f"{(stats.min if stats.count else 0.0) * 1e3:9.3f} "
                f"{stats.max * 1e3:9.3f}"
            )
        if self._counters:
            lines.append("")
            lines.append(f"{'counter':28s} {'value':>12s}")
            for name in sorted(self._counters):
                lines.append(f"{name:28s} {self._counters[name]:12g}")
        return "\n".join(lines)
