"""Stage-level profiling of the Cooper scan -> fuse -> detect loop.

The paper's Fig. 9 argument — raw-cloud fusion adds only a small latency on
top of single-shot detection — is a claim about *per-stage* budgets, and
scaling work needs to know exactly where the OBU loop spends its time.
This package is a zero-dependency stage-timer/metrics registry threaded
through the whole pipeline: LiDAR scan, ROI extraction, compression, DSRC
transmit, alignment/merging, voxelisation, the SPOD stages and the
session loop.

Typical use::

    from repro.profiling import PROFILER

    PROFILER.enable()
    session.run(...)
    print(PROFILER.render_table())
    PROFILER.export_json("results/profile.json")

Instrumented code paths do ``with PROFILER.stage("spod.rpn"): ...``
unconditionally; while profiling is disabled (the default) each such point
costs a single attribute check, so the instrumentation is free in
production.  ``python -m repro.cli --profile <command>`` prints the stage
table after any CLI experiment.
"""

from __future__ import annotations

from repro.profiling.registry import (
    HISTOGRAM_EDGES,
    NULL_STAGE,
    Profiler,
    StageStats,
)

__all__ = [
    "HISTOGRAM_EDGES",
    "NULL_STAGE",
    "Profiler",
    "StageStats",
    "PROFILER",
    "get_profiler",
    "profiled",
]

#: The process-wide default profiler every instrumented stage reports to.
PROFILER = Profiler()


def get_profiler() -> Profiler:
    """Return the process-wide default profiler."""
    return PROFILER


def profiled(name: str | None = None):
    """Decorator timing calls of the wrapped function on :data:`PROFILER`."""
    return PROFILER.profiled(name)
