"""Basic rotation matrices and Euler-angle conversions (paper Eq. 1).

The Cooper paper builds the alignment rotation ``R = Rz(alpha) @ Ry(beta) @
Rx(gamma)`` from the yaw, pitch and roll differences reported by the IMUs of
the transmitting and receiving vehicles.  This module provides those basic
rotations plus the conversions and angle utilities used throughout the
reproduction.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "euler_to_matrix",
    "matrix_to_euler",
    "is_rotation_matrix",
    "normalize_angle",
    "angle_difference",
    "yaw_matrix_2d",
]

_TWO_PI = 2.0 * math.pi


def rotation_x(gamma: float) -> np.ndarray:
    """Return the 3x3 basic rotation about the x-axis by ``gamma`` radians.

    This is ``Rx(gamma)`` from Eq. (1) of the paper (roll).
    """
    c, s = math.cos(gamma), math.sin(gamma)
    return np.array(
        [
            [1.0, 0.0, 0.0],
            [0.0, c, -s],
            [0.0, s, c],
        ]
    )


def rotation_y(beta: float) -> np.ndarray:
    """Return the 3x3 basic rotation about the y-axis by ``beta`` radians.

    This is ``Ry(beta)`` from Eq. (1) of the paper (pitch).
    """
    c, s = math.cos(beta), math.sin(beta)
    return np.array(
        [
            [c, 0.0, s],
            [0.0, 1.0, 0.0],
            [-s, 0.0, c],
        ]
    )


def rotation_z(alpha: float) -> np.ndarray:
    """Return the 3x3 basic rotation about the z-axis by ``alpha`` radians.

    This is ``Rz(alpha)`` from Eq. (1) of the paper (yaw).
    """
    c, s = math.cos(alpha), math.sin(alpha)
    return np.array(
        [
            [c, -s, 0.0],
            [s, c, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )


def euler_to_matrix(yaw: float, pitch: float, roll: float) -> np.ndarray:
    """Compose ``R = Rz(yaw) @ Ry(pitch) @ Rx(roll)`` exactly as in Eq. (1).

    Angles are in radians.  The resulting matrix rotates column vectors from
    the body frame into the reference frame.
    """
    return rotation_z(yaw) @ rotation_y(pitch) @ rotation_x(roll)


def matrix_to_euler(matrix: np.ndarray) -> tuple[float, float, float]:
    """Recover ``(yaw, pitch, roll)`` from a ZYX rotation matrix.

    Inverse of :func:`euler_to_matrix`.  At the gimbal-lock singularity
    (``|pitch| = pi/2``) the yaw/roll split is not unique; we follow the
    common convention of assigning the whole in-plane rotation to yaw.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (3, 3):
        raise ValueError(f"expected a 3x3 matrix, got shape {matrix.shape}")
    # sin(pitch) = -m[2, 0]
    sp = -matrix[2, 0]
    sp = min(1.0, max(-1.0, sp))
    pitch = math.asin(sp)
    if abs(sp) < 1.0 - 1e-9:
        yaw = math.atan2(matrix[1, 0], matrix[0, 0])
        roll = math.atan2(matrix[2, 1], matrix[2, 2])
    else:
        # Gimbal lock: pitch = +/- pi/2. Only yaw -/+ roll is observable.
        yaw = math.atan2(-matrix[0, 1], matrix[1, 1])
        roll = 0.0
    return yaw, pitch, roll


def is_rotation_matrix(matrix: np.ndarray, atol: float = 1e-6) -> bool:
    """Check that ``matrix`` is a proper rotation (orthogonal, det = +1)."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (3, 3):
        return False
    identity_error = np.abs(matrix @ matrix.T - np.eye(3)).max()
    return identity_error <= atol and abs(np.linalg.det(matrix) - 1.0) <= atol


def normalize_angle(angle: float) -> float:
    """Wrap ``angle`` into ``(-pi, pi]``."""
    wrapped = math.fmod(angle, _TWO_PI)
    if wrapped > math.pi:
        wrapped -= _TWO_PI
    elif wrapped <= -math.pi:
        wrapped += _TWO_PI
    return wrapped


def angle_difference(a: float, b: float) -> float:
    """Return the signed smallest difference ``a - b`` wrapped to (-pi, pi]."""
    return normalize_angle(a - b)


def yaw_matrix_2d(yaw: float) -> np.ndarray:
    """Return the 2x2 in-plane rotation used for BEV box corners."""
    c, s = math.cos(yaw), math.sin(yaw)
    return np.array([[c, -s], [s, c]])
