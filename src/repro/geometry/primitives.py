"""Ray-casting primitives used by the LiDAR simulator.

The LiDAR substrate fires one ray per (beam, azimuth) pair and needs the
nearest hit against the scene's oriented boxes and the ground plane.  We
implement the classic slab test against axis-aligned boxes and reduce the
oriented case to it by rotating the ray into the box frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.boxes import Box3D
from repro.geometry.rotations import rotation_z

__all__ = [
    "Ray",
    "aabb_of_corners",
    "ray_aabb_intersection",
    "ray_box_intersection",
    "ray_ground_intersection",
]


@dataclass(frozen=True)
class Ray:
    """A half-line ``origin + t * direction`` with ``t >= 0``.

    ``direction`` is normalised on construction so returned ``t`` values are
    metric distances.
    """

    origin: np.ndarray
    direction: np.ndarray

    def __post_init__(self) -> None:
        origin = np.asarray(self.origin, dtype=float).reshape(3)
        direction = np.asarray(self.direction, dtype=float).reshape(3)
        norm = np.linalg.norm(direction)
        if norm == 0:
            raise ValueError("ray direction must be non-zero")
        object.__setattr__(self, "origin", origin)
        object.__setattr__(self, "direction", direction / norm)

    def at(self, t: float) -> np.ndarray:
        """Point at parameter ``t`` along the ray."""
        return self.origin + t * self.direction


def aabb_of_corners(corners: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(min_corner, max_corner)`` of a set of 3D points."""
    corners = np.asarray(corners, dtype=float)
    return corners.min(axis=0), corners.max(axis=0)


def ray_aabb_intersection(
    ray: Ray, box_min: np.ndarray, box_max: np.ndarray
) -> float | None:
    """Return the nearest non-negative hit distance against an AABB, or None.

    Standard slab method.  A ray starting inside the box returns the exit
    distance 0 clamp — we report ``t = 0`` for such rays (the sensor sits
    inside its own mounting volume, which scenes must avoid anyway).
    """
    t_near = -np.inf
    t_far = np.inf
    for axis in range(3):
        d = ray.direction[axis]
        o = ray.origin[axis]
        lo = box_min[axis]
        hi = box_max[axis]
        if abs(d) < 1e-12:
            if o < lo or o > hi:
                return None
            continue
        t1 = (lo - o) / d
        t2 = (hi - o) / d
        if t1 > t2:
            t1, t2 = t2, t1
        t_near = max(t_near, t1)
        t_far = min(t_far, t2)
        if t_near > t_far:
            return None
    if t_far < 0:
        return None
    return max(t_near, 0.0)


def ray_box_intersection(ray: Ray, box: Box3D) -> float | None:
    """Nearest hit distance of ``ray`` against an oriented :class:`Box3D`.

    The ray is rotated into the box's yaw-aligned frame, where the box is an
    AABB, and the slab test applies.
    """
    rot = rotation_z(-box.yaw)
    local_origin = rot @ (ray.origin - box.center)
    local_dir = rot @ ray.direction
    half = np.array([box.length / 2, box.width / 2, box.height / 2])
    local_ray = Ray.__new__(Ray)
    object.__setattr__(local_ray, "origin", local_origin)
    object.__setattr__(local_ray, "direction", local_dir)
    return ray_aabb_intersection(local_ray, -half, half)


def ray_ground_intersection(ray: Ray, ground_z: float = 0.0) -> float | None:
    """Hit distance against the horizontal plane ``z = ground_z``, or None."""
    dz = ray.direction[2]
    if abs(dz) < 1e-12:
        return None
    t = (ground_z - ray.origin[2]) / dz
    return t if t >= 0 else None
