"""Geometry core: rotations, rigid transforms, poses and oriented 3D boxes.

This package implements the mathematical substrate the Cooper paper relies
on: the basic rotation matrices of Eq. (1), the rigid transform of Eq. (3)
used to map a transmitter's point cloud into the receiver frame, vehicle
poses built from GPS + IMU readings, and oriented 3D bounding boxes with
BEV / 3D IoU used by the detector and the evaluation harness.
"""

from repro.geometry.rotations import (
    rotation_x,
    rotation_y,
    rotation_z,
    euler_to_matrix,
    matrix_to_euler,
    is_rotation_matrix,
    normalize_angle,
    angle_difference,
    yaw_matrix_2d,
)
from repro.geometry.transforms import RigidTransform, Pose
from repro.geometry.boxes import (
    Box3D,
    box_corners_bev,
    box_corners_3d,
    points_in_box,
    iou_bev,
    iou_3d,
    pairwise_iou_bev,
)
from repro.geometry.primitives import (
    Ray,
    aabb_of_corners,
    ray_aabb_intersection,
    ray_box_intersection,
    ray_ground_intersection,
)

__all__ = [
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "euler_to_matrix",
    "matrix_to_euler",
    "is_rotation_matrix",
    "normalize_angle",
    "angle_difference",
    "yaw_matrix_2d",
    "RigidTransform",
    "Pose",
    "Box3D",
    "box_corners_bev",
    "box_corners_3d",
    "points_in_box",
    "iou_bev",
    "iou_3d",
    "pairwise_iou_bev",
    "Ray",
    "aabb_of_corners",
    "ray_aabb_intersection",
    "ray_box_intersection",
    "ray_ground_intersection",
]
