"""Rigid transforms and vehicle poses (paper Eq. 2-3).

A :class:`RigidTransform` is the ``(R, t)`` pair of Eq. (3): points are
mapped as ``p' = R @ p + t``.  A :class:`Pose` bundles the GPS position and
IMU attitude of a vehicle, mirroring the exchange package contents the paper
describes in Section II-D, and converts between them and rigid transforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.rotations import (
    euler_to_matrix,
    is_rotation_matrix,
    matrix_to_euler,
    normalize_angle,
)

__all__ = ["RigidTransform", "Pose"]


@dataclass(frozen=True)
class RigidTransform:
    """A proper rigid transform ``p -> rotation @ p + translation``.

    Attributes:
        rotation: 3x3 proper rotation matrix.
        translation: length-3 translation vector.
    """

    rotation: np.ndarray
    translation: np.ndarray

    def __post_init__(self) -> None:
        rotation = np.asarray(self.rotation, dtype=float)
        translation = np.asarray(self.translation, dtype=float).reshape(3)
        if not is_rotation_matrix(rotation, atol=1e-5):
            raise ValueError("rotation is not a proper rotation matrix")
        object.__setattr__(self, "rotation", rotation)
        object.__setattr__(self, "translation", translation)

    @staticmethod
    def identity() -> "RigidTransform":
        """The identity transform."""
        return RigidTransform(np.eye(3), np.zeros(3))

    @staticmethod
    def from_euler(
        yaw: float = 0.0,
        pitch: float = 0.0,
        roll: float = 0.0,
        translation: np.ndarray | None = None,
    ) -> "RigidTransform":
        """Build a transform from ZYX Euler angles and a translation."""
        t = np.zeros(3) if translation is None else np.asarray(translation, dtype=float)
        return RigidTransform(euler_to_matrix(yaw, pitch, roll), t)

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Apply the transform to an ``(N, 3)`` array of points.

        This is Eq. (3) of the paper: ``p' = R p + delta_d``.
        """
        points = np.asarray(points, dtype=float)
        single = points.ndim == 1
        pts = np.atleast_2d(points)
        if pts.shape[-1] != 3:
            raise ValueError(f"expected (N, 3) points, got shape {points.shape}")
        out = pts @ self.rotation.T + self.translation
        return out[0] if single else out

    def apply_vector(self, vectors: np.ndarray) -> np.ndarray:
        """Rotate direction vectors (no translation)."""
        vectors = np.asarray(vectors, dtype=float)
        single = vectors.ndim == 1
        vecs = np.atleast_2d(vectors)
        out = vecs @ self.rotation.T
        return out[0] if single else out

    def compose(self, other: "RigidTransform") -> "RigidTransform":
        """Return ``self o other`` (apply ``other`` first, then ``self``)."""
        return RigidTransform(
            self.rotation @ other.rotation,
            self.rotation @ other.translation + self.translation,
        )

    def __matmul__(self, other: "RigidTransform") -> "RigidTransform":
        return self.compose(other)

    def inverse(self) -> "RigidTransform":
        """Return the inverse transform."""
        rot_inv = self.rotation.T
        return RigidTransform(rot_inv, -rot_inv @ self.translation)

    def as_matrix(self) -> np.ndarray:
        """Return the 4x4 homogeneous matrix."""
        matrix = np.eye(4)
        matrix[:3, :3] = self.rotation
        matrix[:3, 3] = self.translation
        return matrix

    @staticmethod
    def from_matrix(matrix: np.ndarray) -> "RigidTransform":
        """Build from a 4x4 homogeneous matrix."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (4, 4):
            raise ValueError(f"expected a 4x4 matrix, got shape {matrix.shape}")
        return RigidTransform(matrix[:3, :3], matrix[:3, 3])

    def almost_equal(self, other: "RigidTransform", atol: float = 1e-8) -> bool:
        """Element-wise comparison with tolerance."""
        return bool(
            np.allclose(self.rotation, other.rotation, atol=atol)
            and np.allclose(self.translation, other.translation, atol=atol)
        )


@dataclass(frozen=True)
class Pose:
    """A vehicle pose: GPS position + IMU attitude (yaw/pitch/roll).

    This mirrors the metadata encapsulated in a Cooper exchange package
    (Section II-D): the GPS reading fixes the translation of the LiDAR
    frame's centre point, and the IMU reading fixes its orientation.

    Attributes:
        position: ``(x, y, z)`` in a shared world frame (metres).
        yaw: rotation about z, radians (alpha in Eq. 1).
        pitch: rotation about y, radians (beta in Eq. 1).
        roll: rotation about x, radians (gamma in Eq. 1).
    """

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    yaw: float = 0.0
    pitch: float = 0.0
    roll: float = 0.0

    def __post_init__(self) -> None:
        position = np.asarray(self.position, dtype=float).reshape(3)
        object.__setattr__(self, "position", position)
        object.__setattr__(self, "yaw", normalize_angle(float(self.yaw)))
        object.__setattr__(self, "pitch", normalize_angle(float(self.pitch)))
        object.__setattr__(self, "roll", normalize_angle(float(self.roll)))

    def to_world(self) -> RigidTransform:
        """Transform mapping body-frame points to world-frame points."""
        return RigidTransform(
            euler_to_matrix(self.yaw, self.pitch, self.roll), self.position
        )

    def from_world(self) -> RigidTransform:
        """Transform mapping world-frame points into this body frame."""
        return self.to_world().inverse()

    def relative_to(self, other: "Pose") -> RigidTransform:
        """Transform taking points in ``self``'s frame into ``other``'s frame.

        This is exactly the paper's alignment step: a transmitter with pose
        ``self`` sends points in its own LiDAR frame, and the receiver with
        pose ``other`` applies ``R`` (from the IMU difference) and the GPS
        translation difference to place them in its own frame (Eq. 2-3).
        """
        return other.from_world().compose(self.to_world())

    @staticmethod
    def from_transform(transform: RigidTransform) -> "Pose":
        """Recover a pose from a body-to-world rigid transform."""
        yaw, pitch, roll = matrix_to_euler(transform.rotation)
        return Pose(transform.translation.copy(), yaw, pitch, roll)

    def translated(self, delta: np.ndarray) -> "Pose":
        """Return a copy shifted by ``delta`` in the world frame."""
        return Pose(self.position + np.asarray(delta, dtype=float), self.yaw, self.pitch, self.roll)

    def distance_to(self, other: "Pose") -> float:
        """Euclidean distance between the two GPS positions (paper's delta-d)."""
        return float(np.linalg.norm(self.position - other.position))
