"""Oriented 3D bounding boxes, point containment and IoU.

Vehicles in the scene substrate, anchors in the RPN, and detections in the
evaluation harness are all oriented boxes: ``(cx, cy, cz)`` centre,
``(length, width, height)`` size and a yaw about the z-axis.  ``length``
runs along the heading direction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.geometry.rotations import normalize_angle, yaw_matrix_2d
from repro.geometry.transforms import RigidTransform

__all__ = [
    "Box3D",
    "box_corners_bev",
    "box_corners_3d",
    "points_in_box",
    "iou_bev",
    "iou_bev_from_corners",
    "iou_3d",
    "pairwise_iou_bev",
]


@dataclass(frozen=True)
class Box3D:
    """An oriented 3D box: centre, size (length/width/height) and yaw.

    The centre is the geometric centre of the box (not the bottom face).
    ``yaw = 0`` points the length axis along +x.
    """

    center: np.ndarray
    length: float
    width: float
    height: float
    yaw: float = 0.0

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=float).reshape(3)
        if min(self.length, self.width, self.height) <= 0:
            raise ValueError("box dimensions must be positive")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "length", float(self.length))
        object.__setattr__(self, "width", float(self.width))
        object.__setattr__(self, "height", float(self.height))
        object.__setattr__(self, "yaw", normalize_angle(float(self.yaw)))

    @property
    def volume(self) -> float:
        """Box volume in cubic metres."""
        return self.length * self.width * self.height

    @property
    def bottom_z(self) -> float:
        """z coordinate of the bottom face."""
        return float(self.center[2] - self.height / 2.0)

    @property
    def top_z(self) -> float:
        """z coordinate of the top face."""
        return float(self.center[2] + self.height / 2.0)

    def transformed(self, transform: RigidTransform) -> "Box3D":
        """Apply a rigid transform.

        Only yaw-preserving transforms keep the box axis-aligned in z; for
        the planar motions used throughout the paper (vehicles on roads)
        this is exact.  The new yaw adds the transform's in-plane rotation.
        """
        new_center = transform.apply(self.center)
        heading = transform.apply_vector(
            np.array([np.cos(self.yaw), np.sin(self.yaw), 0.0])
        )
        new_yaw = float(np.arctan2(heading[1], heading[0]))
        return replace(self, center=new_center, yaw=new_yaw)

    def translated(self, delta: np.ndarray) -> "Box3D":
        """Return a copy shifted by ``delta``."""
        return replace(self, center=self.center + np.asarray(delta, dtype=float))

    def expanded(self, margin: float) -> "Box3D":
        """Return a copy grown by ``margin`` metres on every side."""
        return replace(
            self,
            length=self.length + 2 * margin,
            width=self.width + 2 * margin,
            height=self.height + 2 * margin,
        )

    def as_vector(self) -> np.ndarray:
        """Return ``[cx, cy, cz, l, w, h, yaw]`` (the RPN regression target)."""
        return np.array(
            [*self.center, self.length, self.width, self.height, self.yaw]
        )

    @staticmethod
    def from_vector(vector: np.ndarray) -> "Box3D":
        """Inverse of :meth:`as_vector`."""
        vector = np.asarray(vector, dtype=float).reshape(7)
        return Box3D(vector[:3], vector[3], vector[4], vector[5], vector[6])


def box_corners_bev(box: Box3D) -> np.ndarray:
    """Return the four BEV (x, y) corners, counter-clockwise."""
    half = np.array(
        [
            [box.length / 2, box.width / 2],
            [-box.length / 2, box.width / 2],
            [-box.length / 2, -box.width / 2],
            [box.length / 2, -box.width / 2],
        ]
    )
    return half @ yaw_matrix_2d(box.yaw).T + box.center[:2]


def box_corners_3d(box: Box3D) -> np.ndarray:
    """Return the eight 3D corners, bottom face first (matching BEV order)."""
    bev = box_corners_bev(box)
    bottom = np.column_stack([bev, np.full(4, box.bottom_z)])
    top = np.column_stack([bev, np.full(4, box.top_z)])
    return np.vstack([bottom, top])


def points_in_box(points: np.ndarray, box: Box3D, margin: float = 0.0) -> np.ndarray:
    """Return a boolean mask of the points inside the (optionally grown) box."""
    points = np.asarray(points, dtype=float)
    if points.size == 0:
        return np.zeros(0, dtype=bool)
    pts = points[:, :3] - box.center
    rot = yaw_matrix_2d(-box.yaw)
    xy = pts[:, :2] @ rot.T
    half_l = box.length / 2 + margin
    half_w = box.width / 2 + margin
    half_h = box.height / 2 + margin
    return (
        (np.abs(xy[:, 0]) <= half_l)
        & (np.abs(xy[:, 1]) <= half_w)
        & (np.abs(pts[:, 2]) <= half_h)
    )


def _polygon_area(poly: np.ndarray) -> float:
    """Shoelace area of a simple polygon given as an (N, 2) vertex array.

    Polygons here are box footprints and their clips (4-8 vertices), where
    a plain accumulation loop beats the array rolls it replaced.
    """
    n = len(poly)
    if n < 3:
        return 0.0
    vertices = [(float(p[0]), float(p[1])) for p in poly]
    x2, y2 = vertices[-1]
    area = 0.0
    for x1, y1 in vertices:
        area += x2 * y1 - y2 * x1
        x2, y2 = x1, y1
    return 0.5 * abs(area)


def _clip_polygon(subject: np.ndarray, clip: np.ndarray) -> np.ndarray:
    """Sutherland-Hodgman clipping of ``subject`` by convex ``clip`` polygon.

    Both polygons must be counter-clockwise.  Returns the (possibly empty)
    intersection polygon.  The arithmetic runs on plain floats — these are
    4-8 vertex polygons, where per-element numpy scalar overhead dominated
    the NMS profile.
    """
    output = [(float(p[0]), float(p[1])) for p in subject]
    edges = [(float(p[0]), float(p[1])) for p in clip]
    n = len(edges)
    for i in range(n):
        ax, ay = edges[i]
        bx, by = edges[(i + 1) % n]
        ex, ey = bx - ax, by - ay
        input_list = output
        output = []
        if not input_list:
            break
        px, py = input_list[-1]
        previous_inside = ex * (py - ay) - ey * (px - ax) >= 0
        for cx, cy in input_list:
            current_inside = ex * (cy - ay) - ey * (cx - ax) >= 0
            if current_inside:
                if not previous_inside:
                    output.append(
                        _line_intersection(px, py, cx, cy, ax, ay, bx, by)
                    )
                output.append((cx, cy))
            elif previous_inside:
                output.append(
                    _line_intersection(px, py, cx, cy, ax, ay, bx, by)
                )
            px, py, previous_inside = cx, cy, current_inside
    return np.array(output) if output else np.zeros((0, 2))


def _line_intersection(
    px: float, py: float, cx: float, cy: float,
    ax: float, ay: float, bx: float, by: float,
) -> tuple[float, float]:
    """Intersection point of segment p-c with the infinite line a-b."""
    d1x, d1y = cx - px, cy - py
    d2x, d2y = bx - ax, by - ay
    denom = d1x * d2y - d1y * d2x
    if abs(denom) < 1e-12:
        return (cx, cy)
    t = ((ax - px) * d2y - (ay - py) * d2x) / denom
    return (px + t * d1x, py + t * d1y)


def _bev_intersection_area(box_a: Box3D, box_b: Box3D) -> float:
    corners_a = box_corners_bev(box_a)
    corners_b = box_corners_bev(box_b)
    return _polygon_area(_clip_polygon(corners_a, corners_b))


def iou_bev_from_corners(
    corners_a: np.ndarray,
    area_a: float,
    corners_b: np.ndarray,
    area_b: float,
) -> float:
    """BEV IoU from precomputed corner polygons and areas.

    Callers that evaluate many pairs over the same boxes (NMS, matching)
    compute corners and areas once and reuse them here instead of paying
    :func:`box_corners_bev` per pair.
    """
    inter = _polygon_area(_clip_polygon(corners_a, corners_b))
    union = area_a + area_b - inter
    return inter / union if union > 0 else 0.0


def iou_bev(box_a: Box3D, box_b: Box3D) -> float:
    """Bird's-eye-view IoU of two oriented boxes."""
    return iou_bev_from_corners(
        box_corners_bev(box_a),
        box_a.length * box_a.width,
        box_corners_bev(box_b),
        box_b.length * box_b.width,
    )


def iou_3d(box_a: Box3D, box_b: Box3D) -> float:
    """3D IoU: BEV intersection times vertical overlap over the union."""
    inter_bev = _bev_intersection_area(box_a, box_b)
    z_overlap = max(
        0.0, min(box_a.top_z, box_b.top_z) - max(box_a.bottom_z, box_b.bottom_z)
    )
    inter = inter_bev * z_overlap
    union = box_a.volume + box_b.volume - inter
    return inter / union if union > 0 else 0.0


def pairwise_iou_bev(boxes_a: list[Box3D], boxes_b: list[Box3D]) -> np.ndarray:
    """Return the |A| x |B| matrix of BEV IoUs.

    Uses a cheap circumscribed-radius rejection test before the exact
    polygon clip, which matters when matching hundreds of anchors.
    """
    result = np.zeros((len(boxes_a), len(boxes_b)))
    if not boxes_a or not boxes_b:
        return result
    centers_a = np.array([b.center[:2] for b in boxes_a])
    centers_b = np.array([b.center[:2] for b in boxes_b])
    radii_a = np.array([np.hypot(b.length, b.width) / 2 for b in boxes_a])
    radii_b = np.array([np.hypot(b.length, b.width) / 2 for b in boxes_b])
    dist = np.linalg.norm(centers_a[:, None, :] - centers_b[None, :, :], axis=-1)
    candidates = dist <= radii_a[:, None] + radii_b[None, :]
    for i, j in zip(*np.nonzero(candidates)):
        result[i, j] = iou_bev(boxes_a[i], boxes_b[j])
    return result
