"""Oriented 3D bounding boxes, point containment and IoU.

Vehicles in the scene substrate, anchors in the RPN, and detections in the
evaluation harness are all oriented boxes: ``(cx, cy, cz)`` centre,
``(length, width, height)`` size and a yaw about the z-axis.  ``length``
runs along the heading direction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.geometry.rotations import normalize_angle, yaw_matrix_2d
from repro.geometry.transforms import RigidTransform

__all__ = [
    "Box3D",
    "box_corners_bev",
    "box_corners_3d",
    "points_in_box",
    "iou_bev",
    "iou_bev_from_corners",
    "iou_3d",
    "pairwise_iou_bev",
]


@dataclass(frozen=True)
class Box3D:
    """An oriented 3D box: centre, size (length/width/height) and yaw.

    The centre is the geometric centre of the box (not the bottom face).
    ``yaw = 0`` points the length axis along +x.
    """

    center: np.ndarray
    length: float
    width: float
    height: float
    yaw: float = 0.0

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=float).reshape(3)
        if min(self.length, self.width, self.height) <= 0:
            raise ValueError("box dimensions must be positive")
        object.__setattr__(self, "center", center)
        object.__setattr__(self, "length", float(self.length))
        object.__setattr__(self, "width", float(self.width))
        object.__setattr__(self, "height", float(self.height))
        object.__setattr__(self, "yaw", normalize_angle(float(self.yaw)))

    @property
    def volume(self) -> float:
        """Box volume in cubic metres."""
        return self.length * self.width * self.height

    @property
    def bottom_z(self) -> float:
        """z coordinate of the bottom face."""
        return float(self.center[2] - self.height / 2.0)

    @property
    def top_z(self) -> float:
        """z coordinate of the top face."""
        return float(self.center[2] + self.height / 2.0)

    def transformed(self, transform: RigidTransform) -> "Box3D":
        """Apply a rigid transform.

        Only yaw-preserving transforms keep the box axis-aligned in z; for
        the planar motions used throughout the paper (vehicles on roads)
        this is exact.  The new yaw adds the transform's in-plane rotation.
        """
        new_center = transform.apply(self.center)
        heading = transform.apply_vector(
            np.array([np.cos(self.yaw), np.sin(self.yaw), 0.0])
        )
        new_yaw = float(np.arctan2(heading[1], heading[0]))
        return replace(self, center=new_center, yaw=new_yaw)

    def translated(self, delta: np.ndarray) -> "Box3D":
        """Return a copy shifted by ``delta``."""
        return replace(self, center=self.center + np.asarray(delta, dtype=float))

    def expanded(self, margin: float) -> "Box3D":
        """Return a copy grown by ``margin`` metres on every side."""
        return replace(
            self,
            length=self.length + 2 * margin,
            width=self.width + 2 * margin,
            height=self.height + 2 * margin,
        )

    def as_vector(self) -> np.ndarray:
        """Return ``[cx, cy, cz, l, w, h, yaw]`` (the RPN regression target)."""
        return np.array(
            [*self.center, self.length, self.width, self.height, self.yaw]
        )

    @staticmethod
    def from_vector(vector: np.ndarray) -> "Box3D":
        """Inverse of :meth:`as_vector`."""
        vector = np.asarray(vector, dtype=float).reshape(7)
        return Box3D(vector[:3], vector[3], vector[4], vector[5], vector[6])


def box_corners_bev(box: Box3D) -> np.ndarray:
    """Return the four BEV (x, y) corners, counter-clockwise."""
    half = np.array(
        [
            [box.length / 2, box.width / 2],
            [-box.length / 2, box.width / 2],
            [-box.length / 2, -box.width / 2],
            [box.length / 2, -box.width / 2],
        ]
    )
    return half @ yaw_matrix_2d(box.yaw).T + box.center[:2]


def box_corners_3d(box: Box3D) -> np.ndarray:
    """Return the eight 3D corners, bottom face first (matching BEV order)."""
    bev = box_corners_bev(box)
    bottom = np.column_stack([bev, np.full(4, box.bottom_z)])
    top = np.column_stack([bev, np.full(4, box.top_z)])
    return np.vstack([bottom, top])


def points_in_box(points: np.ndarray, box: Box3D, margin: float = 0.0) -> np.ndarray:
    """Return a boolean mask of the points inside the (optionally grown) box."""
    points = np.asarray(points, dtype=float)
    if points.size == 0:
        return np.zeros(0, dtype=bool)
    pts = points[:, :3] - box.center
    rot = yaw_matrix_2d(-box.yaw)
    xy = pts[:, :2] @ rot.T
    half_l = box.length / 2 + margin
    half_w = box.width / 2 + margin
    half_h = box.height / 2 + margin
    return (
        (np.abs(xy[:, 0]) <= half_l)
        & (np.abs(xy[:, 1]) <= half_w)
        & (np.abs(pts[:, 2]) <= half_h)
    )


def _polygon_area(poly: np.ndarray) -> float:
    """Shoelace area of a simple polygon given as an (N, 2) vertex array."""
    if len(poly) < 3:
        return 0.0
    x, y = poly[:, 0], poly[:, 1]
    return 0.5 * abs(float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))))


def _clip_polygon(subject: np.ndarray, clip: np.ndarray) -> np.ndarray:
    """Sutherland-Hodgman clipping of ``subject`` by convex ``clip`` polygon.

    Both polygons must be counter-clockwise.  Returns the (possibly empty)
    intersection polygon.
    """
    output = list(subject)
    n = len(clip)
    for i in range(n):
        a = clip[i]
        b = clip[(i + 1) % n]
        edge = b - a
        input_list = output
        output = []
        if not input_list:
            break
        for j, current in enumerate(input_list):
            previous = input_list[j - 1]
            current_inside = edge[0] * (current[1] - a[1]) - edge[1] * (current[0] - a[0]) >= 0
            previous_inside = edge[0] * (previous[1] - a[1]) - edge[1] * (previous[0] - a[0]) >= 0
            if current_inside:
                if not previous_inside:
                    output.append(_line_intersection(previous, current, a, b))
                output.append(current)
            elif previous_inside:
                output.append(_line_intersection(previous, current, a, b))
    return np.array(output) if output else np.zeros((0, 2))


def _line_intersection(p1: np.ndarray, p2: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection point of segment p1-p2 with the infinite line a-b."""
    d1 = p2 - p1
    d2 = b - a
    denom = d1[0] * d2[1] - d1[1] * d2[0]
    if abs(denom) < 1e-12:
        return p2
    t = ((a[0] - p1[0]) * d2[1] - (a[1] - p1[1]) * d2[0]) / denom
    return p1 + t * d1


def _bev_intersection_area(box_a: Box3D, box_b: Box3D) -> float:
    corners_a = box_corners_bev(box_a)
    corners_b = box_corners_bev(box_b)
    return _polygon_area(_clip_polygon(corners_a, corners_b))


def iou_bev_from_corners(
    corners_a: np.ndarray,
    area_a: float,
    corners_b: np.ndarray,
    area_b: float,
) -> float:
    """BEV IoU from precomputed corner polygons and areas.

    Callers that evaluate many pairs over the same boxes (NMS, matching)
    compute corners and areas once and reuse them here instead of paying
    :func:`box_corners_bev` per pair.
    """
    inter = _polygon_area(_clip_polygon(corners_a, corners_b))
    union = area_a + area_b - inter
    return inter / union if union > 0 else 0.0


def iou_bev(box_a: Box3D, box_b: Box3D) -> float:
    """Bird's-eye-view IoU of two oriented boxes."""
    return iou_bev_from_corners(
        box_corners_bev(box_a),
        box_a.length * box_a.width,
        box_corners_bev(box_b),
        box_b.length * box_b.width,
    )


def iou_3d(box_a: Box3D, box_b: Box3D) -> float:
    """3D IoU: BEV intersection times vertical overlap over the union."""
    inter_bev = _bev_intersection_area(box_a, box_b)
    z_overlap = max(
        0.0, min(box_a.top_z, box_b.top_z) - max(box_a.bottom_z, box_b.bottom_z)
    )
    inter = inter_bev * z_overlap
    union = box_a.volume + box_b.volume - inter
    return inter / union if union > 0 else 0.0


def pairwise_iou_bev(boxes_a: list[Box3D], boxes_b: list[Box3D]) -> np.ndarray:
    """Return the |A| x |B| matrix of BEV IoUs.

    Uses a cheap circumscribed-radius rejection test before the exact
    polygon clip, which matters when matching hundreds of anchors.
    """
    result = np.zeros((len(boxes_a), len(boxes_b)))
    if not boxes_a or not boxes_b:
        return result
    centers_a = np.array([b.center[:2] for b in boxes_a])
    centers_b = np.array([b.center[:2] for b in boxes_b])
    radii_a = np.array([np.hypot(b.length, b.width) / 2 for b in boxes_a])
    radii_b = np.array([np.hypot(b.length, b.width) / 2 for b in boxes_b])
    dist = np.linalg.norm(centers_a[:, None, :] - centers_b[None, :, :], axis=-1)
    candidates = dist <= radii_a[:, None] + radii_b[None, :]
    for i, j in zip(*np.nonzero(candidates)):
        result[i, j] = iou_bev(boxes_a[i], boxes_b[j])
    return result
