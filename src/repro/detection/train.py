"""End-to-end trainer for SPOD's learned heads.

Implements the SECOND-style loop on top of the numpy substrate: forward
through VFE -> sparse middle -> RPN, focal loss on the anchor
classification map, smooth-L1 on positive-anchor regression residuals, and
backpropagation through the whole stack.  Intended for miniature synthetic
problems (the analytic weights serve production inference); the test suite
trains a small detector to convergence with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.nn.losses import sigmoid_focal_loss, smooth_l1_loss
from repro.detection.nn.optim import Adam
from repro.detection.spod import SPOD
from repro.detection.targets import assign_targets
from repro.geometry.boxes import Box3D
from repro.pointcloud.cloud import PointCloud

__all__ = ["TrainStep", "SpodTrainer"]


@dataclass
class TrainStep:
    """Metrics of one optimisation step."""

    cls_loss: float
    reg_loss: float
    num_positive: int

    @property
    def total_loss(self) -> float:
        """Combined objective value."""
        return self.cls_loss + self.reg_loss


@dataclass
class SpodTrainer:
    """Trains a :class:`SPOD` instance's network on (cloud, boxes) pairs.

    Attributes:
        detector: the SPOD whose weights are optimised (use
            ``use_learned_heads=True`` at inference afterwards).
        lr: Adam learning rate.
        reg_weight: weight of the box-regression term.
    """

    detector: SPOD
    lr: float = 1e-3
    reg_weight: float = 2.0
    _optimizer: Adam = field(init=False, repr=False)

    def __post_init__(self) -> None:
        parameters = list(self.detector.vfe.parameters())
        parameters += list(self.detector.middle.parameters())
        parameters += list(self.detector.rpn.parameters())
        self._optimizer = Adam(parameters, lr=self.lr)

    def step(self, cloud: PointCloud, gt_boxes: list[Box3D]) -> TrainStep:
        """One forward/backward/update pass on a single frame."""
        detector = self.detector
        tensors = detector.forward(cloud)
        cls_logits = tensors["cls_logits"]  # (1, A, H, W)
        reg = tensors["reg"]  # (1, 7A, H, W)
        _, num_yaws, h, w = cls_logits.shape

        targets = assign_targets(detector.anchors, gt_boxes)
        # Anchor order is cell-major then yaw: reshape to (H, W, A).
        cls_map = targets.cls_targets.reshape(h, w, num_yaws).transpose(2, 0, 1)
        reg_map = targets.reg_targets.reshape(h, w, num_yaws, 7)

        valid = cls_map >= 0
        cls_loss, grad_flat = sigmoid_focal_loss(
            cls_logits[0][valid], cls_map[valid]
        )
        grad_cls = np.zeros_like(cls_logits)
        grad_cls[0][valid] = grad_flat

        grad_reg = np.zeros_like(reg)
        reg_loss = 0.0
        positive = cls_map == 1
        if positive.any():
            pred = reg[0].reshape(num_yaws, 7, h, w)
            reg_loss_total = 0.0
            grad_pred = np.zeros_like(pred)
            for a in range(num_yaws):
                mask = positive[a]
                if not mask.any():
                    continue
                prediction = pred[a][:, mask].T  # (n, 7)
                target = reg_map[:, :, a, :][mask]
                loss_a, grad_a = smooth_l1_loss(prediction, target)
                reg_loss_total += loss_a
                grad_pred[a][:, mask] = grad_a.T
            reg_loss = self.reg_weight * reg_loss_total
            grad_reg = (
                self.reg_weight * grad_pred.reshape(1, num_yaws * 7, h, w)
            )

        self._optimizer.zero_grad()
        grad_bev = self.detector.rpn.backward(grad_cls, grad_reg)
        grad_sparse = self.detector.middle.backward(grad_bev)
        self.detector.vfe.backward(grad_sparse)
        self._optimizer.step()
        return TrainStep(
            cls_loss=float(cls_loss),
            reg_loss=float(reg_loss),
            num_positive=targets.num_positive,
        )

    def fit(
        self,
        frames: list[tuple[PointCloud, list[Box3D]]],
        epochs: int = 5,
        shuffle_seed: int = 0,
    ) -> list[TrainStep]:
        """Run several epochs over a list of frames; returns all step logs."""
        rng = np.random.default_rng(shuffle_seed)
        history: list[TrainStep] = []
        order = np.arange(len(frames))
        for _ in range(epochs):
            rng.shuffle(order)
            for index in order:
                cloud, boxes = frames[index]
                history.append(self.step(cloud, boxes))
        return history
