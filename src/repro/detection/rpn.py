"""SSD-style Region Proposal Network over the BEV feature map.

Two 3x3 conv blocks followed by 1x1 classification and regression heads,
one anchor per BEV cell per orientation — the single-shot architecture the
paper assembles from [21]/[16].  ``analytic_init`` wires the convolutions
to compute *car-band density* (mean occupancy of the z bins cars occupy
over a 3x3 neighbourhood) and a *tall-structure* channel (occupancy of the
top z bin), and the classification head to score
``density - tall_penalty * tall - bias`` — a training-free objectness that
is high exactly where car-sized point mass exists and suppressed along
walls, trees and trucks.
"""

from __future__ import annotations

import numpy as np

from repro.detection.nn.layers import Conv2d, ReLU
from repro.detection.nn.module import Module

__all__ = ["RegionProposalNetwork"]


class RegionProposalNetwork(Module):
    """RPN: ``conv3x3 -> ReLU -> conv3x3 -> ReLU -> {cls 1x1, reg 1x1}``.

    Input: ``(1, in_channels, H, W)`` BEV features.  Outputs:
    ``cls_logits (1, num_yaws, H, W)`` and ``reg (1, 7 * num_yaws, H, W)``.
    """

    def __init__(
        self,
        in_channels: int,
        hidden_channels: int = 8,
        num_yaws: int = 2,
        seed: int = 0,
    ) -> None:
        self.conv1 = Conv2d(in_channels, hidden_channels, 3, 1, 1, seed=seed)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(hidden_channels, hidden_channels, 3, 1, 1, seed=seed + 1)
        self.relu2 = ReLU()
        self.cls_head = Conv2d(hidden_channels, num_yaws, 1, 1, 0, seed=seed + 2)
        self.reg_head = Conv2d(hidden_channels, 7 * num_yaws, 1, 1, 0, seed=seed + 3)
        self.num_yaws = num_yaws
        self.hidden_channels = hidden_channels

    def forward(self, bev: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        trunk = self.relu2(self.conv2(self.relu1(self.conv1(bev))))
        self._trunk = trunk
        return self.cls_head(trunk), self.reg_head(trunk)

    def used_input_channels(self) -> np.ndarray:
        """Boolean mask of BEV input channels ``conv1`` actually reads.

        Derived from the live weights on every call, so it self-invalidates
        when the network is (re)trained.  With the analytic weights only
        the occupancy channel's car-band and tall z bins are live (4 of
        ``in_channels``), which lets the BEV densification skip most of its
        scatter at inference time.
        """
        return np.any(self.conv1.weight.value, axis=(0, 2, 3))

    def backward(
        self, grad_cls: np.ndarray, grad_reg: np.ndarray | None = None
    ) -> np.ndarray:
        grad_trunk = self.cls_head.backward(grad_cls)
        if grad_reg is not None:
            grad_trunk = grad_trunk + self.reg_head.backward(grad_reg)
        grad = self.relu2.backward(grad_trunk)
        grad = self.conv2.backward(grad)
        grad = self.relu1.backward(grad)
        return self.conv1.backward(grad)

    def analytic_init(
        self,
        nz: int,
        car_bins: tuple[int, ...] = (1, 2, 3),
        tall_bin: int = 4,
        density_weight: float = 1.0,
        tall_weight: float = 4.0,
        bias: float = -0.2,
    ) -> None:
        """Install the training-free objectness weights.

        Assumes the BEV channel layout produced by
        :class:`~repro.detection.nn.sparse.SparseToDense` over analytic VFE
        features: channel ``c * nz + z`` holds VFE channel ``c`` at height
        bin ``z``; channel 0 of the VFE is occupancy.
        """
        if self.hidden_channels < 2:
            raise ValueError("analytic RPN needs at least 2 hidden channels")
        if tall_bin >= nz or any(b >= nz for b in car_bins):
            raise ValueError("bin index outside the z extent")
        # conv1: hidden ch0 = 3x3 mean of car-band occupancy,
        #        hidden ch1 = 3x3 mean of top-bin occupancy.
        self.conv1.weight.value[...] = 0.0
        self.conv1.bias.value[...] = 0.0
        for z in car_bins:
            self.conv1.weight.value[0, z, :, :] = 1.0 / 9.0
        self.conv1.weight.value[1, tall_bin, :, :] = 1.0 / 9.0
        # conv2: identity centre tap.
        self.conv2.weight.value[...] = 0.0
        self.conv2.bias.value[...] = 0.0
        for c in range(self.hidden_channels):
            self.conv2.weight.value[c, c, 1, 1] = 1.0
        # cls head: density - penalty * tall + bias, shared by every yaw.
        self.cls_head.weight.value[...] = 0.0
        self.cls_head.bias.value[...] = bias
        for a in range(self.num_yaws):
            self.cls_head.weight.value[a, 0, 0, 0] = density_weight
            self.cls_head.weight.value[a, 1, 0, 0] = -tall_weight
        # reg head: zero residuals (the analytic path refines from points).
        self.reg_head.weight.value[...] = 0.0
        self.reg_head.bias.value[...] = 0.0
