"""Point-evidence confidence calibration.

The paper's detection scores (Figs. 3, 6) track how much LiDAR evidence an
object has: dense, multi-view objects score high; objects with "scarcity or
blockage of point clouds" fall below the reporting threshold and show as X.
The calibrator makes that relationship explicit: the final confidence is a
logistic function of

* the log point count inside the candidate box (evidence quantity),
* the angular coverage of those points around the box centre — which is
  exactly what a second viewpoint improves,
* a penalty for returns *above car height* over the footprint (walls,
  trees and trucks carry mass where no car has any), and
* a penalty for structure that continues contiguously past a car's length
  in any direction (walls and trucks are long and unbroken; rows of parked
  cars are broken by the gaps between vehicles and survive).

The score is deliberately *monotone in evidence*, which is why Cooper's
merged clouds raise it: merging adds points (count term) and new viewing
angles (coverage term).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.boxes import Box3D

__all__ = ["ConfidenceCalibrator", "CalibratorWeights", "BoxEvidence"]

#: No real car carries LiDAR mass this far above the ground.
CAR_MAX_HEIGHT = 2.0

#: Grid cell size for structural clustering.  With 8-connected labelling,
#: sub-cell gaps merge (one physical object) while the >1 m spaces between
#: parked cars stay separate.
CLUSTER_CELL = 0.35


@dataclass(frozen=True)
class CalibratorWeights:
    """Logistic-model weights mapping evidence to confidence.

    Defaults are calibrated so that typical single-shot scores land in the
    paper's reported 0.5-0.9 band, objects with under ~40 supporting points
    fall below the 0.5 reporting threshold, and doubling the evidence (one
    extra viewpoint) raises the score by roughly 10%.
    """

    count_weight: float = 0.6
    coverage_weight: float = 1.2
    tall_penalty: float = 1.0
    overrun_penalty: float = 1.2
    bias: float = 2.5
    count_cap: int = 500
    coverage_bins: int = 8
    neighborhood_radius: float = 5.0

    def __post_init__(self) -> None:
        if self.coverage_bins < 1:
            raise ValueError("coverage_bins must be positive")
        if self.neighborhood_radius <= 0:
            raise ValueError("neighborhood_radius must be positive")


@dataclass
class BoxEvidence:
    """The raw evidence features for one candidate box.

    Attributes:
        num_points: obstacle points inside the box.
        coverage: fraction of azimuth bins (around the box centre) occupied.
        tall_count: footprint-column points above car height.
        length_overrun: metres by which the contiguous structure through
            the box exceeds a car's bounding-diagonal extent.
    """

    num_points: int
    coverage: float
    tall_count: int
    length_overrun: float = 0.0


class ConfidenceCalibrator:
    """Scores candidate boxes from the obstacle cloud around them."""

    def __init__(
        self,
        obstacle_xyz: np.ndarray,
        ground_z: float,
        weights: CalibratorWeights | None = None,
    ) -> None:
        self.points = np.asarray(obstacle_xyz, dtype=float).reshape(-1, 3)
        self.ground_z = float(ground_z)
        self.weights = weights or CalibratorWeights()
        self._tree = cKDTree(self.points[:, :2]) if len(self.points) else None
        self._cluster_ids, self._cluster_extents, self._cluster_minors = (
            _label_clusters(self.points[:, :2])
        )

    def evidence(self, box: Box3D) -> BoxEvidence:
        """Measure the point evidence supporting ``box``."""
        if self._tree is None:
            return BoxEvidence(0, 0.0, 0, 0.0)
        w = self.weights
        neighbor_indices = np.asarray(
            self._tree.query_ball_point(box.center[:2], w.neighborhood_radius),
            dtype=int,
        )
        neighborhood = self.points[neighbor_indices]
        if len(neighborhood) == 0:
            return BoxEvidence(0, 0.0, 0, 0.0)

        # The box test and the column test (same footprint extruded in z,
        # catching wall points above the box) share the yaw rotation and
        # the xy bounds; compute them once instead of two points_in_box
        # passes over per-call padded copies.
        rel = neighborhood[:, :2] - box.center[:2]
        cos_y, sin_y = np.cos(-box.yaw), np.sin(-box.yaw)
        u = rel[:, 0] * cos_y - rel[:, 1] * sin_y
        v = rel[:, 0] * sin_y + rel[:, 1] * cos_y
        in_footprint = (np.abs(u) <= box.length / 2 + 0.1) & (
            np.abs(v) <= box.width / 2 + 0.1
        )
        dz = neighborhood[:, 2] - box.center[2]
        in_column = in_footprint & (
            np.abs(dz - 2.0) <= (box.height + 6.0) / 2 + 0.1
        )
        tall_count = int(
            (neighborhood[in_column, 2] > self.ground_z + CAR_MAX_HEIGHT).sum()
        )
        inside = in_footprint & (np.abs(dz) <= box.height / 2 + 0.1)
        box_points = neighborhood[inside]
        if len(box_points) == 0:
            return BoxEvidence(0, 0.0, tall_count, 0.0)

        overrun = self._contiguous_overrun(box, neighbor_indices[inside])
        rel = box_points[:, :2] - box.center[:2]
        azimuth = np.arctan2(rel[:, 1], rel[:, 0])
        bins = ((azimuth + np.pi) / (2 * np.pi) * w.coverage_bins).astype(int)
        bins = np.clip(bins, 0, w.coverage_bins - 1)
        occupied = np.count_nonzero(np.bincount(bins, minlength=w.coverage_bins))
        coverage = occupied / w.coverage_bins
        return BoxEvidence(
            int(len(box_points)), float(coverage), tall_count, overrun
        )

    def _contiguous_overrun(
        self, box: Box3D, box_point_indices: np.ndarray
    ) -> float:
        """Extent of the contiguous structure through the box, over car size.

        Points were clustered once at construction time (grid-based
        connected components, true 2D — a truck parked a metre away stays a
        *separate* object).  Walls, building corners and trucks form
        clusters far longer than any car; a car bounded by air (or by the
        gaps between parked vehicles) does not.
        """
        if len(box_point_indices) == 0:
            return 0.0
        clusters = np.unique(self._cluster_ids[box_point_indices])
        # Only *thin* structure counts against a car hypothesis: building
        # walls are long and under ~1 m deep, while a row of parked cars —
        # which can fuse into one long cluster once two viewpoints fill in
        # the gaps — is several metres deep and must not be penalised.
        thin = clusters[self._cluster_minors[clusters] < 1.0]
        if len(thin) == 0:
            return 0.0
        extent = float(self._cluster_extents[thin].max())
        car_limit = float(np.hypot(box.length, box.width)) + 0.6
        return max(0.0, extent - car_limit)

    def score(self, box: Box3D, object_class=None) -> float:
        """Confidence in [0, 1] for ``box`` (optionally class-aware)."""
        return self.score_from_evidence(self.evidence(box), object_class)

    def score_from_evidence(self, ev: BoxEvidence, object_class=None) -> float:
        """Apply the logistic model to measured evidence.

        ``object_class`` (a :class:`repro.detection.classes.ObjectClass`)
        shifts the bias and the evidence cap: a pedestrian is fully
        confirmed by far fewer points than a car.
        """
        w = self.weights
        bias = w.bias
        count_cap = w.count_cap
        if object_class is not None:
            bias += object_class.bias_offset
            count_cap = min(count_cap, object_class.count_cap)
        # Evidence saturates: past ~count_cap points an object is as
        # confirmed as it gets, keeping scores inside the paper's band.
        logit = (
            w.count_weight * np.log1p(min(ev.num_points, count_cap))
            + w.coverage_weight * ev.coverage
            - w.tall_penalty * np.log1p(ev.tall_count)
            - w.overrun_penalty * ev.length_overrun
            - bias
        )
        return float(1.0 / (1.0 + np.exp(-np.clip(logit, -60, 60))))



def _label_clusters(
    xy: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cluster BEV points by grid connected components.

    Returns per-point cluster ids plus, per cluster, the extent along the
    principal axis (how *long* the structure is) and along the secondary
    axis (how *deep* it is — thin means wall-like).
    """
    from scipy import ndimage

    if len(xy) == 0:
        return np.zeros(0, dtype=int), np.zeros(1), np.zeros(1)
    origin = xy.min(axis=0)
    cells = np.floor((xy - origin) / CLUSTER_CELL).astype(int)
    shape = cells.max(axis=0) + 1
    occupancy = np.zeros(shape + 1, dtype=bool)
    occupancy[cells[:, 0], cells[:, 1]] = True
    labels, _count = ndimage.label(occupancy, structure=np.ones((3, 3), dtype=int))
    point_labels = labels[cells[:, 0], cells[:, 1]]
    num = int(point_labels.max()) + 1
    # All clusters at once: per-cluster 2x2 covariances from label-indexed
    # sums, principal axes in closed form (a 2x2 symmetric eigenproblem is
    # a single rotation angle), spans via per-label extrema.  Replaces a
    # per-cluster Python loop over np.linalg.eigh that ran twice per
    # detect (refiner + calibrator) and dominated decode profiles.
    counts = np.bincount(point_labels, minlength=num)
    safe = np.maximum(counts, 1)
    mean_x = np.bincount(point_labels, weights=xy[:, 0], minlength=num) / safe
    mean_y = np.bincount(point_labels, weights=xy[:, 1], minlength=num) / safe
    cx = xy[:, 0] - mean_x[point_labels]
    cy = xy[:, 1] - mean_y[point_labels]
    a = np.bincount(point_labels, weights=cx * cx, minlength=num) / safe
    b = np.bincount(point_labels, weights=cx * cy, minlength=num) / safe
    c = np.bincount(point_labels, weights=cy * cy, minlength=num) / safe
    # Angle of the larger-eigenvalue axis; the eigh convention this
    # replaces ordered eigenvalues ascending, so axis 0 (minor) is the
    # perpendicular and axis 1 (major) is this direction.
    theta = 0.5 * np.arctan2(2.0 * b, a - c)
    ux, uy = np.cos(theta), np.sin(theta)
    proj_major = cx * ux[point_labels] + cy * uy[point_labels]
    proj_minor = cy * ux[point_labels] - cx * uy[point_labels]
    majors = np.zeros(num)
    minors = np.zeros(num)
    multi = counts >= 2
    if multi.any():
        hi = np.full(num, -np.inf)
        lo = np.full(num, np.inf)
        np.maximum.at(hi, point_labels, proj_major)
        np.minimum.at(lo, point_labels, proj_major)
        majors[multi] = (hi - lo)[multi]
        hi.fill(-np.inf)
        lo.fill(np.inf)
        np.maximum.at(hi, point_labels, proj_minor)
        np.minimum.at(lo, point_labels, proj_minor)
        minors[multi] = (hi - lo)[multi]
    return point_labels, majors, minors
