"""Sparse convolutional middle layers (paper's "Sparse CNN" component).

Voxel features flow through submanifold sparse 3D convolutions — the [15]
machinery the paper adopts because "output points are not computed if there
is no related input point" — and the result is scattered to a dense BEV map
whose channels stack the z bins, ready for the 2D RPN.

``analytic_init`` wires the convolutions as identity taps so the BEV map
carries the VFE's physically-meaningful channels per z bin.
"""

from __future__ import annotations

import numpy as np

from repro.detection.nn.module import Module
from repro.detection.nn.sparse import SparseTensor3d, SparseToDense, SubmanifoldConv3d

__all__ = ["SparseMiddleExtractor"]


class _SparseReLU(Module):
    """ReLU over a sparse tensor's features."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, tensor: SparseTensor3d) -> SparseTensor3d:
        self._mask = tensor.features > 0
        return SparseTensor3d(
            tensor.coords,
            np.where(self._mask, tensor.features, 0.0),
            tensor.grid_shape,
        )

    def backward(self, grad_output: SparseTensor3d) -> SparseTensor3d:
        return SparseTensor3d(
            grad_output.coords,
            np.where(self._mask, grad_output.features, 0.0),
            grad_output.grid_shape,
        )


class SparseMiddleExtractor(Module):
    """Two submanifold conv blocks followed by BEV densification.

    Input: a :class:`SparseTensor3d` from the VFE with ``in_channels``
    features.  Output: a dense ``(1, out_channels * nz, nx, ny)`` array.
    """

    def __init__(
        self, in_channels: int = 8, mid_channels: int = 8, out_channels: int = 8,
        seed: int = 0,
    ) -> None:
        self.conv1 = SubmanifoldConv3d(in_channels, mid_channels, seed=seed)
        self.relu1 = _SparseReLU()
        self.conv2 = SubmanifoldConv3d(mid_channels, out_channels, seed=seed + 1)
        self.relu2 = _SparseReLU()
        self.to_dense = SparseToDense()
        self.in_channels = in_channels
        self.out_channels = out_channels

    def forward_sparse(
        self, tensor: SparseTensor3d, temporal=None
    ) -> SparseTensor3d:
        """The convolutional block alone: sparse in, sparse out.

        This is the feature tap the fusion layer consumes: the per-voxel
        features *before* densification, which is what a cooperator
        actually needs to ship (active voxels only) and what F-Cooper
        style maxout fusion combines across vehicles.  Both convolutions
        are stride-1 submanifold: the active set is invariant through the
        block, so one rulebook (memoised across frames by RULEBOOK_CACHE,
        and patched from the previous frame's when temporal state is
        supplied) serves them both.
        """
        rulebook = self.conv1.build_rulebook(tensor, temporal=temporal)
        x = self.relu1(self.conv1(tensor, rulebook=rulebook))
        return self.relu2(self.conv2(x, rulebook=rulebook))

    def forward(
        self,
        tensor: SparseTensor3d,
        channel_mask: np.ndarray | None = None,
        temporal=None,
    ) -> np.ndarray:
        x = self.forward_sparse(tensor, temporal=temporal)
        return self.to_dense(x, channel_mask=channel_mask)

    def backward(self, grad_output: np.ndarray) -> SparseTensor3d:
        grad = self.to_dense.backward(grad_output)
        grad = self.relu2.backward(grad)
        grad = self.conv2.backward(grad)
        grad = self.relu1.backward(grad)
        return self.conv1.backward(grad)

    def analytic_init(self) -> None:
        """Make both convolutions identity centre-taps.

        The BEV map then contains, for every z bin, exactly the VFE's
        channels (occupancy, max height, max reflectance, count) — the
        evidence the analytic RPN head consumes.
        """
        if self.conv1.weight.shape[1] != self.conv1.weight.shape[2]:
            raise ValueError("analytic middle requires equal channel counts")
        for conv in (self.conv1, self.conv2):
            k3 = conv.weight.shape[0]
            center = k3 // 2
            conv.weight.value[...] = 0.0
            channels = conv.weight.shape[1]
            conv.weight.value[center] = np.eye(channels)
            conv.bias.value[...] = 0.0
