"""SPOD preprocessing: range crop, ground estimation/removal, densification.

The paper projects clouds onto a sphere (the [27] representation) "to
obtain a more compact representation" before voxelisation.  We expose that
projection as an optional densification step and always perform the two
steps every LiDAR detector needs: cropping to the detection range and
separating ground returns from obstacle returns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pointcloud.cloud import PointCloud
from repro.pointcloud.spherical import spherical_project

__all__ = ["PreprocessResult", "estimate_ground_z", "remove_ground", "preprocess"]


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`.

    Attributes:
        obstacles: the non-ground points fed to the voxeliser.
        ground_z: the estimated ground height (sensor frame), needed later
            by the confidence calibrator to measure height above ground.
        full: the cropped cloud before ground removal.
    """

    obstacles: PointCloud
    ground_z: float
    full: PointCloud


def estimate_ground_z(cloud: PointCloud, percentile: float = 5.0) -> float:
    """Estimate the ground-plane height as a low percentile of point z.

    With the sensor mounted ~1.7 m above a flat road the ground dominates
    the low-z tail, so a low percentile is a robust estimator even when
    the cloud merges scans from two vehicles with slightly different GPS
    altitudes.
    """
    if cloud.is_empty():
        return 0.0
    return float(np.percentile(cloud.xyz[:, 2], percentile))


def remove_ground(
    cloud: PointCloud, ground_z: float | None = None, clearance: float = 0.25
) -> tuple[PointCloud, float]:
    """Drop points within ``clearance`` of the (estimated) ground plane."""
    if ground_z is None:
        ground_z = estimate_ground_z(cloud)
    keep = cloud.xyz[:, 2] > ground_z + clearance
    return cloud.select(keep), ground_z


def preprocess(
    cloud: PointCloud,
    max_range: float = 100.0,
    ground_clearance: float = 0.25,
    densify: bool = False,
    densify_shape: tuple[int, int] = (64, 1024),
) -> PreprocessResult:
    """Run SPOD's preprocessing stage.

    When ``densify`` is set, the cloud is round-tripped through the
    spherical projection of [27]: points collapse onto a regular (beam,
    azimuth) grid, deduplicating returns and normalising clouds from
    different beam counts onto one representation.
    """
    r = cloud.ranges
    cropped = cloud.select(r <= max_range)
    if densify and not cropped.is_empty():
        projection = spherical_project(
            cropped, height=densify_shape[0], width=densify_shape[1]
        )
        cropped = projection.to_cloud(frame_id=cloud.frame_id)
    obstacles, ground_z = remove_ground(cropped, clearance=ground_clearance)
    return PreprocessResult(obstacles=obstacles, ground_z=ground_z, full=cropped)
