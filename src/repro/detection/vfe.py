"""Voxel Feature Encoding (VoxelNet-style), with an analytic weight mode.

Each non-empty voxel's points are augmented with their offsets from the
voxel centroid plus normalised height / count channels, passed through a
shared point-wise ``Linear -> ReLU`` and max-pooled over the voxel — the
VFE layer of VoxelNet the paper builds on.

``analytic_init`` installs weights under which the pooled features have a
fixed physical meaning (occupancy, normalised max height, max reflectance,
normalised count), which is what the analytic middle/RPN stages expect.
"""

from __future__ import annotations

import numpy as np

from repro.detection.nn.layers import Linear, ReLU
from repro.detection.nn.module import Module
from repro.detection.nn.sparse import SparseTensor3d
from repro.pointcloud.voxel import VoxelGrid

__all__ = ["VoxelFeatureEncoder", "AUGMENTED_FEATURES"]

#: Per-point input features: dx, dy, dz (offset from voxel centroid),
#: normalised absolute height, reflectance, normalised voxel count.
AUGMENTED_FEATURES = 6


class VoxelFeatureEncoder(Module):
    """Shared point-wise MLP + masked max-pool over each voxel.

    Attributes:
        out_channels: pooled feature dimensionality.
        z_range: (zmin, zmax) used to normalise absolute height.
    """

    def __init__(
        self,
        out_channels: int = 8,
        z_range: tuple[float, float] = (-3.0, 1.0),
        seed: int = 0,
    ) -> None:
        self.out_channels = out_channels
        self.z_range = z_range
        self.linear = Linear(AUGMENTED_FEATURES, out_channels, seed=seed)
        self.relu = ReLU()
        #: Compute dtype for the encoder and everything downstream of it
        #: (``None`` keeps the legacy float64 promotion).  The augmented
        #: features are cast once here; every later layer follows its
        #: input's dtype, so this is the single entry point of the
        #: detector's float32 kernel path.
        self.compute_dtype: np.dtype | None = None
        self._cache: tuple | None = None

    # -- feature augmentation ---------------------------------------------
    def augment(self, grid: VoxelGrid) -> tuple[np.ndarray, np.ndarray]:
        """Build the ``(V, T, AUGMENTED_FEATURES)`` input and validity mask."""
        points = grid.points  # (V, T, 4)
        counts = grid.counts
        v, t, _ = points.shape
        mask = np.arange(t)[None, :] < counts[:, None]
        if v == 0:
            return np.zeros((0, t, AUGMENTED_FEATURES)), mask

        safe_counts = np.maximum(counts, 1)[:, None, None]
        sums = (points[:, :, :3] * mask[:, :, None]).sum(axis=1, keepdims=True)
        centroid = sums / safe_counts
        offsets = (points[:, :, :3] - centroid) * mask[:, :, None]

        zmin, zmax = self.z_range
        z_norm = np.clip((points[:, :, 2] - zmin) / (zmax - zmin), 0.0, 1.0)
        count_norm = np.broadcast_to(
            (counts / points.shape[1])[:, None], (v, t)
        )
        features = np.concatenate(
            [
                offsets,
                z_norm[:, :, None],
                points[:, :, 3:4],
                count_norm[:, :, None],
            ],
            axis=-1,
        )
        features = features * mask[:, :, None]
        if self.compute_dtype is not None and features.dtype != self.compute_dtype:
            features = features.astype(self.compute_dtype)
        return features, mask

    # -- forward / backward -------------------------------------------------
    def forward(self, grid: VoxelGrid) -> SparseTensor3d:
        features, mask = self.augment(grid)
        v, t, _ = features.shape
        if v == 0:
            self._cache = (0, t, np.zeros((0, self.out_channels), dtype=int), mask)
            return SparseTensor3d(
                grid.coords,
                np.zeros(
                    (0, self.out_channels), dtype=self.compute_dtype or np.float64
                ),
                grid.spec.grid_shape,
            )
        hidden = self.relu(self.linear(features.reshape(v * t, -1))).reshape(
            v, t, self.out_channels
        )
        masked = np.where(mask[:, :, None], hidden, -np.inf)
        if v == 0:
            pooled = np.zeros((0, self.out_channels))
            argmax = np.zeros((0, self.out_channels), dtype=int)
        else:
            argmax = masked.argmax(axis=1)
            pooled = np.take_along_axis(masked, argmax[:, None, :], axis=1)[:, 0, :]
            pooled = np.where(np.isfinite(pooled), pooled, 0.0)
        self._cache = (v, t, argmax, mask)
        return SparseTensor3d(grid.coords, pooled, grid.spec.grid_shape)

    def backward(self, grad_output: SparseTensor3d | np.ndarray) -> np.ndarray:
        v, t, argmax, mask = self._cache
        grad_pooled = (
            grad_output.features
            if isinstance(grad_output, SparseTensor3d)
            else np.asarray(grad_output)
        )
        grad_hidden = np.zeros((v, t, self.out_channels))
        if v:
            np.put_along_axis(
                grad_hidden, argmax[:, None, :], grad_pooled[:, None, :], axis=1
            )
            # Voxels with zero valid points contributed nothing.
            grad_hidden *= mask[:, :, None]
        grad_flat = self.relu.backward(grad_hidden.reshape(v * t, -1))
        return self.linear.backward(grad_flat).reshape(v, t, AUGMENTED_FEATURES)

    # -- analytic weights ---------------------------------------------------
    def analytic_init(self) -> None:
        """Install weights making pooled channels physically meaningful.

        channel 0: occupancy (constant 1 for any non-empty voxel),
        channel 1: max normalised height of the voxel's points,
        channel 2: max reflectance,
        channel 3: normalised point count (count / max_points).
        Remaining channels are zeroed.
        """
        if self.out_channels < 4:
            raise ValueError("analytic VFE needs at least 4 output channels")
        w = np.zeros_like(self.linear.weight.value)
        b = np.zeros_like(self.linear.bias.value)
        b[0] = 1.0  # occupancy
        w[1, 3] = 1.0  # z_norm input
        w[2, 4] = 1.0  # reflectance input
        w[3, 5] = 1.0  # count_norm input
        self.linear.weight.value[...] = w
        self.linear.bias.value[...] = b
