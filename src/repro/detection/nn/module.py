"""Parameter and Module base classes for the numpy NN substrate.

Modules cache whatever their backward pass needs during forward; gradients
accumulate into :attr:`Parameter.grad` and are consumed by the optimisers
in :mod:`repro.detection.nn.optim`.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable array with an accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.value.shape

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.value.shape})"


class Module:
    """Base class: a callable with parameters and a backward pass.

    Subclasses implement ``forward`` (caching what backward needs on
    ``self``) and ``backward`` (returning the gradient with respect to the
    forward input and accumulating parameter gradients).
    """

    def forward(self, x):
        """Compute the layer output, caching whatever backward needs."""
        raise NotImplementedError

    def backward(self, grad_output):
        """Given dLoss/dOutput, accumulate parameter gradients and
        return dLoss/dInput."""
        raise NotImplementedError

    def __call__(self, x, **kwargs):
        return self.forward(x, **kwargs)

    def parameters(self) -> Iterator[Parameter]:
        """Yield this module's parameters, recursing into sub-modules."""
        seen: set[int] = set()
        for value in vars(self).values():
            yield from _parameters_of(value, seen)

    def zero_grad(self) -> None:
        """Reset every parameter gradient."""
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total count of scalar weights."""
        return sum(p.value.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name -> array snapshot of all parameters."""
        return {
            f"{i}:{p.name}": p.value.copy() for i, p in enumerate(self.parameters())
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict` (order-based)."""
        params = list(self.parameters())
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} entries, model has {len(params)}"
            )
        for (key, value), p in zip(sorted(state.items(), key=_state_key), params):
            if value.shape != p.value.shape:
                raise ValueError(
                    f"shape mismatch for {key}: {value.shape} vs {p.value.shape}"
                )
            p.value[...] = value


def _state_key(item: tuple[str, np.ndarray]) -> int:
    return int(item[0].split(":", 1)[0])


def _parameters_of(value, seen: set[int]) -> Iterator[Parameter]:
    if id(value) in seen:
        return
    if isinstance(value, Parameter):
        seen.add(id(value))
        yield value
    elif isinstance(value, Module):
        seen.add(id(value))
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _parameters_of(item, seen)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _parameters_of(item, seen)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x):
        for module in self.modules:
            x = module(x)
        return x

    def backward(self, grad_output):
        for module in reversed(self.modules):
            grad_output = module.backward(grad_output)
        return grad_output

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]

    def __len__(self) -> int:
        return len(self.modules)
