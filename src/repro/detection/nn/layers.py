"""Dense layers: Linear, activations, BatchNorm, Conv2d, MaxPool2d.

Conv2d accumulates one BLAS contraction per kernel tap over shifted slices
of the padded input — on CPU numpy this beats the classic im2col unfold,
whose gather copy dominated profiles of the RPN.  Shapes follow the
PyTorch convention ``(N, C, H, W)``.
"""

from __future__ import annotations

import numpy as np

from repro.detection.nn.module import Module, Parameter

__all__ = ["Linear", "ReLU", "Sigmoid", "BatchNorm1d", "Conv2d", "MaxPool2d"]


def _he_init(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` over the last axis."""

    def __init__(
        self, in_features: int, out_features: int, bias: bool = True, seed: int = 0
    ) -> None:
        rng = np.random.default_rng(seed)
        self.weight = Parameter(
            _he_init(rng, (out_features, in_features), in_features), "linear.weight"
        )
        self.bias = Parameter(np.zeros(out_features), "linear.bias") if bias else None
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        weight = self.weight.value
        if weight.dtype != x.dtype and np.issubdtype(x.dtype, np.floating):
            weight = weight.astype(x.dtype)
        out = x @ weight.T
        if self.bias is not None:
            out += self.bias.value
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._input
        flat_x = x.reshape(-1, x.shape[-1])
        flat_g = grad_output.reshape(-1, grad_output.shape[-1])
        self.weight.grad += flat_g.T @ flat_x
        if self.bias is not None:
            self.bias.grad += flat_g.sum(axis=0)
        return grad_output @ self.weight.value


class ReLU(Module):
    """Elementwise ``max(x, 0)``."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, 0.0)


class Sigmoid(Module):
    """Elementwise logistic function."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        s = self._output
        return grad_output * s * (1.0 - s)


class BatchNorm1d(Module):
    """Batch normalisation over the first axis of an ``(N, C)`` input."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        self.gamma = Parameter(np.ones(num_features), "bn.gamma")
        self.beta = Parameter(np.zeros(num_features), "bn.beta")
        self.eps = eps
        self.momentum = momentum
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self.training = True
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat, inv_std = self._cache
        n = grad_output.shape[0]
        self.gamma.grad += (grad_output * x_hat).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        g_hat = grad_output * self.gamma.value
        if not self.training or n <= 1:
            return g_hat * inv_std
        return (
            inv_std
            / n
            * (n * g_hat - g_hat.sum(axis=0) - x_hat * (g_hat * x_hat).sum(axis=0))
        )


class Conv2d(Module):
    """2D convolution via shifted-slice matmuls; I/O is ``(N, C, H, W)``.

    The forward pass accumulates one BLAS contraction per kernel tap over a
    strided slice of the padded input — ``k*k`` small matmuls instead of an
    im2col unfold, whose ``(N, C, k, k, H, W)`` gather copy dominated the
    RPN's runtime.  The backward pass mirrors the same taps."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        bias: bool = True,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            _he_init(rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in),
            "conv2d.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), "conv2d.bias") if bias else None
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self._cache: tuple | None = None

    def _tap_slices(self, i: int, j: int, out_h: int, out_w: int) -> tuple:
        s = self.stride
        return (
            slice(None),
            slice(None),
            slice(i, i + s * out_h, s),
            slice(j, j + s * out_w, s),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self.padding
        n, _, h, w = x.shape
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        weight = self.weight.value
        if weight.dtype != x.dtype and np.issubdtype(x.dtype, np.floating):
            weight = weight.astype(x.dtype)
        # Input channels whose weights are identically zero contribute
        # nothing to any tap; dropping them *before* padding is exact
        # (zero-padding commutes with channel selection) and, for the
        # analytic RPN (4 of 20 BEV channels live), shrinks both the pad
        # copy and the dominant matmul 5x.  Backward re-pads the full
        # input, so gradients cover every channel.
        used = np.any(weight, axis=(0, 2, 3))
        source = x
        if not used.all():
            weight = weight[:, used]
            source = np.ascontiguousarray(x[:, used])
        padded = np.pad(source, ((0, 0), (0, 0), (p, p), (p, p))) if p else source
        out = np.zeros((n, weight.shape[0], out_h, out_w), dtype=x.dtype)
        for i in range(k):
            for j in range(k):
                patch = padded[self._tap_slices(i, j, out_h, out_w)]
                # (o, c) x (n, c, h, w) -> (o, n, h, w)
                out += np.tensordot(
                    weight[:, :, i, j], patch, axes=([1], [1])
                ).transpose(1, 0, 2, 3)
        if self.bias is not None:
            out += self.bias.value[None, :, None, None]
        self._cache = (x,)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        (x,) = self._cache
        k, s, p = self.kernel_size, self.stride, self.padding
        padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p))) if p else x
        out_h, out_w = grad_output.shape[2], grad_output.shape[3]
        weight = self.weight.value
        grad_padded = np.zeros_like(padded)
        for i in range(k):
            for j in range(k):
                tap = self._tap_slices(i, j, out_h, out_w)
                # (n, o, h, w) x (n, c, h, w) -> (o, c)
                self.weight.grad[:, :, i, j] += np.tensordot(
                    grad_output, padded[tap], axes=([0, 2, 3], [0, 2, 3])
                )
                # (c, o) x (n, o, h, w) -> (c, n, h, w)
                grad_padded[tap] += np.tensordot(
                    weight[:, :, i, j], grad_output, axes=([0], [1])
                ).transpose(1, 0, 2, 3)
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2, 3))
        if p:
            return grad_padded[:, :, p:-p, p:-p]
        return grad_padded


class MaxPool2d(Module):
    """Max pooling with square windows; input ``(N, C, H, W)``."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None) -> None:
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        strides = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, k, k),
            strides=(
                strides[0],
                strides[1],
                strides[2] * s,
                strides[3] * s,
                strides[2],
                strides[3],
            ),
            writeable=False,
        )
        flat = windows.reshape(n, c, out_h, out_w, k * k)
        argmax = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
        self._cache = (x.shape, argmax, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_shape, argmax, out_h, out_w = self._cache
        n, c, h, w = x_shape
        k, s = self.kernel_size, self.stride
        grad_input = np.zeros(x_shape)
        rows = argmax // k
        cols = argmax % k
        oy, ox = np.meshgrid(np.arange(out_h), np.arange(out_w), indexing="ij")
        abs_rows = oy[None, None] * s + rows
        abs_cols = ox[None, None] * s + cols
        n_idx = np.arange(n)[:, None, None, None]
        c_idx = np.arange(c)[None, :, None, None]
        np.add.at(
            grad_input,
            (
                np.broadcast_to(n_idx, abs_rows.shape),
                np.broadcast_to(c_idx, abs_rows.shape),
                abs_rows,
                abs_cols,
            ),
            grad_output,
        )
        return grad_input
