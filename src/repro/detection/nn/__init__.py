"""A from-scratch numpy neural-network substrate for SPOD.

The paper's SPOD detector is a PyTorch + spconv model; neither is available
offline, so this package implements the required machinery directly on
numpy arrays: dense layers, 2D convolutions, batch norm, submanifold sparse
3D convolutions over voxel hash maps, SGD/Adam optimisers and the focal /
smooth-L1 losses the SECOND/VoxelNet lineage trains with.  Every layer has
an explicit ``forward``/``backward`` pair, so small models are trainable
end-to-end (the test suite does exactly that) while SPOD's production path
uses analytically constructed weights.
"""

from repro.detection.nn.module import Module, Parameter, Sequential
from repro.detection.nn.layers import (
    Linear,
    ReLU,
    Sigmoid,
    BatchNorm1d,
    Conv2d,
    MaxPool2d,
)
from repro.detection.nn.sparse import SparseTensor3d, SubmanifoldConv3d, SparseToDense
from repro.detection.nn.losses import (
    sigmoid_binary_cross_entropy,
    sigmoid_focal_loss,
    smooth_l1_loss,
)
from repro.detection.nn.optim import SGD, Adam

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "ReLU",
    "Sigmoid",
    "BatchNorm1d",
    "Conv2d",
    "MaxPool2d",
    "SparseTensor3d",
    "SubmanifoldConv3d",
    "SparseToDense",
    "sigmoid_binary_cross_entropy",
    "sigmoid_focal_loss",
    "smooth_l1_loss",
    "SGD",
    "Adam",
]
