"""Submanifold sparse 3D convolution over voxel hash maps.

The paper's middle layers use sparse CNNs [15] because voxelised LiDAR is
overwhelmingly empty: "output points are not computed if there is no
related input point".  A :class:`SparseTensor3d` stores only the active
sites — integer coordinates plus a feature row each — and
:class:`SubmanifoldConv3d` convolves them without ever materialising the
dense grid: for each kernel offset it gathers the (input, output) site
pairs related by that offset and applies one matmul.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.detection.nn.module import Module, Parameter

__all__ = ["SparseTensor3d", "SubmanifoldConv3d", "SparseToDense"]


@dataclass
class SparseTensor3d:
    """Active voxel sites with features.

    Attributes:
        coords: ``(V, 3)`` integer coordinates (ix, iy, iz).
        features: ``(V, C)`` feature rows.
        grid_shape: dense extent ``(nx, ny, nz)`` the coordinates live in.
    """

    coords: np.ndarray
    features: np.ndarray
    grid_shape: tuple[int, int, int]

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=np.int64).reshape(-1, 3)
        self.features = np.asarray(self.features, dtype=np.float64)
        if len(self.coords) != len(self.features):
            raise ValueError("coords and features row counts differ")

    @property
    def num_active(self) -> int:
        """Number of active sites."""
        return len(self.coords)

    @property
    def num_channels(self) -> int:
        """Feature dimensionality."""
        return self.features.shape[1] if self.features.ndim == 2 else 0

    def linear_index(self) -> np.ndarray:
        """Linearised coordinates, usable as dict keys / sort keys."""
        nx, ny, nz = self.grid_shape
        c = self.coords
        return c[:, 0] * (ny * nz) + c[:, 1] * nz + c[:, 2]

    def densify(self) -> np.ndarray:
        """Materialise the dense ``(C, nx, ny, nz)`` array (tests only)."""
        nx, ny, nz = self.grid_shape
        dense = np.zeros((self.num_channels, nx, ny, nz))
        dense[:, self.coords[:, 0], self.coords[:, 1], self.coords[:, 2]] = (
            self.features.T
        )
        return dense


def _build_pairs(
    in_tensor: SparseTensor3d,
    out_coords: np.ndarray,
    out_grid: tuple[int, int, int],
    kernel_size: int,
    stride: int,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """For each kernel offset, the (offset, in_rows, out_rows) gather lists.

    An output site ``o`` receives input site ``i`` through offset ``k`` when
    ``i = o * stride + k - pad`` (pad centres the kernel).
    """
    pad = (kernel_size - 1) // 2
    nx, ny, nz = in_tensor.grid_shape
    lin_in = in_tensor.linear_index()
    order = np.argsort(lin_in)
    lin_sorted = lin_in[order]
    offsets = list(itertools.product(range(kernel_size), repeat=3))
    pairs = []
    out = out_coords
    for k, offset in enumerate(offsets):
        shift = np.array(offset) - pad
        candidate = out * stride + shift
        in_bounds = (
            (candidate[:, 0] >= 0)
            & (candidate[:, 0] < nx)
            & (candidate[:, 1] >= 0)
            & (candidate[:, 1] < ny)
            & (candidate[:, 2] >= 0)
            & (candidate[:, 2] < nz)
        )
        lin_cand = (
            candidate[:, 0] * (ny * nz) + candidate[:, 1] * nz + candidate[:, 2]
        )
        pos = np.searchsorted(lin_sorted, lin_cand)
        pos_clipped = np.minimum(pos, len(lin_sorted) - 1) if len(lin_sorted) else pos
        found = (
            in_bounds
            & (pos < len(lin_sorted))
            & (len(lin_sorted) > 0)
            & (lin_sorted[pos_clipped] == lin_cand)
        )
        if found.any():
            pairs.append(
                (
                    k,
                    order[pos_clipped[found]].astype(np.int64),
                    np.nonzero(found)[0].astype(np.int64),
                )
            )
    return pairs


class SubmanifoldConv3d(Module):
    """Sparse 3D convolution.

    With ``stride == 1`` this is *submanifold*: the output active set equals
    the input active set, so sparsity never dilates (the property that makes
    deep sparse CNNs tractable).  With ``stride > 1`` it is a regular sparse
    convolution whose output sites are the distinct downsampled input sites.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        bias: bool = True,
        seed: int = 0,
    ) -> None:
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd")
        rng = np.random.default_rng(seed)
        k3 = kernel_size**3
        fan_in = in_channels * k3
        self.weight = Parameter(
            rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(k3, in_channels, out_channels)),
            "sparseconv.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), "sparseconv.bias") if bias else None
        self.kernel_size = kernel_size
        self.stride = stride
        self._cache: tuple | None = None

    def _output_sites(
        self, tensor: SparseTensor3d
    ) -> tuple[np.ndarray, tuple[int, int, int]]:
        if self.stride == 1:
            return tensor.coords.copy(), tensor.grid_shape
        down = tensor.coords // self.stride
        out_grid = tuple(
            int(np.ceil(g / self.stride)) for g in tensor.grid_shape
        )
        unique = np.unique(down, axis=0)
        return unique, out_grid  # type: ignore[return-value]

    def forward(self, tensor: SparseTensor3d) -> SparseTensor3d:
        out_coords, out_grid = self._output_sites(tensor)
        pairs = _build_pairs(
            tensor, out_coords, out_grid, self.kernel_size, self.stride
        )
        out_features = np.zeros((len(out_coords), self.weight.shape[2]))
        for k, in_rows, out_rows in pairs:
            np.add.at(
                out_features,
                out_rows,
                tensor.features[in_rows] @ self.weight.value[k],
            )
        if self.bias is not None:
            out_features += self.bias.value
        self._cache = (tensor, pairs, len(out_coords))
        return SparseTensor3d(out_coords, out_features, out_grid)

    def backward(self, grad_output: SparseTensor3d | np.ndarray) -> SparseTensor3d:
        tensor, pairs, num_out = self._cache
        grad_feat = (
            grad_output.features
            if isinstance(grad_output, SparseTensor3d)
            else np.asarray(grad_output)
        )
        grad_in = np.zeros_like(tensor.features)
        for k, in_rows, out_rows in pairs:
            g = grad_feat[out_rows]
            self.weight.grad[k] += tensor.features[in_rows].T @ g
            np.add.at(grad_in, in_rows, g @ self.weight.value[k].T)
        if self.bias is not None:
            self.bias.grad += grad_feat.sum(axis=0)
        return SparseTensor3d(tensor.coords, grad_in, tensor.grid_shape)


class SparseToDense(Module):
    """Scatter a sparse tensor to a dense BEV map, stacking z into channels.

    Output shape is ``(1, C * nz, nx, ny)`` — the standard trick the SECOND
    lineage uses to hand the 3D feature volume to a 2D RPN.
    """

    def __init__(self) -> None:
        self._cache: tuple | None = None

    def forward(self, tensor: SparseTensor3d) -> np.ndarray:
        nx, ny, nz = tensor.grid_shape
        c = tensor.num_channels
        dense = np.zeros((c, nz, nx, ny))
        coords = tensor.coords
        dense[:, coords[:, 2], coords[:, 0], coords[:, 1]] = tensor.features.T
        self._cache = (tensor, (nx, ny, nz, c))
        return dense.reshape(1, c * nz, nx, ny)

    def backward(self, grad_output: np.ndarray) -> SparseTensor3d:
        tensor, (nx, ny, nz, c) = self._cache
        grad = grad_output.reshape(c, nz, nx, ny)
        coords = tensor.coords
        grad_feat = grad[:, coords[:, 2], coords[:, 0], coords[:, 1]].T
        return SparseTensor3d(tensor.coords, grad_feat, tensor.grid_shape)
