"""Submanifold sparse 3D convolution over voxel hash maps.

The paper's middle layers use sparse CNNs [15] because voxelised LiDAR is
overwhelmingly empty: "output points are not computed if there is no
related input point".  A :class:`SparseTensor3d` stores only the active
sites — integer coordinates plus a feature row each — and
:class:`SubmanifoldConv3d` convolves them without ever materialising the
dense grid: for each kernel offset it gathers the (input, output) site
pairs related by that offset and applies one matmul.

The gather lists form a *rulebook* (:class:`Rulebook`), the SECOND-lineage
term for the per-offset (in_rows, out_rows) index pairs.  Rulebooks are a
pure function of the active-site set, so they are shared between the
stride-1 convolutions of a block (the submanifold property keeps the
active set invariant) and memoised across frames in
:data:`RULEBOOK_CACHE`, keyed by a hash of the site list and verified
exactly on every hit — a cache hit therefore returns bit-identical gather
lists, keeping results independent of cache state and worker count.
"""

from __future__ import annotations

import itertools
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.detection.nn.module import Module, Parameter
from repro.profiling import PROFILER

__all__ = [
    "SparseTensor3d",
    "Rulebook",
    "RulebookCache",
    "RULEBOOK_CACHE",
    "SubmanifoldConv3d",
    "SparseToDense",
    "patch_rulebook",
]


@dataclass
class SparseTensor3d:
    """Active voxel sites with features.

    Attributes:
        coords: ``(V, 3)`` integer coordinates (ix, iy, iz).
        features: ``(V, C)`` feature rows.  Any floating dtype is preserved
            (the float32 inference path flows through unchanged); non-float
            inputs are promoted to float64.
        grid_shape: dense extent ``(nx, ny, nz)`` the coordinates live in.
    """

    coords: np.ndarray
    features: np.ndarray
    grid_shape: tuple[int, int, int]
    _linear: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _sort_order: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # Tensors cross a layer boundary on every block: avoid the
        # unconditional re-copy of well-formed inputs — ``asarray`` is a
        # no-op when dtype and shape already match, and integer coords of
        # any width are accepted (linear_index upcasts as needed).
        coords = np.asarray(self.coords)
        if not np.issubdtype(coords.dtype, np.integer):
            coords = coords.astype(np.int64)
        if coords.ndim != 2 or coords.shape[1] != 3:
            coords = coords.reshape(-1, 3)
        self.coords = coords
        features = np.asarray(self.features)
        if not np.issubdtype(features.dtype, np.floating):
            features = features.astype(np.float64)
        self.features = features
        if len(self.coords) != len(self.features):
            raise ValueError("coords and features row counts differ")

    @property
    def num_active(self) -> int:
        """Number of active sites."""
        return len(self.coords)

    @property
    def num_channels(self) -> int:
        """Feature dimensionality."""
        return self.features.shape[1] if self.features.ndim == 2 else 0

    def linear_index(self) -> np.ndarray:
        """Linearised coordinates, usable as dict keys / sort keys.

        Computed once and cached on the tensor — every convolution that
        touches this tensor reuses the same array.
        """
        if self._linear is None:
            nx, ny, nz = self.grid_shape
            c = self.coords
            self._linear = (
                c[:, 0].astype(np.int64) * (ny * nz)
                + c[:, 1].astype(np.int64) * nz
                + c[:, 2]
            )
        return self._linear

    def sort_order(self) -> np.ndarray:
        """Argsort of :meth:`linear_index`, cached alongside it."""
        if self._sort_order is None:
            self._sort_order = np.argsort(self.linear_index())
        return self._sort_order

    def densify(self) -> np.ndarray:
        """Materialise the dense ``(C, nx, ny, nz)`` array (tests only)."""
        nx, ny, nz = self.grid_shape
        dense = np.zeros((self.num_channels, nx, ny, nz))
        dense[:, self.coords[:, 0], self.coords[:, 1], self.coords[:, 2]] = (
            self.features.T
        )
        return dense


@dataclass
class Rulebook:
    """Gather lists relating input to output sites for one active set.

    Attributes:
        out_coords: ``(O, 3)`` output site coordinates.
        out_grid: dense extent of the output sites.
        pairs: per-kernel-offset ``(offset_index, in_rows, out_rows)``
            gather lists (offsets with no related pairs are omitted).
        linear: the *unsorted* linearised input site list the rulebook was
            built from — the exact-match key for cache verification.
    """

    out_coords: np.ndarray
    out_grid: tuple[int, int, int]
    pairs: list[tuple[int, np.ndarray, np.ndarray]]
    linear: np.ndarray


def _build_pairs(
    in_tensor: SparseTensor3d,
    out_coords: np.ndarray,
    kernel_size: int,
    stride: int,
) -> list[tuple[int, np.ndarray, np.ndarray]]:
    """For each kernel offset, the (offset, in_rows, out_rows) gather lists.

    An output site ``o`` receives input site ``i`` through offset ``k`` when
    ``i = o * stride + k - pad`` (pad centres the kernel).
    """
    # A blackout frame (repro.faults) voxelises to zero active sites; so
    # can an out-of-range cloud.  There is nothing to relate — and indexing
    # an empty sorted site list would raise — so short-circuit to no pairs.
    if in_tensor.num_active == 0 or len(out_coords) == 0:
        return []
    pad = (kernel_size - 1) // 2
    nx, ny, nz = in_tensor.grid_shape
    order = in_tensor.sort_order()
    lin_sorted = in_tensor.linear_index()[order]
    offsets = list(itertools.product(range(kernel_size), repeat=3))
    pairs = []
    out = out_coords
    for k, offset in enumerate(offsets):
        shift = np.array(offset) - pad
        candidate = out * stride + shift
        in_bounds = (
            (candidate[:, 0] >= 0)
            & (candidate[:, 0] < nx)
            & (candidate[:, 1] >= 0)
            & (candidate[:, 1] < ny)
            & (candidate[:, 2] >= 0)
            & (candidate[:, 2] < nz)
        )
        lin_cand = (
            candidate[:, 0] * (ny * nz) + candidate[:, 1] * nz + candidate[:, 2]
        )
        pos = np.searchsorted(lin_sorted, lin_cand)
        pos_clipped = np.minimum(pos, len(lin_sorted) - 1)
        found = (
            in_bounds
            & (pos < len(lin_sorted))
            & (lin_sorted[pos_clipped] == lin_cand)
        )
        if found.any():
            pairs.append(
                (
                    k,
                    order[pos_clipped[found]].astype(np.int64),
                    np.nonzero(found)[0].astype(np.int64),
                )
            )
    return pairs


def patch_rulebook(
    prev: Rulebook,
    tensor: SparseTensor3d,
    kernel_size: int,
    max_delta_fraction: float = 0.5,
) -> Rulebook | None:
    """Derive ``tensor``'s stride-1 rulebook by patching a previous frame's.

    Instead of re-running the full per-offset ``searchsorted`` sweep of
    :func:`_build_pairs`, remap the previous rulebook's gather rows
    through the old→new site correspondence (dropping pairs with a
    removed endpoint) and enumerate the pairs contributed by added sites
    — as outputs against every neighbour, and as inputs against
    *pre-existing* outputs (added-output pairs already cover the rest).
    Each offset's pairs are then ordered by ascending output row, exactly
    the order a fresh build emits, so the patched rulebook is
    element-for-element identical — including the ``np.add.at``
    accumulation order of the forward pass.

    Preconditions: stride-1 submanifold (output sites == input sites),
    matching grid, unique site coordinates (what the voxeliser produces).
    Returns ``None`` when the active-site delta exceeds
    ``max_delta_fraction`` of the new site count (a fresh build is
    cheaper) or when either frame is empty.
    """
    if tensor.grid_shape != prev.out_grid:
        return None
    new_linear = tensor.linear_index()
    old_linear = prev.linear
    if len(new_linear) == 0 or len(old_linear) == 0:
        return None
    with PROFILER.stage("temporal.rulebook_patch"):
        new_order = tensor.sort_order()
        new_sorted = new_linear[new_order]

        # Old row -> new row (-1 when the site was removed).
        pos = np.searchsorted(new_sorted, old_linear)
        pos_c = np.minimum(pos, len(new_sorted) - 1)
        survived = (pos < len(new_sorted)) & (new_sorted[pos_c] == old_linear)
        old_to_new = np.where(survived, new_order[pos_c], -1)

        # New rows whose site did not exist in the previous frame.
        old_sorted = np.sort(old_linear)
        pos2 = np.searchsorted(old_sorted, new_linear)
        pos2_c = np.minimum(pos2, len(old_sorted) - 1)
        existed = (pos2 < len(old_sorted)) & (old_sorted[pos2_c] == new_linear)
        added_rows = np.nonzero(~existed)[0].astype(np.int64)

        removed = int(len(old_linear) - np.count_nonzero(survived))
        if len(added_rows) + removed > max_delta_fraction * len(new_linear):
            return None

        pad = (kernel_size - 1) // 2
        nx, ny, nz = tensor.grid_shape
        is_added = np.zeros(len(new_linear), dtype=bool)
        is_added[added_rows] = True
        added_coords = tensor.coords[added_rows].astype(np.int64)

        def site_rows(cands: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """New-tensor rows at candidate coords, with a found mask.

            Bounds are checked *before* the linear lookup — an
            out-of-range coordinate could alias a valid linear index.
            """
            in_bounds = (
                (cands[:, 0] >= 0)
                & (cands[:, 0] < nx)
                & (cands[:, 1] >= 0)
                & (cands[:, 1] < ny)
                & (cands[:, 2] >= 0)
                & (cands[:, 2] < nz)
            )
            lin = cands[:, 0] * (ny * nz) + cands[:, 1] * nz + cands[:, 2]
            p = np.searchsorted(new_sorted, lin)
            p_c = np.minimum(p, len(new_sorted) - 1)
            found = in_bounds & (p < len(new_sorted)) & (new_sorted[p_c] == lin)
            return new_order[p_c], found

        prev_by_offset = {k: (i, o) for k, i, o in prev.pairs}
        pairs: list[tuple[int, np.ndarray, np.ndarray]] = []
        for k, offset in enumerate(
            itertools.product(range(kernel_size), repeat=3)
        ):
            shift = np.array(offset, dtype=np.int64) - pad
            ins: list[np.ndarray] = []
            outs: list[np.ndarray] = []
            old = prev_by_offset.get(k)
            if old is not None:
                in_new = old_to_new[old[0]]
                out_new = old_to_new[old[1]]
                ok = (in_new >= 0) & (out_new >= 0)
                if ok.any():
                    ins.append(in_new[ok])
                    outs.append(out_new[ok])
            if len(added_rows):
                rows, found = site_rows(added_coords + shift)
                if found.any():
                    ins.append(rows[found])
                    outs.append(added_rows[found])
                rows, found = site_rows(added_coords - shift)
                found &= ~is_added[rows]
                if found.any():
                    ins.append(added_rows[found])
                    outs.append(rows[found])
            if not ins:
                continue
            in_all = np.concatenate(ins).astype(np.int64)
            out_all = np.concatenate(outs).astype(np.int64)
            # Per offset every output row receives at most one input, so
            # sorting by output row reproduces the fresh build's
            # ascending ``np.nonzero`` order exactly.
            order_k = np.argsort(out_all, kind="stable")
            pairs.append((k, in_all[order_k], out_all[order_k]))
        return Rulebook(tensor.coords, tensor.grid_shape, pairs, new_linear)


class RulebookCache:
    """Cross-frame memoisation of rulebooks, keyed by the active-site set.

    The key is ``(grid_shape, kernel_size, stride, #sites, crc32(sites))``;
    a hit additionally verifies the stored site list element-for-element,
    so a returned rulebook is always *exactly* the one a fresh build would
    produce — results never depend on cache state, process, or worker
    count.  Entries are evicted LRU-style beyond ``maxsize``.

    Hit/miss totals are kept on the cache (``hits`` / ``misses``) and
    mirrored into :mod:`repro.profiling` counters
    ``spod.rulebook_hits`` / ``spod.rulebook_misses`` when profiling is
    enabled.
    """

    def __init__(self, maxsize: int = 16) -> None:
        self.maxsize = maxsize
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.patched = 0
        self._entries: OrderedDict[tuple, Rulebook] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/patched counters."""
        self._entries.clear()
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the hit/miss/patched counters without dropping entries.

        Benchmarks call this between repeats so a timed pass's counters
        reflect that pass alone while the (intentionally) warm entries
        survive.
        """
        self.hits = 0
        self.misses = 0
        self.patched = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @staticmethod
    def _key(
        tensor: SparseTensor3d, kernel_size: int, stride: int
    ) -> tuple:
        linear = tensor.linear_index()
        digest = zlib.crc32(np.ascontiguousarray(linear).view(np.uint8))
        return (tensor.grid_shape, kernel_size, stride, len(linear), digest)

    def lookup(
        self,
        tensor: SparseTensor3d,
        kernel_size: int,
        stride: int,
        build,
        patch=None,
    ) -> Rulebook:
        """Return the memoised rulebook for ``tensor``, building on miss.

        ``build`` is a zero-argument callable producing the
        :class:`Rulebook` when the cache cannot serve the request.
        ``patch`` (optional) is tried first on a miss: a zero-argument
        callable that may derive the rulebook more cheaply (e.g. by
        patching the previous frame's; see :func:`patch_rulebook`) or
        return ``None`` to decline.  Either way the entry is stored under
        ``tensor``'s exact key, so a patched rulebook must equal what
        ``build`` would produce.
        """
        if not self.enabled:
            return build()
        key = self._key(tensor, kernel_size, stride)
        entry = self._entries.get(key)
        if entry is not None and np.array_equal(entry.linear, tensor.linear_index()):
            self._entries.move_to_end(key)
            self.hits += 1
            PROFILER.count("spod.rulebook_hits")
            return entry
        self.misses += 1
        PROFILER.count("spod.rulebook_misses")
        entry = patch() if patch is not None else None
        if entry is not None:
            self.patched += 1
            PROFILER.count("temporal.rulebook_patched")
        else:
            entry = build()
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry


#: Process-wide rulebook memo shared by every sparse convolution.  Forked
#: workers inherit a snapshot and diverge independently; because hits are
#: verified exactly, per-process cache divergence can never change results.
RULEBOOK_CACHE = RulebookCache()


class SubmanifoldConv3d(Module):
    """Sparse 3D convolution.

    With ``stride == 1`` this is *submanifold*: the output active set equals
    the input active set, so sparsity never dilates (the property that makes
    deep sparse CNNs tractable).  With ``stride > 1`` it is a regular sparse
    convolution whose output sites are the distinct downsampled input sites.

    The forward pass computes in the dtype of the incoming features (the
    weights are cast to match), so a float32 tensor flows through a float32
    kernel; float64 training inputs keep the float64 kernels bit-for-bit.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        bias: bool = True,
        seed: int = 0,
    ) -> None:
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd")
        rng = np.random.default_rng(seed)
        k3 = kernel_size**3
        fan_in = in_channels * k3
        self.weight = Parameter(
            rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(k3, in_channels, out_channels)),
            "sparseconv.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), "sparseconv.bias") if bias else None
        self.kernel_size = kernel_size
        self.stride = stride
        self._cache: tuple | None = None

    def _output_sites(
        self, tensor: SparseTensor3d
    ) -> tuple[np.ndarray, tuple[int, int, int]]:
        if self.stride == 1:
            return tensor.coords, tensor.grid_shape
        down = tensor.coords // self.stride
        out_grid = tuple(
            int(np.ceil(g / self.stride)) for g in tensor.grid_shape
        )
        unique = np.unique(down, axis=0)
        return unique, out_grid  # type: ignore[return-value]

    def build_rulebook(
        self, tensor: SparseTensor3d, temporal=None
    ) -> Rulebook:
        """The (possibly memoised) rulebook relating ``tensor`` to its output.

        Stride-1 rulebooks depend only on the active-site set, so a block
        of submanifold convolutions builds one rulebook and passes it to
        every :meth:`forward` in the block.

        ``temporal`` (a :class:`repro.temporal.TemporalState`) supplies
        the previous frame's rulebook; on an exact-key cache miss the
        active-site *delta* against it is patched via
        :func:`patch_rulebook` instead of rebuilding from scratch.  The
        patched rulebook is bit-identical to a fresh build, so the result
        never depends on temporal state.
        """

        def build() -> Rulebook:
            out_coords, out_grid = self._output_sites(tensor)
            pairs = _build_pairs(tensor, out_coords, self.kernel_size, self.stride)
            return Rulebook(out_coords, out_grid, pairs, tensor.linear_index())

        patch = None
        if temporal is not None and self.stride == 1:
            prev = temporal.previous_rulebook(self.kernel_size, tensor.grid_shape)
            if prev is not None:
                fraction = temporal.config.max_rulebook_delta_fraction

                def patch() -> Rulebook | None:
                    return patch_rulebook(
                        prev, tensor, self.kernel_size, fraction
                    )

        rulebook = RULEBOOK_CACHE.lookup(
            tensor, self.kernel_size, self.stride, build, patch=patch
        )
        if temporal is not None and self.stride == 1:
            temporal.store_rulebook(
                self.kernel_size, tensor.grid_shape, rulebook
            )
        return rulebook

    def forward(
        self, tensor: SparseTensor3d, rulebook: Rulebook | None = None
    ) -> SparseTensor3d:
        if rulebook is None:
            rulebook = self.build_rulebook(tensor)
        dtype = tensor.features.dtype
        weight = self.weight.value
        if weight.dtype != dtype:
            weight = weight.astype(dtype)
        out_features = np.zeros(
            (len(rulebook.out_coords), weight.shape[2]), dtype=dtype
        )
        for k, in_rows, out_rows in rulebook.pairs:
            np.add.at(
                out_features,
                out_rows,
                tensor.features[in_rows] @ weight[k],
            )
        if self.bias is not None:
            out_features += self.bias.value
        self._cache = (tensor, rulebook.pairs, len(rulebook.out_coords))
        return SparseTensor3d(rulebook.out_coords, out_features, rulebook.out_grid)

    def backward(self, grad_output: SparseTensor3d | np.ndarray) -> SparseTensor3d:
        tensor, pairs, num_out = self._cache
        grad_feat = (
            grad_output.features
            if isinstance(grad_output, SparseTensor3d)
            else np.asarray(grad_output)
        )
        grad_in = np.zeros_like(tensor.features)
        for k, in_rows, out_rows in pairs:
            g = grad_feat[out_rows]
            self.weight.grad[k] += tensor.features[in_rows].T @ g
            np.add.at(grad_in, in_rows, g @ self.weight.value[k].T)
        if self.bias is not None:
            self.bias.grad += grad_feat.sum(axis=0)
        return SparseTensor3d(tensor.coords, grad_in, tensor.grid_shape)


class SparseToDense(Module):
    """Scatter a sparse tensor to a dense BEV map, stacking z into channels.

    Output shape is ``(1, C * nz, nx, ny)`` — the standard trick the SECOND
    lineage uses to hand the 3D feature volume to a 2D RPN.  The dense map
    is allocated in the feature dtype, so the float32 inference path never
    round-trips through float64.

    ``channel_mask`` (inference only) skips scattering BEV channels the
    downstream network provably ignores — with the analytic RPN only the
    occupancy channel's car-band and tall z bins carry weight, so most of
    the scatter is wasted work.  Masked channels stay zero, which is
    exactly what a zero-weight consumer sees; ``backward`` refuses to run
    after a masked forward because the gradient of a discarded channel is
    not recoverable.
    """

    def __init__(self) -> None:
        self._cache: tuple | None = None

    def forward(
        self, tensor: SparseTensor3d, channel_mask: np.ndarray | None = None
    ) -> np.ndarray:
        nx, ny, nz = tensor.grid_shape
        c = tensor.num_channels
        dense = np.zeros((c, nz, nx, ny), dtype=tensor.features.dtype)
        coords = tensor.coords
        if channel_mask is None:
            dense[:, coords[:, 2], coords[:, 0], coords[:, 1]] = tensor.features.T
        else:
            mask = np.asarray(channel_mask, dtype=bool).reshape(c, nz)
            for ch in range(c):
                z_used = mask[ch]
                if not z_used.any():
                    continue
                if z_used.all():
                    dense[ch, coords[:, 2], coords[:, 0], coords[:, 1]] = (
                        tensor.features[:, ch]
                    )
                    continue
                keep = z_used[coords[:, 2]]
                dense[ch, coords[keep, 2], coords[keep, 0], coords[keep, 1]] = (
                    tensor.features[keep, ch]
                )
        self._cache = (tensor, (nx, ny, nz, c), channel_mask is not None)
        return dense.reshape(1, c * nz, nx, ny)

    def backward(self, grad_output: np.ndarray) -> SparseTensor3d:
        tensor, (nx, ny, nz, c), masked = self._cache
        if masked:
            raise RuntimeError(
                "SparseToDense.backward after a channel-masked forward: "
                "the mask is an inference-only optimisation"
            )
        grad = grad_output.reshape(c, nz, nx, ny)
        coords = tensor.coords
        grad_feat = grad[:, coords[:, 2], coords[:, 0], coords[:, 1]].T
        return SparseTensor3d(tensor.coords, grad_feat, tensor.grid_shape)
