"""Submanifold sparse 3D convolution over voxel hash maps.

The paper's middle layers use sparse CNNs [15] because voxelised LiDAR is
overwhelmingly empty: "output points are not computed if there is no
related input point".  A :class:`SparseTensor3d` stores only the active
sites — integer coordinates plus a feature row each — and
:class:`SubmanifoldConv3d` convolves them without ever materialising the
dense grid: for each kernel offset it gathers the (input, output) site
pairs related by that offset and applies one matmul.

The gather lists form a *rulebook* (:class:`Rulebook`), the SECOND-lineage
term for the per-offset (in_rows, out_rows) index pairs.  Rulebooks are a
pure function of the active-site set, so they are shared between the
stride-1 convolutions of a block (the submanifold property keeps the
active set invariant) and memoised across frames in
:data:`RULEBOOK_CACHE`, keyed by a hash of the site list and verified
exactly on every hit — a cache hit therefore returns bit-identical gather
lists, keeping results independent of cache state and worker count.
"""

from __future__ import annotations

import itertools
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.detection.nn.module import Module, Parameter
from repro.profiling import PROFILER

__all__ = [
    "SparseTensor3d",
    "Rulebook",
    "RulebookCache",
    "RULEBOOK_CACHE",
    "SubmanifoldConv3d",
    "SparseToDense",
]


@dataclass
class SparseTensor3d:
    """Active voxel sites with features.

    Attributes:
        coords: ``(V, 3)`` integer coordinates (ix, iy, iz).
        features: ``(V, C)`` feature rows.  Any floating dtype is preserved
            (the float32 inference path flows through unchanged); non-float
            inputs are promoted to float64.
        grid_shape: dense extent ``(nx, ny, nz)`` the coordinates live in.
    """

    coords: np.ndarray
    features: np.ndarray
    grid_shape: tuple[int, int, int]
    _linear: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _sort_order: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # Tensors cross a layer boundary on every block: avoid the
        # unconditional re-copy of well-formed inputs — ``asarray`` is a
        # no-op when dtype and shape already match, and integer coords of
        # any width are accepted (linear_index upcasts as needed).
        coords = np.asarray(self.coords)
        if not np.issubdtype(coords.dtype, np.integer):
            coords = coords.astype(np.int64)
        if coords.ndim != 2 or coords.shape[1] != 3:
            coords = coords.reshape(-1, 3)
        self.coords = coords
        features = np.asarray(self.features)
        if not np.issubdtype(features.dtype, np.floating):
            features = features.astype(np.float64)
        self.features = features
        if len(self.coords) != len(self.features):
            raise ValueError("coords and features row counts differ")

    @property
    def num_active(self) -> int:
        """Number of active sites."""
        return len(self.coords)

    @property
    def num_channels(self) -> int:
        """Feature dimensionality."""
        return self.features.shape[1] if self.features.ndim == 2 else 0

    def linear_index(self) -> np.ndarray:
        """Linearised coordinates, usable as dict keys / sort keys.

        Computed once and cached on the tensor — every convolution that
        touches this tensor reuses the same array.
        """
        if self._linear is None:
            nx, ny, nz = self.grid_shape
            c = self.coords
            self._linear = (
                c[:, 0].astype(np.int64) * (ny * nz)
                + c[:, 1].astype(np.int64) * nz
                + c[:, 2]
            )
        return self._linear

    def sort_order(self) -> np.ndarray:
        """Argsort of :meth:`linear_index`, cached alongside it."""
        if self._sort_order is None:
            self._sort_order = np.argsort(self.linear_index())
        return self._sort_order

    def densify(self) -> np.ndarray:
        """Materialise the dense ``(C, nx, ny, nz)`` array (tests only)."""
        nx, ny, nz = self.grid_shape
        dense = np.zeros((self.num_channels, nx, ny, nz))
        dense[:, self.coords[:, 0], self.coords[:, 1], self.coords[:, 2]] = (
            self.features.T
        )
        return dense


@dataclass
class Rulebook:
    """Gather lists relating input to output sites for one active set.

    Attributes:
        out_coords: ``(O, 3)`` output site coordinates.
        out_grid: dense extent of the output sites.
        pairs: per-kernel-offset ``(offset_index, in_rows, out_rows)``
            gather lists (offsets with no related pairs are omitted).
        linear: the *unsorted* linearised input site list the rulebook was
            built from — the exact-match key for cache verification.
    """

    out_coords: np.ndarray
    out_grid: tuple[int, int, int]
    pairs: list[tuple[int, np.ndarray, np.ndarray]]
    linear: np.ndarray


def _build_pairs(
    in_tensor: SparseTensor3d,
    out_coords: np.ndarray,
    kernel_size: int,
    stride: int,
) -> list[tuple[int, np.ndarray, np.ndarray]]:
    """For each kernel offset, the (offset, in_rows, out_rows) gather lists.

    An output site ``o`` receives input site ``i`` through offset ``k`` when
    ``i = o * stride + k - pad`` (pad centres the kernel).
    """
    # A blackout frame (repro.faults) voxelises to zero active sites; so
    # can an out-of-range cloud.  There is nothing to relate — and indexing
    # an empty sorted site list would raise — so short-circuit to no pairs.
    if in_tensor.num_active == 0 or len(out_coords) == 0:
        return []
    pad = (kernel_size - 1) // 2
    nx, ny, nz = in_tensor.grid_shape
    order = in_tensor.sort_order()
    lin_sorted = in_tensor.linear_index()[order]
    offsets = list(itertools.product(range(kernel_size), repeat=3))
    pairs = []
    out = out_coords
    for k, offset in enumerate(offsets):
        shift = np.array(offset) - pad
        candidate = out * stride + shift
        in_bounds = (
            (candidate[:, 0] >= 0)
            & (candidate[:, 0] < nx)
            & (candidate[:, 1] >= 0)
            & (candidate[:, 1] < ny)
            & (candidate[:, 2] >= 0)
            & (candidate[:, 2] < nz)
        )
        lin_cand = (
            candidate[:, 0] * (ny * nz) + candidate[:, 1] * nz + candidate[:, 2]
        )
        pos = np.searchsorted(lin_sorted, lin_cand)
        pos_clipped = np.minimum(pos, len(lin_sorted) - 1)
        found = (
            in_bounds
            & (pos < len(lin_sorted))
            & (lin_sorted[pos_clipped] == lin_cand)
        )
        if found.any():
            pairs.append(
                (
                    k,
                    order[pos_clipped[found]].astype(np.int64),
                    np.nonzero(found)[0].astype(np.int64),
                )
            )
    return pairs


class RulebookCache:
    """Cross-frame memoisation of rulebooks, keyed by the active-site set.

    The key is ``(grid_shape, kernel_size, stride, #sites, crc32(sites))``;
    a hit additionally verifies the stored site list element-for-element,
    so a returned rulebook is always *exactly* the one a fresh build would
    produce — results never depend on cache state, process, or worker
    count.  Entries are evicted LRU-style beyond ``maxsize``.

    Hit/miss totals are kept on the cache (``hits`` / ``misses``) and
    mirrored into :mod:`repro.profiling` counters
    ``spod.rulebook_hits`` / ``spod.rulebook_misses`` when profiling is
    enabled.
    """

    def __init__(self, maxsize: int = 16) -> None:
        self.maxsize = maxsize
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, Rulebook] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @staticmethod
    def _key(
        tensor: SparseTensor3d, kernel_size: int, stride: int
    ) -> tuple:
        linear = tensor.linear_index()
        digest = zlib.crc32(np.ascontiguousarray(linear).view(np.uint8))
        return (tensor.grid_shape, kernel_size, stride, len(linear), digest)

    def lookup(
        self,
        tensor: SparseTensor3d,
        kernel_size: int,
        stride: int,
        build,
    ) -> Rulebook:
        """Return the memoised rulebook for ``tensor``, building on miss.

        ``build`` is a zero-argument callable producing the
        :class:`Rulebook` when the cache cannot serve the request.
        """
        if not self.enabled:
            return build()
        key = self._key(tensor, kernel_size, stride)
        entry = self._entries.get(key)
        if entry is not None and np.array_equal(entry.linear, tensor.linear_index()):
            self._entries.move_to_end(key)
            self.hits += 1
            PROFILER.count("spod.rulebook_hits")
            return entry
        self.misses += 1
        PROFILER.count("spod.rulebook_misses")
        entry = build()
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry


#: Process-wide rulebook memo shared by every sparse convolution.  Forked
#: workers inherit a snapshot and diverge independently; because hits are
#: verified exactly, per-process cache divergence can never change results.
RULEBOOK_CACHE = RulebookCache()


class SubmanifoldConv3d(Module):
    """Sparse 3D convolution.

    With ``stride == 1`` this is *submanifold*: the output active set equals
    the input active set, so sparsity never dilates (the property that makes
    deep sparse CNNs tractable).  With ``stride > 1`` it is a regular sparse
    convolution whose output sites are the distinct downsampled input sites.

    The forward pass computes in the dtype of the incoming features (the
    weights are cast to match), so a float32 tensor flows through a float32
    kernel; float64 training inputs keep the float64 kernels bit-for-bit.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        bias: bool = True,
        seed: int = 0,
    ) -> None:
        if kernel_size % 2 == 0:
            raise ValueError("kernel_size must be odd")
        rng = np.random.default_rng(seed)
        k3 = kernel_size**3
        fan_in = in_channels * k3
        self.weight = Parameter(
            rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(k3, in_channels, out_channels)),
            "sparseconv.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), "sparseconv.bias") if bias else None
        self.kernel_size = kernel_size
        self.stride = stride
        self._cache: tuple | None = None

    def _output_sites(
        self, tensor: SparseTensor3d
    ) -> tuple[np.ndarray, tuple[int, int, int]]:
        if self.stride == 1:
            return tensor.coords, tensor.grid_shape
        down = tensor.coords // self.stride
        out_grid = tuple(
            int(np.ceil(g / self.stride)) for g in tensor.grid_shape
        )
        unique = np.unique(down, axis=0)
        return unique, out_grid  # type: ignore[return-value]

    def build_rulebook(self, tensor: SparseTensor3d) -> Rulebook:
        """The (possibly memoised) rulebook relating ``tensor`` to its output.

        Stride-1 rulebooks depend only on the active-site set, so a block
        of submanifold convolutions builds one rulebook and passes it to
        every :meth:`forward` in the block.
        """

        def build() -> Rulebook:
            out_coords, out_grid = self._output_sites(tensor)
            pairs = _build_pairs(tensor, out_coords, self.kernel_size, self.stride)
            return Rulebook(out_coords, out_grid, pairs, tensor.linear_index())

        return RULEBOOK_CACHE.lookup(tensor, self.kernel_size, self.stride, build)

    def forward(
        self, tensor: SparseTensor3d, rulebook: Rulebook | None = None
    ) -> SparseTensor3d:
        if rulebook is None:
            rulebook = self.build_rulebook(tensor)
        dtype = tensor.features.dtype
        weight = self.weight.value
        if weight.dtype != dtype:
            weight = weight.astype(dtype)
        out_features = np.zeros(
            (len(rulebook.out_coords), weight.shape[2]), dtype=dtype
        )
        for k, in_rows, out_rows in rulebook.pairs:
            np.add.at(
                out_features,
                out_rows,
                tensor.features[in_rows] @ weight[k],
            )
        if self.bias is not None:
            out_features += self.bias.value
        self._cache = (tensor, rulebook.pairs, len(rulebook.out_coords))
        return SparseTensor3d(rulebook.out_coords, out_features, rulebook.out_grid)

    def backward(self, grad_output: SparseTensor3d | np.ndarray) -> SparseTensor3d:
        tensor, pairs, num_out = self._cache
        grad_feat = (
            grad_output.features
            if isinstance(grad_output, SparseTensor3d)
            else np.asarray(grad_output)
        )
        grad_in = np.zeros_like(tensor.features)
        for k, in_rows, out_rows in pairs:
            g = grad_feat[out_rows]
            self.weight.grad[k] += tensor.features[in_rows].T @ g
            np.add.at(grad_in, in_rows, g @ self.weight.value[k].T)
        if self.bias is not None:
            self.bias.grad += grad_feat.sum(axis=0)
        return SparseTensor3d(tensor.coords, grad_in, tensor.grid_shape)


class SparseToDense(Module):
    """Scatter a sparse tensor to a dense BEV map, stacking z into channels.

    Output shape is ``(1, C * nz, nx, ny)`` — the standard trick the SECOND
    lineage uses to hand the 3D feature volume to a 2D RPN.  The dense map
    is allocated in the feature dtype, so the float32 inference path never
    round-trips through float64.

    ``channel_mask`` (inference only) skips scattering BEV channels the
    downstream network provably ignores — with the analytic RPN only the
    occupancy channel's car-band and tall z bins carry weight, so most of
    the scatter is wasted work.  Masked channels stay zero, which is
    exactly what a zero-weight consumer sees; ``backward`` refuses to run
    after a masked forward because the gradient of a discarded channel is
    not recoverable.
    """

    def __init__(self) -> None:
        self._cache: tuple | None = None

    def forward(
        self, tensor: SparseTensor3d, channel_mask: np.ndarray | None = None
    ) -> np.ndarray:
        nx, ny, nz = tensor.grid_shape
        c = tensor.num_channels
        dense = np.zeros((c, nz, nx, ny), dtype=tensor.features.dtype)
        coords = tensor.coords
        if channel_mask is None:
            dense[:, coords[:, 2], coords[:, 0], coords[:, 1]] = tensor.features.T
        else:
            mask = np.asarray(channel_mask, dtype=bool).reshape(c, nz)
            for ch in range(c):
                z_used = mask[ch]
                if not z_used.any():
                    continue
                if z_used.all():
                    dense[ch, coords[:, 2], coords[:, 0], coords[:, 1]] = (
                        tensor.features[:, ch]
                    )
                    continue
                keep = z_used[coords[:, 2]]
                dense[ch, coords[keep, 2], coords[keep, 0], coords[keep, 1]] = (
                    tensor.features[keep, ch]
                )
        self._cache = (tensor, (nx, ny, nz, c), channel_mask is not None)
        return dense.reshape(1, c * nz, nx, ny)

    def backward(self, grad_output: np.ndarray) -> SparseTensor3d:
        tensor, (nx, ny, nz, c), masked = self._cache
        if masked:
            raise RuntimeError(
                "SparseToDense.backward after a channel-masked forward: "
                "the mask is an inference-only optimisation"
            )
        grad = grad_output.reshape(c, nz, nx, ny)
        coords = tensor.coords
        grad_feat = grad[:, coords[:, 2], coords[:, 0], coords[:, 1]].T
        return SparseTensor3d(tensor.coords, grad_feat, tensor.grid_shape)
