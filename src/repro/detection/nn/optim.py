"""Optimisers for the numpy NN substrate: SGD with momentum and Adam."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.detection.nn.module import Parameter

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.value -= self.lr * grad

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.parameters:
            p.zero_grad()


class Adam:
    """Adam optimiser (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update from the accumulated gradients."""
        self._t += 1
        bc1 = 1 - self.beta1**self._t
        bc2 = 1 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            p.value -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.parameters:
            p.zero_grad()
