"""Detection losses: sigmoid BCE, focal loss and smooth L1.

The SECOND/VoxelNet lineage trains the RPN classification head with a
focal loss (class imbalance between the handful of positive anchors and
tens of thousands of negatives) and the box regression head with smooth
L1 on the encoded residuals.  Each loss returns ``(value, grad_wrt_logits)``
so callers can feed the gradient straight into ``Module.backward``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sigmoid_binary_cross_entropy",
    "sigmoid_focal_loss",
    "smooth_l1_loss",
]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def sigmoid_binary_cross_entropy(
    logits: np.ndarray, targets: np.ndarray, weights: np.ndarray | None = None
) -> tuple[float, np.ndarray]:
    """Mean BCE over sigmoid logits.  Returns ``(loss, dloss/dlogits)``."""
    logits = np.asarray(logits, dtype=float)
    targets = np.asarray(targets, dtype=float)
    p = _sigmoid(logits)
    eps = 1e-12
    per_element = -(targets * np.log(p + eps) + (1 - targets) * np.log(1 - p + eps))
    grad = p - targets
    if weights is not None:
        per_element = per_element * weights
        grad = grad * weights
    n = max(logits.size, 1)
    return float(per_element.sum() / n), grad / n


def sigmoid_focal_loss(
    logits: np.ndarray,
    targets: np.ndarray,
    alpha: float = 0.25,
    gamma: float = 2.0,
) -> tuple[float, np.ndarray]:
    """Focal loss (Lin et al.) with analytic gradient.

    ``FL = -alpha_t (1 - p_t)^gamma log(p_t)`` averaged over elements.
    """
    logits = np.asarray(logits, dtype=float)
    targets = np.asarray(targets, dtype=float)
    p = _sigmoid(logits)
    eps = 1e-12
    p_t = targets * p + (1 - targets) * (1 - p)
    alpha_t = targets * alpha + (1 - targets) * (1 - alpha)
    log_pt = np.log(p_t + eps)
    loss_elems = -alpha_t * (1 - p_t) ** gamma * log_pt
    # d loss / d p_t, then chain through p_t -> logits.
    dloss_dpt = alpha_t * (
        gamma * (1 - p_t) ** (gamma - 1) * log_pt - (1 - p_t) ** gamma / (p_t + eps)
    )
    dpt_dlogit = np.where(targets > 0.5, 1.0, -1.0) * p * (1 - p)
    n = max(logits.size, 1)
    return float(loss_elems.sum() / n), dloss_dpt * dpt_dlogit / n


def smooth_l1_loss(
    predictions: np.ndarray,
    targets: np.ndarray,
    beta: float = 1.0,
    weights: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Huber/smooth-L1 on raw residuals.  Returns ``(loss, dloss/dpred)``."""
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    diff = predictions - targets
    abs_diff = np.abs(diff)
    quadratic = abs_diff < beta
    per_element = np.where(
        quadratic, 0.5 * diff**2 / beta, abs_diff - 0.5 * beta
    )
    grad = np.where(quadratic, diff / beta, np.sign(diff))
    if weights is not None:
        per_element = per_element * weights
        grad = grad * weights
    n = max(predictions.size, 1)
    return float(per_element.sum() / n), grad / n
