"""Detection result types."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.geometry.boxes import Box3D
from repro.geometry.transforms import RigidTransform

__all__ = ["Detection"]


@dataclass(frozen=True)
class Detection:
    """A single detected object.

    Attributes:
        box: the detected oriented box (sensor/receiver frame).
        score: detection confidence in [0, 1] — the quantity reported in
            the paper's Figs. 3 and 6 grids.
        label: class name; SPOD here detects "car".
    """

    box: Box3D
    score: float
    label: str = "car"

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score must be in [0, 1], got {self.score}")

    def transformed(self, transform: RigidTransform) -> "Detection":
        """Map the detection into another frame."""
        return replace(self, box=self.box.transformed(transform))

    def with_score(self, score: float) -> "Detection":
        """Return a copy with a different confidence."""
        return replace(self, score=float(score))
