"""Anchor target assignment for training SPOD's learned heads.

The SECOND/VoxelNet recipe the paper builds on: every BEV anchor is
labelled positive when its IoU with some ground-truth box exceeds the
positive threshold (or it is the best anchor for a box), negative below
the negative threshold, and ignored in between.  Positives get box
regression residuals against their matched ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.anchors import AnchorGrid, encode_boxes
from repro.geometry.boxes import Box3D, pairwise_iou_bev

__all__ = ["AnchorTargets", "assign_targets"]


@dataclass
class AnchorTargets:
    """Training targets for one frame.

    Attributes:
        cls_targets: ``(N,)`` with 1 positive, 0 negative, -1 ignore.
        reg_targets: ``(N, 7)`` encoded residuals (zeros off-positives).
        matched_gt: ``(N,)`` index of the matched ground-truth box (-1 when
            unmatched).
    """

    cls_targets: np.ndarray
    reg_targets: np.ndarray
    matched_gt: np.ndarray

    @property
    def num_positive(self) -> int:
        """Count of positive anchors."""
        return int((self.cls_targets == 1).sum())

    @property
    def num_negative(self) -> int:
        """Count of negative anchors."""
        return int((self.cls_targets == 0).sum())

    def positive_weights(self) -> np.ndarray:
        """Per-anchor weights normalising the regression loss by positives."""
        weights = np.zeros(len(self.cls_targets))
        if self.num_positive:
            weights[self.cls_targets == 1] = 1.0 / self.num_positive
        return weights


def assign_targets(
    grid: AnchorGrid,
    gt_boxes: list[Box3D],
    positive_iou: float = 0.6,
    negative_iou: float = 0.45,
) -> AnchorTargets:
    """Label every anchor of ``grid`` against the ground truth.

    Follows the standard rules: IoU >= ``positive_iou`` -> positive;
    IoU < ``negative_iou`` -> negative; otherwise ignored.  Additionally
    the highest-IoU anchor of each ground-truth box is forced positive so
    no object goes unsupervised.
    """
    if not 0.0 <= negative_iou <= positive_iou <= 1.0:
        raise ValueError("need 0 <= negative_iou <= positive_iou <= 1")
    anchors = grid.all_anchors()
    n = len(anchors)
    cls_targets = np.zeros(n)
    reg_targets = np.zeros((n, 7))
    matched = np.full(n, -1, dtype=int)
    if not gt_boxes:
        return AnchorTargets(cls_targets, reg_targets, matched)

    anchor_boxes = [Box3D.from_vector(a) for a in anchors]
    iou = pairwise_iou_bev(anchor_boxes, gt_boxes)  # (N, G)

    best_gt = iou.argmax(axis=1)
    best_iou = iou.max(axis=1)
    cls_targets[:] = -1.0
    cls_targets[best_iou < negative_iou] = 0.0
    positive = best_iou >= positive_iou
    # Force-match each ground truth's best anchor.
    for g in range(len(gt_boxes)):
        a = int(iou[:, g].argmax())
        if iou[a, g] > 0:
            positive[a] = True
            best_gt[a] = g
    cls_targets[positive] = 1.0
    matched[positive] = best_gt[positive]

    pos_idx = np.nonzero(positive)[0]
    if len(pos_idx):
        gt_vectors = np.array([gt_boxes[g].as_vector() for g in best_gt[pos_idx]])
        reg_targets[pos_idx] = encode_boxes(gt_vectors, anchors[pos_idx])
    return AnchorTargets(cls_targets, reg_targets, matched)
