"""SPOD: Sparse Point-cloud Object Detection (paper Section III).

The detector follows the paper's three-component architecture (Fig. 1):

1. **Preprocessing** — range crop, ground removal and the spherical
   densification of [27] (:mod:`repro.detection.preprocess`).
2. **Voxel feature extraction** — VoxelNet-style grouping + voxel feature
   encoding (:mod:`repro.detection.vfe`) followed by sparse convolutional
   middle layers (:mod:`repro.detection.middle`).
3. **Region proposal network** — an SSD-style single-shot head over the
   BEV feature map (:mod:`repro.detection.rpn`) with anchor decoding,
   point-evidence confidence calibration and rotated NMS.

Two weight regimes are supported.  ``SPOD.pretrained()`` installs
analytically constructed weights that make the network compute
density/height evidence — deterministic, training-free, and matching the
paper's qualitative score behaviour (more points => higher score, too-sparse
objects => missed).  The same modules also expose ``backward`` passes, so
the test suite trains small instances end-to-end with the losses in
:mod:`repro.detection.nn.losses`.
"""

from repro.detection.detections import Detection
from repro.detection.spod import SPOD, SPODConfig
from repro.detection.nms import rotated_nms
from repro.detection.anchors import AnchorGrid, encode_boxes, decode_boxes
from repro.detection.classes import CAR, CYCLIST, PEDESTRIAN, CLASSES, ObjectClass, classify_cluster
from repro.detection.targets import AnchorTargets, assign_targets
from repro.detection.train import SpodTrainer, TrainStep

__all__ = [
    "Detection",
    "SPOD",
    "SPODConfig",
    "rotated_nms",
    "AnchorGrid",
    "encode_boxes",
    "decode_boxes",
    "CAR",
    "CYCLIST",
    "PEDESTRIAN",
    "CLASSES",
    "ObjectClass",
    "classify_cluster",
    "AnchorTargets",
    "assign_targets",
    "SpodTrainer",
    "TrainStep",
]
