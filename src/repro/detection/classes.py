"""Object classes for multi-class SPOD (§III-A's car/pedestrian/cyclist).

The paper quotes VoxelNet's per-class average precisions — cars ~89.6%,
pedestrians ~65.9%, cyclists ~74.4% easy — precisely because small classes
carry far less LiDAR evidence.  This module gives SPOD the same class
vocabulary: per-class box templates, evidence expectations (fewer points
suffice for a pedestrian than for a car) and a geometric classifier that
decides the class from the local cluster's footprint and height.

Class confusion at range is expected and realistic (a far car fragment can
look like a cyclist); the per-class evaluation quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ObjectClass", "CAR", "CYCLIST", "PEDESTRIAN", "CLASSES", "classify_cluster"]


@dataclass(frozen=True)
class ObjectClass:
    """One detectable class.

    Attributes:
        name: label carried by detections.
        template: (length, width, height) of the fitted box.
        bias_offset: added to the calibrator bias — negative for small
            classes whose full evidence is inherently fewer points.
        count_cap: evidence saturation point (a pedestrian is as confirmed
            as it gets long before 500 points).
    """

    name: str
    template: tuple[float, float, float]
    bias_offset: float = 0.0
    count_cap: int = 500

    @property
    def diagonal(self) -> float:
        """BEV diagonal of the template footprint."""
        return float(np.hypot(self.template[0], self.template[1]))


#: The three classes the paper's §III-A discussion covers.
CAR = ObjectClass("car", (4.2, 1.8, 1.6), bias_offset=0.0, count_cap=500)
CYCLIST = ObjectClass("cyclist", (1.8, 0.7, 1.85), bias_offset=-0.8, count_cap=200)
PEDESTRIAN = ObjectClass("pedestrian", (0.7, 0.7, 1.8), bias_offset=-1.0, count_cap=120)

CLASSES: tuple[ObjectClass, ...] = (CAR, CYCLIST, PEDESTRIAN)


def classify_cluster(
    major_extent: float,
    minor_extent: float,
    height_span: float,
) -> ObjectClass:
    """Pick the class a local point cluster most plausibly belongs to.

    Geometry-only rules mirroring how the templates differ:

    * tiny footprint (< ~1.1 m across) standing person-height -> pedestrian,
    * short-but-elongated, thin, and taller than car bodywork -> cyclist
      (the rider's torso/head rise above any sedan roof),
    * everything else -> car (including partial car faces, which dominate
      the ambiguous region — the cause of the small-class confusion the
      paper's quoted APs reflect).
    """
    if major_extent < 1.1 and 1.64 < height_span <= 2.2:
        return PEDESTRIAN
    if (
        1.1 <= major_extent <= 2.4
        and minor_extent < 1.0
        and 1.64 < height_span <= 2.2
    ):
        return CYCLIST
    return CAR
