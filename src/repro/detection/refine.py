"""Point-evidence box refinement for RPN proposals.

The analytic inference path decodes a proposal by fitting a car-template
box to the obstacle points around the proposing BEV cell: re-centre on the
local centroid, orient along the principal axis of the local point spread,
and rest the box on the estimated ground.  This replaces the learned
regression head when SPOD runs with analytic weights (the learned head is
used when the network has been trained).

Refinement is *cluster-scoped*: points are first grouped into contiguous
structures (same grid clustering the calibrator uses), and a proposal only
fits to the cluster(s) directly under it.  Without this, a dense neighbour
two metres away drags the centroid off the actual object — visible as
detections "migrating" between adjacent parked cars on merged clouds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.detection.anchors import CAR_ANCHOR_SIZE
from repro.detection.classes import CAR, ObjectClass, classify_cluster
from repro.geometry.boxes import Box3D, points_in_box

__all__ = ["BoxRefiner", "RefinementSpec", "Fit"]


@dataclass(frozen=True)
class Fit:
    """A refined proposal: the fitted box, its supporting points and class."""

    box: Box3D
    points: np.ndarray
    object_class: ObjectClass = CAR

    def __iter__(self):
        # Unpacks as (box, points) for backwards compatibility; the class
        # rides along as an attribute.
        yield self.box
        yield self.points


@dataclass(frozen=True)
class RefinementSpec:
    """Tuning knobs of the point-based box fit.

    Attributes:
        gather_radius: BEV radius (m) of points considered around a proposal.
        seed_radius: radius locating the cluster(s) under the proposal.
        min_points: proposals with fewer local points are dropped.
        template_size: (l, w, h) of the fitted box (mean car).
    """

    gather_radius: float = 2.4
    seed_radius: float = 1.4
    multi_class: bool = True
    meanshift_radius: float = 1.5
    meanshift_iterations: int = 3
    min_points: int = 4
    template_size: tuple[float, float, float] = CAR_ANCHOR_SIZE


class BoxRefiner:
    """Fits car-template boxes to local obstacle points.

    Build once per cloud (it indexes the points in a KD-tree and labels
    structural clusters), then call :meth:`refine` per proposal.
    """

    def __init__(
        self,
        obstacle_xyz: np.ndarray,
        ground_z: float,
        spec: RefinementSpec | None = None,
        ground_xyz: np.ndarray | None = None,
    ) -> None:
        from repro.detection.calibrate import _label_clusters

        self.spec = spec or RefinementSpec()
        self.points = np.asarray(obstacle_xyz, dtype=float).reshape(-1, 3)
        self.ground_z = float(ground_z)
        # Ground returns disambiguate partial views: the ground beneath a
        # real vehicle is shadowed, so of two candidate box placements the
        # one covering fewer ground returns is the physical one.
        if ground_xyz is not None and len(ground_xyz):
            self._ground_tree = cKDTree(
                np.asarray(ground_xyz, dtype=float)[:, :2]
            )
        else:
            self._ground_tree = None
        # Cars live below ~2.3 m above ground; taller returns (walls, trees)
        # must not drag the fit.
        car_band = self.points[:, 2] <= self.ground_z + 2.3
        self._car_points = self.points[car_band]
        if len(self._car_points):
            self._tree = cKDTree(self._car_points[:, :2])
            self._clusters, _majors, _minors = _label_clusters(self._car_points[:, :2])
        else:
            self._tree = None
            self._clusters = np.zeros(0, dtype=int)

    def refine(self, proposal_xy: np.ndarray) -> Fit | None:
        """Fit a box near ``proposal_xy``.

        Returns a :class:`Fit` (unpacks as ``(box, local_points)``) or None
        when the neighbourhood is too sparse to support an object
        hypothesis.
        """
        return self.refine_batch([proposal_xy])[0]

    def refine_batch(self, proposals_xy) -> list[Fit | None]:
        """Fit boxes near each proposal; one entry per input, None = drop.

        Identical results to calling :meth:`refine` per proposal, but the
        KD-tree lookups (seed, each mean-shift round, gather) are issued
        as *vector* queries across all still-active proposals — the decode
        path hands over ~40 proposals per cloud, and per-call query
        overhead dominated the scalar version's profile.
        """
        spec = self.spec
        n = len(proposals_xy)
        fits: list[Fit | None] = [None] * n
        if self._tree is None or n == 0:
            return fits
        centers = np.array([p[:2] for p in proposals_xy], dtype=float)
        seed_lists = self._tree.query_ball_point(
            centers, spec.seed_radius, return_sorted=True
        )
        seed_clusters: list[np.ndarray | None] = [None] * n
        modes = centers.copy()
        shifting = np.zeros(n, dtype=bool)
        for i in range(n):
            seed_idx = np.asarray(seed_lists[i], dtype=int)
            if not len(seed_idx):
                continue
            # Adopt the *nearest* structure under the proposal, plus
            # anything almost as close — but not a neighbouring object that
            # merely grazes the seed radius (a pedestrian proposal must not
            # adopt the car parked 1.2 m away).
            distances = np.linalg.norm(
                self._car_points[seed_idx, :2] - centers[i], axis=1
            )
            cutoff = max(0.7, float(distances.min()) + 0.25)
            seed_clusters[i] = np.unique(
                self._clusters[seed_idx[distances <= cutoff]]
            )
            shifting[i] = True
        # Mean-shift with a sub-car radius: converge onto the local density
        # mode (one vehicle's own point mass) instead of the centroid of
        # whatever the proposal radius happens to cover.  Essential on
        # merged clouds, where two viewpoints can fuse a whole row of
        # parked cars into one connected cluster.
        for _ in range(spec.meanshift_iterations):
            live = np.flatnonzero(shifting)
            if not len(live):
                break
            near_lists = self._tree.query_ball_point(
                modes[live], spec.meanshift_radius, return_sorted=True
            )
            for j, i in enumerate(live):
                near = np.asarray(near_lists[j], dtype=int)
                near = near[_in_clusters(self._clusters[near], seed_clusters[i])]
                if len(near) < spec.min_points:
                    shifting[i] = False
                    continue
                new_mode = self._car_points[near, :2].mean(axis=0)
                if new_mode[0] == modes[i, 0] and new_mode[1] == modes[i, 1]:
                    # A fixed point: every further round would reproduce
                    # this exact mode, so the remaining queries are pure
                    # cost.
                    shifting[i] = False
                modes[i] = new_mode
        seeded = [i for i in range(n) if seed_clusters[i] is not None]
        if not seeded:
            return fits
        gather_lists = self._tree.query_ball_point(
            modes[seeded], spec.gather_radius, return_sorted=True
        )
        for j, i in enumerate(seeded):
            idx = np.asarray(gather_lists[j], dtype=int)
            idx = idx[_in_clusters(self._clusters[idx], seed_clusters[i])]
            if len(idx) >= spec.min_points:
                fits[i] = self._fit(self._car_points[idx])
        return fits

    def _fit(self, local: np.ndarray) -> Fit:
        """Fit a template box to the gathered local points of one proposal."""
        spec = self.spec
        local_xy = local[:, :2]
        # Extents (classification) and yaw share one principal-axis
        # analysis: both need the same centred covariance and its
        # eigendecomposition, so compute it once per proposal.
        centroid = local_xy.mean(axis=0)
        if len(local_xy) >= 2:
            centered = local_xy - centroid
            cov = centered.T @ centered / len(local_xy)
            eigenvalues, eigenvectors = np.linalg.eigh(cov)
            projected = centered @ eigenvectors
            spans = projected.max(axis=0) - projected.min(axis=0)
            major, minor = float(spans[1]), float(spans[0])
        else:
            major = minor = 0.0
        object_class = CAR
        if spec.multi_class:
            height_span = float(local[:, 2].max() - self.ground_z)
            object_class = classify_cluster(major, minor, height_span)
            length, width, height = object_class.template
        else:
            length, width, height = spec.template_size
        if len(local_xy) >= 3:
            axis = eigenvectors[:, int(np.argmax(eigenvalues))]
            base_yaw = float(np.arctan2(axis[1], axis[0]))
        else:
            base_yaw = 0.0
        # PCA orientation is ambiguous on merged clouds: a row of parked
        # cars fused into one cluster has its principal axis along the
        # *row*, perpendicular to every car in it.  Fit both orientations
        # and keep the box that explains the local points best (many
        # inside, few left out).  For partial views the L-shape slide
        # direction is itself ambiguous when the points were contributed by
        # a *cooperator* (the receiver-frame origin is not their sensor):
        # both slide directions are tried, tie-broken by the ground-shadow
        # test — the real vehicle sits where the ground shows no returns.
        yaw_candidates = [
            (yaw, _l_shape_centers(local_xy, yaw, length, width, centroid=centroid))
            for yaw in (base_yaw, base_yaw + np.pi / 2.0)
        ]
        ground = self._ground_neighborhood(centroid, yaw_candidates, length, width)
        best: tuple[float, float, float, Box3D] | None = None
        for yaw, candidates in yaw_candidates:
            boxes = [
                Box3D(
                    np.array([c[0], c[1], self.ground_z + height / 2.0]),
                    length,
                    width,
                    height,
                    yaw,
                )
                for c in candidates
            ]
            chosen = boxes[0]
            flipped = 0.0
            shadow = _ground_points_under(ground, chosen)
            if len(boxes) == 2:
                # Override the receiver-as-sensor slide only on decisive
                # ground evidence: many returns under the default placement
                # and clearly fewer under the mirrored one.  Doubly-shadowed
                # ground (occluders on both sides) must not flip the box.
                shadow_mirrored = _ground_points_under(ground, boxes[1])
                if shadow >= 8 and shadow_mirrored * 2 <= shadow:
                    chosen = boxes[1]
                    shadow = shadow_mirrored
                    flipped = 1.0
            inside = int(points_in_box(local, chosen, margin=0.1).sum())
            fitness = inside - 2 * (len(local) - inside)
            # Orientation choice: best point fit first; then the placement
            # whose footprint shadows the ground (a box sticking out over
            # visible ground has the wrong yaw for this cluster); finally,
            # prefer an unflipped candidate — where ground sampling is too
            # sparse to decide, the receiver-as-sensor slide is the prior.
            key = (fitness, -float(shadow), -flipped)
            if best is None or key > best[:3]:
                best = (fitness, -float(shadow), -flipped, chosen)
        return Fit(best[3], local, object_class)

    def _ground_neighborhood(
        self,
        centroid: np.ndarray,
        yaw_candidates: list,
        length: float,
        width: float,
    ) -> np.ndarray | None:
        """Ground returns covering every candidate footprint of one fit.

        One KD-tree lookup on a disk that provably contains all candidate
        boxes (each centre's offset from the centroid plus the footprint
        circumradius) replaces a per-box query; the footprint membership
        test then runs on this superset with identical results.
        """
        if self._ground_tree is None:
            return None
        circumradius = float(np.hypot(length, width)) / 2.0
        radius = 0.0
        for _yaw, candidates in yaw_candidates:
            for c in candidates:
                offset = float(np.hypot(c[0] - centroid[0], c[1] - centroid[1]))
                radius = max(radius, offset + circumradius)
        idx = self._ground_tree.query_ball_point(
            (float(centroid[0]), float(centroid[1])), radius
        )
        if not idx:
            return None
        return self._ground_tree.data[idx]


def _ground_points_under(ground: np.ndarray | None, box: Box3D) -> int:
    """Ground returns inside the box footprint.

    ``ground`` must be a superset of the footprint's ground returns (see
    :meth:`BoxRefiner._ground_neighborhood`); None means no ground data.
    Interior only (negative margin): returns hugging the box *edges* are
    object-face points grazing the ground band, not open ground.  The test
    is purely planar — the z comparison is vacuous for ground returns —
    so only the footprint rotation is computed.
    """
    if ground is None:
        return 0
    cx, cy = float(box.center[0]), float(box.center[1])
    rx = ground[:, 0] - cx
    ry = ground[:, 1] - cy
    cos_y, sin_y = np.cos(-box.yaw), np.sin(-box.yaw)
    u = rx * cos_y - ry * sin_y
    v = rx * sin_y + ry * cos_y
    return int(
        (
            (np.abs(u) <= box.length / 2 - 0.4)
            & (np.abs(v) <= box.width / 2 - 0.4)
        ).sum()
    )


def _in_clusters(labels: np.ndarray, seed_clusters: np.ndarray) -> np.ndarray:
    """Membership mask of ``labels`` in ``seed_clusters``.

    Equivalent to ``np.isin`` but skips its sort-based machinery for the
    common few-seed-cluster cases (a proposal usually sits on one or two
    structures), which profile hot inside refine.
    """
    if len(seed_clusters) == 1:
        return labels == seed_clusters[0]
    if len(seed_clusters) <= 4:
        mask = labels == seed_clusters[0]
        for cluster in seed_clusters[1:]:
            mask |= labels == cluster
        return mask
    return np.isin(labels, seed_clusters)


def _l_shape_centers(
    xy: np.ndarray,
    yaw: float,
    length: float,
    width: float,
    centroid: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Candidate box centres for a partial view: both slide directions.

    The first candidate follows the receiver-as-sensor assumption of
    :func:`_l_shape_center`; the second slides the unseen half the opposite
    way (correct when the points came from a cooperator on the far side).
    Identical candidates (full views, no deficit) are deduplicated.

    Both candidates share every intermediate (centroid, yaw frame,
    observed extents); only the final slide direction differs.  The maths
    is kept in scalars — this runs twice per proposal and array-op
    overhead on 2-vectors dominated its profile.
    """
    if centroid is None:
        centroid = xy.mean(axis=0)
    c0, c1 = float(centroid[0]), float(centroid[1])
    cos_y, sin_y = float(np.cos(yaw)), float(np.sin(yaw))
    dx = xy[:, 0] - c0
    dy = xy[:, 1] - c1
    u = dx * cos_y + dy * sin_y
    v = dy * cos_y - dx * sin_y
    # The sensor sits at the frame origin; project it into the yaw frame.
    sensor_u = -c0 * cos_y - c1 * sin_y
    sensor_v = c0 * sin_y - c1 * cos_y
    norm = float(np.sqrt(sensor_u * sensor_u + sensor_v * sensor_v))
    if norm > 1e-9:
        unit_u, unit_v = sensor_u / norm, sensor_v / norm
    else:
        unit_u = unit_v = 0.0
    primary_uv = [0.0, 0.0]
    mirrored_uv = [0.0, 0.0]
    for axis, dim, unit, proj in (
        (0, length, unit_u, u),
        (1, width, unit_v, v),
    ):
        lo, hi = float(proj.min()), float(proj.max())
        observed_mid = (lo + hi) / 2.0
        deficit = max(0.0, (dim - (hi - lo)) / 2.0)
        primary_uv[axis] = observed_mid - deficit * unit
        mirrored_uv[axis] = observed_mid + deficit * unit
    px = c0 + primary_uv[0] * cos_y - primary_uv[1] * sin_y
    py = c1 + primary_uv[0] * sin_y + primary_uv[1] * cos_y
    mx = c0 + mirrored_uv[0] * cos_y - mirrored_uv[1] * sin_y
    my = c1 + mirrored_uv[0] * sin_y + mirrored_uv[1] * cos_y
    # Same tolerance semantics as np.allclose(primary, mirrored, atol=1e-9)
    # without its (measurably slow) broadcasting machinery.
    if abs(px - mx) <= 1e-9 + 1e-5 * abs(mx) and abs(py - my) <= 1e-9 + 1e-5 * abs(my):
        return [np.array([px, py])]
    return [np.array([px, py]), np.array([mx, my])]


def _l_shape_center(
    xy: np.ndarray, yaw: float, length: float, width: float, flip: bool = False
) -> np.ndarray:
    """Estimate the box centre from partially observed faces.

    A LiDAR sees only the faces turned towards it, so the raw centroid sits
    *on* those faces rather than at the vehicle centre.  Classic L-shape
    reasoning fixes this: in the box's yaw frame, wherever the observed
    extent along an axis falls short of the template dimension, the box is
    slid away from the sensor (the unseen half is on the far side).
    """
    centroid = xy.mean(axis=0)
    cos_y, sin_y = np.cos(yaw), np.sin(yaw)
    axes = np.array([[cos_y, sin_y], [-sin_y, cos_y]])  # rows: u, v
    uv = (xy - centroid) @ axes.T
    sensor_uv = (np.zeros(2) - centroid) @ axes.T  # sensor at the frame origin
    norm = float(np.linalg.norm(sensor_uv))
    # Continuous shift direction: the unseen half lies opposite the sensor.
    # Scaling by the unit component (rather than its sign) keeps face-on
    # views stable — a near-zero component must not flip a half-car shift.
    sensor_unit = sensor_uv / norm if norm > 1e-9 else np.zeros(2)
    if flip:
        sensor_unit = -sensor_unit
    center_uv = np.zeros(2)
    for axis, dim in ((0, length), (1, width)):
        lo, hi = float(uv[:, axis].min()), float(uv[:, axis].max())
        observed_mid = (lo + hi) / 2.0
        deficit = max(0.0, (dim - (hi - lo)) / 2.0)
        center_uv[axis] = observed_mid - deficit * sensor_unit[axis]
    return centroid + center_uv @ axes


def _planar_extents(xy: np.ndarray) -> tuple[float, float]:
    """(major, minor) extents of a 2D point set along its principal axes."""
    if len(xy) < 2:
        return 0.0, 0.0
    centered = xy - xy.mean(axis=0)
    cov = centered.T @ centered / len(xy)
    _evals, evecs = np.linalg.eigh(cov)
    projected = centered @ evecs
    spans = projected.max(axis=0) - projected.min(axis=0)
    return float(spans[1]), float(spans[0])


def _principal_yaw(xy: np.ndarray) -> float:
    """Yaw of the principal axis of a 2D point set (0 when degenerate)."""
    if len(xy) < 3:
        return 0.0
    centered = xy - xy.mean(axis=0)
    cov = centered.T @ centered / len(xy)
    eigenvalues, eigenvectors = np.linalg.eigh(cov)
    major = eigenvectors[:, int(np.argmax(eigenvalues))]
    return float(np.arctan2(major[1], major[0]))
