"""Point-evidence box refinement for RPN proposals.

The analytic inference path decodes a proposal by fitting a car-template
box to the obstacle points around the proposing BEV cell: re-centre on the
local centroid, orient along the principal axis of the local point spread,
and rest the box on the estimated ground.  This replaces the learned
regression head when SPOD runs with analytic weights (the learned head is
used when the network has been trained).

Refinement is *cluster-scoped*: points are first grouped into contiguous
structures (same grid clustering the calibrator uses), and a proposal only
fits to the cluster(s) directly under it.  Without this, a dense neighbour
two metres away drags the centroid off the actual object — visible as
detections "migrating" between adjacent parked cars on merged clouds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.detection.anchors import CAR_ANCHOR_SIZE
from repro.detection.classes import CAR, ObjectClass, classify_cluster
from repro.geometry.boxes import Box3D, points_in_box

__all__ = ["BoxRefiner", "RefinementSpec", "Fit"]


@dataclass(frozen=True)
class Fit:
    """A refined proposal: the fitted box, its supporting points and class."""

    box: Box3D
    points: np.ndarray
    object_class: ObjectClass = CAR

    def __iter__(self):
        # Unpacks as (box, points) for backwards compatibility; the class
        # rides along as an attribute.
        yield self.box
        yield self.points


@dataclass(frozen=True)
class RefinementSpec:
    """Tuning knobs of the point-based box fit.

    Attributes:
        gather_radius: BEV radius (m) of points considered around a proposal.
        seed_radius: radius locating the cluster(s) under the proposal.
        min_points: proposals with fewer local points are dropped.
        template_size: (l, w, h) of the fitted box (mean car).
    """

    gather_radius: float = 2.4
    seed_radius: float = 1.4
    multi_class: bool = True
    meanshift_radius: float = 1.5
    meanshift_iterations: int = 3
    min_points: int = 4
    template_size: tuple[float, float, float] = CAR_ANCHOR_SIZE


class BoxRefiner:
    """Fits car-template boxes to local obstacle points.

    Build once per cloud (it indexes the points in a KD-tree and labels
    structural clusters), then call :meth:`refine` per proposal.
    """

    def __init__(
        self,
        obstacle_xyz: np.ndarray,
        ground_z: float,
        spec: RefinementSpec | None = None,
        ground_xyz: np.ndarray | None = None,
    ) -> None:
        from repro.detection.calibrate import _label_clusters

        self.spec = spec or RefinementSpec()
        self.points = np.asarray(obstacle_xyz, dtype=float).reshape(-1, 3)
        self.ground_z = float(ground_z)
        # Ground returns disambiguate partial views: the ground beneath a
        # real vehicle is shadowed, so of two candidate box placements the
        # one covering fewer ground returns is the physical one.
        if ground_xyz is not None and len(ground_xyz):
            self._ground_tree = cKDTree(
                np.asarray(ground_xyz, dtype=float)[:, :2]
            )
        else:
            self._ground_tree = None
        # Cars live below ~2.3 m above ground; taller returns (walls, trees)
        # must not drag the fit.
        car_band = self.points[:, 2] <= self.ground_z + 2.3
        self._car_points = self.points[car_band]
        if len(self._car_points):
            self._tree = cKDTree(self._car_points[:, :2])
            self._clusters, _majors, _minors = _label_clusters(self._car_points[:, :2])
        else:
            self._tree = None
            self._clusters = np.zeros(0, dtype=int)

    def refine(self, proposal_xy: np.ndarray) -> Fit | None:
        """Fit a box near ``proposal_xy``.

        Returns a :class:`Fit` (unpacks as ``(box, local_points)``) or None
        when the neighbourhood is too sparse to support an object
        hypothesis.
        """
        if self._tree is None:
            return None
        spec = self.spec
        center = np.asarray(proposal_xy[:2], dtype=float)
        seed_idx = np.asarray(
            self._tree.query_ball_point(center, spec.seed_radius), dtype=int
        )
        if not len(seed_idx):
            return None
        # Adopt the *nearest* structure under the proposal, plus anything
        # almost as close — but not a neighbouring object that merely grazes
        # the seed radius (a pedestrian proposal must not adopt the car
        # parked 1.2 m away).
        distances = np.linalg.norm(self._car_points[seed_idx, :2] - center, axis=1)
        cutoff = max(0.7, float(distances.min()) + 0.25)
        seed_clusters = np.unique(self._clusters[seed_idx[distances <= cutoff]])
        # Mean-shift with a sub-car radius: converge onto the local density
        # mode (one vehicle's own point mass) instead of the centroid of
        # whatever the proposal radius happens to cover.  Essential on
        # merged clouds, where two viewpoints can fuse a whole row of
        # parked cars into one connected cluster.
        mode = center
        for _ in range(spec.meanshift_iterations):
            near = np.asarray(
                self._tree.query_ball_point(mode, spec.meanshift_radius), dtype=int
            )
            near = near[np.isin(self._clusters[near], seed_clusters)]
            if len(near) < spec.min_points:
                break
            mode = self._car_points[near][:, :2].mean(axis=0)
        idx = np.asarray(
            self._tree.query_ball_point(mode, spec.gather_radius), dtype=int
        )
        idx = idx[np.isin(self._clusters[idx], seed_clusters)]
        if len(idx) < spec.min_points:
            return None
        local = self._car_points[idx]
        object_class = CAR
        if spec.multi_class:
            major, minor = _planar_extents(local[:, :2])
            height_span = float(local[:, 2].max() - self.ground_z)
            object_class = classify_cluster(major, minor, height_span)
            length, width, height = object_class.template
        else:
            length, width, height = spec.template_size
        base_yaw = _principal_yaw(local[:, :2])
        # PCA orientation is ambiguous on merged clouds: a row of parked
        # cars fused into one cluster has its principal axis along the
        # *row*, perpendicular to every car in it.  Fit both orientations
        # and keep the box that explains the local points best (many
        # inside, few left out).  For partial views the L-shape slide
        # direction is itself ambiguous when the points were contributed by
        # a *cooperator* (the receiver-frame origin is not their sensor):
        # both slide directions are tried, tie-broken by the ground-shadow
        # test — the real vehicle sits where the ground shows no returns.
        pts4 = np.column_stack([local, np.zeros(len(local))])
        best: tuple[float, float, Box3D] | None = None
        for yaw in (base_yaw, base_yaw + np.pi / 2.0):
            candidates = _l_shape_centers(local[:, :2], yaw, length, width)
            boxes = [
                Box3D(
                    np.array([c[0], c[1], self.ground_z + height / 2.0]),
                    length,
                    width,
                    height,
                    yaw,
                )
                for c in candidates
            ]
            chosen = boxes[0]
            flipped = 0.0
            shadow = self._ground_points_under(chosen)
            if len(boxes) == 2:
                # Override the receiver-as-sensor slide only on decisive
                # ground evidence: many returns under the default placement
                # and clearly fewer under the mirrored one.  Doubly-shadowed
                # ground (occluders on both sides) must not flip the box.
                shadow_mirrored = self._ground_points_under(boxes[1])
                if shadow >= 8 and shadow_mirrored * 2 <= shadow:
                    chosen = boxes[1]
                    shadow = shadow_mirrored
                    flipped = 1.0
            inside = int(points_in_box(pts4, chosen, margin=0.1).sum())
            fitness = inside - 2 * (len(local) - inside)
            # Orientation choice: best point fit first; then the placement
            # whose footprint shadows the ground (a box sticking out over
            # visible ground has the wrong yaw for this cluster); finally,
            # prefer an unflipped candidate — where ground sampling is too
            # sparse to decide, the receiver-as-sensor slide is the prior.
            key = (fitness, -float(shadow), -flipped)
            if best is None or key > best[:3]:
                best = (fitness, -float(shadow), -flipped, chosen)
        return Fit(best[3], local, object_class)

    def _ground_points_under(self, box: Box3D) -> int:
        """Ground returns inside the box footprint (0 without ground data)."""
        if self._ground_tree is None:
            return 0
        radius = float(np.hypot(box.length, box.width)) / 2.0
        idx = self._ground_tree.query_ball_point(box.center[:2], radius)
        if not idx:
            return 0
        candidates = self._ground_tree.data[idx]
        pts4 = np.column_stack(
            [
                candidates,
                np.full(len(candidates), box.center[2]),
                np.zeros(len(candidates)),
            ]
        )
        # Interior only: returns hugging the box *edges* are object-face
        # points grazing the ground band, not open ground.
        return int(points_in_box(pts4, box, margin=-0.4).sum())


def _l_shape_centers(
    xy: np.ndarray, yaw: float, length: float, width: float
) -> list[np.ndarray]:
    """Candidate box centres for a partial view: both slide directions.

    The first candidate follows the receiver-as-sensor assumption of
    :func:`_l_shape_center`; the second slides the unseen half the opposite
    way (correct when the points came from a cooperator on the far side).
    Identical candidates (full views, no deficit) are deduplicated.
    """
    primary = _l_shape_center(xy, yaw, length, width)
    mirrored = _l_shape_center(xy, yaw, length, width, flip=True)
    if np.allclose(primary, mirrored, atol=1e-9):
        return [primary]
    return [primary, mirrored]


def _l_shape_center(
    xy: np.ndarray, yaw: float, length: float, width: float, flip: bool = False
) -> np.ndarray:
    """Estimate the box centre from partially observed faces.

    A LiDAR sees only the faces turned towards it, so the raw centroid sits
    *on* those faces rather than at the vehicle centre.  Classic L-shape
    reasoning fixes this: in the box's yaw frame, wherever the observed
    extent along an axis falls short of the template dimension, the box is
    slid away from the sensor (the unseen half is on the far side).
    """
    centroid = xy.mean(axis=0)
    cos_y, sin_y = np.cos(yaw), np.sin(yaw)
    axes = np.array([[cos_y, sin_y], [-sin_y, cos_y]])  # rows: u, v
    uv = (xy - centroid) @ axes.T
    sensor_uv = (np.zeros(2) - centroid) @ axes.T  # sensor at the frame origin
    norm = float(np.linalg.norm(sensor_uv))
    # Continuous shift direction: the unseen half lies opposite the sensor.
    # Scaling by the unit component (rather than its sign) keeps face-on
    # views stable — a near-zero component must not flip a half-car shift.
    sensor_unit = sensor_uv / norm if norm > 1e-9 else np.zeros(2)
    if flip:
        sensor_unit = -sensor_unit
    center_uv = np.zeros(2)
    for axis, dim in ((0, length), (1, width)):
        lo, hi = float(uv[:, axis].min()), float(uv[:, axis].max())
        observed_mid = (lo + hi) / 2.0
        deficit = max(0.0, (dim - (hi - lo)) / 2.0)
        center_uv[axis] = observed_mid - deficit * sensor_unit[axis]
    return centroid + center_uv @ axes


def _planar_extents(xy: np.ndarray) -> tuple[float, float]:
    """(major, minor) extents of a 2D point set along its principal axes."""
    if len(xy) < 2:
        return 0.0, 0.0
    centered = xy - xy.mean(axis=0)
    cov = centered.T @ centered / len(xy)
    _evals, evecs = np.linalg.eigh(cov)
    projected = centered @ evecs
    spans = projected.max(axis=0) - projected.min(axis=0)
    return float(spans[1]), float(spans[0])


def _principal_yaw(xy: np.ndarray) -> float:
    """Yaw of the principal axis of a 2D point set (0 when degenerate)."""
    if len(xy) < 3:
        return 0.0
    centered = xy - xy.mean(axis=0)
    cov = centered.T @ centered / len(xy)
    eigenvalues, eigenvectors = np.linalg.eigh(cov)
    major = eigenvectors[:, int(np.argmax(eigenvalues))]
    return float(np.arctan2(major[1], major[0]))
