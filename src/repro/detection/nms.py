"""Rotated non-maximum suppression on BEV boxes."""

from __future__ import annotations

from repro.detection.detections import Detection
from repro.geometry.boxes import iou_bev

__all__ = ["rotated_nms"]


def rotated_nms(
    detections: list[Detection], iou_threshold: float = 0.3
) -> list[Detection]:
    """Greedy NMS: keep the highest-scoring box, drop overlapping rivals.

    Uses exact rotated BEV IoU.  Detection counts after NMS are what the
    paper's Figs. 3/4/6/7 report.
    """
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError("iou_threshold must be in [0, 1]")
    remaining = sorted(detections, key=lambda d: d.score, reverse=True)
    kept: list[Detection] = []
    while remaining:
        best = remaining.pop(0)
        kept.append(best)
        remaining = [
            d for d in remaining if iou_bev(best.box, d.box) <= iou_threshold
        ]
    return kept
