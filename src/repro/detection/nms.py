"""Rotated non-maximum suppression on BEV boxes."""

from __future__ import annotations

import numpy as np

from repro.detection.detections import Detection
from repro.geometry.boxes import iou_bev_from_corners

__all__ = ["rotated_nms"]


def rotated_nms(
    detections: list[Detection], iou_threshold: float = 0.3
) -> list[Detection]:
    """Greedy NMS: keep the highest-scoring box, drop overlapping rivals.

    Uses exact rotated BEV IoU, but only for rivals whose circumscribed
    circles overlap the current keeper — distant pairs cannot intersect,
    so they are rejected with a vectorised centre-distance test and never
    pay the polygon clip.  Detection counts after NMS are what the
    paper's Figs. 3/4/6/7 report.
    """
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError("iou_threshold must be in [0, 1]")
    if len(detections) <= 1:
        return sorted(detections, key=lambda d: d.score, reverse=True)

    scores = np.array([d.score for d in detections])
    # Stable sort matches sorted(..., reverse=True) tie-breaking.
    order = np.argsort(-scores, kind="stable")

    centers = np.array([d.box.center[:2] for d in detections])
    sizes = np.array([[d.box.length, d.box.width] for d in detections])
    yaws = np.array([d.box.yaw for d in detections])
    areas = sizes.prod(axis=1)
    radii = np.hypot(sizes[:, 0], sizes[:, 1]) / 2.0

    # All corner polygons in one shot: rotate the (+-l/2, +-w/2) template.
    half = sizes / 2.0
    template = np.array([[1.0, 1.0], [-1.0, 1.0], [-1.0, -1.0], [1.0, -1.0]])
    local = template[None, :, :] * half[:, None, :]
    cos, sin = np.cos(yaws), np.sin(yaws)
    rot = np.empty((len(detections), 2, 2))
    rot[:, 0, 0] = cos
    rot[:, 0, 1] = -sin
    rot[:, 1, 0] = sin
    rot[:, 1, 1] = cos
    corners = np.einsum("mij,mkj->mki", rot, local) + centers[:, None, :]

    alive = np.ones(len(detections), dtype=bool)
    kept: list[int] = []
    for rank, i in enumerate(order):
        if not alive[i]:
            continue
        kept.append(int(i))
        alive[i] = False
        rest = order[rank + 1 :]
        rest = rest[alive[rest]]
        if rest.size == 0:
            continue
        dist2 = ((centers[rest] - centers[i]) ** 2).sum(axis=1)
        near = rest[dist2 <= (radii[rest] + radii[i]) ** 2]
        for j in near:
            iou = iou_bev_from_corners(
                corners[i], areas[i], corners[j], areas[j]
            )
            if iou > iou_threshold:
                alive[j] = False
    return [detections[i] for i in kept]
