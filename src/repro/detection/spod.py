"""SPOD: the assembled Sparse Point-cloud Object Detection pipeline.

The end-to-end detector of paper Fig. 1: preprocessing -> voxel feature
extractor -> sparse convolutional middle layers -> region proposal network,
followed by proposal decoding, point-evidence confidence calibration and
rotated NMS.  One detector instance handles both dense (64-beam) and
sparse (16-beam) clouds — the property the paper names SPOD for — and, in
Cooper, runs unchanged on merged multi-vehicle clouds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.detection.anchors import AnchorGrid, decode_boxes
from repro.detection.calibrate import CalibratorWeights, ConfidenceCalibrator
from repro.detection.detections import Detection
from repro.detection.middle import SparseMiddleExtractor
from repro.detection.nms import rotated_nms
from repro.detection.preprocess import preprocess
from repro.detection.refine import BoxRefiner, RefinementSpec
from repro.detection.rpn import RegionProposalNetwork
from repro.detection.vfe import VoxelFeatureEncoder
from repro.geometry.boxes import Box3D
from repro.pointcloud.cloud import PointCloud
from repro.pointcloud.voxel import VoxelGridSpec, voxelize
from repro.profiling import PROFILER

__all__ = ["SPODConfig", "SPOD"]


def _suppress_contained(detections: list[Detection]) -> list[Detection]:
    """Drop small-class boxes sitting inside a stronger car box.

    Rotated NMS keys on IoU, which stays tiny for a pedestrian-sized box
    inside a car-sized one; without this, a car's wheel cluster could be
    double-reported as a pedestrian.
    """
    cars = [d for d in detections if d.label == "car"]
    kept: list[Detection] = []
    for det in detections:
        if det.label != "car":
            inside = any(
                c.score >= det.score
                and np.linalg.norm(c.box.center[:2] - det.box.center[:2])
                < c.box.length / 2.0
                for c in cars
            )
            if inside:
                continue
        kept.append(det)
    return kept


@dataclass(frozen=True)
class SPODConfig:
    """Configuration of the SPOD pipeline.

    Attributes:
        voxel_spec: detection range and voxel geometry.  The default covers
            the receiver's surroundings including the area behind it, since
            cooperators may contribute points from any direction.
        vfe_channels: VFE output feature width.  The analytic path uses
            exactly 4 physically-meaningful channels; widen only when
            training the learned heads.
        hidden_channels: RPN trunk width.
        candidate_threshold: minimum RPN objectness (probability) for a BEV
            cell to spawn a proposal.
        detection_threshold: minimum calibrated score to report — scores
            below this are the paper's X (missing detection).
        nms_iou: rotated BEV IoU above which detections suppress each other.
        densify: run the spherical densification preprocessing of [27].
        use_learned_heads: decode boxes/scores from the trained network
            heads instead of the analytic refine+calibrate path.
        refinement: box-fitting knobs for the analytic path.
        calibrator: confidence model weights.
        dtype: compute dtype for the kernel path (voxelize -> VFE ->
            middle -> RPN): ``"float32"``, ``"float64"``, or ``None`` to
            auto-select — float32 for :meth:`SPOD.pretrained` (inference),
            float64 for a plain :class:`SPOD` (training/calibration).  The
            analytic decode stage always runs in float64.
    """

    voxel_spec: VoxelGridSpec = field(
        default_factory=lambda: VoxelGridSpec(
            point_range=(-40.0, -40.0, -3.0, 72.0, 40.0, 1.0),
            voxel_size=(0.4, 0.4, 0.8),
            max_points_per_voxel=35,
        )
    )
    vfe_channels: int = 4
    hidden_channels: int = 4
    num_yaws: int = 2
    candidate_threshold: float = 0.35
    detection_threshold: float = 0.5
    nms_iou: float = 0.2
    densify: bool = False
    use_learned_heads: bool = False
    refinement: RefinementSpec = field(default_factory=RefinementSpec)
    calibrator: CalibratorWeights = field(default_factory=CalibratorWeights)
    seed: int = 0
    dtype: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.candidate_threshold < 1.0:
            raise ValueError("candidate_threshold must be in (0, 1)")
        if not 0.0 <= self.detection_threshold <= 1.0:
            raise ValueError("detection_threshold must be in [0, 1]")
        if self.dtype not in (None, "float32", "float64"):
            raise ValueError("dtype must be None, 'float32' or 'float64'")


class SPOD:
    """The Sparse Point-cloud Object Detection network (paper Section III).

    Typical use::

        detector = SPOD.pretrained()
        detections = detector.detect(cloud)

    ``detect`` reports detections at or above the configured threshold —
    the blue/red boxes of the paper's figures.  ``detect_all`` additionally
    returns sub-threshold candidates, which the evaluation harness uses to
    recover the raw scores behind the X cells of Figs. 3 and 6.
    """

    def __init__(
        self, config: SPODConfig | None = None, *, default_dtype: str = "float64"
    ) -> None:
        self.config = config or SPODConfig()
        cfg = self.config
        # The config wins; otherwise the constructor's default applies —
        # float64 for a plain SPOD (training/calibration), float32 when
        # built through :meth:`pretrained` (inference).
        self.dtype = np.dtype(cfg.dtype or default_dtype)
        nz = cfg.voxel_spec.grid_shape[2]
        self.vfe = VoxelFeatureEncoder(
            cfg.vfe_channels,
            z_range=(cfg.voxel_spec.point_range[2], cfg.voxel_spec.point_range[5]),
            seed=cfg.seed,
        )
        self.vfe.compute_dtype = self.dtype
        self.middle = SparseMiddleExtractor(
            cfg.vfe_channels, cfg.vfe_channels, cfg.vfe_channels, seed=cfg.seed + 1
        )
        self.rpn = RegionProposalNetwork(
            cfg.vfe_channels * nz,
            cfg.hidden_channels,
            num_yaws=cfg.num_yaws,
            seed=cfg.seed + 2,
        )
        self.anchors = AnchorGrid(cfg.voxel_spec)
        self._nz = nz

    @staticmethod
    def pretrained(config: SPODConfig | None = None) -> "SPOD":
        """Build a detector with the analytic ("pretrained") weights.

        The weights make the network compute car-band point density minus a
        tall-structure penalty; see :meth:`RegionProposalNetwork.analytic_init`.
        Unless the config pins a dtype, the kernel path runs in float32 —
        the inference default (use ``SPODConfig(dtype="float64")`` to force
        the training-precision path).
        """
        detector = SPOD(config, default_dtype="float32")
        detector.vfe.analytic_init()
        detector.middle.analytic_init()
        nz = detector._nz
        car_bins = tuple(b for b in (1, 2, 3) if b < nz) or (0,)
        tall_bin = nz - 1
        detector.rpn.analytic_init(nz, car_bins=car_bins, tall_bin=tall_bin)
        return detector

    def parameters(self):
        """Yield every trainable parameter of the network stages."""
        yield from self.vfe.parameters()
        yield from self.middle.parameters()
        yield from self.rpn.parameters()

    def equivalent_to(self, other: "SPOD") -> bool:
        """True when two detectors are interchangeable for batching.

        The session's batched detection path runs one detector over every
        agent's cloud, which is only sound when the agents' detectors
        would compute the same thing — same config, same compute dtype,
        same weights.  Checked on live values (not identity), since the
        default agent factory builds separate-but-identical detectors.
        """
        if self is other:
            return True
        if self.config != other.config or self.dtype != other.dtype:
            return False
        mine = list(self.parameters())
        theirs = list(other.parameters())
        return len(mine) == len(theirs) and all(
            np.array_equal(a.value, b.value) for a, b in zip(mine, theirs)
        )

    # -- network forward ---------------------------------------------------
    def forward_features(
        self, cloud: PointCloud, inference: bool = False, temporal=None,
        tap: bool = False,
    ):
        """Preprocess + voxelize + VFE + middle; return tensors up to BEV.

        With ``inference=True`` the BEV densification skips channels the
        RPN's first convolution provably ignores (zero weights) — exact for
        the forward pass but useless for training, where those channels
        still need gradients.  ``temporal`` (a
        :class:`repro.temporal.TemporalState`) enables the frame-delta fast
        paths through voxelisation and rulebook construction; outputs are
        bit-identical with or without it.

        With ``tap=True`` the returned dict additionally exposes the
        sparse tensors the fusion layer taps: ``"vfe"`` (the VFE's output)
        and ``"middle"`` (the convolutional block's sparse output, i.e.
        exactly what ``"bev"`` densifies).  This is the feature-level
        exchange surface of :mod:`repro.fusion.feature` — per-voxel
        features plus their grid coordinates, orders of magnitude smaller
        than the raw cloud.
        """
        cfg = self.config
        with PROFILER.stage("spod.preprocess"):
            pre = preprocess(
                cloud,
                max_range=float(
                    np.abs(np.array(cfg.voxel_spec.point_range)).max() * 1.5
                ),
                densify=cfg.densify,
            )
        voxel_cache = None
        if temporal is not None and temporal.config.voxel_delta:
            voxel_cache = temporal.voxel
        with PROFILER.stage("spod.voxelize"):
            grid = voxelize(
                pre.obstacles,
                cfg.voxel_spec,
                seed=cfg.seed,
                dtype=self.dtype,
                cache=voxel_cache,
            )
        with PROFILER.stage("spod.vfe"):
            sparse = self.vfe(grid)
        channel_mask = None
        if inference:
            used = self.rpn.used_input_channels()
            if not used.all():
                channel_mask = used
        with PROFILER.stage("spod.middle"):
            middle = self.middle.forward_sparse(sparse, temporal=temporal)
            bev = self.middle.to_dense(middle, channel_mask=channel_mask)
        tensors = {"pre": pre, "grid": grid, "bev": bev}
        if tap:
            tensors["vfe"] = sparse
            tensors["middle"] = middle
        return tensors

    def rpn_apply(self, bev: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The RPN head pass, profiled; ``bev`` may batch several maps."""
        with PROFILER.stage("spod.rpn"):
            return self.rpn(bev)

    def forward(self, cloud: PointCloud, inference: bool = False):
        """Run preprocessing + the network; return the internal tensors.

        Returns a dict with the preprocess result, voxel grid, BEV feature
        map and the RPN's (cls_logits, reg) outputs.
        """
        tensors = self.forward_features(cloud, inference=inference)
        cls_logits, reg = self.rpn_apply(tensors["bev"])
        tensors["cls_logits"] = cls_logits
        tensors["reg"] = reg
        return tensors

    # -- detection ----------------------------------------------------------
    def detect(self, cloud: PointCloud, temporal=None) -> list[Detection]:
        """Detect cars, reporting only scores >= ``detection_threshold``."""
        return [
            d
            for d in self.detect_all(cloud, temporal=temporal)
            if d.score >= self.config.detection_threshold
        ]

    def detect_all(self, cloud: PointCloud, temporal=None) -> list[Detection]:
        """Detect cars including sub-threshold candidates (post-NMS).

        ``temporal`` threads per-agent frame-delta state through the
        pipeline; when the exact cloud recurs, the previous frame's
        post-NMS detections are returned outright (the memo verifies the
        cloud bit-for-bit, so results never differ from a cold run).
        """
        if len(cloud) == 0:
            # A blackout frame (repro.faults) or out-of-range cloud: no
            # active voxels means no proposals; skip the network entirely.
            return []
        if temporal is not None:
            cached = temporal.detect_recall(cloud)
            if cached is not None:
                return list(cached)
        tensors = self.forward_features(cloud, inference=True, temporal=temporal)
        if tensors["grid"].num_voxels == 0:
            result: list[Detection] = []
        else:
            cls_logits, reg = self.rpn_apply(tensors["bev"])
            tensors["cls_logits"] = cls_logits
            tensors["reg"] = reg
            result = self._decode_and_nms(tensors)
        if temporal is not None:
            temporal.detect_store(cloud, result)
        return result

    def detect_batch(self, clouds, temporals=None) -> list[list[Detection]]:
        """Detect over several clouds with one batched RPN pass.

        Each cloud is voxelised and encoded independently (those stages are
        shape-ragged), the BEV maps are stacked on the batch axis, and the
        RPN conv2d stack runs once — amortising its padding, allocation and
        transposition overhead across agents.  Decode/NMS then run per
        cloud.  Empty or zero-voxel clouds yield ``[]`` without touching
        the network.

        Results are a deterministic function of the input clouds alone
        (batch composition is fixed by the caller, not by worker layout),
        which is what the session's bit-identity contract requires.

        ``temporals``, when given, is a parallel list of per-cloud
        :class:`repro.temporal.TemporalState` (or ``None``) objects; memo
        hits skip the network for their cloud, and the remaining live
        clouds still batch through one RPN pass.  The per-sample RPN is
        independent of batch composition, so memo hits cannot perturb the
        other clouds' results.
        """
        if temporals is None:
            temporals = [None] * len(clouds)
        feats: list[dict | None] = []
        results: list[list[Detection]] = [[] for _ in clouds]
        memoised: set[int] = set()
        for i, cloud in enumerate(clouds):
            if len(cloud) == 0:
                feats.append(None)
                continue
            temporal = temporals[i]
            if temporal is not None:
                cached = temporal.detect_recall(cloud)
                if cached is not None:
                    results[i] = list(cached)
                    memoised.add(i)
                    feats.append(None)
                    continue
            tensors = self.forward_features(
                cloud, inference=True, temporal=temporal
            )
            feats.append(tensors if tensors["grid"].num_voxels else None)
        live = [i for i, f in enumerate(feats) if f is not None]
        if live:
            bev = np.concatenate([feats[i]["bev"] for i in live], axis=0)
            cls_logits, reg = self.rpn_apply(bev)
            for j, i in enumerate(live):
                tensors = feats[i]
                tensors["cls_logits"] = cls_logits[j : j + 1]
                tensors["reg"] = reg[j : j + 1]
                results[i] = self._decode_and_nms(tensors)
        for i, cloud in enumerate(clouds):
            temporal = temporals[i]
            if temporal is not None and len(cloud) > 0 and i not in memoised:
                temporal.detect_store(cloud, results[i])
        return results

    def _decode_and_nms(self, tensors) -> list[Detection]:
        with PROFILER.stage("spod.decode"):
            if self.config.use_learned_heads:
                raw = self._decode_learned(tensors)
            else:
                raw = self._decode_analytic(tensors)
        with PROFILER.stage("spod.nms"):
            return rotated_nms(raw, self.config.nms_iou)

    def detect_timed(self, cloud: PointCloud) -> tuple[list[Detection], float]:
        """Like :meth:`detect` but also return wall-clock seconds (Fig. 9)."""
        start = time.perf_counter()
        detections = self.detect(cloud)
        return detections, time.perf_counter() - start

    # -- decoding paths -------------------------------------------------------
    def _candidate_cells(self, cls_logits: np.ndarray) -> np.ndarray:
        """One representative BEV cell per objectness plateau.

        Local maxima on a saturated sigmoid form plateaus; labelling the
        maxima mask and keeping one centroid per connected component keeps
        the proposal count proportional to the number of objects rather
        than the number of above-threshold cells.
        """
        prob = 1.0 / (1.0 + np.exp(-np.clip(cls_logits[0], -60, 60)))
        heat = prob.max(axis=0)
        local_max = heat == ndimage.maximum_filter(heat, size=3)
        mask = local_max & (heat > self.config.candidate_threshold)
        labeled, count = ndimage.label(mask)
        if count == 0:
            return np.zeros((0, 2), dtype=int)
        # Plateau centroids via label-indexed sums — the coordinate sums
        # are exact integer arithmetic, so this matches what
        # ndimage.center_of_mass produced at a fraction of the cost.
        rows, cols = np.nonzero(mask)
        labels = labeled[rows, cols]
        sizes = np.bincount(labels, minlength=count + 1)[1:]
        row_c = np.bincount(labels, weights=rows, minlength=count + 1)[1:] / sizes
        col_c = np.bincount(labels, weights=cols, minlength=count + 1)[1:] / sizes
        return np.round(np.column_stack([row_c, col_c])).astype(int)

    def _decode_analytic(self, tensors) -> list[Detection]:
        pre = tensors["pre"]
        cells = self._candidate_cells(tensors["cls_logits"])
        if len(cells) == 0:
            return []
        full_z = pre.full.xyz[:, 2]
        # Strict ground band: low returns on object *faces* must not count
        # as ground or they would defeat the ground-shadow test.
        ground_mask = full_z <= pre.ground_z + 0.08
        refiner = BoxRefiner(
            pre.obstacles.xyz,
            pre.ground_z,
            self.config.refinement,
            ground_xyz=pre.full.xyz[ground_mask],
        )
        calibrator = ConfidenceCalibrator(
            pre.obstacles.xyz, pre.ground_z, self.config.calibrator
        )
        centers = self.anchors.cell_centers()
        fits = refiner.refine_batch([centers[ix, iy] for ix, iy in cells])
        detections: list[Detection] = []
        # Nearby proposals frequently mean-shift onto the same density mode
        # and produce bit-identical boxes; the calibrator is a pure
        # function of the box, so score each distinct box once.
        scored: dict[tuple, float] = {}
        for fit in fits:
            if fit is None:
                continue
            key = (
                fit.box.center.tobytes(),
                fit.box.length,
                fit.box.width,
                fit.box.height,
                fit.box.yaw,
                fit.object_class.name,
            )
            score = scored.get(key)
            if score is None:
                score = calibrator.score(fit.box, fit.object_class)
                scored[key] = score
            if score < 0.05:
                continue
            detections.append(
                Detection(fit.box, score, label=fit.object_class.name)
            )
        return _suppress_contained(detections)

    def _decode_learned(self, tensors) -> list[Detection]:
        cls_logits = tensors["cls_logits"][0]  # (A, H, W)
        reg = tensors["reg"][0]  # (7A, H, W)
        num_yaws = self.config.num_yaws
        prob = 1.0 / (1.0 + np.exp(-np.clip(cls_logits, -60, 60)))
        anchors = self.anchors
        centers = anchors.cell_centers()
        l, w, h = anchors.anchor_size
        detections: list[Detection] = []
        keep = np.argwhere(prob > self.config.candidate_threshold)
        for a, ix, iy in keep:
            anchor_row = np.array(
                [
                    centers[ix, iy, 0],
                    centers[ix, iy, 1],
                    anchors.anchor_z,
                    l,
                    w,
                    h,
                    anchors.yaws[a],
                ]
            )
            residual = reg[a * 7 : (a + 1) * 7, ix, iy]
            decoded = decode_boxes(residual[None, :], anchor_row[None, :])[0]
            try:
                box = Box3D.from_vector(decoded)
            except ValueError:
                continue  # degenerate size from an untrained head
            detections.append(Detection(box, float(prob[a, ix, iy])))
        return detections
