"""Anchor grid and box residual encoding for the RPN.

Following the VoxelNet/SECOND convention the paper builds on: one anchor
per BEV cell per orientation (0 and 90 degrees), sized to the mean car, and
regression targets are the normalised residuals between ground-truth and
anchor boxes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.boxes import Box3D
from repro.pointcloud.voxel import VoxelGridSpec

__all__ = ["AnchorGrid", "encode_boxes", "decode_boxes", "CAR_ANCHOR_SIZE"]

#: Mean KITTI car size used for anchors: (length, width, height).
CAR_ANCHOR_SIZE = (4.2, 1.8, 1.6)


@dataclass(frozen=True)
class AnchorGrid:
    """Anchors laid out on the BEV grid of a :class:`VoxelGridSpec`.

    Attributes:
        spec: the voxel grid the BEV map derives from.
        anchor_size: (length, width, height) of every anchor.
        yaws: anchor orientations per cell.
        anchor_z: anchor centre height (sensor frame).
    """

    spec: VoxelGridSpec
    anchor_size: tuple[float, float, float] = CAR_ANCHOR_SIZE
    yaws: tuple[float, ...] = (0.0, np.pi / 2)
    anchor_z: float = -1.0

    @property
    def bev_shape(self) -> tuple[int, int]:
        """The (nx, ny) BEV cell grid."""
        nx, ny, _ = self.spec.grid_shape
        return nx, ny

    @property
    def num_anchors(self) -> int:
        """Total anchor count: nx * ny * len(yaws)."""
        nx, ny = self.bev_shape
        return nx * ny * len(self.yaws)

    def cell_centers(self) -> np.ndarray:
        """World (x, y) centres of all BEV cells, shape ``(nx, ny, 2)``."""
        nx, ny = self.bev_shape
        x0, y0 = self.spec.point_range[0], self.spec.point_range[1]
        vx, vy = self.spec.voxel_size[0], self.spec.voxel_size[1]
        xs = x0 + (np.arange(nx) + 0.5) * vx
        ys = y0 + (np.arange(ny) + 0.5) * vy
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        return np.stack([gx, gy], axis=-1)

    def all_anchors(self) -> np.ndarray:
        """Every anchor as ``(N, 7)`` rows ``[x, y, z, l, w, h, yaw]``.

        Ordered cell-major then yaw: index = (ix * ny + iy) * len(yaws) + k.
        """
        centers = self.cell_centers().reshape(-1, 2)
        l, w, h = self.anchor_size
        rows = []
        for cx, cy in centers:
            for yaw in self.yaws:
                rows.append([cx, cy, self.anchor_z, l, w, h, yaw])
        return np.array(rows)

    def anchor_box(self, cell_x: int, cell_y: int, yaw_index: int = 0) -> Box3D:
        """The anchor box at one BEV cell."""
        centers = self.cell_centers()
        cx, cy = centers[cell_x, cell_y]
        l, w, h = self.anchor_size
        return Box3D(
            np.array([cx, cy, self.anchor_z]), l, w, h, self.yaws[yaw_index]
        )


def encode_boxes(gt: np.ndarray, anchors: np.ndarray) -> np.ndarray:
    """Encode ground-truth boxes as residuals against anchors.

    Both arrays are ``(N, 7)`` rows ``[x, y, z, l, w, h, yaw]``.  Uses the
    VoxelNet normalisation: positions by the anchor BEV diagonal / height,
    sizes by log-ratio, yaw by difference.
    """
    gt = np.atleast_2d(np.asarray(gt, dtype=float))
    anchors = np.atleast_2d(np.asarray(anchors, dtype=float))
    diag = np.sqrt(anchors[:, 3] ** 2 + anchors[:, 4] ** 2)
    out = np.empty_like(gt)
    out[:, 0] = (gt[:, 0] - anchors[:, 0]) / diag
    out[:, 1] = (gt[:, 1] - anchors[:, 1]) / diag
    out[:, 2] = (gt[:, 2] - anchors[:, 2]) / anchors[:, 5]
    out[:, 3:6] = np.log(gt[:, 3:6] / anchors[:, 3:6])
    out[:, 6] = gt[:, 6] - anchors[:, 6]
    return out


def decode_boxes(residuals: np.ndarray, anchors: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_boxes`."""
    residuals = np.atleast_2d(np.asarray(residuals, dtype=float))
    anchors = np.atleast_2d(np.asarray(anchors, dtype=float))
    diag = np.sqrt(anchors[:, 3] ** 2 + anchors[:, 4] ** 2)
    out = np.empty_like(residuals)
    out[:, 0] = residuals[:, 0] * diag + anchors[:, 0]
    out[:, 1] = residuals[:, 1] * diag + anchors[:, 1]
    out[:, 2] = residuals[:, 2] * anchors[:, 5] + anchors[:, 2]
    out[:, 3:6] = np.exp(residuals[:, 3:6]) * anchors[:, 3:6]
    out[:, 6] = residuals[:, 6] + anchors[:, 6]
    return out
