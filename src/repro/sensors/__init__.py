"""Sensor substrate: simulated LiDAR, GPS and IMU.

The paper's testbeds use a Velodyne HDL-64E (KITTI) and a VLP-16 (the T&J
golf cart) plus an integrated GPS/IMU unit with <10 cm positional error.
This package simulates all three: a vectorised ray-casting LiDAR with
occlusion, range noise and dropout; a GPS model with bounded drift (the
quantity Fig. 10 skews); and an IMU attitude model.
"""

from repro.sensors.lidar import (
    BeamPattern,
    LidarModel,
    LidarScan,
    VLP_16,
    HDL_32E,
    HDL_64E,
)
from repro.sensors.gps import GpsModel, GpsSkew
from repro.sensors.imu import ImuModel
from repro.sensors.rig import SensorRig, RigObservation
from repro.sensors.camera import PinholeCamera, CameraImage, image_fragment_for_box

__all__ = [
    "BeamPattern",
    "LidarModel",
    "LidarScan",
    "VLP_16",
    "HDL_32E",
    "HDL_64E",
    "GpsModel",
    "GpsSkew",
    "ImuModel",
    "SensorRig",
    "RigObservation",
    "PinholeCamera",
    "CameraImage",
    "image_fragment_for_box",
]
