"""Pinhole camera model and demand-driven image fragments (§II-C).

The paper keeps image data out of the main exchange but notes that
"image and LiDAR point clouds are aligned together in perception system's
installation" and that for small-object cases (license plates) a vehicle
can "locate the plates in point clouds and ask for its image data from
connected vehicles ... it is necessary to extract a fragment of the image
data in cooperative perception."

This module provides that subsystem: a calibrated pinhole camera that
projects LiDAR-frame points and boxes into pixels, a synthetic image
renderer (actor-id + depth buffers, which is all the fragment logic
needs), and the fragment extraction answering an image-ROI request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.boxes import Box3D, box_corners_3d
from repro.geometry.transforms import Pose, RigidTransform
from repro.scene.world import World

__all__ = ["PinholeCamera", "CameraImage", "image_fragment_for_box"]


@dataclass(frozen=True)
class PinholeCamera:
    """A front-mounted pinhole camera, calibrated against the LiDAR frame.

    Attributes:
        width / height: image resolution in pixels.
        horizontal_fov_deg: full horizontal field of view (the paper's
            front cameras cover a 120-degree view).
        extrinsics: LiDAR-frame -> camera-frame rigid transform (identity
            means co-located, camera looking along LiDAR +x).
    """

    width: int = 640
    height: int = 400
    horizontal_fov_deg: float = 120.0
    extrinsics: RigidTransform = field(default_factory=RigidTransform.identity)

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("resolution must be positive")
        if not 0 < self.horizontal_fov_deg < 180:
            raise ValueError("horizontal_fov_deg must be in (0, 180)")

    @property
    def focal_pixels(self) -> float:
        """Focal length in pixels (square pixels assumed)."""
        return (self.width / 2.0) / np.tan(
            np.deg2rad(self.horizontal_fov_deg) / 2.0
        )

    def project(self, points_lidar: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project LiDAR-frame points to pixels.

        Returns ``(uv, valid)``: ``(N, 2)`` pixel coordinates and a mask of
        points in front of the camera and inside the image.
        Camera convention: LiDAR x forward -> depth, y left -> -u, z up -> -v.
        """
        pts = np.atleast_2d(np.asarray(points_lidar, dtype=float))[:, :3]
        cam = self.extrinsics.apply(pts)
        depth = cam[:, 0]
        with np.errstate(divide="ignore", invalid="ignore"):
            u = self.width / 2.0 - self.focal_pixels * cam[:, 1] / depth
            v = self.height / 2.0 - self.focal_pixels * cam[:, 2] / depth
        uv = np.column_stack([u, v])
        valid = (
            (depth > 0.1)
            & (u >= 0)
            & (u < self.width)
            & (v >= 0)
            & (v < self.height)
        )
        uv[~np.isfinite(uv)] = -1.0
        return uv, valid

    def project_box(self, box: Box3D) -> tuple[int, int, int, int] | None:
        """Bounding pixel rectangle of a LiDAR-frame box, or None if unseen.

        Returns ``(u_min, v_min, u_max, v_max)`` clipped to the image.
        """
        corners = box_corners_3d(box)
        uv, valid = self.project(corners)
        if not valid.any():
            return None
        visible = uv[valid]
        u_min = int(max(0, np.floor(visible[:, 0].min())))
        v_min = int(max(0, np.floor(visible[:, 1].min())))
        u_max = int(min(self.width - 1, np.ceil(visible[:, 0].max())))
        v_max = int(min(self.height - 1, np.ceil(visible[:, 1].max())))
        if u_max <= u_min or v_max <= v_min:
            return None
        return u_min, v_min, u_max, v_max

    def render(self, world: World, pose: Pose) -> "CameraImage":
        """Render the world from ``pose`` into actor-id + depth buffers.

        A coarse ray-cast rasteriser: one ray per pixel against the world's
        boxes — enough fidelity for fragment extraction and occlusion.
        """
        from repro.geometry.rotations import rotation_z
        from repro.sensors.lidar import _ray_box_batch

        f = self.focal_pixels
        us, vs = np.meshgrid(np.arange(self.width), np.arange(self.height))
        directions_cam = np.stack(
            [
                np.ones(us.size),
                (self.width / 2.0 - us.ravel()) / f,
                (self.height / 2.0 - vs.ravel()) / f,
            ],
            axis=-1,
        )
        directions_cam /= np.linalg.norm(directions_cam, axis=1, keepdims=True)
        cam_to_lidar = self.extrinsics.inverse()
        directions_lidar = directions_cam @ cam_to_lidar.rotation.T
        directions_world = directions_lidar @ pose.to_world().rotation.T
        origin = pose.position

        depth = np.full(us.size, np.inf)
        actor_idx = np.full(us.size, -1, dtype=np.int32)
        for index, actor in enumerate(world.actors):
            t = _ray_box_batch(origin, directions_world, actor.box)
            closer = t < depth
            depth[closer] = t[closer]
            actor_idx[closer] = index
        names = np.array([a.name for a in world.actors] + [""])
        labels = names[np.where(actor_idx < 0, len(world.actors), actor_idx)]
        return CameraImage(
            camera=self,
            depth=depth.reshape(self.height, self.width),
            actor_names=labels.reshape(self.height, self.width),
        )


@dataclass
class CameraImage:
    """A rendered frame: per-pixel depth and actor identity.

    Attributes:
        camera: the camera that produced it.
        depth: ``(H, W)`` metres (inf where only sky/ground).
        actor_names: ``(H, W)`` actor name per pixel ("" for background).
    """

    camera: PinholeCamera
    depth: np.ndarray
    actor_names: np.ndarray

    def fragment(self, rect: tuple[int, int, int, int]) -> "CameraImage":
        """Crop ``(u_min, v_min, u_max, v_max)`` into a smaller image."""
        u_min, v_min, u_max, v_max = rect
        if not (0 <= u_min < u_max and 0 <= v_min < v_max):
            raise ValueError("invalid fragment rectangle")
        return CameraImage(
            camera=self.camera,
            depth=self.depth[v_min : v_max + 1, u_min : u_max + 1].copy(),
            actor_names=self.actor_names[
                v_min : v_max + 1, u_min : u_max + 1
            ].copy(),
        )

    @property
    def size_pixels(self) -> int:
        """Pixel count (proxy for fragment transfer cost)."""
        return int(self.depth.size)

    def contains_actor(self, name: str) -> bool:
        """Whether any pixel belongs to the named actor."""
        return bool((self.actor_names == name).any())


def image_fragment_for_box(
    image: CameraImage, box_lidar: Box3D, margin_px: int = 4
) -> CameraImage | None:
    """Answer a demand-driven image request: the crop covering ``box_lidar``.

    The §II-C license-plate flow: the requester located an object in point
    clouds; the cooperator projects that box through its *calibrated*
    camera and returns only the covering fragment.
    """
    rect = image.camera.project_box(box_lidar)
    if rect is None:
        return None
    u_min, v_min, u_max, v_max = rect
    u_min = max(0, u_min - margin_px)
    v_min = max(0, v_min - margin_px)
    u_max = min(image.camera.width - 1, u_max + margin_px)
    v_max = min(image.camera.height - 1, v_max + margin_px)
    return image.fragment((u_min, v_min, u_max, v_max))
