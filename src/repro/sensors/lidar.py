"""Vectorised ray-casting LiDAR simulator.

A :class:`LidarModel` fires one ray per (beam elevation, azimuth) pair from
the sensor pose and keeps the nearest hit against the world's actor boxes
and the ground plane — exactly the physics that produces the paper's two
failure modes: *blind zones* behind occluders and *sparsity* that grows
with range and shrinks with beam count.  The 16-beam VLP-16 produces a
cloud ~4x sparser than the 64-beam HDL-64E, matching the paper's T&J vs
KITTI contrast.

Rays from one scan share an origin, so occlusion tests vectorise per actor:
each box rotates the whole direction table into its own frame and runs the
slab test on all rays at once.
"""

from __future__ import annotations

import functools
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.rotations import rotation_z
from repro.geometry.transforms import Pose
from repro.pointcloud.cloud import PointCloud
from repro.profiling import PROFILER
from repro.runtime.seeding import stable_hash
from repro.scene.world import World

__all__ = [
    "BeamPattern",
    "LidarModel",
    "LidarScan",
    "ScanGeometryCache",
    "VLP_16",
    "HDL_32E",
    "HDL_64E",
]

_GROUND_LABEL = "__ground__"
_GROUND_REFLECTANCE = 0.2


@dataclass(frozen=True)
class BeamPattern:
    """The vertical beam table of a spinning LiDAR.

    Attributes:
        name: human-readable sensor name.
        elevations_deg: per-beam elevation angles (degrees).
        azimuth_resolution_deg: horizontal angular step (degrees).
        max_range: metres beyond which returns are dropped.
    """

    name: str
    elevations_deg: tuple[float, ...]
    azimuth_resolution_deg: float = 0.4
    max_range: float = 100.0

    def __post_init__(self) -> None:
        if not self.elevations_deg:
            raise ValueError("beam pattern needs at least one beam")
        if self.azimuth_resolution_deg <= 0:
            raise ValueError("azimuth resolution must be positive")

    @property
    def num_beams(self) -> int:
        """Number of vertical beams."""
        return len(self.elevations_deg)

    @property
    def rays_per_scan(self) -> int:
        """Total rays fired per 360-degree revolution."""
        return self.num_beams * int(round(360.0 / self.azimuth_resolution_deg))


def _uniform_elevations(low: float, high: float, count: int) -> tuple[float, ...]:
    return tuple(np.linspace(low, high, count))


#: Velodyne VLP-16: 16 beams, +/-15 degrees — the T&J golf cart sensor.
VLP_16 = BeamPattern("VLP-16", _uniform_elevations(-15.0, 15.0, 16), 0.4, 100.0)

#: Velodyne HDL-32E: 32 beams, -30.67..+10.67 degrees.
HDL_32E = BeamPattern("HDL-32E", _uniform_elevations(-30.67, 10.67, 32), 0.4, 100.0)

#: Velodyne HDL-64E: 64 beams, -24.8..+2 degrees — the KITTI sensor.
HDL_64E = BeamPattern("HDL-64E", _uniform_elevations(-24.8, 2.0, 64), 0.4, 120.0)


@dataclass
class LidarScan:
    """One revolution of simulated LiDAR data.

    Attributes:
        cloud: points in the *sensor* frame (x forward at yaw 0).
        labels: per-point actor name, ``"__ground__"`` for ground returns.
        pose: the true sensor pose the scan was taken from.
    """

    cloud: PointCloud
    labels: np.ndarray
    pose: Pose

    def points_labeled(self, name: str) -> PointCloud:
        """Sub-cloud of returns from one actor."""
        return self.cloud.select(self.labels == name)

    def points_per_actor(self) -> dict[str, int]:
        """Return counts of LiDAR hits per actor (ground excluded)."""
        names, counts = np.unique(self.labels, return_counts=True)
        return {
            str(n): int(c) for n, c in zip(names, counts) if n != _GROUND_LABEL
        }

    def non_ground(self) -> PointCloud:
        """The cloud with ground returns removed."""
        return self.cloud.select(self.labels != _GROUND_LABEL)


@dataclass(frozen=True)
class LidarModel:
    """A simulated spinning LiDAR.

    Attributes:
        pattern: the beam table (VLP_16, HDL_32E, HDL_64E or custom).
        range_noise_std: Gaussian noise added to hit distances (metres).
        dropout: probability that a valid return is lost.
        min_range: blind radius around the sensor.
        include_ground: whether ground-plane returns are produced.
    """

    pattern: BeamPattern = VLP_16
    range_noise_std: float = 0.02
    dropout: float = 0.05
    min_range: float = 1.5
    include_ground: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.range_noise_std < 0:
            raise ValueError("range_noise_std must be non-negative")

    def ray_directions(self) -> np.ndarray:
        """The ``(N, 3)`` unit direction table in the sensor frame."""
        return _ray_direction_table(self.pattern).copy()

    def scan(
        self,
        world: World,
        pose: Pose,
        seed: int = 0,
        cache: "ScanGeometryCache | None" = None,
    ) -> LidarScan:
        """Scan ``world`` from ``pose`` and return points in the sensor frame.

        Occlusion falls out of nearest-hit selection: an actor behind
        another receives no rays on the blocked arc, creating exactly the
        blind zones that motivate cooperative perception.  Range noise is
        clamped to ``[min_range, max_range]`` so returned points never
        violate the advertised range bounds.

        ``cache`` (a :class:`ScanGeometryCache`) memoises the per-actor
        raycast geometry across frames.  The cache is keyed by the exact
        pose and beam pattern and verified per actor, so a cached scan is
        bit-identical to an uncached one — including the noise streams,
        which are drawn after geometry in both paths.
        """
        with PROFILER.stage("lidar.scan"):
            return self._scan(world, pose, seed, cache)

    def _scan(
        self,
        world: World,
        pose: Pose,
        seed: int,
        cache: "ScanGeometryCache | None" = None,
    ) -> LidarScan:
        rng = np.random.default_rng(seed)
        directions_local = _ray_direction_table(self.pattern)
        to_world = pose.to_world()
        directions = directions_local @ to_world.rotation.T
        origin = pose.position.astype(float)
        num_rays = len(directions)

        actors = list(world.actors)
        if actors:
            boxes = [a.box for a in actors]
            if cache is None:
                t_hits = _ray_boxes_batch(origin, directions, boxes)
            else:
                t_hits = cache.rows(
                    self.pattern, pose, origin, directions, boxes
                )
            best_label = t_hits.argmin(axis=0)
            best_t = t_hits[best_label, np.arange(num_rays)]
        else:
            best_t = np.full(num_rays, np.inf)
            best_label = np.zeros(num_rays, dtype=np.int64)

        if self.include_ground:
            dz = directions[:, 2]
            with np.errstate(divide="ignore", invalid="ignore"):
                t_ground = (world.ground_z - origin[2]) / dz
            t_ground = np.where((dz < -1e-9) & (t_ground > 0), t_ground, np.inf)
            better = t_ground < best_t
            best_t = np.where(better, t_ground, best_t)
            best_label = np.where(better, -2, best_label)  # ground sentinel

        valid = (
            np.isfinite(best_t)
            & (best_t >= self.min_range)
            & (best_t <= self.pattern.max_range)
        )
        if self.dropout > 0:
            valid &= rng.random(num_rays) >= self.dropout

        t = best_t[valid]
        if self.range_noise_std > 0:
            t = t + rng.normal(0.0, self.range_noise_std, size=len(t))
            # Re-gate after adding noise: a draw must not push a return
            # outside the advertised range bounds (or behind the sensor).
            np.clip(t, self.min_range, self.pattern.max_range, out=t)
        hit_world = origin + directions[valid] * t[:, None]
        hit_local = pose.from_world().apply(hit_world) if len(t) else hit_world

        label_idx = best_label[valid]
        reflectance_table = np.array(
            [a.reflectance for a in actors] + [_GROUND_REFLECTANCE],
            dtype=np.float32,
        )
        table_idx = np.where(label_idx == -2, len(actors), label_idx)
        reflectance = reflectance_table[table_idx] + rng.normal(
            0.0, 0.02, size=len(t)
        ).astype(np.float32)
        reflectance = np.clip(reflectance, 0.0, 1.0)

        names = np.array([a.name for a in actors] + [_GROUND_LABEL])
        labels = names[table_idx]

        cloud = PointCloud.from_xyz(hit_local, reflectance, frame_id="sensor")
        return LidarScan(cloud=cloud, labels=labels, pose=pose)


def _ray_direction_table(pattern: BeamPattern) -> np.ndarray:
    """The cached, read-only ``(N, 3)`` unit direction table of a pattern.

    Keyed by the pattern *contents* that determine the geometry — the
    elevation table and azimuth step — not the pattern object or its full
    hash, so two equal patterns (or a rebuilt rig) share one table and
    renaming a sensor or changing ``max_range`` cannot force a recompute.
    """
    return _ray_direction_table_for(
        pattern.elevations_deg, pattern.azimuth_resolution_deg
    )


@functools.lru_cache(maxsize=16)
def _ray_direction_table_for(
    elevations_deg: tuple[float, ...], azimuth_resolution_deg: float
) -> np.ndarray:
    elevations = np.deg2rad(np.array(elevations_deg))
    steps = int(round(360.0 / azimuth_resolution_deg))
    azimuths = np.linspace(-np.pi, np.pi, steps, endpoint=False)
    elev_grid, az_grid = np.meshgrid(elevations, azimuths, indexing="ij")
    cos_e = np.cos(elev_grid)
    directions = np.stack(
        [
            cos_e * np.cos(az_grid),
            cos_e * np.sin(az_grid),
            np.sin(elev_grid),
        ],
        axis=-1,
    )
    table = np.ascontiguousarray(directions.reshape(-1, 3))
    table.setflags(write=False)
    return table


def _scan_pose_key(pattern: BeamPattern, pose: Pose) -> str:
    """Exact text key of a (beam pattern, pose) raycast configuration.

    Floats are rendered with ``float.hex`` so the key is lossless: two
    poses produce the same key iff their raycast geometry is bit-equal.
    """
    values = (
        *pose.position.tolist(),
        pose.yaw,
        pose.pitch,
        pose.roll,
        *pattern.elevations_deg,
        pattern.azimuth_resolution_deg,
    )
    return ",".join(float(v).hex() for v in values)


def _actor_geometry_key(box) -> bytes:
    """Byte key of one actor's raycast-relevant geometry (its box)."""
    return np.array(
        [*box.center, box.length, box.width, box.height, box.yaw],
        dtype=np.float64,
    ).tobytes()


@dataclass
class _ScanCacheEntry:
    key_text: str
    actor_keys: tuple[bytes, ...]
    t_rows: np.ndarray  # (A, N) hit distances, one row per actor


class ScanGeometryCache:
    """Static-geometry raycast memo for :meth:`LidarModel.scan`.

    The expensive part of a scan is the per-actor slab test — an
    ``(A, N)`` hit-distance matrix whose row *i* depends only on the pose,
    the beam pattern and actor *i*'s box (every operation in
    :func:`_ray_boxes_batch` is elementwise per box row).  Consecutive
    frames of a (near-)static scene therefore recompute identical rows.

    This cache stores the hit matrix per ``(pattern, pose)`` cell — keyed
    with :func:`repro.runtime.stable_hash` over an exact text key, so keys
    are PYTHONHASHSEED/process-independent, and verified against the
    stored key text on every hit.  On a hit, only actors whose box
    geometry changed since the cached frame are re-raycast and their rows
    patched in place; static geometry is reused.  Because rows are
    bit-exact regardless of how the actor batch is split, the assembled
    matrix — and every downstream product, including the seeded noise
    streams drawn after it — is bit-identical to a cold scan.

    Hit/miss/recast totals are kept on the cache and mirrored into the
    ``temporal.scan_*`` profiler counters when profiling is enabled.
    """

    def __init__(self, maxsize: int = 4) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.actors_recast = 0
        self._entries: OrderedDict[tuple[int, int], _ScanCacheEntry] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are preserved; see :meth:`reset_stats`)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/recast counters without dropping entries."""
        self.hits = 0
        self.misses = 0
        self.actors_recast = 0

    def stats(self) -> dict:
        """Counter snapshot for benchmark reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "actors_recast": self.actors_recast,
            "entries": len(self._entries),
        }

    def rows(
        self,
        pattern: BeamPattern,
        pose: Pose,
        origin: np.ndarray,
        directions: np.ndarray,
        boxes: list,
    ) -> np.ndarray:
        """The ``(A, N)`` hit matrix for ``boxes``, reusing cached rows.

        The returned array is owned by the cache and must be treated as
        read-only by callers (the scan pipeline only reads it).
        """
        key_text = _scan_pose_key(pattern, pose)
        key = (stable_hash(key_text), len(key_text))
        actor_keys = tuple(_actor_geometry_key(b) for b in boxes)
        entry = self._entries.get(key)
        if (
            entry is not None
            and entry.key_text == key_text
            and len(entry.actor_keys) == len(actor_keys)
        ):
            self._entries.move_to_end(key)
            changed = [
                i
                for i, (old, new) in enumerate(
                    zip(entry.actor_keys, actor_keys)
                )
                if old != new
            ]
            if changed:
                entry.t_rows[changed] = _ray_boxes_batch(
                    origin, directions, [boxes[i] for i in changed]
                )
                entry.actor_keys = actor_keys
                self.actors_recast += len(changed)
                PROFILER.count("temporal.scan_actors_recast", len(changed))
            self.hits += 1
            PROFILER.count("temporal.scan_hits")
            return entry.t_rows
        self.misses += 1
        PROFILER.count("temporal.scan_misses")
        t_rows = _ray_boxes_batch(origin, directions, boxes)
        self._entries[key] = _ScanCacheEntry(key_text, actor_keys, t_rows)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return t_rows


def _ray_boxes_batch(
    origin: np.ndarray, directions: np.ndarray, boxes: list
) -> np.ndarray:
    """Nearest-hit distances of shared-origin rays against many boxes.

    One slab test over all ``(box, ray)`` pairs at once, axis by axis so no
    temporary grows beyond ``(A, N)``.  Boxes are yaw-only rotated, so each
    box's frame is a 2D rotation of x/y with z passed through.  Returns an
    ``(A, N)`` array with +inf for misses and hits behind the origin.
    """
    num_boxes = len(boxes)
    origin = np.asarray(origin, dtype=float)
    yaws = np.array([b.yaw for b in boxes])
    centers = np.array([b.center for b in boxes], dtype=float)
    halves = (
        np.array([[b.length, b.width, b.height] for b in boxes], dtype=float)
        / 2.0
    )
    cos_y, sin_y = np.cos(yaws), np.sin(yaws)

    rel = origin[None, :] - centers  # (A, 3)
    local_origin_x = cos_y * rel[:, 0] + sin_y * rel[:, 1]
    local_origin_y = -sin_y * rel[:, 0] + cos_y * rel[:, 1]
    dx, dy, dz = directions[:, 0], directions[:, 1], directions[:, 2]
    local_dirs_x = cos_y[:, None] * dx[None, :] + sin_y[:, None] * dy[None, :]
    local_dirs_y = -sin_y[:, None] * dx[None, :] + cos_y[:, None] * dy[None, :]
    local_dirs_z = np.broadcast_to(dz[None, :], local_dirs_x.shape)

    t_near = np.full(local_dirs_x.shape, -np.inf)
    t_far = np.full(local_dirs_x.shape, np.inf)
    slabs = (
        (local_dirs_x, local_origin_x, halves[:, 0]),
        (local_dirs_y, local_origin_y, halves[:, 1]),
        (local_dirs_z, rel[:, 2], halves[:, 2]),
    )
    for local_dir, local_orig, half in slabs:
        d = np.where(np.abs(local_dir) < 1e-12, 1e-12, local_dir)
        inv = 1.0 / d
        t_a = (-half[:, None] - local_orig[:, None]) * inv
        t_b = (half[:, None] - local_orig[:, None]) * inv
        np.maximum(t_near, np.minimum(t_a, t_b), out=t_near)
        np.minimum(t_far, np.maximum(t_a, t_b), out=t_far)

    hit = (t_near <= t_far) & (t_far >= 0)
    t = np.where(t_near >= 0, t_near, t_far)  # inside-box rays exit forward
    return np.where(hit, t, np.inf)


def _ray_box_batch(origin: np.ndarray, directions: np.ndarray, box) -> np.ndarray:
    """Nearest-hit distances of many shared-origin rays against one box.

    Vectorised slab test in the box's yaw-aligned frame.  Returns +inf for
    misses and for hits behind the origin.
    """
    rot = rotation_z(-box.yaw)
    local_origin = rot @ (np.asarray(origin, dtype=float) - box.center)
    local_dirs = directions @ rot.T
    half = np.array([box.length / 2.0, box.width / 2.0, box.height / 2.0])

    d = np.where(np.abs(local_dirs) < 1e-12, 1e-12, local_dirs)
    t_lo = (-half - local_origin) / d
    t_hi = (half - local_origin) / d
    t1 = np.minimum(t_lo, t_hi)
    t2 = np.maximum(t_lo, t_hi)
    t_near = t1.max(axis=1)
    t_far = t2.min(axis=1)
    hit = (t_near <= t_far) & (t_far >= 0)
    t = np.where(t_near >= 0, t_near, t_far)  # inside-box rays exit forward
    return np.where(hit, t, np.inf)
