"""Vectorised ray-casting LiDAR simulator.

A :class:`LidarModel` fires one ray per (beam elevation, azimuth) pair from
the sensor pose and keeps the nearest hit against the world's actor boxes
and the ground plane — exactly the physics that produces the paper's two
failure modes: *blind zones* behind occluders and *sparsity* that grows
with range and shrinks with beam count.  The 16-beam VLP-16 produces a
cloud ~4x sparser than the 64-beam HDL-64E, matching the paper's T&J vs
KITTI contrast.

Rays from one scan share an origin, so occlusion tests vectorise per actor:
each box rotates the whole direction table into its own frame and runs the
slab test on all rays at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.rotations import rotation_z
from repro.geometry.transforms import Pose
from repro.pointcloud.cloud import PointCloud
from repro.scene.world import World

__all__ = [
    "BeamPattern",
    "LidarModel",
    "LidarScan",
    "VLP_16",
    "HDL_32E",
    "HDL_64E",
]

_GROUND_LABEL = "__ground__"
_GROUND_REFLECTANCE = 0.2


@dataclass(frozen=True)
class BeamPattern:
    """The vertical beam table of a spinning LiDAR.

    Attributes:
        name: human-readable sensor name.
        elevations_deg: per-beam elevation angles (degrees).
        azimuth_resolution_deg: horizontal angular step (degrees).
        max_range: metres beyond which returns are dropped.
    """

    name: str
    elevations_deg: tuple[float, ...]
    azimuth_resolution_deg: float = 0.4
    max_range: float = 100.0

    def __post_init__(self) -> None:
        if not self.elevations_deg:
            raise ValueError("beam pattern needs at least one beam")
        if self.azimuth_resolution_deg <= 0:
            raise ValueError("azimuth resolution must be positive")

    @property
    def num_beams(self) -> int:
        """Number of vertical beams."""
        return len(self.elevations_deg)

    @property
    def rays_per_scan(self) -> int:
        """Total rays fired per 360-degree revolution."""
        return self.num_beams * int(round(360.0 / self.azimuth_resolution_deg))


def _uniform_elevations(low: float, high: float, count: int) -> tuple[float, ...]:
    return tuple(np.linspace(low, high, count))


#: Velodyne VLP-16: 16 beams, +/-15 degrees — the T&J golf cart sensor.
VLP_16 = BeamPattern("VLP-16", _uniform_elevations(-15.0, 15.0, 16), 0.4, 100.0)

#: Velodyne HDL-32E: 32 beams, -30.67..+10.67 degrees.
HDL_32E = BeamPattern("HDL-32E", _uniform_elevations(-30.67, 10.67, 32), 0.4, 100.0)

#: Velodyne HDL-64E: 64 beams, -24.8..+2 degrees — the KITTI sensor.
HDL_64E = BeamPattern("HDL-64E", _uniform_elevations(-24.8, 2.0, 64), 0.4, 120.0)


@dataclass
class LidarScan:
    """One revolution of simulated LiDAR data.

    Attributes:
        cloud: points in the *sensor* frame (x forward at yaw 0).
        labels: per-point actor name, ``"__ground__"`` for ground returns.
        pose: the true sensor pose the scan was taken from.
    """

    cloud: PointCloud
    labels: np.ndarray
    pose: Pose

    def points_labeled(self, name: str) -> PointCloud:
        """Sub-cloud of returns from one actor."""
        return self.cloud.select(self.labels == name)

    def points_per_actor(self) -> dict[str, int]:
        """Return counts of LiDAR hits per actor (ground excluded)."""
        names, counts = np.unique(self.labels, return_counts=True)
        return {
            str(n): int(c) for n, c in zip(names, counts) if n != _GROUND_LABEL
        }

    def non_ground(self) -> PointCloud:
        """The cloud with ground returns removed."""
        return self.cloud.select(self.labels != _GROUND_LABEL)


@dataclass(frozen=True)
class LidarModel:
    """A simulated spinning LiDAR.

    Attributes:
        pattern: the beam table (VLP_16, HDL_32E, HDL_64E or custom).
        range_noise_std: Gaussian noise added to hit distances (metres).
        dropout: probability that a valid return is lost.
        min_range: blind radius around the sensor.
        include_ground: whether ground-plane returns are produced.
    """

    pattern: BeamPattern = VLP_16
    range_noise_std: float = 0.02
    dropout: float = 0.05
    min_range: float = 1.5
    include_ground: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.range_noise_std < 0:
            raise ValueError("range_noise_std must be non-negative")

    def ray_directions(self) -> np.ndarray:
        """The ``(N, 3)`` unit direction table in the sensor frame."""
        elevations = np.deg2rad(np.array(self.pattern.elevations_deg))
        steps = int(round(360.0 / self.pattern.azimuth_resolution_deg))
        azimuths = np.linspace(-np.pi, np.pi, steps, endpoint=False)
        elev_grid, az_grid = np.meshgrid(elevations, azimuths, indexing="ij")
        cos_e = np.cos(elev_grid)
        directions = np.stack(
            [
                cos_e * np.cos(az_grid),
                cos_e * np.sin(az_grid),
                np.sin(elev_grid),
            ],
            axis=-1,
        )
        return directions.reshape(-1, 3)

    def scan(self, world: World, pose: Pose, seed: int = 0) -> LidarScan:
        """Scan ``world`` from ``pose`` and return points in the sensor frame.

        Occlusion falls out of nearest-hit selection: an actor behind
        another receives no rays on the blocked arc, creating exactly the
        blind zones that motivate cooperative perception.
        """
        rng = np.random.default_rng(seed)
        directions_local = self.ray_directions()
        to_world = pose.to_world()
        directions = directions_local @ to_world.rotation.T
        origin = pose.position.astype(float)
        num_rays = len(directions)

        best_t = np.full(num_rays, np.inf)
        best_label = np.full(num_rays, -1, dtype=np.int64)
        best_reflectance = np.zeros(num_rays, dtype=np.float32)

        actors = list(world.actors)
        for idx, actor in enumerate(actors):
            t_hit = _ray_box_batch(origin, directions, actor.box)
            better = t_hit < best_t
            best_t[better] = t_hit[better]
            best_label[better] = idx
            best_reflectance[better] = actor.reflectance

        if self.include_ground:
            dz = directions[:, 2]
            with np.errstate(divide="ignore", invalid="ignore"):
                t_ground = (world.ground_z - origin[2]) / dz
            t_ground = np.where((dz < -1e-9) & (t_ground > 0), t_ground, np.inf)
            better = t_ground < best_t
            best_t[better] = t_ground[better]
            best_label[better] = -2  # ground sentinel
            best_reflectance[better] = _GROUND_REFLECTANCE

        valid = (
            np.isfinite(best_t)
            & (best_t >= self.min_range)
            & (best_t <= self.pattern.max_range)
        )
        if self.dropout > 0:
            valid &= rng.random(num_rays) >= self.dropout

        t = best_t[valid]
        if self.range_noise_std > 0:
            t = t + rng.normal(0.0, self.range_noise_std, size=len(t))
        hit_world = origin + directions[valid] * t[:, None]
        hit_local = pose.from_world().apply(hit_world) if len(t) else hit_world
        reflectance = best_reflectance[valid] + rng.normal(
            0.0, 0.02, size=int(valid.sum())
        ).astype(np.float32)
        reflectance = np.clip(reflectance, 0.0, 1.0)

        label_idx = best_label[valid]
        names = np.array([a.name for a in actors] + [_GROUND_LABEL])
        labels = names[np.where(label_idx == -2, len(actors), label_idx)]

        cloud = PointCloud.from_xyz(hit_local, reflectance, frame_id="sensor")
        return LidarScan(cloud=cloud, labels=labels, pose=pose)


def _ray_box_batch(origin: np.ndarray, directions: np.ndarray, box) -> np.ndarray:
    """Nearest-hit distances of many shared-origin rays against one box.

    Vectorised slab test in the box's yaw-aligned frame.  Returns +inf for
    misses and for hits behind the origin.
    """
    rot = rotation_z(-box.yaw)
    local_origin = rot @ (np.asarray(origin, dtype=float) - box.center)
    local_dirs = directions @ rot.T
    half = np.array([box.length / 2.0, box.width / 2.0, box.height / 2.0])

    d = np.where(np.abs(local_dirs) < 1e-12, 1e-12, local_dirs)
    t_lo = (-half - local_origin) / d
    t_hi = (half - local_origin) / d
    t1 = np.minimum(t_lo, t_hi)
    t2 = np.maximum(t_lo, t_hi)
    t_near = t1.max(axis=1)
    t_far = t2.min(axis=1)
    hit = (t_near <= t_far) & (t_far >= 0)
    t = np.where(t_near >= 0, t_near, t_far)  # inside-box rays exit forward
    return np.where(hit, t, np.inf)
