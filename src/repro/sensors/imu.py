"""IMU attitude model.

The exchange package carries the IMU's yaw/pitch/roll so the receiver can
build the Eq. (1) rotation.  A real IMU reports attitude with small noise;
we model zero-mean Gaussian errors per angle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.transforms import Pose

__all__ = ["ImuModel"]


@dataclass(frozen=True)
class ImuModel:
    """Produces attitude readings from true poses.

    Attributes:
        angle_noise_std_deg: per-angle Gaussian noise (degrees).  Automotive
            MEMS units integrated with GPS resolve heading to ~0.1 degrees.
    """

    angle_noise_std_deg: float = 0.1

    def __post_init__(self) -> None:
        if self.angle_noise_std_deg < 0:
            raise ValueError("angle noise must be non-negative")

    def read(self, true_pose: Pose, seed: int = 0) -> Pose:
        """Return the pose with IMU-corrupted attitude (position untouched)."""
        rng = np.random.default_rng(seed)
        noise = np.deg2rad(rng.normal(0.0, self.angle_noise_std_deg, size=3))
        return Pose(
            true_pose.position,
            yaw=true_pose.yaw + noise[0],
            pitch=true_pose.pitch + noise[1],
            roll=true_pose.roll + noise[2],
        )
