"""The mounted sensor rig: LiDAR + GPS + IMU on one vehicle.

One :meth:`SensorRig.observe` call produces everything a Cooper exchange
package needs (Section II-D): the LiDAR scan in the sensor frame and the
*measured* pose assembled from the GPS position reading and the IMU
attitude reading.  The measured pose — not the true one — is what gets
transmitted, so GPS drift propagates into alignment exactly as in Fig. 10.

Fault injection happens here, at the boundary where real sensors fail:
a :class:`repro.faults.SensorFaults` value (resolved per step/agent by a
:class:`repro.faults.FaultPlan`) can black out the LiDAR frame, degrade
the GPS fix to a dead-reckoned guess, add drift bias, or glitch the IMU
yaw — and every downstream consumer sees the corrupted observation the
way a deployed OBU would.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.faults.plan import SensorFaults
from repro.geometry.transforms import Pose
from repro.pointcloud.cloud import PointCloud
from repro.scene.world import World
from repro.sensors.gps import GpsModel, GpsSkew
from repro.sensors.imu import ImuModel
from repro.sensors.lidar import LidarModel, LidarScan

__all__ = ["RigObservation", "SensorRig"]


@dataclass
class RigObservation:
    """One synchronised observation from a vehicle's rig.

    Attributes:
        scan: the LiDAR scan (points in the sensor frame, truth pose inside).
        measured_pose: the GPS+IMU pose estimate that would be transmitted.
        true_pose: ground truth, kept for evaluation only.
    """

    scan: LidarScan
    measured_pose: Pose
    true_pose: Pose


@dataclass(frozen=True)
class SensorRig:
    """A vehicle's full sensor suite.

    Attributes:
        lidar: the LiDAR simulator.
        gps: the GPS reading model.
        imu: the IMU reading model.
        name: vehicle identifier carried into frames and packages.
    """

    lidar: LidarModel = field(default_factory=LidarModel)
    gps: GpsModel = field(default_factory=GpsModel)
    imu: ImuModel = field(default_factory=ImuModel)
    name: str = "vehicle"

    def observe(
        self,
        world: World,
        true_pose: Pose,
        seed: int = 0,
        gps_skew: GpsSkew = GpsSkew.NONE,
        faults: SensorFaults | None = None,
        scan_cache=None,
    ) -> RigObservation:
        """Scan the world and read the positioning sensors.

        ``seed`` controls all sensor noise for the observation; pass
        ``gps_skew`` to run the Fig. 10 robustness protocols and
        ``faults`` to inject a resolved per-step fault state (LiDAR
        blackout, GPS dropout/bias, IMU yaw glitch).  ``faults=None`` is
        byte-identical to the fault-free path.  ``scan_cache`` (a
        :class:`repro.sensors.lidar.ScanGeometryCache`) reuses raycast
        geometry across frames; scans are bit-identical with or without it.
        """
        blackout = faults is not None and faults.lidar_blackout
        if blackout:
            scan = _blackout_scan(true_pose)
        else:
            scan = self.lidar.scan(world, true_pose, seed=seed, cache=scan_cache)
        gps_pose = self.gps.read(true_pose, seed=seed + 1, skew=gps_skew)
        imu_pose = self.imu.read(true_pose, seed=seed + 2)
        measured = Pose(
            gps_pose.position,
            yaw=imu_pose.yaw,
            pitch=imu_pose.pitch,
            roll=imu_pose.roll,
        )
        if faults is not None and faults.any:
            measured = _apply_pose_faults(measured, true_pose, seed, faults)
        return RigObservation(scan=scan, measured_pose=measured, true_pose=true_pose)


def _blackout_scan(true_pose: Pose) -> LidarScan:
    """An empty frame: the LiDAR produced no returns this period."""
    return LidarScan(
        cloud=PointCloud.empty(frame_id="sensor"),
        labels=np.empty(0, dtype="<U1"),
        pose=true_pose,
    )


def _apply_pose_faults(
    measured: Pose, true_pose: Pose, seed: int, faults: SensorFaults
) -> Pose:
    """Corrupt a measured pose according to the resolved fault state.

    A GPS dropout replaces the fix with a dead-reckoned estimate: truth
    plus an error of up to ``gps_error_m`` in a seed-determined
    direction (the RNG stream is ``seed + 3``, disjoint from the nominal
    GPS/IMU streams, so a dropout never reshuffles the other noise).
    Bias and yaw glitch are additive.
    """
    position = measured.position
    if faults.gps_dropout:
        rng = np.random.default_rng(seed + 3)
        angle = rng.uniform(0.0, 2.0 * np.pi)
        magnitude = rng.uniform(0.5, 1.0) * faults.gps_error_m
        position = true_pose.position + magnitude * np.array(
            [np.cos(angle), np.sin(angle), 0.0]
        )
    if faults.gps_bias != (0.0, 0.0, 0.0):
        position = position + np.asarray(faults.gps_bias)
    return replace(
        measured,
        position=position,
        yaw=measured.yaw + np.deg2rad(faults.imu_yaw_offset_deg),
    )
