"""The mounted sensor rig: LiDAR + GPS + IMU on one vehicle.

One :meth:`SensorRig.observe` call produces everything a Cooper exchange
package needs (Section II-D): the LiDAR scan in the sensor frame and the
*measured* pose assembled from the GPS position reading and the IMU
attitude reading.  The measured pose — not the true one — is what gets
transmitted, so GPS drift propagates into alignment exactly as in Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.transforms import Pose
from repro.scene.world import World
from repro.sensors.gps import GpsModel, GpsSkew
from repro.sensors.imu import ImuModel
from repro.sensors.lidar import LidarModel, LidarScan

__all__ = ["RigObservation", "SensorRig"]


@dataclass
class RigObservation:
    """One synchronised observation from a vehicle's rig.

    Attributes:
        scan: the LiDAR scan (points in the sensor frame, truth pose inside).
        measured_pose: the GPS+IMU pose estimate that would be transmitted.
        true_pose: ground truth, kept for evaluation only.
    """

    scan: LidarScan
    measured_pose: Pose
    true_pose: Pose


@dataclass(frozen=True)
class SensorRig:
    """A vehicle's full sensor suite.

    Attributes:
        lidar: the LiDAR simulator.
        gps: the GPS reading model.
        imu: the IMU reading model.
        name: vehicle identifier carried into frames and packages.
    """

    lidar: LidarModel = field(default_factory=LidarModel)
    gps: GpsModel = field(default_factory=GpsModel)
    imu: ImuModel = field(default_factory=ImuModel)
    name: str = "vehicle"

    def observe(
        self,
        world: World,
        true_pose: Pose,
        seed: int = 0,
        gps_skew: GpsSkew = GpsSkew.NONE,
    ) -> RigObservation:
        """Scan the world and read the positioning sensors.

        ``seed`` controls all sensor noise for the observation; pass
        ``gps_skew`` to run the Fig. 10 robustness protocols.
        """
        scan = self.lidar.scan(world, true_pose, seed=seed)
        gps_pose = self.gps.read(true_pose, seed=seed + 1, skew=gps_skew)
        imu_pose = self.imu.read(true_pose, seed=seed + 2)
        measured = Pose(
            gps_pose.position,
            yaw=imu_pose.yaw,
            pitch=imu_pose.pitch,
            roll=imu_pose.roll,
        )
        return RigObservation(scan=scan, measured_pose=measured, true_pose=true_pose)
