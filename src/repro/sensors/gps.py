"""GPS model with bounded drift and the Fig. 10 skewing protocol.

The paper's integrated GPS/INS yields <10 cm positional error [6]; Fig. 10
tests fusion robustness by *procedurally* skewing GPS readings three ways:

* both x and y pushed to the maximum known drift bound,
* a single axis pushed to the bound,
* double the bound ("abnormal instances").

:class:`GpsSkew` encodes those protocols; :class:`GpsModel` produces noisy
readings from true poses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.geometry.transforms import Pose

__all__ = ["GpsSkew", "GpsModel"]


class GpsSkew(enum.Enum):
    """The artificial skewing protocols of Fig. 10."""

    NONE = "none"
    BOTH_AXES_MAX = "both_axes_max"
    ONE_AXIS_MAX = "one_axis_max"
    DOUBLE_MAX = "double_max"

    def offset(self, drift_bound: float, rng: np.random.Generator) -> np.ndarray:
        """The (x, y, z) position offset this protocol applies."""
        sign = lambda: rng.choice([-1.0, 1.0])  # noqa: E731 - tiny local helper
        if self is GpsSkew.NONE:
            return np.zeros(3)
        if self is GpsSkew.BOTH_AXES_MAX:
            return np.array([sign() * drift_bound, sign() * drift_bound, 0.0])
        if self is GpsSkew.ONE_AXIS_MAX:
            axis = rng.integers(0, 2)
            out = np.zeros(3)
            out[axis] = sign() * drift_bound
            return out
        if self is GpsSkew.DOUBLE_MAX:
            return np.array(
                [sign() * 2 * drift_bound, sign() * 2 * drift_bound, 0.0]
            )
        raise AssertionError(f"unhandled skew {self}")


@dataclass(frozen=True)
class GpsModel:
    """Produces GPS position readings from true poses.

    Attributes:
        noise_std: white positional noise per axis (metres).
        drift_bound: maximum integrated drift magnitude (metres); the paper
            cites <10 cm for GPS/INS integration.
    """

    noise_std: float = 0.02
    drift_bound: float = 0.10

    def __post_init__(self) -> None:
        if self.noise_std < 0 or self.drift_bound < 0:
            raise ValueError("noise parameters must be non-negative")

    def read(
        self,
        true_pose: Pose,
        seed: int = 0,
        skew: GpsSkew = GpsSkew.NONE,
    ) -> Pose:
        """Return the pose with GPS-corrupted position (attitude untouched).

        The reading = truth + bounded random drift + white noise + the
        requested skew protocol offset.
        """
        rng = np.random.default_rng(seed)
        drift_direction = rng.normal(size=2)
        norm = np.linalg.norm(drift_direction)
        if norm > 0:
            drift_direction = drift_direction / norm
        drift_mag = rng.uniform(0.0, self.drift_bound)
        drift = np.array([*(drift_direction * drift_mag), 0.0])
        noise = rng.normal(0.0, self.noise_std, size=3) * np.array([1, 1, 0.3])
        offset = drift + noise + skew.offset(self.drift_bound, rng)
        return Pose(
            true_pose.position + offset,
            yaw=true_pose.yaw,
            pitch=true_pose.pitch,
            roll=true_pose.roll,
        )
