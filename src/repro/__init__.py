"""Cooper: cooperative perception for connected autonomous vehicles.

A full reproduction of *Cooper: Cooperative Perception for Connected
Autonomous Vehicles based on 3D Point Clouds* (Chen, Tang, Yang, Fu —
ICDCS 2019), built on pure numpy/scipy substrates:

* :mod:`repro.geometry` — rotations (Eq. 1), rigid transforms, 3D boxes.
* :mod:`repro.pointcloud` — clouds, voxels, spherical projection, ROI, codec.
* :mod:`repro.sensors` — ray-cast LiDAR (VLP-16/HDL-64E), GPS, IMU.
* :mod:`repro.scene` — procedural worlds for the paper's scenarios.
* :mod:`repro.detection` — SPOD (VFE -> sparse CNN -> SSD-style RPN) with a
  from-scratch numpy neural-network stack.
* :mod:`repro.fusion` — the Cooper exchange/align/merge pipeline + baselines.
* :mod:`repro.network` — DSRC channel, ROI policies, exchange simulation.
* :mod:`repro.eval` — the harness regenerating every evaluation figure.
* :mod:`repro.datasets` — synthetic KITTI-like and T&J-like cases.
* :mod:`repro.runtime` — deterministic parallel execution (process pools,
  stable seeding, mergeable profiler snapshots) behind ``--workers``.
* :mod:`repro.serve` — the virtual-clock perception serving engine
  (bounded admission queues, dynamic batching, SLO-aware shedding,
  seeded open-loop workloads).
* :mod:`repro.profiling` — the zero-overhead-when-off stage profiler.

Quickstart::

    from repro import Cooper, SPOD, kitti_cases, run_case

    case = kitti_cases()[0]
    result = run_case(case, SPOD.pretrained())
    print(result.counts)           # singles vs cooperative detection counts
"""

from repro.detection import SPOD, SPODConfig, Detection
from repro.fusion import Cooper, CooperResult, ExchangePackage
from repro.datasets import kitti_cases, tj_cases, CooperativeCase, make_case
from repro.eval import run_case, run_cases
from repro.pointcloud import PointCloud, merge_clouds
from repro.geometry import Pose, RigidTransform, Box3D

__version__ = "1.0.0"

__all__ = [
    "SPOD",
    "SPODConfig",
    "Detection",
    "Cooper",
    "CooperResult",
    "ExchangePackage",
    "kitti_cases",
    "tj_cases",
    "CooperativeCase",
    "make_case",
    "run_case",
    "run_cases",
    "PointCloud",
    "merge_clouds",
    "Pose",
    "RigidTransform",
    "Box3D",
    "__version__",
]
