"""Process-stable seed derivation for parallel execution.

Python's built-in ``hash`` of a string changes between interpreter runs
(``PYTHONHASHSEED``), so any simulation seed derived from it differs
run-to-run and process-to-process — fatal for the determinism contract of
:mod:`repro.runtime`: the same base seed must drive identical randomness
whether a task runs inline, in worker 0 or in worker 7.  The helpers here
mix seeds through CRC-32, which is fixed by specification and identical on
every platform and process.
"""

from __future__ import annotations

import zlib

__all__ = ["stable_hash", "derive_seed"]


def stable_hash(text: str) -> int:
    """A process-stable 32-bit hash of a string.

    Unlike built-in ``hash``, the value does not depend on
    ``PYTHONHASHSEED``, the platform or the interpreter run.
    """
    return zlib.crc32(text.encode("utf-8"))


def derive_seed(base_seed: int, *components: object) -> int:
    """Derive a child seed from a base seed plus mix-in components.

    The components (task indices, stage labels, agent names, ...) are
    folded into a CRC-32 digest, so the result is stable across processes
    and independent of where in a worker pool the task lands.  Returns a
    value in ``[0, 2**32)``.
    """
    payload = ":".join([repr(int(base_seed))] + [repr(c) for c in components])
    return zlib.crc32(payload.encode("utf-8"))
