"""Deterministic process-pool execution for embarrassingly parallel work.

The repo's fan-out layers — case evaluation, per-agent session steps, the
benchmark harness — are all "map a pure function over independent items"
problems.  :class:`WorkerPool` and :func:`parallel_map` run such maps over
a pool of forked worker processes with a strict determinism contract:

* **Ordered results** — the output list always matches the input order, no
  matter which worker finished first.
* **Chunked distribution** — items are split into contiguous chunks so a
  worker amortises its per-task overhead; chunk boundaries never affect
  results, only scheduling.
* **Warm-up hooks** — an ``initializer`` runs once per worker (e.g. build
  ``SPOD.pretrained()`` once, not once per case).  The inline fallback
  invokes it too, so code paths stay identical.
* **Profiler merge** — :data:`repro.profiling.PROFILER` is per-process, so
  each chunk returns a profiler snapshot that the parent folds back into
  its own registry; ``--profile`` output stays correct under parallelism.
* **Inline fallback** — ``workers <= 1``, a single item, or a platform
  without ``fork`` degrades gracefully to a plain loop in-process.

Worker count resolution: an explicit ``workers`` argument wins, otherwise
the ``REPRO_WORKERS`` environment variable, otherwise 1 (inline).
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Callable, Iterable, Sequence

from repro.profiling import PROFILER

__all__ = [
    "WORKERS_ENV",
    "resolve_workers",
    "fork_available",
    "chunk_bounds",
    "WorkerPool",
    "parallel_map",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve an effective worker count (always >= 1).

    Precedence: explicit ``workers`` argument, then the ``REPRO_WORKERS``
    environment variable, then 1.  An explicit argument is clamped to at
    least 1 (callers pass computed counts), but a malformed environment
    value — non-integer, zero, or negative — raises ``ValueError``: a
    garbage deployment setting should fail loudly, not silently
    serialise.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            parsed = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from exc
        if parsed < 1:
            raise ValueError(
                f"{WORKERS_ENV} must be a positive integer, got {raw!r}"
            )
        return parsed
    return max(1, int(workers))


def fork_available() -> bool:
    """True when the platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def chunk_bounds(
    n_items: int, workers: int, chunk_size: int | None = None
) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` chunk bounds covering ``n_items``.

    The default chunk size targets ~4 chunks per worker so uneven per-item
    cost still balances, while keeping per-chunk dispatch overhead small.
    The split is a pure function of ``(n_items, workers, chunk_size)`` —
    never of timing — so scheduling is deterministic.
    """
    if n_items <= 0:
        return []
    if chunk_size is None:
        chunk_size = max(1, math.ceil(n_items / (max(1, workers) * 4)))
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [
        (start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]


def _run_chunk(fn: Callable, chunk: list, profile: bool) -> tuple[list, dict | None]:
    """Worker-side chunk runner: map ``fn`` and snapshot the profiler.

    Each chunk resets the worker's (per-process) profiler first, so the
    returned snapshot is exactly this chunk's delta and the parent can sum
    snapshots without double counting.
    """
    if profile:
        PROFILER.reset()
        PROFILER.enable()
    results = [fn(item) for item in chunk]
    if not profile:
        return results, None
    snapshot = PROFILER.snapshot()
    PROFILER.reset()
    return results, snapshot


class WorkerPool:
    """A persistent, deterministic process pool (or its inline stand-in).

    Use as a context manager when several :meth:`map` calls should share
    the same warmed-up workers (e.g. one pool for every step of a
    session); :func:`parallel_map` wraps the one-shot case.

    Attributes:
        workers: resolved worker count.
        inline: True when mapping runs in-process (``workers <= 1`` or the
            platform lacks ``fork``).
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        initializer: Callable | None = None,
        initargs: tuple = (),
        chunk_size: int | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.inline = self.workers <= 1 or not fork_available()
        self._executor: ProcessPoolExecutor | None = None
        if self.inline:
            # The warm-up contract holds inline too: run the hook once so
            # both paths execute the same code.
            if initializer is not None:
                initializer(*initargs)
        else:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=initializer,
                initargs=initargs,
            )

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item; results keep the input order.

        When the parent profiler is enabled, each worker chunk's profiler
        snapshot is merged back into :data:`~repro.profiling.PROFILER` so
        stage totals and counters account for work done in workers.
        """
        items = list(items)
        if self.inline:
            return [fn(item) for item in items]
        if not items:
            return []
        # Even a single item goes through the pool: in pool mode the
        # initializer ran in the workers, not the parent, so inline
        # execution here would miss the warm-up state.
        assert self._executor is not None
        profile = PROFILER.enabled
        bounds = chunk_bounds(len(items), self.workers, self.chunk_size)
        futures = [
            self._executor.submit(_run_chunk, fn, items[start:stop], profile)
            for start, stop in bounds
        ]
        results: list = []
        for future in futures:  # in-order collection == deterministic output
            chunk_results, snapshot = future.result()
            results.extend(chunk_results)
            if snapshot is not None:
                PROFILER.merge_snapshot(snapshot)
        return results

    def close(self) -> None:
        """Shut the pool down (idempotent; inline pools are a no-op)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


def parallel_map(
    fn: Callable,
    items: Sequence,
    *,
    workers: int | None = None,
    initializer: Callable | None = None,
    initargs: tuple = (),
    chunk_size: int | None = None,
) -> list:
    """One-shot ordered parallel map (see :class:`WorkerPool`).

    ``fn`` (and the items) must be picklable module-level callables when
    ``workers > 1``; with ``workers <= 1`` everything runs inline.
    """
    with WorkerPool(
        workers,
        initializer=initializer,
        initargs=initargs,
        chunk_size=chunk_size,
    ) as pool:
        return pool.map(fn, items)
