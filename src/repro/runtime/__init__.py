"""Deterministic parallel execution for the Cooper reproduction.

Cooper's evaluation is embarrassingly parallel twice over: cases are
independent of each other, and within a session step each agent's
observe -> package -> perceive work is independent of its peers.  This
package is the execution engine that exploits both without giving up
reproducibility:

* :func:`parallel_map` / :class:`WorkerPool` — a fork-based process pool
  with chunked work distribution, ordered result collection, per-worker
  warm-up hooks and an inline fallback (``workers <= 1`` or no ``fork``).
* :func:`derive_seed` / :func:`stable_hash` — CRC-32 seed derivation that
  is identical in every process regardless of ``PYTHONHASHSEED``.
* Profiler-aware workers: chunk snapshots of the per-process
  :data:`repro.profiling.PROFILER` are merged back into the parent so
  ``--profile`` stage totals stay exact under parallelism.

The determinism contract: for a fixed seed, results are bit-identical at
any worker count — parallelism only changes wall-clock time.  Worker
counts come from an explicit argument, else the ``REPRO_WORKERS``
environment variable, else 1.
"""

from __future__ import annotations

from repro.runtime.executor import (
    WORKERS_ENV,
    WorkerPool,
    chunk_bounds,
    fork_available,
    parallel_map,
    resolve_workers,
)
from repro.runtime.seeding import derive_seed, stable_hash

__all__ = [
    "WORKERS_ENV",
    "WorkerPool",
    "chunk_bounds",
    "derive_seed",
    "fork_available",
    "parallel_map",
    "resolve_workers",
    "stable_hash",
]
