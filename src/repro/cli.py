"""Command-line interface for the Cooper reproduction.

``python -m repro.cli <command>`` (or the ``cooper-repro`` console script)
regenerates the paper's experiments from a terminal:

* ``kitti``    — Figs. 2-4: the four 64-beam road scenarios.
* ``tj``       — Figs. 5-7: the fifteen 16-beam parking-lot cases.
* ``cdf``      — Fig. 8: the improvement CDF over all 19 cases.
* ``timing``   — Fig. 9: single vs cooperative detection time.
* ``drift``    — Fig. 10: GPS skew robustness.
* ``network``  — Figs. 11-12: ROI volumes vs DSRC capacity.
* ``chaos``    — beyond-paper: recall under injected channel/sensor faults.
* ``frontier`` — beyond-paper: recall-vs-bandwidth frontier across fusion
  levels (raw / ROI / feature / confidence-gated).
* ``serve``    — beyond-paper: the deterministic perception serving engine
  under a seeded open-loop workload.
* ``scenarios`` — beyond-paper: seeded scenario-family sweeps from the
  declarative DSL, with per-family recall contracts.
"""

from __future__ import annotations

import argparse
import sys


def _detector(args: argparse.Namespace):
    """Build the shared SPOD detector honouring the global ``--dtype`` flag.

    Default (None) keeps :meth:`SPOD.pretrained`'s float32 inference path;
    ``--dtype float64`` reproduces the seed's double-precision numerics.
    """
    from repro import SPOD
    from repro.detection.spod import SPODConfig

    if args.dtype is None:
        return SPOD.pretrained()
    return SPOD.pretrained(SPODConfig(dtype=args.dtype))


def _cmd_kitti(args: argparse.Namespace) -> int:
    from repro import kitti_cases
    from repro.eval import render_case_summary, render_detection_grid, run_cases

    results = run_cases(
        kitti_cases(seed=args.seed), _detector(args), workers=args.workers
    )
    for result in results:
        print(render_detection_grid(result))
        print()
    print(render_case_summary(results))
    return 0


def _cmd_tj(args: argparse.Namespace) -> int:
    from repro import tj_cases
    from repro.eval import render_case_summary, render_detection_grid, run_cases

    results = run_cases(
        tj_cases(seed=args.seed), _detector(args), workers=args.workers
    )
    if args.grids:
        for result in results:
            print(render_detection_grid(result))
            print()
    print(render_case_summary(results))
    return 0


def _cmd_cdf(args: argparse.Namespace) -> int:
    from repro import kitti_cases, tj_cases
    from repro.eval import improvement_samples, render_cdf_table, run_cases

    detector = _detector(args)
    results = run_cases(kitti_cases(seed=args.seed), detector, workers=args.workers)
    results += run_cases(tj_cases(seed=args.seed), detector, workers=args.workers)
    print(render_cdf_table(improvement_samples(results)))
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    import numpy as np

    from repro import kitti_cases, tj_cases
    from repro.eval.experiments import timing_experiment

    detector = _detector(args)
    for label, cases in (
        ("KITTI (64-beam)", kitti_cases(seed=args.seed)),
        ("T&J (16-beam)", tj_cases(seed=args.seed)[:4]),
    ):
        timings = timing_experiment(cases, detector, repeats=args.repeats)
        single = np.mean([t["single"] for t in timings.values()])
        cooper = np.mean([t["cooper"] for t in timings.values()])
        print(
            f"{label}: single {single * 1e3:7.1f} ms   "
            f"cooper {cooper * 1e3:7.1f} ms"
        )
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    from repro.eval.experiments import gps_drift_experiment
    from repro.scene.layouts import parking_lot
    from repro.sensors.gps import GpsSkew
    from repro.sensors.lidar import VLP_16

    skews = {
        "baseline": GpsSkew.NONE,
        "both-axes": GpsSkew.BOTH_AXES_MAX,
        "one-axis": GpsSkew.ONE_AXIS_MAX,
        "double": GpsSkew.DOUBLE_MAX,
    }
    results = gps_drift_experiment(
        parking_lot, ("car1", "car2"), VLP_16, skews,
        seed=args.seed, detector=_detector(args),
    )
    cars = sorted(results["baseline"], key=lambda c: -results["baseline"][c])
    print("car".ljust(12) + "".join(k.rjust(12) for k in skews))
    for car in cars:
        if all(results[k].get(car, 0.0) == 0.0 for k in skews):
            continue
        print(
            car.ljust(12)
            + "".join(
                (f"{results[k].get(car, 0.0):.2f}"
                 if results[k].get(car, 0.0) > 0 else "miss").rjust(12)
                for k in skews
            )
        )
    return 0


def _cmd_network(args: argparse.Namespace) -> int:
    from repro.network.dsrc import DsrcChannel
    from repro.network.roi_policy import RoiCategory, RoiPolicy
    from repro.network.simulator import ExchangeSimulator
    from repro.scene.layouts import two_lane_road
    from repro.scene.trajectories import StationaryTrajectory
    from repro.sensors.lidar import VLP_16, LidarModel
    from repro.sensors.rig import SensorRig

    layout = two_lane_road()
    simulator = ExchangeSimulator(
        world=layout.world,
        rig_a=SensorRig(lidar=LidarModel(pattern=VLP_16), name="a"),
        rig_b=SensorRig(lidar=LidarModel(pattern=VLP_16), name="b"),
    )
    ego = StationaryTrajectory(layout.viewpoint("ego"))
    other = StationaryTrajectory(layout.viewpoint("oncoming"))
    channel = DsrcChannel(bandwidth_mbps=6.0)
    for category in RoiCategory:
        subtract = category is not RoiCategory.FULL_FRAME
        policy = RoiPolicy(category=category, subtract_known_background=subtract)
        trace = simulator.run(ego, other, policy, duration_seconds=args.seconds)
        print(
            f"{category.name:17s}: mean {trace.mean_volume_megabits:5.2f} Mbit/s, "
            f"peak {trace.peak_volume_megabits:5.2f}, "
            f"within DSRC: {'yes' if trace.within_capacity(channel) else 'NO'}"
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.eval.chaos import (
        build_chaos_session,
        chaos_sweep,
        session_recall,
    )
    from repro.faults import FaultPlan

    detector = _detector(args)
    if args.faults:
        # One session under an explicit fault spec; print what happened.
        plan = FaultPlan.from_spec(args.faults, seed=args.seed)
        session = build_chaos_session(detector=detector, faults=plan)
        session.temporal = args.temporal
        logs = session.run(
            duration_seconds=args.seconds, seed=args.seed, workers=args.workers
        )
        result = session_recall(session, logs)
        print(f"fault plan : {plan.describe()}")
        print(f"steps      : {result.steps}")
        print(
            f"recall     : {result.recall:.3f} "
            f"({result.matched}/{result.visible} visible cars matched)"
        )
        print(f"packages   : {result.mean_received:.2f} merged per agent-step")
        if result.degradation:
            print("degradation:")
            for name, count in sorted(result.degradation.items()):
                print(f"  {name:20s} {count}")
        else:
            print("degradation: none")
        return 0

    report = chaos_sweep(smoke=args.smoke, seed=args.seed, workers=args.workers)
    print("loss sweep (Gilbert-Elliott bursty channel):")
    print(f"{'loss':>6s} {'recall':>8s} {'pkgs/step':>10s}  degradation")
    for point in report["loss_sweep"]:
        events = sum(point["degradation"].values())
        print(
            f"{point['loss_rate']:6.2f} {point['recall']:8.3f} "
            f"{point['mean_received']:10.2f}  {events} events"
        )
    print("\ngps error sweep (permanent dropout, dead-reckoned fix):")
    print(f"{'err m':>6s} {'recall':>8s}")
    for point in report["gps_error_sweep"]:
        print(f"{point['gps_error_m']:6.1f} {point['recall']:8.3f}")
    stale = report["stale_vs_ego"]
    print(
        f"\nstale fallback vs drop-to-ego at loss {stale['loss_rate']:.1f}: "
        f"{stale['stale_fallback']['recall']:.3f} vs "
        f"{stale['drop_to_ego']['recall']:.3f} "
        f"(gain {stale['recall_gain']:+.3f})"
    )
    return 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    from repro.eval.frontier import fusion_frontier

    report = fusion_frontier(
        smoke=args.smoke, seed=args.seed, detector=_detector(args)
    )
    print("recall-vs-bandwidth frontier (Fig. 4 KITTI cases):")
    print(f"{'mode':>8s} {'bytes/frame':>12s} {'recall':>8s}")
    for mode, stats in report["frontier"].items():
        print(
            f"{mode:>8s} {stats['mean_bytes_per_frame']:12.0f} "
            f"{stats['mean_recall']:8.3f}"
        )
    contract = report["contract"]
    print(
        f"\nfeature vs raw: {contract['feature_vs_raw_bytes_ratio']:.1f}x "
        f"fewer bytes/frame, recall drop "
        f"{contract['feature_recall_drop_points']:+.2f} points"
    )
    print(
        "gated < feature bytes: "
        f"{'yes' if contract['gated_below_feature_every_case'] else 'NO'}"
    )
    print("\nsession determinism + bandwidth ledger (chaos scenario):")
    for section, tag in (
        ("determinism", "clean"),
        ("determinism_chaos", "chaos"),
    ):
        for mode, entry in report[section].items():
            print(
                f"  [{tag}] {mode:8s} workers {entry['worker_counts']} "
                f"identical={'yes' if entry['identical'] else 'NO'} "
                f"bytes/frame={entry['comm']['bytes_per_frame']:.0f} "
                f"recall={entry['recall']:.3f}"
            )
    print(
        "\ncontract: "
        f"{'OK' if contract['all_modes_deterministic'] else 'VIOLATED'}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        ClosedLoopSpec,
        FleetConfig,
        FleetEngine,
        ScenarioPool,
        ServeConfig,
        ServingEngine,
        WorkloadSpec,
        apply_ingress_loss,
        build_fleet_report,
        build_report,
        generate_workload,
        make_closed_loop_clients,
        render_fleet_report,
        render_report,
    )

    seconds = min(args.seconds, 1.5) if args.smoke else args.seconds
    rate = min(args.rate, 30.0) if args.smoke else args.rate
    pool = ScenarioPool.build(
        seed=args.seed, variants=1 if args.smoke else args.variants
    )
    spec = WorkloadSpec(
        duration_ms=seconds * 1000.0,
        rate_rps=rate,
        num_clients=args.clients,
        burst_factor=args.burst,
        seed=args.seed,
    )
    requests = generate_workload(spec, pool)
    delivered, lost = apply_ingress_loss(
        requests, loss_rate=args.ingress_loss, seed=args.seed
    )
    closed_loop = []
    if args.closed_loop > 0:
        closed_loop = make_closed_loop_clients(
            ClosedLoopSpec(
                duration_ms=spec.duration_ms,
                num_clients=args.closed_loop,
                seed=args.seed,
            ),
            pool,
        )
    config = ServeConfig(
        max_batch_size=1 if args.per_request else args.batch_size,
        max_wait_ms=0.0 if args.per_request else args.max_wait_ms,
        queue_capacity=args.queue_capacity,
        lanes=args.lanes,
        max_lanes=args.autoscale_max_lanes,
    )
    shard_faults = None
    if args.shard_faults is not None:
        from repro.faults.serve import ShardFaultPlan

        shard_faults = ShardFaultPlan.from_spec(args.shard_faults, seed=args.seed)
    mode = "per-request" if args.per_request else f"batch<= {config.max_batch_size}"
    print(
        f"workload   : {rate:.0f} req/s x {seconds:.1f}s over "
        f"{args.clients} open + {args.closed_loop} closed-loop clients "
        f"(seed {args.seed}, {mode})"
    )
    if shard_faults is not None:
        print(f"faults     : {shard_faults.describe()}")
    if args.shards > 1 or shard_faults is not None:
        # Injected shard faults always go through the fleet path — the
        # resilient router is what absorbs them, even at one shard.
        fleet = FleetEngine(
            detector=_detector(args),
            config=FleetConfig(
                num_shards=args.shards,
                routing_seed=args.routing_seed,
                shard_config=config,
                shard_faults=shard_faults,
            ),
            workers=args.workers,
        )
        fleet_result = fleet.serve(delivered, lost=lost, closed_loop=closed_loop)
        print(render_fleet_report(build_fleet_report(fleet_result, spec.duration_ms)))
        print(f"digest     : {fleet_result.digest()[:16]}")
        return 0
    engine = ServingEngine(
        detector=_detector(args), config=config, workers=args.workers
    )
    result = engine.serve(delivered, lost=lost, closed_loop=closed_loop)
    print(render_report(build_report(result, spec.duration_ms)))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenario.families import FAMILIES, family
    from repro.scenario.fuzz import fuzz_family

    if args.family is not None:
        family(args.family)  # fail fast with the valid set on a typo
        names = (args.family,)
    else:
        names = tuple(sorted(FAMILIES))
    count = args.count if args.count is not None else (25 if args.smoke else 200)
    sample = args.sample if args.sample is not None else (4 if args.smoke else 12)
    detector = _detector(args) if args.contracts else None
    contracts = None if args.contracts else ()
    failed = False
    for name in names:
        report = fuzz_family(
            name,
            count,
            base_seed=args.seed,
            workers=args.workers,
            detector=detector,
            contracts=contracts,
            sample=sample,
        )
        print(
            f"{name:26s} {report.count:5d} scenarios  "
            f"digest {report.digest[:12]}  "
            f"targets/scene {report.targets_mean:.1f}  "
            f"dropped {report.dropped_total}"
        )
        for contract in report.contracts:
            verdict = "OK" if contract.passed else "VIOLATED"
            print(
                f"  {contract.name:20s} checked {contract.checked:3d}  "
                f"{verdict}"
            )
            for violation in contract.violations[:3]:
                print(f"    {violation}")
            if contract.minimal is not None:
                print(
                    f"    minimal failing seed {contract.minimal['seed']}: "
                    f"{contract.minimal['actors']}"
                )
        failed = failed or not report.passed
    if failed:
        print("\ncontract VIOLATED (see details above)")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="cooper-repro",
        description="Regenerate the Cooper (ICDCS 2019) experiments.",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for case evaluation (default: $REPRO_WORKERS "
        "or 1; results are bit-identical at any worker count)",
    )
    parser.add_argument(
        "--dtype",
        choices=("float32", "float64"),
        default=None,
        help="detector compute precision (default: the pretrained "
        "detector's float32 inference path; float64 reproduces the "
        "seed's double-precision numerics bit for bit)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-stage wall-clock timings and print the stage table",
    )
    parser.add_argument(
        "--profile-json",
        metavar="PATH",
        default=None,
        help="export the stage stats as JSON (implies --profile)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kitti", help="Figs. 2-4 on the synthetic KITTI cases")
    tj = sub.add_parser("tj", help="Figs. 5-7 on the synthetic T&J cases")
    tj.add_argument("--grids", action="store_true", help="print all 15 grids")
    sub.add_parser("cdf", help="Fig. 8 improvement CDF")
    timing = sub.add_parser("timing", help="Fig. 9 detection timing")
    timing.add_argument("--repeats", type=int, default=1)
    sub.add_parser("drift", help="Fig. 10 GPS drift robustness")
    network = sub.add_parser("network", help="Figs. 11-12 ROI volumes")
    network.add_argument("--seconds", type=float, default=8.0)
    chaos = sub.add_parser(
        "chaos", help="recall under injected channel/sensor faults"
    )
    chaos.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="run one session under a fault spec instead of the sweep: a "
        "preset (none/mild/heavy) and/or comma-separated key=value "
        "overrides, e.g. 'loss=0.5,jitter=10' or 'heavy,gps-dropout=1.0'",
    )
    chaos.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the sweep grids and session length (CI smoke run)",
    )
    chaos.add_argument(
        "--temporal",
        action="store_true",
        help="carry frame-delta temporal state across steps (repro.temporal); "
        "results are bit-identical, steady-state frames run faster",
    )
    chaos.add_argument(
        "--seconds",
        type=float,
        default=6.0,
        help="session length for --faults runs (default 6.0)",
    )
    frontier = sub.add_parser(
        "frontier",
        help="recall-vs-bandwidth frontier across fusion levels "
        "(raw / roi / feature / confidence-gated)",
    )
    frontier.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the case set and session length (CI smoke run)",
    )
    serve = sub.add_parser(
        "serve",
        help="run the deterministic perception serving engine under a "
        "seeded open-loop workload",
    )
    serve.add_argument(
        "--rate", type=float, default=40.0, help="offered load, requests/s"
    )
    serve.add_argument(
        "--seconds", type=float, default=4.0, help="arrival window length"
    )
    serve.add_argument(
        "--clients", type=int, default=4, help="independent client vehicles"
    )
    serve.add_argument(
        "--batch-size", type=int, default=8, help="dynamic batch cap"
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=25.0,
        help="longest wait for co-batchers before a partial dispatch",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=64, help="bounded queue depth"
    )
    serve.add_argument(
        "--lanes", type=int, default=1, help="parallel virtual service lanes"
    )
    serve.add_argument(
        "--per-request",
        action="store_true",
        help="disable batching (batch size 1, zero wait) — the baseline",
    )
    serve.add_argument(
        "--ingress-loss",
        type=float,
        default=0.0,
        help="flat request-loss probability on the ingress channel",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=1.0,
        help="arrival-rate multiplier inside burst windows (1 = smooth)",
    )
    serve.add_argument(
        "--variants",
        type=int,
        default=2,
        help="scenario-pool re-scans per layout",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="fleet shards behind the deterministic client router "
        "(1 = single engine)",
    )
    serve.add_argument(
        "--routing-seed",
        type=int,
        default=0,
        help="salt of the client->shard routing hash",
    )
    serve.add_argument(
        "--closed-loop",
        type=int,
        default=0,
        metavar="N",
        help="add N closed-loop (platooning) clients that wait for a "
        "reply before re-issuing",
    )
    serve.add_argument(
        "--autoscale-max-lanes",
        type=int,
        default=0,
        metavar="L",
        help="enable per-shard lane autoscaling up to L lanes (0 = off)",
    )
    serve.add_argument(
        "--shard-faults",
        metavar="SPEC",
        default=None,
        help="inject seeded shard failures and serve through the "
        "resilient fleet router: comma-separated key=value entries, "
        "e.g. 'crash-rate=4,crash-ms=400,ingress-loss=0.1' "
        "(keys: crash-rate, crash-ms, brownout-rate, brownout-ms, "
        "brownout-factor, ingress-loss, horizon, seed; the *-ms keys "
        "take a fixed value or a lo:hi range)",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the workload and pool (CI smoke run)",
    )
    scenarios = sub.add_parser(
        "scenarios",
        help="compile seeded scenario-family sweeps (repro.scenario) and "
        "optionally assert the per-family recall contracts",
    )
    scenarios.add_argument(
        "--family",
        default=None,
        help="one scenario family (default: every family in "
        "repro.scenario.families.FAMILIES)",
    )
    scenarios.add_argument(
        "--count",
        type=int,
        default=None,
        help="scenarios per family (default: 200, or 25 with --smoke)",
    )
    scenarios.add_argument(
        "--contracts",
        action="store_true",
        help="run each family's recall contracts (fusion-never-hurts, "
        "monotone-beam, no-crash-under-chaos) on a sampled subset; "
        "exit 1 on any violation",
    )
    scenarios.add_argument(
        "--sample",
        type=int,
        default=None,
        help="scenarios per family to run detection contracts on "
        "(default: 12, or 4 with --smoke)",
    )
    scenarios.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the sweep and contract sample (CI smoke run)",
    )
    return parser


_HANDLERS = {
    "kitti": _cmd_kitti,
    "tj": _cmd_tj,
    "cdf": _cmd_cdf,
    "timing": _cmd_timing,
    "drift": _cmd_drift,
    "network": _cmd_network,
    "chaos": _cmd_chaos,
    "frontier": _cmd_frontier,
    "serve": _cmd_serve,
    "scenarios": _cmd_scenarios,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.profile_json:
        args.profile = True
    if not args.profile:
        return _HANDLERS[args.command](args)

    from repro.profiling import PROFILER

    PROFILER.reset()
    PROFILER.enable()
    try:
        status = _HANDLERS[args.command](args)
    finally:
        PROFILER.disable()
    print("\n=== stage profile ===")
    print(PROFILER.render_table())
    if args.profile_json:
        path = PROFILER.export_json(args.profile_json)
        print(f"(stage stats written to {path})")
    return status


if __name__ == "__main__":
    sys.exit(main())
