"""The :class:`PointCloud` container and merge operation (paper Eq. 2).

A point cloud is an ``(N, 4)`` float32 array: ``x, y, z`` in metres in the
owning vehicle's LiDAR frame plus a reflectance in ``[0, 1]``.  Merging two
clouds — the union of Eq. (2) — is a simple concatenation once the
transmitter's points have been transformed into the receiver's frame.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.geometry.transforms import RigidTransform

__all__ = ["PointCloud", "merge_clouds"]


class PointCloud:
    """An immutable-by-convention LiDAR point cloud.

    Attributes:
        data: ``(N, 4)`` float32 array of ``x, y, z, reflectance``.
        frame_id: name of the coordinate frame the points live in (useful
            when debugging fusion: "car1", "car2/aligned-to-car1", ...).
    """

    __slots__ = ("data", "frame_id")

    def __init__(self, data: np.ndarray, frame_id: str = "lidar") -> None:
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[1] not in (3, 4):
            raise ValueError(
                f"expected an (N, 3) or (N, 4) array, got shape {data.shape}"
            )
        if data.shape[1] == 3:
            data = np.column_stack(
                [data, np.zeros(len(data), dtype=np.float32)]
            )
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.frame_id = frame_id

    # -- construction ----------------------------------------------------
    @staticmethod
    def empty(frame_id: str = "lidar") -> "PointCloud":
        """An empty cloud."""
        return PointCloud(np.zeros((0, 4), dtype=np.float32), frame_id)

    @staticmethod
    def from_xyz(
        xyz: np.ndarray,
        reflectance: np.ndarray | None = None,
        frame_id: str = "lidar",
    ) -> "PointCloud":
        """Build from separate coordinate and reflectance arrays."""
        xyz = np.asarray(xyz, dtype=np.float32).reshape(-1, 3)
        if reflectance is None:
            reflectance = np.zeros(len(xyz), dtype=np.float32)
        reflectance = np.asarray(reflectance, dtype=np.float32).reshape(-1)
        if len(reflectance) != len(xyz):
            raise ValueError("xyz and reflectance lengths differ")
        return PointCloud(np.column_stack([xyz, reflectance]), frame_id)

    # -- basic accessors -------------------------------------------------
    def __len__(self) -> int:
        return len(self.data)

    @property
    def xyz(self) -> np.ndarray:
        """The ``(N, 3)`` coordinate block (a view, do not mutate)."""
        return self.data[:, :3]

    @property
    def reflectance(self) -> np.ndarray:
        """The ``(N,)`` reflectance column (a view, do not mutate)."""
        return self.data[:, 3]

    @property
    def ranges(self) -> np.ndarray:
        """Euclidean distance of each point from the frame origin."""
        return np.linalg.norm(self.data[:, :3], axis=1)

    def is_empty(self) -> bool:
        """True when the cloud holds no points."""
        return len(self.data) == 0

    # -- transforms ------------------------------------------------------
    def transformed(
        self, transform: RigidTransform, frame_id: str | None = None
    ) -> "PointCloud":
        """Return a new cloud with coordinates mapped by ``transform``.

        Reflectance is viewpoint-independent and carried through unchanged.
        """
        if self.is_empty():
            return PointCloud.empty(frame_id or self.frame_id)
        new_xyz = transform.apply(self.data[:, :3].astype(float))
        return PointCloud.from_xyz(
            new_xyz, self.data[:, 3], frame_id or self.frame_id
        )

    def select(self, mask: np.ndarray, frame_id: str | None = None) -> "PointCloud":
        """Return the sub-cloud selected by a boolean mask or index array."""
        return PointCloud(self.data[mask], frame_id or self.frame_id)

    def subsampled(self, max_points: int, seed: int = 0) -> "PointCloud":
        """Return at most ``max_points`` points, sampled without replacement."""
        if max_points < 0:
            raise ValueError("max_points must be non-negative")
        if len(self) <= max_points:
            return self
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self), size=max_points, replace=False)
        idx.sort()
        return self.select(idx)

    def concat(self, other: "PointCloud", frame_id: str | None = None) -> "PointCloud":
        """Concatenate two clouds assumed to share a frame."""
        return PointCloud(
            np.vstack([self.data, other.data]), frame_id or self.frame_id
        )

    # -- stats -----------------------------------------------------------
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(min_xyz, max_xyz)``; raises on an empty cloud."""
        if self.is_empty():
            raise ValueError("empty cloud has no bounds")
        return self.xyz.min(axis=0), self.xyz.max(axis=0)

    def size_bytes(self, bytes_per_point: int = 16) -> int:
        """Raw (uncompressed) size: 4 float32 fields per point by default."""
        return len(self) * bytes_per_point

    def __repr__(self) -> str:
        return f"PointCloud(n={len(self)}, frame={self.frame_id!r})"


def merge_clouds(
    clouds: Sequence[PointCloud] | Iterable[PointCloud],
    frame_id: str = "merged",
) -> PointCloud:
    """Union of already-aligned clouds (paper Eq. 2).

    All inputs must already be expressed in the receiver's frame; the
    alignment itself lives in :mod:`repro.fusion.align`.
    """
    clouds = list(clouds)
    if not clouds:
        return PointCloud.empty(frame_id)
    return PointCloud(np.vstack([c.data for c in clouds]), frame_id)
