"""Point-cloud substrate: containers, voxelisation, projection, ROI, codec.

Everything Cooper exchanges and everything SPOD consumes is a LiDAR point
cloud: an ``(N, 4)`` array of ``x, y, z, reflectance``.  This package
provides the container type plus the operations the paper's pipeline needs:

* voxelisation (VoxelNet-style grouping) feeding the detector,
* spherical (range-image) projection for the dense representation [27],
* region-of-interest cropping and background subtraction for the
  transmission policy of Section IV-G,
* a quantising compressor hitting the paper's ~200 KB/scan budget,
* KITTI-format binary I/O.
"""

from repro.pointcloud.cloud import PointCloud, merge_clouds
from repro.pointcloud.voxel import VoxelGrid, VoxelGridSpec
from repro.pointcloud.spherical import SphericalProjection, spherical_project
from repro.pointcloud.roi import (
    crop_box,
    crop_range,
    crop_sector,
    forward_corridor,
    subtract_background,
)
from repro.pointcloud.compression import (
    CompressionSpec,
    compress_cloud,
    decompress_cloud,
    compressed_size_bytes,
)
from repro.pointcloud.io import read_kitti_bin, write_kitti_bin
from repro.pointcloud.mapping import BackgroundMap, BackgroundMapper

__all__ = [
    "PointCloud",
    "merge_clouds",
    "VoxelGrid",
    "VoxelGridSpec",
    "SphericalProjection",
    "spherical_project",
    "crop_box",
    "crop_range",
    "crop_sector",
    "forward_corridor",
    "subtract_background",
    "CompressionSpec",
    "compress_cloud",
    "decompress_cloud",
    "compressed_size_bytes",
    "read_kitti_bin",
    "write_kitti_bin",
    "BackgroundMap",
    "BackgroundMapper",
]
