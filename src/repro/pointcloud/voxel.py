"""VoxelNet-style voxelisation of point clouds.

SPOD's first stage groups the (sparse, irregular) points into a regular 3D
voxel grid; only non-empty voxels are materialised, each holding at most
``max_points_per_voxel`` points.  The output feeds the voxel feature
encoder and, through coordinates, the sparse convolutional middle layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pointcloud.cloud import PointCloud
from repro.profiling import PROFILER

__all__ = ["VoxelGridSpec", "VoxelGrid"]


@dataclass(frozen=True)
class VoxelGridSpec:
    """Geometry of the voxel grid.

    Attributes:
        point_range: ``(xmin, ymin, zmin, xmax, ymax, zmax)`` crop in metres.
            Default matches the KITTI front-view car detection range used by
            VoxelNet/SECOND.
        voxel_size: ``(vx, vy, vz)`` voxel edge lengths in metres.
        max_points_per_voxel: cap on points kept per voxel (paper lineage
            uses 35 for cars).
    """

    point_range: tuple[float, float, float, float, float, float] = (
        0.0,
        -40.0,
        -3.0,
        70.4,
        40.0,
        1.0,
    )
    voxel_size: tuple[float, float, float] = (0.4, 0.4, 0.8)
    max_points_per_voxel: int = 35

    def __post_init__(self) -> None:
        if len(self.point_range) != 6:
            raise ValueError("point_range must have 6 entries")
        if any(v <= 0 for v in self.voxel_size):
            raise ValueError("voxel sizes must be positive")
        if self.max_points_per_voxel < 1:
            raise ValueError("max_points_per_voxel must be >= 1")
        for axis in range(3):
            if self.point_range[axis] >= self.point_range[axis + 3]:
                raise ValueError("point_range min must be below max per axis")

    @property
    def grid_shape(self) -> tuple[int, int, int]:
        """Number of voxels along (x, y, z)."""
        spans = (
            self.point_range[3] - self.point_range[0],
            self.point_range[4] - self.point_range[1],
            self.point_range[5] - self.point_range[2],
        )
        return tuple(
            int(np.ceil(span / size - 1e-9))
            for span, size in zip(spans, self.voxel_size)
        )

    def voxel_center(self, coords: np.ndarray) -> np.ndarray:
        """World-space centres for integer voxel coordinates ``(N, 3)``."""
        coords = np.asarray(coords, dtype=float)
        origin = np.array(self.point_range[:3])
        size = np.array(self.voxel_size)
        return origin + (coords + 0.5) * size


@dataclass
class VoxelGrid:
    """The sparse voxelisation result.

    Attributes:
        spec: the grid geometry used.
        coords: ``(V, 3)`` integer voxel coordinates (ix, iy, iz).
        points: ``(V, T, 4)`` padded per-voxel points (zero padding).
        counts: ``(V,)`` number of valid points in each voxel.
    """

    spec: VoxelGridSpec
    coords: np.ndarray
    points: np.ndarray
    counts: np.ndarray
    _index: dict[tuple[int, int, int], int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._index = {
            (int(c[0]), int(c[1]), int(c[2])): i for i, c in enumerate(self.coords)
        }

    @property
    def num_voxels(self) -> int:
        """Number of non-empty voxels."""
        return len(self.coords)

    def voxel_at(self, coord: tuple[int, int, int]) -> int | None:
        """Return the row index of a voxel coordinate, or None if empty."""
        return self._index.get(coord)

    def occupancy_bev(self) -> np.ndarray:
        """Project counts onto the BEV plane: an (nx, ny) point-count image."""
        nx, ny, _ = self.spec.grid_shape
        image = np.zeros((nx, ny), dtype=np.float32)
        np.add.at(image, (self.coords[:, 0], self.coords[:, 1]), self.counts)
        return image


def voxelize(
    cloud: PointCloud,
    spec: VoxelGridSpec,
    seed: int = 0,
    dtype: np.dtype | None = None,
) -> VoxelGrid:
    """Group a cloud into the sparse voxel grid described by ``spec``.

    Points outside ``spec.point_range`` are dropped.  When a voxel receives
    more than ``max_points_per_voxel`` points, a deterministic random
    subset keyed by ``seed`` is kept (the paper lineage randomly samples;
    we seed for repeatability).  Voxels at or under the cap keep their
    points in stable scan order.

    ``dtype`` sets the storage dtype of the padded voxel tensor handed to
    the downstream kernels (default float32, the sensor dtype).  Grouping
    itself always runs on the raw float32 sensor data, so the choice
    cannot move a point between voxels.
    """
    with PROFILER.stage("voxel.voxelize"):
        return _voxelize(cloud, spec, seed, dtype)


def _voxelize(
    cloud: PointCloud, spec: VoxelGridSpec, seed: int, dtype: np.dtype | None = None
) -> VoxelGrid:
    out_dtype = np.dtype(dtype) if dtype is not None else np.float32
    data = cloud.data
    origin = np.array(spec.point_range[:3], dtype=np.float32)
    size = np.array(spec.voxel_size, dtype=np.float32)
    upper = np.array(spec.point_range[3:], dtype=np.float32)

    inside = np.all((data[:, :3] >= origin) & (data[:, :3] < upper), axis=1)
    data = data[inside]
    if len(data) == 0:
        return VoxelGrid(
            spec,
            np.zeros((0, 3), dtype=np.int32),
            np.zeros((0, spec.max_points_per_voxel, 4), dtype=out_dtype),
            np.zeros(0, dtype=np.int32),
        )

    coords_all = np.floor((data[:, :3] - origin) / size).astype(np.int32)
    grid_shape = spec.grid_shape
    np.clip(coords_all, 0, np.array(grid_shape) - 1, out=coords_all)

    # Group points by voxel using a stable (radix) sort of linear indices.
    linear = (
        coords_all[:, 0].astype(np.int64) * (grid_shape[1] * grid_shape[2])
        + coords_all[:, 1] * grid_shape[2]
        + coords_all[:, 2]
    )
    order = np.argsort(linear, kind="stable")
    linear_sorted = linear[order]
    data_sorted = data[order]

    unique_linear, start_idx, group_counts = np.unique(
        linear_sorted, return_index=True, return_counts=True
    )
    num_voxels = len(unique_linear)
    t_max = spec.max_points_per_voxel
    points = np.zeros((num_voxels, t_max, 4), dtype=out_dtype)
    counts = np.minimum(group_counts, t_max).astype(np.int32)
    # Decode voxel coordinates from the unique linear indices directly —
    # cheaper than gathering a per-point coordinate table.
    cx, rem = np.divmod(unique_linear, grid_shape[1] * grid_shape[2])
    cy, cz = np.divmod(rem, grid_shape[2])
    coords = np.stack([cx, cy, cz], axis=1).astype(np.int32)

    group_ids = np.repeat(np.arange(num_voxels), group_counts)
    positions = np.arange(len(data_sorted)) - np.repeat(start_idx, group_counts)

    # Overfull voxels keep a seeded random subset: each point draws a slot
    # from a permutation and only slots below the cap survive.  Voxels at
    # or under the cap are untouched, so the common case stays in stable
    # scan order and pays nothing.
    overflowing = np.nonzero(group_counts > t_max)[0]
    if len(overflowing):
        rng = np.random.default_rng(seed)
        for g in overflowing:
            start, count = start_idx[g], group_counts[g]
            positions[start : start + count] = rng.permutation(count)

    keep = positions < t_max
    points[group_ids[keep], positions[keep]] = data_sorted[keep]
    return VoxelGrid(spec, coords, points, counts)


# Re-export as a method-style helper for discoverability.
VoxelGrid.from_cloud = staticmethod(voxelize)  # type: ignore[attr-defined]
