"""VoxelNet-style voxelisation of point clouds.

SPOD's first stage groups the (sparse, irregular) points into a regular 3D
voxel grid; only non-empty voxels are materialised, each holding at most
``max_points_per_voxel`` points.  The output feeds the voxel feature
encoder and, through coordinates, the sparse convolutional middle layers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.pointcloud.cloud import PointCloud
from repro.profiling import PROFILER
from repro.runtime.seeding import derive_seed

__all__ = ["VoxelGridSpec", "VoxelGrid", "VoxelDeltaCache"]


@dataclass(frozen=True)
class VoxelGridSpec:
    """Geometry of the voxel grid.

    Attributes:
        point_range: ``(xmin, ymin, zmin, xmax, ymax, zmax)`` crop in metres.
            Default matches the KITTI front-view car detection range used by
            VoxelNet/SECOND.
        voxel_size: ``(vx, vy, vz)`` voxel edge lengths in metres.
        max_points_per_voxel: cap on points kept per voxel (paper lineage
            uses 35 for cars).
    """

    point_range: tuple[float, float, float, float, float, float] = (
        0.0,
        -40.0,
        -3.0,
        70.4,
        40.0,
        1.0,
    )
    voxel_size: tuple[float, float, float] = (0.4, 0.4, 0.8)
    max_points_per_voxel: int = 35

    def __post_init__(self) -> None:
        if len(self.point_range) != 6:
            raise ValueError("point_range must have 6 entries")
        if any(v <= 0 for v in self.voxel_size):
            raise ValueError("voxel sizes must be positive")
        if self.max_points_per_voxel < 1:
            raise ValueError("max_points_per_voxel must be >= 1")
        for axis in range(3):
            if self.point_range[axis] >= self.point_range[axis + 3]:
                raise ValueError("point_range min must be below max per axis")

    @property
    def grid_shape(self) -> tuple[int, int, int]:
        """Number of voxels along (x, y, z)."""
        spans = (
            self.point_range[3] - self.point_range[0],
            self.point_range[4] - self.point_range[1],
            self.point_range[5] - self.point_range[2],
        )
        return tuple(
            int(np.ceil(span / size - 1e-9))
            for span, size in zip(spans, self.voxel_size)
        )

    def voxel_center(self, coords: np.ndarray) -> np.ndarray:
        """World-space centres for integer voxel coordinates ``(N, 3)``."""
        coords = np.asarray(coords, dtype=float)
        origin = np.array(self.point_range[:3])
        size = np.array(self.voxel_size)
        return origin + (coords + 0.5) * size


@dataclass
class VoxelGrid:
    """The sparse voxelisation result.

    Attributes:
        spec: the grid geometry used.
        coords: ``(V, 3)`` integer voxel coordinates (ix, iy, iz).
        points: ``(V, T, 4)`` padded per-voxel points (zero padding).
        counts: ``(V,)`` number of valid points in each voxel.
    """

    spec: VoxelGridSpec
    coords: np.ndarray
    points: np.ndarray
    counts: np.ndarray
    _index: dict[tuple[int, int, int], int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._index = {
            (int(c[0]), int(c[1]), int(c[2])): i for i, c in enumerate(self.coords)
        }

    @property
    def num_voxels(self) -> int:
        """Number of non-empty voxels."""
        return len(self.coords)

    def voxel_at(self, coord: tuple[int, int, int]) -> int | None:
        """Return the row index of a voxel coordinate, or None if empty."""
        return self._index.get(coord)

    def occupancy_bev(self) -> np.ndarray:
        """Project counts onto the BEV plane: an (nx, ny) point-count image."""
        nx, ny, _ = self.spec.grid_shape
        image = np.zeros((nx, ny), dtype=np.float32)
        np.add.at(image, (self.coords[:, 0], self.coords[:, 1]), self.counts)
        return image


def voxelize(
    cloud: PointCloud,
    spec: VoxelGridSpec,
    seed: int = 0,
    dtype: np.dtype | None = None,
    cache: "VoxelDeltaCache | None" = None,
) -> VoxelGrid:
    """Group a cloud into the sparse voxel grid described by ``spec``.

    Points outside ``spec.point_range`` are dropped.  When a voxel receives
    more than ``max_points_per_voxel`` points, a deterministic random
    subset keyed by ``seed`` *and the voxel's linear index* is kept (the
    paper lineage randomly samples; we seed for repeatability — and seed
    per voxel, so one voxel's sample never depends on any other voxel's
    contents).  Voxels at or under the cap keep their points in stable
    scan order.

    ``dtype`` sets the storage dtype of the padded voxel tensor handed to
    the downstream kernels (default float32, the sensor dtype).  Grouping
    itself always runs on the raw float32 sensor data, so the choice
    cannot move a point between voxels.

    ``cache`` (a :class:`VoxelDeltaCache`) enables the frame-delta fast
    paths; the result is always bit-identical to an uncached call.
    """
    with PROFILER.stage("voxel.voxelize"):
        return _voxelize(cloud, spec, seed, dtype, cache)


@dataclass
class _VoxelFrame:
    """One voxelised frame plus the grouping artifacts the delta tiers reuse.

    ``inside`` is per *original* cloud row; ``linear`` is per inside row in
    scan order; the remaining arrays are the cold path's grouping state.
    """

    data: np.ndarray
    inside: np.ndarray
    linear: np.ndarray
    order: np.ndarray
    group_ids: np.ndarray
    positions: np.ndarray
    keep: np.ndarray
    grid: VoxelGrid


def _assign_voxels(
    data: np.ndarray, spec: VoxelGridSpec
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row voxel assignment: ``(inside_mask, linear_of_inside_rows)``.

    Every operation is elementwise per row, so the assignment of a row is
    independent of every other row — the property the prefix-delta tier
    relies on to reuse assignments of unchanged rows.
    """
    origin = np.array(spec.point_range[:3], dtype=np.float32)
    size = np.array(spec.voxel_size, dtype=np.float32)
    upper = np.array(spec.point_range[3:], dtype=np.float32)

    inside = np.all((data[:, :3] >= origin) & (data[:, :3] < upper), axis=1)
    pts = data[inside]
    if len(pts) == 0:
        return inside, np.zeros(0, dtype=np.int64)
    coords_all = np.floor((pts[:, :3] - origin) / size).astype(np.int32)
    grid_shape = spec.grid_shape
    np.clip(coords_all, 0, np.array(grid_shape) - 1, out=coords_all)
    linear = (
        coords_all[:, 0].astype(np.int64) * (grid_shape[1] * grid_shape[2])
        + coords_all[:, 1] * grid_shape[2]
        + coords_all[:, 2]
    )
    return inside, linear


def _overflow_positions(
    positions: np.ndarray,
    start_idx: np.ndarray,
    group_counts: np.ndarray,
    unique_linear: np.ndarray,
    t_max: int,
    seed: int,
) -> None:
    """Re-draw slot permutations for overflowing voxels, in place.

    Each overflowing voxel draws from its own RNG stream —
    ``derive_seed(seed, "voxel-overflow", linear)`` — so the sample kept
    in one voxel is a pure function of (seed, voxel, member count),
    independent of what every other voxel received.  That locality is what
    lets the delta tiers re-run the sampler for touched voxels only while
    staying bit-identical to a full rebuild.
    """
    overflowing = np.nonzero(group_counts > t_max)[0]
    for g in overflowing:
        start, count = start_idx[g], group_counts[g]
        rng = np.random.default_rng(
            derive_seed(seed, "voxel-overflow", int(unique_linear[g]))
        )
        positions[start : start + count] = rng.permutation(count)


def _compute_frame(
    data: np.ndarray,
    spec: VoxelGridSpec,
    seed: int,
    out_dtype: np.dtype,
    inside: np.ndarray | None = None,
    linear: np.ndarray | None = None,
) -> _VoxelFrame:
    """The cold grouping + scatter pipeline, returning the full frame state.

    ``inside``/``linear`` may be supplied pre-computed (the prefix-delta
    tier concatenates reused prefix assignments with fresh suffix ones);
    they must equal what :func:`_assign_voxels` would produce.
    """
    if inside is None or linear is None:
        inside, linear = _assign_voxels(data, spec)
    data_in = data[inside]
    t_max = spec.max_points_per_voxel
    if len(data_in) == 0:
        empty = np.zeros(0, dtype=np.int64)
        grid = VoxelGrid(
            spec,
            np.zeros((0, 3), dtype=np.int32),
            np.zeros((0, t_max, 4), dtype=out_dtype),
            np.zeros(0, dtype=np.int32),
        )
        return _VoxelFrame(
            data, inside, linear, empty, empty, empty,
            np.zeros(0, dtype=bool), grid,
        )

    # Group points by voxel using a stable (radix) sort of linear indices.
    order = np.argsort(linear, kind="stable")
    linear_sorted = linear[order]
    data_sorted = data_in[order]

    unique_linear, start_idx, group_counts = np.unique(
        linear_sorted, return_index=True, return_counts=True
    )
    grid_shape = spec.grid_shape
    num_voxels = len(unique_linear)
    points = np.zeros((num_voxels, t_max, 4), dtype=out_dtype)
    counts = np.minimum(group_counts, t_max).astype(np.int32)
    # Decode voxel coordinates from the unique linear indices directly —
    # cheaper than gathering a per-point coordinate table.
    cx, rem = np.divmod(unique_linear, grid_shape[1] * grid_shape[2])
    cy, cz = np.divmod(rem, grid_shape[2])
    coords = np.stack([cx, cy, cz], axis=1).astype(np.int32)

    group_ids = np.repeat(np.arange(num_voxels), group_counts)
    positions = np.arange(len(data_sorted)) - np.repeat(start_idx, group_counts)

    # Overfull voxels keep a seeded random subset: each point draws a slot
    # from a permutation and only slots below the cap survive.  Voxels at
    # or under the cap are untouched, so the common case stays in stable
    # scan order and pays nothing.
    _overflow_positions(
        positions, start_idx, group_counts, unique_linear, t_max, seed
    )

    keep = positions < t_max
    points[group_ids[keep], positions[keep]] = data_sorted[keep]
    grid = VoxelGrid(spec, coords, points, counts)
    return _VoxelFrame(
        data, inside, linear, order, group_ids, positions, keep, grid
    )


class VoxelDeltaCache:
    """Frame-delta memo for :func:`voxelize` (one previous frame).

    Three tiers, each verified exactly so the result is bit-identical to a
    cold rebuild at every tier:

    1. **identical** — the input rows equal the previous frame's: return
       the previous grid as-is.
    2. **rescatter** — same rows count and identical point→voxel
       assignments, but some feature values changed (e.g. reflectance
       jitter): reuse the previous grouping wholesale and re-scatter only
       the voxels containing changed points into a copy of the previous
       padded tensor.
    3. **prefix delta** — the new cloud shares a row prefix with the
       previous one (e.g. the native scan unchanged, a peer package
       dropped or recovered): reuse the prefix's per-row voxel
       assignments and recompute only the suffix's, then regroup.  The
       per-voxel overflow streams make the re-sampled subsets of touched
       voxels equal what a full rebuild draws.

    Anything else is a miss and falls through to the cold path.  The cache
    key includes the spec, seed and output dtype; hit/miss totals are
    mirrored into ``temporal.voxel_*`` profiler counters.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.rescatters = 0
        self.patched = 0
        self.misses = 0
        self._key: tuple | None = None
        self._frame: _VoxelFrame | None = None

    def clear(self) -> None:
        """Drop the stored frame (counters are preserved)."""
        self._key = None
        self._frame = None

    def reset_stats(self) -> None:
        """Zero the tier counters without dropping the stored frame."""
        self.hits = 0
        self.rescatters = 0
        self.patched = 0
        self.misses = 0

    def stats(self) -> dict:
        """Counter snapshot for benchmark reports."""
        return {
            "hits": self.hits,
            "rescatters": self.rescatters,
            "patched": self.patched,
            "misses": self.misses,
        }

    def fetch(
        self,
        data: np.ndarray,
        spec: VoxelGridSpec,
        seed: int,
        out_dtype: np.dtype,
    ) -> VoxelGrid | None:
        """Serve ``data`` from a delta tier, or ``None`` on a miss."""
        key = (spec, int(seed), out_dtype)
        prev = self._frame
        if prev is None or self._key != key:
            return None
        same_shape = data.shape == prev.data.shape
        if same_shape and (data is prev.data or np.array_equal(data, prev.data)):
            self.hits += 1
            PROFILER.count("temporal.voxel_hits")
            return prev.grid
        if same_shape:
            grid = self._rescatter(data, spec, out_dtype, prev)
            if grid is not None:
                return grid
        return self._prefix_delta(data, spec, seed, out_dtype, prev)

    def store(self, spec: VoxelGridSpec, seed: int, out_dtype, frame: _VoxelFrame) -> None:
        """Install a cold-path frame as the new delta base (a miss)."""
        self.misses += 1
        PROFILER.count("temporal.voxel_misses")
        self._key = (spec, int(seed), out_dtype)
        self._frame = frame

    def _rescatter(
        self,
        data: np.ndarray,
        spec: VoxelGridSpec,
        out_dtype: np.dtype,
        prev: _VoxelFrame,
    ) -> VoxelGrid | None:
        """Tier 2: same assignments, changed values — rescatter touched voxels."""
        inside, linear = _assign_voxels(data, spec)
        if not (
            np.array_equal(inside, prev.inside)
            and np.array_equal(linear, prev.linear)
        ):
            return None
        changed_in = np.any(data != prev.data, axis=1)[inside]
        # Voxel groups holding at least one changed point; all of a touched
        # voxel's kept members are re-scattered (the unchanged ones write
        # back the same values), so the tensor equals a full rebuild's.
        changed_sorted = changed_in[prev.order]
        touched = np.unique(prev.group_ids[changed_sorted])
        points = prev.grid.points.copy()
        member = np.isin(prev.group_ids, touched) & prev.keep
        data_in = data[inside]
        points[prev.group_ids[member], prev.positions[member]] = data_in[
            prev.order[member]
        ]
        grid = VoxelGrid(spec, prev.grid.coords, points, prev.grid.counts)
        self.rescatters += 1
        PROFILER.count("temporal.voxel_rescatters")
        self._frame = dataclasses.replace(prev, data=data, grid=grid)
        return grid

    def _prefix_delta(
        self,
        data: np.ndarray,
        spec: VoxelGridSpec,
        seed: int,
        out_dtype: np.dtype,
        prev: _VoxelFrame,
    ) -> VoxelGrid | None:
        """Tier 3: shared row prefix — reuse its assignments, regroup the rest."""
        m = min(len(data), len(prev.data))
        if m == 0:
            return None
        diff = np.any(data[:m] != prev.data[:m], axis=1)
        prefix = int(np.argmax(diff)) if diff.any() else m
        # Below half the new cloud the reuse no longer pays for the
        # bookkeeping; fall through to the cold path.
        if prefix * 2 < len(data):
            return None
        prefix_inside = prev.inside[:prefix]
        suffix_inside, suffix_linear = _assign_voxels(data[prefix:], spec)
        inside = np.concatenate([prefix_inside, suffix_inside])
        n_prefix_in = int(np.count_nonzero(prefix_inside))
        linear = np.concatenate([prev.linear[:n_prefix_in], suffix_linear])
        frame = _compute_frame(
            data, spec, seed, out_dtype, inside=inside, linear=linear
        )
        self.patched += 1
        PROFILER.count("temporal.voxel_patched")
        self._frame = frame
        return frame.grid


def _voxelize(
    cloud: PointCloud,
    spec: VoxelGridSpec,
    seed: int,
    dtype: np.dtype | None = None,
    cache: "VoxelDeltaCache | None" = None,
) -> VoxelGrid:
    out_dtype = np.dtype(dtype) if dtype is not None else np.float32
    data = cloud.data
    if cache is not None:
        grid = cache.fetch(data, spec, seed, out_dtype)
        if grid is not None:
            return grid
    frame = _compute_frame(data, spec, seed, out_dtype)
    if cache is not None:
        cache.store(spec, seed, out_dtype, frame)
    return frame.grid


# Re-export as a method-style helper for discoverability.
VoxelGrid.from_cloud = staticmethod(voxelize)  # type: ignore[attr-defined]
