"""Region-of-interest extraction and background subtraction (Section IV-G).

The networking feasibility study hinges on sending only the points a
cooperator actually needs: a full frame (ROI 1), a 120-degree front sector
(ROI 2), or a forward corridor along the driving path (ROI 3).  Background
structures (buildings, trees) that each vehicle can map for itself are
subtracted before transmission.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.geometry.boxes import Box3D, points_in_box
from repro.geometry.rotations import normalize_angle
from repro.pointcloud.cloud import PointCloud

__all__ = [
    "crop_range",
    "crop_sector",
    "crop_box",
    "forward_corridor",
    "subtract_background",
]


def crop_range(cloud: PointCloud, max_range: float, min_range: float = 0.0) -> PointCloud:
    """Keep points whose distance from the sensor is within the band."""
    if max_range <= min_range:
        raise ValueError("max_range must exceed min_range")
    r = cloud.ranges
    return cloud.select((r >= min_range) & (r <= max_range))


def crop_sector(
    cloud: PointCloud,
    fov_deg: float = 120.0,
    center_azimuth_deg: float = 0.0,
    max_range: float | None = None,
) -> PointCloud:
    """Keep points inside an azimuthal sector (ROI category 2).

    ``fov_deg`` is the full opening angle; the default 120 degrees matches
    the front-view camera alignment the paper uses.
    """
    if not 0 < fov_deg <= 360:
        raise ValueError("fov_deg must be in (0, 360]")
    azimuth = np.arctan2(cloud.xyz[:, 1], cloud.xyz[:, 0])
    center = np.deg2rad(center_azimuth_deg)
    half = np.deg2rad(fov_deg) / 2.0
    delta = np.abs(
        np.vectorize(normalize_angle)(azimuth - center) if len(azimuth) else azimuth
    )
    mask = delta <= half + 1e-6  # tolerance: float32 points on the boundary
    if max_range is not None:
        mask &= cloud.ranges <= max_range
    return cloud.select(mask)


def crop_box(cloud: PointCloud, box: Box3D, margin: float = 0.0) -> PointCloud:
    """Keep points inside an oriented box (per-object ROI extraction)."""
    return cloud.select(points_in_box(cloud.data, box, margin=margin))


def forward_corridor(
    cloud: PointCloud,
    length: float = 50.0,
    width: float = 8.0,
    height: float = 4.0,
) -> PointCloud:
    """Keep points in a forward corridor along +x (ROI category 3).

    Models the trailing-car case: only the leading car's forward field of
    view along the driving path is needed, a one-way transfer.
    """
    if min(length, width, height) <= 0:
        raise ValueError("corridor dimensions must be positive")
    corridor = Box3D(
        center=np.array([length / 2.0, 0.0, height / 2.0 - 2.0]),
        length=length,
        width=width,
        height=height,
        yaw=0.0,
    )
    return crop_box(cloud, corridor)


def subtract_background(
    cloud: PointCloud,
    background_boxes: Sequence[Box3D],
    margin: float = 0.2,
) -> PointCloud:
    """Remove points belonging to known static background volumes.

    The paper notes buildings and trees can be reconstructed by each
    vehicle after several mapping passes, so cooperators drop them before
    transmission.  We model the known background as a set of volumes.
    """
    if cloud.is_empty() or not background_boxes:
        return cloud
    keep = np.ones(len(cloud), dtype=bool)
    for box in background_boxes:
        keep &= ~points_in_box(cloud.data, box, margin=margin)
    return cloud.select(keep)
