"""KITTI-format point-cloud binary I/O.

KITTI velodyne scans are flat little-endian float32 files of ``x, y, z,
reflectance`` records.  We read and write that exact format so synthetic
scans from :mod:`repro.sensors.lidar` are interchangeable with real KITTI
files if a user supplies them.
"""

from __future__ import annotations

import os

import numpy as np

from repro.pointcloud.cloud import PointCloud

__all__ = ["read_kitti_bin", "write_kitti_bin"]


def read_kitti_bin(path: str | os.PathLike, frame_id: str = "velodyne") -> PointCloud:
    """Read a KITTI ``.bin`` velodyne scan."""
    raw = np.fromfile(str(path), dtype=np.float32)
    if raw.size % 4 != 0:
        raise ValueError(
            f"{path}: size {raw.size} floats is not a multiple of 4; "
            "not a KITTI velodyne file"
        )
    return PointCloud(raw.reshape(-1, 4), frame_id)


def write_kitti_bin(cloud: PointCloud, path: str | os.PathLike) -> None:
    """Write a cloud as a KITTI ``.bin`` velodyne scan."""
    cloud.data.astype(np.float32).tofile(str(path))
