"""Quantising point-cloud codec (Section II-C / IV-G data budget).

The paper states that "by only extracting positional coordinates and
reflection value, point clouds can be compressed into 200 KB per scan" and
later that the costliest ROI exchange is ~1.8 Mbit per frame.  We implement
the codec that achieves those budgets: fixed-point quantisation of
coordinates relative to the cloud's bounding box plus an 8-bit reflectance,
serialised little-endian with a small header.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.pointcloud.cloud import PointCloud
from repro.profiling import PROFILER

__all__ = [
    "CompressionSpec",
    "compress_cloud",
    "decompress_cloud",
    "compressed_size_bytes",
]

_MAGIC = b"CPPC"  # Cooper Point Cloud
_HEADER = struct.Struct("<4sBBHI6f")  # magic, version, bits, refl_bits, count, bounds


@dataclass(frozen=True)
class CompressionSpec:
    """Quantisation parameters.

    Attributes:
        coordinate_bits: bits per coordinate axis (16 gives ~2 mm resolution
            over a 140 m span, far below LiDAR noise).
        reflectance_bits: bits for the reflectance channel (0 drops it).
    """

    coordinate_bits: int = 16
    reflectance_bits: int = 8

    def __post_init__(self) -> None:
        if self.coordinate_bits not in (8, 16, 32):
            raise ValueError("coordinate_bits must be 8, 16 or 32")
        if self.reflectance_bits not in (0, 8):
            raise ValueError("reflectance_bits must be 0 or 8")

    @property
    def bytes_per_point(self) -> float:
        """Payload bytes per point."""
        return 3 * self.coordinate_bits / 8 + self.reflectance_bits / 8


def compressed_size_bytes(num_points: int, spec: CompressionSpec | None = None) -> int:
    """Predicted size in bytes of a compressed cloud of ``num_points``."""
    spec = spec or CompressionSpec()
    return _HEADER.size + int(np.ceil(num_points * spec.bytes_per_point))


def _coord_dtype(bits: int) -> np.dtype:
    return {8: np.uint8, 16: np.uint16, 32: np.uint32}[bits]


def compress_cloud(cloud: PointCloud, spec: CompressionSpec | None = None) -> bytes:
    """Serialise a cloud to the quantised wire format.

    Coordinates are normalised into the cloud's bounding box and quantised
    to ``spec.coordinate_bits`` unsigned integers; reflectance (already in
    [0, 1]) maps to 8 bits.  The header records the bounding box so the
    receiver can dequantise without side information.
    """
    with PROFILER.stage("codec.compress"):
        return _compress(cloud, spec or CompressionSpec())


def _compress(cloud: PointCloud, spec: CompressionSpec) -> bytes:
    n = len(cloud)
    if n == 0:
        bounds = (0.0,) * 6
        header = _HEADER.pack(
            _MAGIC, 1, spec.coordinate_bits, spec.reflectance_bits, 0, *bounds
        )
        return header

    lo, hi = cloud.bounds()
    span = np.maximum(hi - lo, 1e-6)
    header = _HEADER.pack(
        _MAGIC,
        1,
        spec.coordinate_bits,
        spec.reflectance_bits,
        n,
        *lo.astype(float),
        *span.astype(float),
    )
    max_q = (1 << spec.coordinate_bits) - 1
    normalized = (cloud.xyz - lo) / span
    # Clip before the integer cast: float rounding can reach max_q + 1,
    # which would silently wrap the unsigned representation to zero.
    quantized = np.clip(np.round(normalized.astype(np.float64) * max_q), 0, max_q)
    quantized = quantized.astype(_coord_dtype(spec.coordinate_bits))
    chunks = [header, quantized.tobytes()]
    if spec.reflectance_bits == 8:
        refl = np.clip(cloud.reflectance, 0.0, 1.0)
        chunks.append(np.round(refl * 255).astype(np.uint8).tobytes())
    return b"".join(chunks)


def decompress_cloud(payload: bytes, frame_id: str = "decoded") -> PointCloud:
    """Inverse of :func:`compress_cloud`."""
    with PROFILER.stage("codec.decompress"):
        return _decompress(payload, frame_id)


def _decompress(payload: bytes, frame_id: str) -> PointCloud:
    if len(payload) < _HEADER.size:
        raise ValueError("payload too short for header")
    magic, version, coord_bits, refl_bits, n, *bounds = _HEADER.unpack_from(payload)
    if magic != _MAGIC:
        raise ValueError("bad magic: not a Cooper point-cloud payload")
    if version != 1:
        raise ValueError(f"unsupported codec version {version}")
    if n == 0:
        return PointCloud.empty(frame_id)
    lo = np.array(bounds[:3])
    span = np.array(bounds[3:])
    dtype = _coord_dtype(coord_bits)
    coord_bytes = n * 3 * dtype().itemsize
    offset = _HEADER.size
    quantized = np.frombuffer(
        payload, dtype=dtype, count=n * 3, offset=offset
    ).reshape(n, 3)
    max_q = (1 << coord_bits) - 1
    xyz = quantized.astype(np.float64) / max_q * span + lo
    offset += coord_bytes
    if refl_bits == 8:
        refl = (
            np.frombuffer(payload, dtype=np.uint8, count=n, offset=offset).astype(
                np.float32
            )
            / 255.0
        )
    else:
        refl = np.zeros(n, dtype=np.float32)
    return PointCloud.from_xyz(xyz, refl, frame_id)
