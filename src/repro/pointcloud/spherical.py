"""Spherical (range-image) projection of point clouds.

SPOD's preprocessing projects the sparse cloud onto a sphere — the
SqueezeSeg-style dense representation the paper cites as [27] — so that a
cloud from any beam count becomes a fixed-size ``(H, W)`` range image.  The
projection is also what lets Cooper reason about beam-level sparsity: a
16-beam cloud fills a quarter of the rows a 64-beam cloud fills.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pointcloud.cloud import PointCloud

__all__ = ["SphericalProjection", "spherical_project"]


@dataclass(frozen=True)
class SphericalProjection:
    """A dense range image plus companion channels.

    Attributes:
        ranges: ``(H, W)`` metres; 0 where no point landed.
        reflectance: ``(H, W)`` reflectance of the nearest point per cell.
        mask: ``(H, W)`` bool, True where a point landed.
        fov_up / fov_down: vertical field of view bounds in radians.
    """

    ranges: np.ndarray
    reflectance: np.ndarray
    mask: np.ndarray
    fov_up: float
    fov_down: float

    @property
    def shape(self) -> tuple[int, int]:
        """Image shape (H, W)."""
        return self.ranges.shape

    def fill_ratio(self) -> float:
        """Fraction of cells containing at least one point."""
        return float(self.mask.mean()) if self.mask.size else 0.0

    def to_cloud(self, frame_id: str = "reprojected") -> PointCloud:
        """Back-project the image to a point cloud (one point per cell)."""
        height, width = self.shape
        rows, cols = np.nonzero(self.mask)
        if len(rows) == 0:
            return PointCloud.empty(frame_id)
        pitch = self.fov_up - (rows + 0.5) / height * (self.fov_up - self.fov_down)
        azimuth = np.pi - (cols + 0.5) / width * 2 * np.pi
        r = self.ranges[rows, cols]
        x = r * np.cos(pitch) * np.cos(azimuth)
        y = r * np.cos(pitch) * np.sin(azimuth)
        z = r * np.sin(pitch)
        return PointCloud.from_xyz(
            np.column_stack([x, y, z]),
            self.reflectance[rows, cols],
            frame_id,
        )


def spherical_project(
    cloud: PointCloud,
    height: int = 64,
    width: int = 512,
    fov_up_deg: float = 3.0,
    fov_down_deg: float = -25.0,
) -> SphericalProjection:
    """Project a cloud onto an ``(height, width)`` spherical range image.

    Default vertical field of view matches the Velodyne HDL-64E-class
    sensors used by KITTI.  When several points fall into the same cell the
    nearest one wins, mimicking a real scanner's first return.
    """
    fov_up = np.deg2rad(fov_up_deg)
    fov_down = np.deg2rad(fov_down_deg)
    if fov_up <= fov_down:
        raise ValueError("fov_up_deg must exceed fov_down_deg")
    ranges_img = np.zeros((height, width), dtype=np.float32)
    refl_img = np.zeros((height, width), dtype=np.float32)
    mask = np.zeros((height, width), dtype=bool)
    if cloud.is_empty():
        return SphericalProjection(ranges_img, refl_img, mask, fov_up, fov_down)

    xyz = cloud.xyz.astype(np.float64)
    r = np.linalg.norm(xyz, axis=1)
    valid = r > 1e-6
    xyz = xyz[valid]
    r = r[valid]
    refl = cloud.reflectance[valid]
    if len(r) == 0:
        return SphericalProjection(ranges_img, refl_img, mask, fov_up, fov_down)

    azimuth = np.arctan2(xyz[:, 1], xyz[:, 0])
    pitch = np.arcsin(np.clip(xyz[:, 2] / r, -1.0, 1.0))

    cols = ((np.pi - azimuth) / (2 * np.pi) * width).astype(int)
    rows = ((fov_up - pitch) / (fov_up - fov_down) * height).astype(int)
    np.clip(cols, 0, width - 1, out=cols)
    in_fov = (rows >= 0) & (rows < height)
    rows, cols, r, refl = rows[in_fov], cols[in_fov], r[in_fov], refl[in_fov]

    # Nearest-point-wins: process in decreasing range so closer overwrites.
    order = np.argsort(-r)
    rows, cols, r, refl = rows[order], cols[order], r[order], refl[order]
    ranges_img[rows, cols] = r
    refl_img[rows, cols] = refl
    mask[rows, cols] = True
    return SphericalProjection(ranges_img, refl_img, mask, fov_up, fov_down)
