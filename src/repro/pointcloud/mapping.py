"""Background self-mapping (paper §IV-G).

"Background data like buildings, trees are subtract[ed] because these
information can be constructed by each vehicle after several times mapping
measurement."  This module performs that construction: scans taken over
time are accumulated into a world-frame occupancy grid; columns occupied in
(nearly) every pass are *static background*, and a mask derived from them
drives the transmission-side subtraction — without anyone handing the
vehicle a list of building boxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.transforms import Pose
from repro.pointcloud.cloud import PointCloud

__all__ = ["BackgroundMap", "BackgroundMapper"]


@dataclass
class BackgroundMap:
    """The learned static-background mask.

    Attributes:
        origin: world (x, y) of grid cell (0, 0).
        cell: metres per cell.
        static_mask: (nx, ny) bool — True where the column is background.
        passes: how many mapping passes produced it.
    """

    origin: np.ndarray
    cell: float
    static_mask: np.ndarray
    passes: int

    def is_background(self, points_world: np.ndarray) -> np.ndarray:
        """Per-point mask: does the point fall in a static column?"""
        points_world = np.atleast_2d(points_world)[:, :2]
        cells = np.floor((points_world - self.origin) / self.cell).astype(int)
        nx, ny = self.static_mask.shape
        inside = (
            (cells[:, 0] >= 0)
            & (cells[:, 0] < nx)
            & (cells[:, 1] >= 0)
            & (cells[:, 1] < ny)
        )
        result = np.zeros(len(points_world), dtype=bool)
        idx = cells[inside]
        result[inside] = self.static_mask[idx[:, 0], idx[:, 1]]
        return result

    def subtract(self, cloud: PointCloud, pose: Pose) -> PointCloud:
        """Drop a sensor-frame cloud's points that map to known background."""
        if cloud.is_empty():
            return cloud
        world_xyz = pose.to_world().apply(cloud.xyz.astype(float))
        return cloud.select(~self.is_background(world_xyz))

    @property
    def coverage_cells(self) -> int:
        """Number of cells currently marked static."""
        return int(self.static_mask.sum())


@dataclass
class BackgroundMapper:
    """Accumulates mapping passes into a :class:`BackgroundMap`.

    Attributes:
        bounds: world extent ``(xmin, ymin, xmax, ymax)`` being mapped.
        cell: grid resolution (metres).
        min_height: only returns this far above the local ground count —
            ground itself is not "background structure".
        presence_threshold: fraction of passes a column must appear in to
            be declared static (moving objects appear in few passes; keep
            below ~0.7 — parallax means even a wall cell is not hit from
            *every* vantage point).
    """

    bounds: tuple[float, float, float, float]
    cell: float = 0.5
    min_height: float = 0.4
    presence_threshold: float = 0.6
    _counts: np.ndarray = field(init=False, repr=False)
    _passes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.cell <= 0:
            raise ValueError("cell must be positive")
        if not 0.0 < self.presence_threshold <= 1.0:
            raise ValueError("presence_threshold must be in (0, 1]")
        nx = int(np.ceil((self.bounds[2] - self.bounds[0]) / self.cell))
        ny = int(np.ceil((self.bounds[3] - self.bounds[1]) / self.cell))
        if nx <= 0 or ny <= 0:
            raise ValueError("bounds must span a positive area")
        self._counts = np.zeros((nx, ny), dtype=np.int32)

    @property
    def num_passes(self) -> int:
        """Mapping passes accumulated so far."""
        return self._passes

    def add_pass(self, cloud: PointCloud, pose: Pose) -> None:
        """Fold one sensor-frame scan (with its pose) into the map."""
        self._passes += 1
        if cloud.is_empty():
            return
        world = pose.to_world().apply(cloud.xyz.astype(float))
        ground_z = float(np.percentile(world[:, 2], 5))
        elevated = world[world[:, 2] > ground_z + self.min_height]
        if not len(elevated):
            return
        origin = np.array(self.bounds[:2])
        cells = np.floor((elevated[:, :2] - origin) / self.cell).astype(int)
        nx, ny = self._counts.shape
        inside = (
            (cells[:, 0] >= 0)
            & (cells[:, 0] < nx)
            & (cells[:, 1] >= 0)
            & (cells[:, 1] < ny)
        )
        cells = np.unique(cells[inside], axis=0)
        if len(cells):
            self._counts[cells[:, 0], cells[:, 1]] += 1

    def build(self) -> BackgroundMap:
        """Derive the static mask from the accumulated passes."""
        if self._passes == 0:
            raise ValueError("no mapping passes accumulated")
        needed = int(np.ceil(self.presence_threshold * self._passes))
        return BackgroundMap(
            origin=np.array(self.bounds[:2]),
            cell=self.cell,
            static_mask=self._counts >= max(needed, 1),
            passes=self._passes,
        )
