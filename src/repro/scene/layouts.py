"""Road-layout builders mirroring the paper's evaluation scenarios.

Each builder returns a :class:`Layout`: a populated :class:`World` plus the
named observer poses from which the cooperating vehicles scan it.  The four
KITTI scenarios of Fig. 3 (T-junction, stop sign, left turn, curve) and the
T&J parking lots of Fig. 6 are generated procedurally, seeded for
repeatability, with deliberate occlusions so that each single viewpoint
misses some targets — the effect Cooper's fusion recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.transforms import Pose
from repro.scenario.placement import scatter_cars
from repro.scene.objects import (
    make_building,
    make_tree,
    make_truck,
)
from repro.scene.world import World

__all__ = [
    "Layout",
    "scatter_cars",
    "t_junction",
    "stop_sign",
    "left_turn",
    "curve",
    "parking_lot",
    "two_lane_road",
    "highway_overtake",
    "crosswalk",
]


@dataclass(frozen=True)
class Layout:
    """A built scenario: the world plus named cooperator viewpoints.

    Attributes:
        name: scenario identifier ("t_junction", ...).
        world: the static world snapshot.
        viewpoints: observer name -> sensor pose (LiDAR origin ~1.7 m up).
    """

    name: str
    world: World
    viewpoints: dict[str, Pose] = field(default_factory=dict)

    def viewpoint(self, name: str) -> Pose:
        """Look up one observer pose, failing fast with the valid set."""
        try:
            return self.viewpoints[name]
        except KeyError:
            raise KeyError(
                f"unknown viewpoint {name!r} in layout {self.name!r} "
                f"(valid viewpoints: {', '.join(sorted(self.viewpoints))})"
            ) from None


_SENSOR_HEIGHT = 1.73  # KITTI velodyne mounting height


def _pose(x: float, y: float, yaw: float = 0.0) -> Pose:
    return Pose(np.array([x, y, _SENSOR_HEIGHT]), yaw=yaw)


# The slot scatter now lives in repro.scenario.placement (shared with the
# scenario DSL's collision-checked sampler); the alias keeps the builders
# below and external callers on the same draw sequence as ever.
_scatter_cars = scatter_cars


def t_junction(seed: int = 0) -> Layout:
    """A T-junction: the side road joins from +y; buildings occlude corners.

    The two viewpoints sit on the main road ~15 m apart (paper Fig. 3
    scenario 1, delta-d = 14.7 m), so each sees around the corner buildings
    differently.
    """
    rng = np.random.default_rng(seed)
    cars = _scatter_cars(
        rng,
        [
            # Main road (runs along x), oncoming lane at y = 3.5.
            (18.0, 3.5, np.pi),
            (28.0, 3.5, np.pi),
            (40.0, 3.5, np.pi),
            (26.0, -3.5, 0.0),
            (46.0, -3.5, 0.0),
            # Side road (runs along y at x ~ 35), cars waiting to join.
            (35.0, 10.0, -np.pi / 2),
            (35.0, 18.0, -np.pi / 2),
            (38.5, 13.0, np.pi / 2),
            # Parked near the junction mouth, occluded from one side.
            (44.0, 7.0, 0.0),
        ],
        "car",
    )
    background = [
        make_building(18.0, 19.0, length=14.0, width=8.0, name="bldg-nw"),
        make_building(52.0, 15.0, length=12.0, width=8.0, name="bldg-ne"),
        make_building(30.0, -13.0, length=26.0, width=6.0, name="bldg-s"),
        make_tree(10.0, 7.0, name="tree-0"),
        make_tree(56.0, 7.0, name="tree-1"),
    ]
    truck = make_truck(24.0, -0.5, yaw=0.0, name="truck-occluder")
    world = World(tuple(cars + [truck] + background))
    viewpoints = {
        "t1": _pose(0.0, -1.5, 0.0),
        "t2": _pose(14.55, -0.2, 0.0),  # delta-d = 14.7 m, slight lane change
    }
    return Layout("t_junction", world, viewpoints)


def stop_sign(seed: int = 1) -> Layout:
    """A four-way stop: queued cars occlude one another near the line.

    Viewpoints are two vehicles approaching from perpendicular arms
    (delta-d = 13.3 m in the paper's scenario 2).
    """
    rng = np.random.default_rng(seed)
    cars = _scatter_cars(
        rng,
        [
            # Oncoming (westbound) queue approaching the stop line.
            (18.5, 2.0, np.pi),
            (29.0, 1.8, np.pi),
            # North arm heading south towards the junction at x ~ 20.
            (20.0, 9.0, -np.pi / 2),
            (20.0, 16.0, -np.pi / 2),
            # Eastbound cars ahead, hidden from t3 by the stopped truck.
            (35.0, -1.8, 0.0),
            (43.0, -1.8, 0.0),
            # Parked by the north-east corner.
            (25.0, 6.0, 0.0),
        ],
        "car",
    )
    background = [
        make_building(8.0, 11.0, length=10.0, width=8.0, name="bldg-nw"),
        make_building(33.0, 13.0, length=12.0, width=8.0, name="bldg-ne"),
        make_building(4.0, -16.0, length=10.0, width=6.0, name="bldg-sw"),
        make_tree(14.0, -6.0, name="tree-0"),
    ]
    truck = make_truck(26.0, -1.8, yaw=0.0, name="truck-occluder")
    world = World(tuple(cars + [truck] + background))
    viewpoints = {
        "t3": _pose(0.0, -1.8, 0.0),
        "t4": _pose(11.5, -8.5, np.pi / 2),  # south arm, delta-d = 13.3 m
    }
    return Layout("stop_sign", world, viewpoints)


def left_turn(seed: int = 2) -> Layout:
    """A left-turn scenario: the same vehicle pose observed twice (dd = 0).

    The paper's scenario 3 merges two shots with delta-d = 0 m: the vehicle
    stopped while turning left, gaining only temporal redundancy.  The two
    viewpoints share a position but differ in heading mid-turn.
    """
    rng = np.random.default_rng(seed)
    cars = _scatter_cars(
        rng,
        [
            (16.0, 4.0, np.pi),
            (25.0, 4.0, np.pi),
            (21.0, -5.0, 0.0),
            (34.0, -8.0, -np.pi / 2),
            (34.0, -16.0, -np.pi / 2),
            (40.0, 2.0, np.pi),
            (13.0, 12.0, np.pi / 2),
        ],
        "car",
    )
    background = [
        make_building(28.0, 16.0, length=16.0, width=10.0, name="bldg-a"),
        make_tree(10.0, -8.0, name="tree-0"),
        make_tree(44.0, -6.0, name="tree-1"),
    ]
    world = World(tuple(cars + background))
    viewpoints = {
        "t5": _pose(0.0, 0.0, 0.0),
        "t6": _pose(0.0, 0.0, np.deg2rad(35.0)),  # same spot, mid-turn
    }
    return Layout("left_turn", world, viewpoints)


def curve(seed: int = 3) -> Layout:
    """A curved road: widely-spaced viewpoints (paper delta-d = 48.1 m).

    Roadside buildings on the inside of the bend block each vehicle's view
    of the other's stretch; fusion restores the whole arc.
    """
    rng = np.random.default_rng(seed)
    # Cars along an arc of radius 60 centred at (0, 60).
    slots = []
    for angle_deg in (-18.0, -8.0, 2.0, 12.0, 22.0, 32.0):
        angle = np.deg2rad(angle_deg)
        x = 60.0 * np.sin(angle) + 24.0
        y = 60.0 - 60.0 * np.cos(angle)
        heading = angle  # tangent direction
        slots.append((x, y, heading))
    slots.append((10.0, -4.5, 0.0))
    slots.append((52.0, 16.0, np.deg2rad(40.0)))
    cars = _scatter_cars(rng, slots, "car")
    background = [
        make_building(30.0, 24.0, length=18.0, width=10.0, yaw=0.4, name="bldg-inner"),
        make_building(6.0, 14.0, length=10.0, width=8.0, name="bldg-a"),
        make_tree(40.0, -4.0, name="tree-0"),
    ]
    world = World(tuple(cars + background))
    viewpoints = {
        "t7": _pose(0.0, 0.0, 0.0),
        "t8": _pose(46.0, 14.0, np.deg2rad(35.0)),  # 48.1 m along the bend
    }
    return Layout("curve", world, viewpoints)


def parking_lot(
    seed: int = 10,
    rows: int = 3,
    cols: int = 6,
    occupancy: float = 0.7,
    viewpoint_offsets: dict[str, tuple[float, float, float]] | None = None,
) -> Layout:
    """A T&J-style parking lot: rows of parked cars, aisles between them.

    Parked rows occlude one another heavily from any single aisle — this is
    the environment where the paper's 16-beam experiments found cars that
    *neither* vehicle detected alone (Fig. 5).  ``viewpoint_offsets`` maps
    observer names to (x, y, yaw) in the lot frame; defaults give two cars
    in different aisles.
    """
    rng = np.random.default_rng(seed)
    slots: list[tuple[float, float, float]] = []
    row_pitch = 11.0  # stall depth + aisle
    col_pitch = 3.0
    for r in range(rows):
        for c in range(cols):
            if rng.random() > occupancy:
                continue
            x = 10.0 + c * col_pitch
            y = 6.0 + r * row_pitch
            yaw = np.pi / 2 if r % 2 == 0 else -np.pi / 2
            slots.append((x, y, yaw))
    cars = _scatter_cars(rng, slots, "parked")
    background = [
        make_building(14.0, -14.0, length=22.0, width=9.0, name="bldg-office"),
        make_tree(2.0, 16.0, name="tree-0"),
        make_tree(30.0, 16.0, name="tree-1"),
    ]
    world = World(tuple(cars + background))
    if viewpoint_offsets is None:
        viewpoint_offsets = {
            "car1": (0.0, 0.0, 0.0),
            "car2": (5.5, 0.0, 0.0),
        }
    viewpoints = {
        name: _pose(x, y, yaw) for name, (x, y, yaw) in viewpoint_offsets.items()
    }
    return Layout("parking_lot", world, viewpoints)


def highway_overtake(seed: int = 25) -> Layout:
    """An overtaking scenario: a truck hides oncoming traffic.

    The follower sits behind a slow truck on a two-lane highway; an
    oncoming car approaches in the opposite lane, fully hidden by the
    truck.  The leader (ahead of the truck... here: the oncoming lane's
    other vehicle) sees it clearly — the safety-critical information gap
    the paper's motivation section describes, closed by one exchange.
    """
    rng = np.random.default_rng(seed)
    cars = _scatter_cars(
        rng,
        [
            # The hidden oncoming car, in the opposite lane behind the truck.
            (52.0, 1.9, np.pi),
            # Distant oncoming traffic, visible to everyone.
            (80.0, 1.9, np.pi),
            # A car ahead of the truck in the follower's own lane.
            (46.0, -1.8, 0.0),
        ],
        "car",
    )
    truck = make_truck(24.0, -0.3, yaw=0.0, name="truck-slow")
    background = [
        make_tree(14.0, 9.0, name="tree-0"),
        make_tree(40.0, -9.0, name="tree-1"),
        make_building(60.0, 14.0, length=16.0, width=8.0, name="barn"),
    ]
    world = World(tuple(cars + [truck] + background))
    viewpoints = {
        # The follower, stuck behind the truck, pondering an overtake.
        "follower": _pose(10.0, -1.8, 0.0),
        # A cooperator in the oncoming lane with a clear view past the truck.
        "helper": _pose(64.0, 1.9, np.pi),
    }
    return Layout("highway_overtake", world, viewpoints)


def crosswalk(seed: int = 27) -> Layout:
    """A mid-block crosswalk: pedestrians and a cyclist among stopped cars.

    The paper's Uber-incident motivation: a pedestrian crossing outside a
    junction, hidden from the approaching vehicle by a stopped car in the
    kerb lane.  A vehicle waiting on the *opposite* side sees the crossing
    clearly.  Also places a second, visible pedestrian and a cyclist so
    multi-class detection gets both easy and hard instances.
    """
    rng = np.random.default_rng(seed)
    from repro.scene.objects import make_cyclist, make_pedestrian

    cars = _scatter_cars(
        rng,
        [
            # Oncoming traffic queued on the far side.
            (30.0, 3.4, np.pi),
            (38.0, 3.4, np.pi),
        ],
        "car",
    )
    # The parked delivery van at the kerb that creates the blind zone —
    # taller than a person, so the crossing pedestrian is fully hidden.
    van = make_truck(16.0, -4.6, length=5.5, width=2.0, height=2.4, name="van-kerb")
    cars.append(van)
    people = [
        # The hidden pedestrian, mid-crossing in the kerb car's shadow.
        make_pedestrian(20.6, -4.7, name="ped-hidden"),
        # A visible pedestrian already past the centreline.
        make_pedestrian(19.0, 2.0, name="ped-visible"),
        # A cyclist riding along the kerb on the far side.
        make_cyclist(26.0, 6.2, yaw=np.pi, name="cyclist-0"),
    ]
    background = [
        make_building(10.0, 14.0, length=12.0, width=8.0, name="bldg-n"),
        make_tree(34.0, -8.0, name="tree-0"),
    ]
    world = World(tuple(cars + people + background))
    viewpoints = {
        # The approaching vehicle, blind to ped-hidden behind car-0.
        "approach": _pose(0.0, -1.6, 0.0),
        # The cooperator waiting on the opposite side of the crossing.
        "opposite": _pose(33.0, 0.2, np.pi),
    }
    return Layout("crosswalk", world, viewpoints)


def two_lane_road(seed: int = 20, num_cars: int = 6) -> Layout:
    """A straight two-lane road: the ROI networking scenarios of Fig. 11.

    Two cooperators drive opposite directions separated by a lane divider
    (ROI category 1), or follow one another (category 3).
    """
    rng = np.random.default_rng(seed)
    slots = []
    for i in range(num_cars):
        lane = 1.8 if i % 2 == 0 else -1.8
        heading = np.pi if lane > 0 else 0.0
        slots.append((12.0 + i * 9.0, lane, heading))
    cars = _scatter_cars(rng, slots, "car")
    background = [
        make_building(30.0, 14.0, length=26.0, width=8.0, name="bldg-n"),
        make_building(30.0, -14.0, length=26.0, width=8.0, name="bldg-s"),
    ]
    world = World(tuple(cars + background))
    viewpoints = {
        "ego": _pose(0.0, -1.8, 0.0),
        "oncoming": _pose(66.0, 1.8, np.pi),
        "leader": _pose(18.0, -1.8, 0.0),
    }
    return Layout("two_lane_road", world, viewpoints)
