"""Simple motion models for scenario stepping.

The networking simulation (Fig. 12) plays out over an eight-second trace;
trajectories move the cooperating vehicles (and optionally other actors)
between frames.  Only planar motion is modelled — the paper's vehicles
drive on roads.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.geometry.transforms import Pose

__all__ = ["Trajectory", "StraightTrajectory", "ArcTrajectory", "StationaryTrajectory"]


class Trajectory(abc.ABC):
    """A time-parameterised pose curve."""

    @abc.abstractmethod
    def pose_at(self, t: float) -> Pose:
        """Pose at time ``t`` seconds."""


@dataclass(frozen=True)
class StationaryTrajectory(Trajectory):
    """A vehicle that does not move (parked cooperator)."""

    pose: Pose

    def pose_at(self, t: float) -> Pose:
        return self.pose


@dataclass(frozen=True)
class StraightTrajectory(Trajectory):
    """Constant-velocity straight-line motion from a starting pose.

    The vehicle moves along its own heading at ``speed`` m/s.
    """

    start: Pose
    speed: float = 8.0

    def pose_at(self, t: float) -> Pose:
        direction = np.array(
            [np.cos(self.start.yaw), np.sin(self.start.yaw), 0.0]
        )
        return self.start.translated(direction * self.speed * t)


@dataclass(frozen=True)
class ArcTrajectory(Trajectory):
    """Constant-speed motion along a circular arc.

    Positive ``turn_rate`` (rad/s) turns left.  Used for the curve and
    left-turn scenarios.
    """

    start: Pose
    speed: float = 8.0
    turn_rate: float = 0.1

    def pose_at(self, t: float) -> Pose:
        if abs(self.turn_rate) < 1e-9:
            return StraightTrajectory(self.start, self.speed).pose_at(t)
        radius = self.speed / self.turn_rate
        yaw0 = self.start.yaw
        yaw = yaw0 + self.turn_rate * t
        # Integrate the unicycle model in closed form.
        dx = radius * (np.sin(yaw) - np.sin(yaw0))
        dy = radius * (-np.cos(yaw) + np.cos(yaw0))
        moved = self.start.translated(np.array([dx, dy, 0.0]))
        return Pose(moved.position, yaw=yaw, pitch=moved.pitch, roll=moved.roll)
