"""Scene substrate: vehicles, obstacles, road layouts and scenarios.

The paper evaluates Cooper on real recordings (KITTI, T&J).  Our substitute
is a procedural world: actors are oriented 3D boxes placed by road-layout
builders that mirror the paper's scenarios — T-junction, stop sign, left
turn, curve (KITTI, Fig. 3) and parking lots (T&J, Fig. 6) — scanned by the
simulated LiDARs in :mod:`repro.sensors`.
"""

from repro.scene.objects import (
    Actor,
    ActorKind,
    make_car,
    make_pedestrian,
    make_cyclist,
    make_truck,
    make_building,
    make_tree,
    sample_car_dimensions,
)
from repro.scene.world import World
from repro.scene.layouts import (
    t_junction,
    stop_sign,
    left_turn,
    curve,
    parking_lot,
    two_lane_road,
    highway_overtake,
    crosswalk,
)
from repro.scene.trajectories import (
    StraightTrajectory,
    ArcTrajectory,
    StationaryTrajectory,
)

__all__ = [
    "Actor",
    "ActorKind",
    "make_car",
    "make_pedestrian",
    "make_cyclist",
    "make_truck",
    "make_building",
    "make_tree",
    "sample_car_dimensions",
    "World",
    "t_junction",
    "stop_sign",
    "left_turn",
    "curve",
    "parking_lot",
    "two_lane_road",
    "highway_overtake",
    "crosswalk",
    "StraightTrajectory",
    "ArcTrajectory",
    "StationaryTrajectory",
]
