"""Actors populating a simulated scene.

Every physical thing a LiDAR ray can hit is an :class:`Actor`: a named,
categorised oriented box with a reflectance.  Cars are the detection
targets; buildings and trees are background (subtractable before
transmission per Section IV-G); occluders of any kind create the blind
zones cooperative perception exists to fill.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace

import numpy as np

from repro.geometry.boxes import Box3D

__all__ = [
    "ActorKind",
    "Actor",
    "make_car",
    "make_pedestrian",
    "make_cyclist",
    "make_truck",
    "make_building",
    "make_tree",
    "sample_car_dimensions",
]

_actor_counter = itertools.count()


class ActorKind(enum.Enum):
    """Category of a scene actor."""

    CAR = "car"
    TRUCK = "truck"
    PEDESTRIAN = "pedestrian"
    CYCLIST = "cyclist"
    BUILDING = "building"
    TREE = "tree"
    BARRIER = "barrier"

    @property
    def is_detection_target(self) -> bool:
        """True for the classes SPOD detects (cars, pedestrians, cyclists).

        Trucks act as large occluders in our scenarios rather than targets;
        the paper's detection grids (Figs. 3 and 6) count cars only, and the
        standard layouts contain no pedestrians/cyclists — the multi-class
        scenarios (crosswalk) add them explicitly.
        """
        return self in (ActorKind.CAR, ActorKind.PEDESTRIAN, ActorKind.CYCLIST)

    @property
    def is_background(self) -> bool:
        """True for static structures subtracted before transmission."""
        return self in (ActorKind.BUILDING, ActorKind.TREE, ActorKind.BARRIER)


@dataclass(frozen=True)
class Actor:
    """A physical object in the world.

    Attributes:
        box: pose and extent in world coordinates.
        kind: semantic category.
        name: unique identifier (auto-generated when omitted).
        reflectance: LiDAR return intensity in [0, 1].
    """

    box: Box3D
    kind: ActorKind = ActorKind.CAR
    name: str = ""
    reflectance: float = 0.5

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.kind.value}-{next(_actor_counter)}"
            )
        if not 0.0 <= self.reflectance <= 1.0:
            raise ValueError("reflectance must be in [0, 1]")

    def moved_to(self, center_xy: np.ndarray, yaw: float | None = None) -> "Actor":
        """Return a copy relocated in the ground plane."""
        center = self.box.center.copy()
        center[:2] = np.asarray(center_xy, dtype=float)[:2]
        new_box = replace(
            self.box, center=center, yaw=self.box.yaw if yaw is None else yaw
        )
        return replace(self, box=new_box)


# Nominal KITTI car statistics: mean l/w/h of the 'Car' class.
_CAR_MEAN = np.array([4.2, 1.8, 1.6])
_CAR_STD = np.array([0.4, 0.1, 0.1])


def sample_car_dimensions(rng: np.random.Generator) -> tuple[float, float, float]:
    """Sample realistic car (length, width, height) from KITTI-like stats."""
    dims = rng.normal(_CAR_MEAN, _CAR_STD)
    dims = np.clip(dims, [3.2, 1.5, 1.35], [5.2, 2.1, 1.55])
    return float(dims[0]), float(dims[1]), float(dims[2])


def make_car(
    x: float,
    y: float,
    yaw: float = 0.0,
    length: float = 4.2,
    width: float = 1.8,
    height: float = 1.6,
    name: str = "",
    reflectance: float = 0.6,
) -> Actor:
    """A car resting on the ground plane at ``(x, y)``."""
    box = Box3D(np.array([x, y, height / 2.0]), length, width, height, yaw)
    return Actor(box, ActorKind.CAR, name, reflectance)


def make_pedestrian(
    x: float,
    y: float,
    height: float = 1.8,
    name: str = "",
) -> Actor:
    """A pedestrian: a slim person-sized box (the paper's Uber-case class)."""
    box = Box3D(np.array([x, y, height / 2.0]), 0.5, 0.5, height, 0.0)
    return Actor(box, ActorKind.PEDESTRIAN, name, reflectance=0.45)


def make_cyclist(
    x: float,
    y: float,
    yaw: float = 0.0,
    name: str = "",
) -> Actor:
    """A cyclist: bicycle-length, person-height, person-width."""
    box = Box3D(np.array([x, y, 0.925]), 1.8, 0.6, 1.85, yaw)
    return Actor(box, ActorKind.CYCLIST, name, reflectance=0.5)


def make_truck(
    x: float,
    y: float,
    yaw: float = 0.0,
    length: float = 8.5,
    width: float = 2.5,
    height: float = 3.2,
    name: str = "",
) -> Actor:
    """A truck-sized occluder/target."""
    box = Box3D(np.array([x, y, height / 2.0]), length, width, height, yaw)
    return Actor(box, ActorKind.TRUCK, name, reflectance=0.55)


def make_building(
    x: float,
    y: float,
    length: float = 20.0,
    width: float = 12.0,
    height: float = 8.0,
    yaw: float = 0.0,
    name: str = "",
) -> Actor:
    """A building block: static background and a strong occluder."""
    box = Box3D(np.array([x, y, height / 2.0]), length, width, height, yaw)
    return Actor(box, ActorKind.BUILDING, name, reflectance=0.3)


def make_tree(x: float, y: float, height: float = 6.0, name: str = "") -> Actor:
    """A tree approximated by a slim vertical box."""
    box = Box3D(np.array([x, y, height / 2.0]), 0.8, 0.8, height, 0.0)
    return Actor(box, ActorKind.TREE, name, reflectance=0.35)
