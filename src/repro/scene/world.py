"""The :class:`World`: a static snapshot of actors plus the ground plane.

A world is what a LiDAR scans and what the evaluation harness reads ground
truth from.  Worlds are cheap value objects: scenario builders create one
per timestep rather than mutating in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.geometry.boxes import Box3D
from repro.scene.objects import Actor, ActorKind

__all__ = ["World"]


@dataclass(frozen=True)
class World:
    """A snapshot of the simulated environment.

    Attributes:
        actors: every physical object (targets, occluders, background).
        ground_z: height of the flat ground plane.
    """

    actors: tuple[Actor, ...] = ()
    ground_z: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "actors", tuple(self.actors))
        names = [a.name for a in self.actors]
        if len(set(names)) != len(names):
            raise ValueError("actor names must be unique within a world")

    def with_actor(self, actor: Actor) -> "World":
        """Return a copy containing one more actor."""
        return replace(self, actors=self.actors + (actor,))

    def with_actors(self, actors: list[Actor]) -> "World":
        """Return a copy containing additional actors."""
        return replace(self, actors=self.actors + tuple(actors))

    def without_actor(self, name: str) -> "World":
        """Return a copy with the named actor removed."""
        remaining = tuple(a for a in self.actors if a.name != name)
        if len(remaining) == len(self.actors):
            raise KeyError(f"no actor named {name!r}")
        return replace(self, actors=remaining)

    def actor(self, name: str) -> Actor:
        """Look up an actor by name."""
        for a in self.actors:
            if a.name == name:
                return a
        raise KeyError(f"no actor named {name!r}")

    def targets(self) -> list[Actor]:
        """The detection targets (vehicles)."""
        return [a for a in self.actors if a.kind.is_detection_target]

    def background(self) -> list[Actor]:
        """The static background actors (buildings, trees, barriers)."""
        return [a for a in self.actors if a.kind.is_background]

    def target_boxes(self) -> list[Box3D]:
        """Ground-truth boxes of the detection targets, world frame."""
        return [a.box for a in self.targets()]

    def actors_of_kind(self, kind: ActorKind) -> list[Actor]:
        """All actors of one category."""
        return [a for a in self.actors if a.kind == kind]

    def nearest_target_distance(self, point: np.ndarray) -> float | None:
        """BEV distance from ``point`` to the closest target centre."""
        targets = self.targets()
        if not targets:
            return None
        point = np.asarray(point, dtype=float)[:2]
        centers = np.array([t.box.center[:2] for t in targets])
        return float(np.linalg.norm(centers - point, axis=1).min())
