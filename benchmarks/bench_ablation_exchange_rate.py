"""Ablation — exchange rate: the paper's 1 Hz choice vs the native 10 Hz.

Section IV-G argues "excessive exchanging of frequencies only leads to
unnecessary data" and settles on 1 frame per second.  Sweep the rate and
record channel utilisation.

Shape: volume grows linearly with rate; 1 Hz sits comfortably inside DSRC
capacity while 10 Hz full-frame exchange approaches or exceeds it.
"""

from benchmarks.conftest import publish
from repro.network.dsrc import DsrcChannel
from repro.network.roi_policy import RoiCategory, RoiPolicy
from repro.network.simulator import ExchangeSimulator
from repro.scene.layouts import two_lane_road
from repro.scene.trajectories import StationaryTrajectory
from repro.sensors.lidar import VLP_16, LidarModel
from repro.sensors.rig import SensorRig


def test_ablation_exchange_rate(benchmark, results_dir):
    layout = two_lane_road()
    make_rig = lambda name: SensorRig(  # noqa: E731
        lidar=LidarModel(pattern=VLP_16), name=name
    )
    simulator = ExchangeSimulator(
        world=layout.world, rig_a=make_rig("a"), rig_b=make_rig("b")
    )
    ego = StationaryTrajectory(layout.viewpoint("ego"))
    oncoming = StationaryTrajectory(layout.viewpoint("oncoming"))
    channel = DsrcChannel(bandwidth_mbps=6.0)

    rows = []
    utilisation = {}
    for rate in (1.0, 2.0, 5.0, 10.0):
        policy = RoiPolicy(
            category=RoiCategory.FULL_FRAME,
            subtract_known_background=False,
            exchange_rate_hz=rate,
        )
        trace = simulator.run(ego, oncoming, policy, duration_seconds=3.0)
        utilisation[rate] = channel.utilization(trace.mean_volume_megabits * 1e6)
        rows.append(
            f"  {rate:4.0f} Hz: {trace.mean_volume_megabits:6.2f} Mbit/s "
            f"({utilisation[rate]*100:5.1f}% of DSRC)"
        )
    publish(
        results_dir,
        "ablation_exchange_rate.txt",
        "Ablation — exchange rate (full-frame, both directions)\n"
        + "\n".join(rows),
    )

    assert utilisation[1.0] < 0.5  # the paper's choice: comfortable headroom
    assert utilisation[10.0] > 5 * utilisation[1.0]  # linear growth

    policy = RoiPolicy(
        category=RoiCategory.FULL_FRAME, subtract_known_background=False
    )
    benchmark.pedantic(
        simulator.run, args=(ego, oncoming, policy),
        kwargs={"duration_seconds": 1.0}, rounds=3, iterations=1,
    )
    benchmark.extra_info["utilisation_1hz"] = round(utilisation[1.0], 3)
