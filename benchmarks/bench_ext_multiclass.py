"""Extension — multi-class cooperative perception (§III-A's class gap).

The paper quotes VoxelNet's per-class APs — cars far above pedestrians and
cyclists — to argue single-vehicle perception of small classes is fragile.
The crosswalk scenario (a pedestrian hidden by a kerb-side car: the Uber
incident of the paper's motivation) measures whether cooperation closes
that gap.

Shape: the approaching vehicle misses the hidden pedestrian entirely;
one cooperator package recovers it with a confident, correctly-labelled
detection, and per-class recall after fusion dominates single-shot recall.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.fusion.align import merge_packages
from repro.fusion.package import ExchangePackage
from repro.scene.layouts import crosswalk
from repro.scene.objects import ActorKind
from repro.sensors.lidar import HDL_64E, LidarModel
from repro.sensors.rig import SensorRig


def _per_class_recall(layout, detections, pose, gate=1.5):
    recall = {}
    for kind in (ActorKind.CAR, ActorKind.PEDESTRIAN, ActorKind.CYCLIST):
        actors = layout.world.actors_of_kind(kind)
        if not actors:
            continue
        found = 0
        for actor in actors:
            local = actor.box.transformed(pose.from_world())
            if any(
                np.linalg.norm(d.box.center[:2] - local.center[:2]) < gate
                for d in detections
            ):
                found += 1
        recall[kind.value] = (found, len(actors))
    return recall


def test_ext_multiclass_crosswalk(benchmark, detector, results_dir):
    layout = crosswalk()
    rig = SensorRig(lidar=LidarModel(pattern=HDL_64E))
    approach = rig.observe(layout.world, layout.viewpoint("approach"), seed=0)
    opposite = rig.observe(layout.world, layout.viewpoint("opposite"), seed=1)

    single = detector.detect(approach.scan.cloud)
    package = ExchangePackage(
        opposite.scan.cloud, opposite.measured_pose, sender="opposite"
    )
    merged = merge_packages(approach.scan.cloud, [package], approach.measured_pose)
    cooperative = benchmark.pedantic(
        detector.detect, args=(merged,), rounds=3, iterations=1
    )

    single_recall = _per_class_recall(layout, single, approach.true_pose)
    cooper_recall = _per_class_recall(layout, cooperative, approach.true_pose)

    lines = ["Extension — multi-class crosswalk (hidden pedestrian)"]
    for cls in single_recall:
        s_found, s_total = single_recall[cls]
        c_found, c_total = cooper_recall[cls]
        lines.append(
            f"  {cls:10s}: single {s_found}/{s_total} -> cooperative "
            f"{c_found}/{c_total}"
        )
    labels = sorted({d.label for d in cooperative})
    lines.append(f"  labels reported cooperatively: {labels}")
    publish(results_dir, "ext_multiclass.txt", "\n".join(lines))

    # The hidden pedestrian converts from missed to found.
    assert cooper_recall["pedestrian"][0] > single_recall["pedestrian"][0]
    assert cooper_recall["pedestrian"][0] == cooper_recall["pedestrian"][1]
    # Every class's recall is at least preserved by fusion.
    for cls in single_recall:
        assert cooper_recall[cls][0] >= single_recall[cls][0]
    # Labels include the small classes.
    assert {"pedestrian", "cyclist"} <= set(labels)
    benchmark.extra_info["cooper_recall"] = cooper_recall
