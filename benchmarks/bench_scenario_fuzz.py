"""Scenario-fuzz bench — the mass-generation and recall-contract anchor.

Fans seeded scenario sweeps from every generative family in
:mod:`repro.scenario.families` over the worker pool, evaluates each
family's recall contracts (fusion-never-hurts on occlusion families,
monotone-recall-in-beam-count, no-crash under chaos fault plans) on an
evenly-sampled subset, and writes the report to
``results/BENCH_scenarios.json``: per-family scenario counts, contract
verdicts, drop ledgers, and the worker-count determinism digests (the
compile sweep re-run at workers 1 vs 4 must produce identical
fingerprint digests).

Runs two ways:

* ``pytest benchmarks/bench_scenario_fuzz.py`` — smoke-sized sweeps.
* ``python benchmarks/bench_scenario_fuzz.py [--smoke] [--count N]
  [--workers N]`` — standalone; ``--smoke`` shrinks the sweep for CI,
  the full run compiles 1000 scenarios per family.

The bench asserts the scenario contract: every family's contracts pass,
every determinism digest pair matches, and every compiled scenario
actually contains detection targets.
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.detection.spod import SPOD
from repro.scenario.fuzz import fuzz_report

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
REPORT_NAME = "BENCH_scenarios.json"

#: Families the bench sweeps (alphabetical, so the report is stable).
BENCH_FAMILIES = (
    "convoy",
    "highway_merge",
    "mixed_fleet_intersection",
    "occluded_pedestrian",
    "roundabout",
)


def build_report(
    smoke: bool = False,
    count: int | None = None,
    seed: int = 0,
    workers: int | None = None,
    detector: SPOD | None = None,
) -> dict:
    """Fuzz every bench family and assemble the report payload."""
    if count is None:
        count = 50 if smoke else 1000
    sample = 4 if smoke else 12
    report = fuzz_report(
        BENCH_FAMILIES,
        count=count,
        base_seed=seed,
        workers=workers,
        detector=detector,
        sample=sample,
        worker_counts=(1, 4),
    )
    report["mode"] = "smoke" if smoke else "full"
    return report


def render_report(report: dict) -> str:
    """Human-readable per-family table of a :func:`build_report` payload."""
    lines = [
        f"{'family':26s} {'count':>6s} {'tgt/scn':>8s} {'dropped':>8s} "
        f"{'contracts':>30s} {'det':>4s}"
    ]
    for name, entry in sorted(report["families"].items()):
        verdicts = " ".join(
            f"{cname}:{'OK' if c['passed'] else 'FAIL'}"
            for cname, c in sorted(entry["contracts"].items())
        )
        det = "OK" if entry["determinism"]["bit_identical"] else "FAIL"
        lines.append(
            f"{name:26s} {entry['count']:6d} {entry['targets_mean']:8.1f} "
            f"{entry['dropped_total']:8d} {verdicts:>30s} {det:>4s}"
        )
    lines.append(f"overall: {'PASSED' if report['passed'] else 'VIOLATED'}")
    return "\n".join(lines)


def check_scenario_contract(report: dict) -> None:
    """Raise when a family violates its contracts or determinism."""
    for name, entry in report["families"].items():
        for cname, contract in entry["contracts"].items():
            assert contract["passed"], (
                f"{name}: contract {cname} violated "
                f"({contract['violations']} of {contract['checked']} "
                f"sampled scenarios): {contract['detail'][:3]}"
            )
        assert entry["determinism"]["bit_identical"], (
            f"{name}: compile sweep digests differ across worker counts: "
            f"{entry['determinism']['digests']}"
        )
        assert entry["targets_mean"] > 0.0, (
            f"{name}: compiled scenarios contain no detection targets"
        )
    assert report["passed"]


def write_report(report: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / REPORT_NAME
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_bench_scenario_fuzz(detector, results_dir):
    report = build_report(smoke=True, detector=detector)
    report["mode"] = "pytest-smoke"
    check_scenario_contract(report)
    path = write_report(report)
    print(f"\n=== {REPORT_NAME} ===\n{render_report(report)}\n")
    assert path.exists()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the sweep and contract sample (CI smoke run)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="scenarios per family (default: 1000, or 50 with --smoke)",
    )
    parser.add_argument("--seed", type=int, default=0, help="fuzz base seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sweeps (results identical at any "
        "count)",
    )
    args = parser.parse_args(argv)
    report = build_report(
        smoke=args.smoke,
        count=args.count,
        seed=args.seed,
        workers=args.workers,
        detector=SPOD.pretrained(),
    )
    check_scenario_contract(report)
    path = write_report(report)
    print(render_report(report))
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
