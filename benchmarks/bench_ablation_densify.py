"""Ablation — the spherical densification preprocessing ([27], Fig. 1).

SPOD's preprocessing can round-trip the cloud through the spherical range
image "to obtain a more compact representation".  Compare detection with
and without it on a sparse 16-beam scan.

Shape: densification deduplicates multi-returns (fewer points in) and
never hurts detection; on sparse 16-beam scans the regularised sampling
can even help the voxel occupancy the analytic RPN reads.
"""

from benchmarks.conftest import publish
from repro.detection.spod import SPOD, SPODConfig
from repro.eval.matching import match_detections
from repro.scene.layouts import parking_lot
from repro.sensors.lidar import VLP_16, LidarModel


def test_ablation_densify(benchmark, results_dir):
    layout = parking_lot()
    pose = layout.viewpoint("car1")
    scan = LidarModel(pattern=VLP_16).scan(layout.world, pose, seed=0)
    gts = [a.box.transformed(pose.from_world()) for a in layout.world.targets()]

    plain = SPOD.pretrained(SPODConfig(densify=False))
    dense = SPOD.pretrained(SPODConfig(densify=True))

    plain_matched = match_detections(plain.detect(scan.cloud), gts).num_matched
    dense_matched = match_detections(dense.detect(scan.cloud), gts).num_matched

    from repro.detection.preprocess import preprocess

    before = len(preprocess(scan.cloud, densify=False).full)
    after = len(preprocess(scan.cloud, densify=True).full)

    lines = [
        "Ablation — spherical densification preprocessing",
        f"  points into the voxeliser: {before} (raw) -> {after} (densified)",
        f"  matched cars: {plain_matched} (raw) vs {dense_matched} (densified)",
    ]
    publish(results_dir, "ablation_densify.txt", "\n".join(lines))

    assert after <= before  # projection deduplicates, never invents points
    # Densification must never hurt; on sparse 16-beam scans the regular
    # resampling can help the detector (cleaner voxel occupancy).
    assert dense_matched >= plain_matched - 1

    benchmark.pedantic(dense.detect, args=(scan.cloud,), rounds=3, iterations=1)
    benchmark.extra_info["matched_raw"] = plain_matched
    benchmark.extra_info["matched_densified"] = dense_matched
