"""Fig. 3/6 band shading quantified: detection rate by distance band.

"Cooperative perception enables global detection of objects located at
far, medium, and near distance" (§IV-D).  Pool every case (KITTI + T&J) by
the near (<10 m) / medium (10-25 m) / far (>25 m) shading of the paper's
grids and compare per-band detection rates, single vs cooperative.

Shape: single-shot rates fall steeply with distance; the cooperative rate
dominates the single rate in every band, with the biggest lift at
medium/far range (where cooperators fill blind zones).
"""

from benchmarks.conftest import publish
from repro.eval.bands import band_analysis, render_band_table


def test_band_analysis(benchmark, kitti_results, tj_results, results_dir):
    results = kitti_results + tj_results
    stats = benchmark(band_analysis, results)
    publish(results_dir, "band_analysis.txt", render_band_table(stats))

    near, medium, far = stats["near"], stats["medium"], stats["far"]
    # Single-shot detection decays with range.
    assert near.single_rate >= medium.single_rate >= far.single_rate
    # Cooperation's gains concentrate at medium/far range, where blind
    # zones and sparsity live; near range is already nearly saturated
    # (small-sample noise tolerated there).
    assert medium.cooper_rate > medium.single_rate + 0.1
    assert far.cooper_rate > far.single_rate + 0.1
    assert near.cooper_rate >= near.single_rate - 0.1
    benchmark.extra_info["cooper_rates"] = {
        band: round(s.cooper_rate, 3) for band, s in stats.items()
    }
