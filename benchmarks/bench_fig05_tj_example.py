"""Fig. 5 — T&J qualitative example: 16-beam merge reveals unseen cars.

The paper's Fig. 5 is a showcase frame: the merged cloud contains every
single-shot detection plus cars that were "not presence in the previous
single shots" — the direct counter-example to object-level fusion.  We
select the showcase the same way: among the 15 evaluated T&J cases, at
least one must exhibit exactly that pattern (strict superset plus
fusion-only discoveries), and we render the strongest one.
"""

from benchmarks.conftest import publish
from repro.fusion.align import merge_packages


def _fusion_only_cars(result):
    return [
        r.car_name
        for r in result.records
        if r.cooper_detected and not any(r.single_detected.values())
    ]


def test_fig05_new_cars_discovered(
    benchmark, detector, tj_case_list, tj_results, results_dir
):
    showcases = [
        (result, _fusion_only_cars(result))
        for result in tj_results
        if result.cooper_superset and _fusion_only_cars(result)
    ]
    assert showcases, (
        "some T&J case must keep every single-shot detection AND discover "
        "cars through fusion alone (the paper's Fig. 5 pattern)"
    )
    result, discovered = max(showcases, key=lambda pair: len(pair[1]))

    lines = [f"Fig. 5 analogue — case {result.case_name} (16-beam clouds)"]
    observers = list(result.records[0].single_scores)
    for observer in observers:
        found = sorted(
            r.car_name for r in result.records if r.single_detected[observer]
        )
        lines.append(f"single shot {observer}: detects {found}")
    cooper_found = sorted(
        r.car_name for r in result.records if r.cooper_detected
    )
    lines.append(f"cooperative: detects {cooper_found}")
    lines.append(f"cars discovered ONLY through fusion: {sorted(discovered)}")
    publish(results_dir, "fig05_tj_example.txt", "\n".join(lines))

    # Benchmark detection on that showcase's merged cloud.
    case = next(c for c in tj_case_list if c.name == result.case_name)
    merged = merge_packages(
        case.cloud_of(case.receiver),
        case.packages_for_receiver(),
        case.receiver_measured_pose(),
    )
    benchmark.pedantic(detector.detect, args=(merged,), rounds=3, iterations=1)
    benchmark.extra_info["showcase"] = result.case_name
    benchmark.extra_info["fusion_only_cars"] = len(discovered)
