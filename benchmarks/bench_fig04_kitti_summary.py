"""Fig. 4 — number of detected cars and detection accuracy, KITTI cases.

Paper shape: the Cooper bars dominate the single-shot bars in both panels
(counts and accuracy) for all four cases.
"""

from benchmarks.conftest import publish
from repro.eval.matching import match_detections
from repro.eval.reporting import render_case_summary


def test_fig04_summary(benchmark, detector, kitti_case_list, kitti_results, results_dir):
    publish(
        results_dir, "fig04_kitti_summary.txt", render_case_summary(kitti_results)
    )

    for result in kitti_results:
        singles_counts = [v for k, v in result.counts.items() if k != "cooper"]
        singles_acc = [v for k, v in result.accuracies.items() if k != "cooper"]
        assert result.counts["cooper"] >= max(singles_counts)
        assert result.accuracies["cooper"] >= max(singles_acc) - 1e-9

    # Benchmark the metric computation itself (matching dominates).
    case = kitti_case_list[0]
    detections = detector.detect(case.cloud_of(case.receiver))
    gts = case.ground_truth_in(case.receiver)
    benchmark(match_detections, detections, gts)
    benchmark.extra_info["cooper_accuracy"] = [
        round(r.accuracies["cooper"], 1) for r in kitti_results
    ]
