"""Extension — per-class average precision, single shot vs cooperative.

§III-A quotes VoxelNet's per-class APs to argue that single-vehicle
perception of small classes (pedestrians, cyclists) lags far behind cars.
We measure the same quantity on the crosswalk scenes — per-class 11-point
AP for each single shot — and then the cooperative AP.

Shape: single-shot car AP far exceeds the small classes (the paper's gap);
cooperation lifts every class, with the biggest relative gain on the small
classes whose evidence a single view so easily loses.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.eval.metrics import average_precision
from repro.fusion.align import merge_packages
from repro.fusion.package import ExchangePackage
from repro.scene.layouts import crosswalk
from repro.scene.objects import ActorKind
from repro.sensors.lidar import HDL_64E, LidarModel
from repro.sensors.rig import SensorRig

KINDS = (ActorKind.CAR, ActorKind.PEDESTRIAN, ActorKind.CYCLIST)
SEEDS = (27, 28, 29, 30)


def _class_ap(detections, layout, pose, kind):
    gts = [
        a.box.transformed(pose.from_world())
        for a in layout.world.actors_of_kind(kind)
    ]
    return average_precision(
        [d for d in detections if d.label == kind.value], gts
    )


def test_ext_per_class_ap(benchmark, detector, results_dir):
    single_aps = {k.value: [] for k in KINDS}
    cooper_aps = {k.value: [] for k in KINDS}
    rig = SensorRig(lidar=LidarModel(pattern=HDL_64E))

    for seed in SEEDS:
        layout = crosswalk(seed=seed)
        approach = rig.observe(layout.world, layout.viewpoint("approach"), seed=seed)
        opposite = rig.observe(
            layout.world, layout.viewpoint("opposite"), seed=seed + 500
        )
        merged = merge_packages(
            approach.scan.cloud,
            [ExchangePackage(opposite.scan.cloud, opposite.measured_pose, sender="op")],
            approach.measured_pose,
        )
        single_dets = {
            "approach": (detector.detect_all(approach.scan.cloud), approach),
            "opposite": (detector.detect_all(opposite.scan.cloud), opposite),
        }
        cooper_dets = detector.detect_all(merged)
        for kind in KINDS:
            for dets, obs in single_dets.values():
                single_aps[kind.value].append(
                    _class_ap(dets, layout, obs.true_pose, kind)
                )
            cooper_aps[kind.value].append(
                _class_ap(cooper_dets, layout, approach.true_pose, kind)
            )

    means = {
        cls: (float(np.mean(single_aps[cls])), float(np.mean(cooper_aps[cls])))
        for cls in single_aps
    }
    lines = ["Extension — per-class AP (crosswalk scenes, 4 seeds)"]
    for cls, (single, cooper) in means.items():
        lines.append(
            f"  {cls:10s}: single-shot AP {single:.2f} -> cooperative {cooper:.2f}"
        )
    publish(results_dir, "ext_class_ap.txt", "\n".join(lines))

    # §III-A's gap: cars far above the small classes on single shots.
    assert means["car"][0] > means["pedestrian"][0] + 0.1
    assert means["car"][0] > means["cyclist"][0] + 0.1
    # Cooperation lifts (or preserves) every class.
    for cls, (single, cooper) in means.items():
        assert cooper >= single - 0.05
    # And the small classes gain the most in absolute AP.
    small_gain = min(
        means["pedestrian"][1] - means["pedestrian"][0],
        means["cyclist"][1] - means["cyclist"][0],
    )
    car_gain = means["car"][1] - means["car"][0]
    assert small_gain >= car_gain - 0.05

    layout = crosswalk(seed=SEEDS[0])
    approach = rig.observe(layout.world, layout.viewpoint("approach"), seed=0)
    benchmark.pedantic(
        detector.detect_all, args=(approach.scan.cloud,), rounds=3, iterations=1
    )
    benchmark.extra_info["mean_aps"] = {
        cls: {"single": round(s, 2), "cooper": round(c, 2)}
        for cls, (s, c) in means.items()
    }
