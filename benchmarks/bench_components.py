"""Component micro-benchmarks: the stages inside one SPOD inference.

Not a paper figure — engineering telemetry for the pipeline: LiDAR
simulation, voxelisation, network forward (VFE + sparse middle + RPN),
proposal decode, and the codec, each timed in isolation.
"""

import numpy as np
import pytest

from repro.detection.preprocess import preprocess
from repro.pointcloud.compression import compress_cloud, decompress_cloud
from repro.pointcloud.voxel import voxelize
from repro.scene.layouts import t_junction
from repro.sensors.lidar import HDL_64E, LidarModel


@pytest.fixture(scope="module")
def scan_cloud():
    layout = t_junction()
    scan = LidarModel(pattern=HDL_64E).scan(
        layout.world, layout.viewpoint("t1"), seed=0
    )
    return scan.cloud


def test_component_lidar_scan(benchmark):
    layout = t_junction()
    lidar = LidarModel(pattern=HDL_64E)
    benchmark.pedantic(
        lidar.scan, args=(layout.world, layout.viewpoint("t1")),
        kwargs={"seed": 0}, rounds=5, iterations=1,
    )


def test_component_voxelize(benchmark, detector, scan_cloud):
    obstacles = preprocess(scan_cloud).obstacles
    grid = benchmark(voxelize, obstacles, detector.config.voxel_spec)
    assert grid.num_voxels > 100


def test_component_network_forward(benchmark, detector, scan_cloud):
    pre = preprocess(scan_cloud)
    grid = voxelize(pre.obstacles, detector.config.voxel_spec)

    def forward():
        return detector.rpn(detector.middle(detector.vfe(grid)))

    cls_logits, reg = benchmark.pedantic(forward, rounds=5, iterations=1)
    assert cls_logits.shape[1] == detector.config.num_yaws


def test_component_full_detection(benchmark, detector, scan_cloud):
    detections = benchmark.pedantic(
        detector.detect, args=(scan_cloud,), rounds=5, iterations=1
    )
    assert len(detections) >= 1


def test_component_codec_throughput(benchmark, scan_cloud):
    payload = compress_cloud(scan_cloud)

    def roundtrip():
        return decompress_cloud(compress_cloud(scan_cloud))

    decoded = benchmark(roundtrip)
    assert len(decoded) == len(scan_cloud)
    # Report effective codec throughput for the record.
    benchmark.extra_info["compressed_bytes"] = len(payload)
    benchmark.extra_info["points"] = len(scan_cloud)
