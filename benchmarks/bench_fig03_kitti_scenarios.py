"""Fig. 3 — per-car detection grids for the four KITTI scenarios.

Each grid row is a ground-truth car; the columns are the two single shots
and the cooperative merge.  Cells hold the detection score (with a
near/medium/far band mark), X for a miss, blank when out of the detection
area — the same semantics as the paper's figure.

Paper shape: cooperative counts equal or exceed each single shot in every
scenario, and cooperative clouds never drop a single-shot detection.
"""

from benchmarks.conftest import publish
from repro.eval.experiments import run_case
from repro.eval.reporting import render_detection_grid


def test_fig03_grids(benchmark, detector, kitti_case_list, kitti_results, results_dir):
    grids = [render_detection_grid(result) for result in kitti_results]
    publish(results_dir, "fig03_kitti_scenarios.txt", "\n\n".join(grids))

    for result in kitti_results:
        singles = [v for k, v in result.counts.items() if k != "cooper"]
        assert result.counts["cooper"] >= max(singles)
        assert result.cooper_superset

    # Benchmark one full case evaluation (2 single shots + 1 merge + match).
    benchmark.pedantic(
        run_case, args=(kitti_case_list[0], detector), rounds=3, iterations=1
    )
    benchmark.extra_info["cooper_counts"] = [
        r.counts["cooper"] for r in kitti_results
    ]
