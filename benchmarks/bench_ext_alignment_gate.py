"""Extension — physical-consistency gating of received packages.

§II-B: "the detected results from other cars are hard to authenticate and
trust issues further complicate this matter."  Raw-data exchange enables a
check object lists never allow: received points must physically agree with
the receiver's own scan where the views overlap.  This bench sweeps the
cooperator's localisation fault and shows the alignment residual
separating honest packages from faulty ones, and the gate quarantining the
latter inside :class:`Cooper`.

Shape: residual ~0.1-0.2 m for in-spec localisation, monotonically rising
with fault size; the gate keeps every in-spec package and rejects every
metre-scale fault.
"""

import numpy as np

from benchmarks.conftest import publish
from repro.fusion.cooper import Cooper
from repro.fusion.diagnostics import validate_package
from repro.fusion.package import ExchangePackage
from repro.geometry.transforms import Pose
from repro.scene.layouts import parking_lot
from repro.sensors.lidar import VLP_16, LidarModel
from repro.sensors.rig import SensorRig

FAULTS = (0.0, 0.1, 0.5, 1.0, 2.0, 3.0)


def test_ext_alignment_gate(benchmark, detector, results_dir):
    layout = parking_lot(seed=71, rows=2, cols=6, occupancy=0.85)
    rig = SensorRig(lidar=LidarModel(pattern=VLP_16, dropout=0.0))
    rx = rig.observe(layout.world, layout.viewpoint("car1"), seed=0)
    tx = rig.observe(layout.world, layout.viewpoint("car2"), seed=1)

    rows = []
    residuals = {}
    for fault in FAULTS:
        pose = Pose(
            tx.measured_pose.position + np.array([fault, fault / 2, 0.0]),
            yaw=tx.measured_pose.yaw,
        )
        package = ExchangePackage(tx.scan.cloud, pose, sender="tx")
        report = validate_package(rx.scan.cloud, package, rx.measured_pose)
        residuals[fault] = report
        rows.append(
            f"  fault {fault:4.1f} m: residual {report.residual:6.3f} m "
            f"-> {'accepted' if report.consistent else 'REJECTED'}"
        )
    publish(
        results_dir,
        "ext_alignment_gate.txt",
        "Extension — alignment residual vs injected localisation fault\n"
        + "\n".join(rows),
    )

    assert residuals[0.0].consistent and residuals[0.1].consistent
    assert not residuals[2.0].consistent and not residuals[3.0].consistent
    values = [residuals[f].residual for f in FAULTS]
    assert values[0] < values[-1]
    # Mostly monotone (small non-monotonic wiggles from aliasing allowed).
    assert sum(b >= a - 0.03 for a, b in zip(values, values[1:])) >= 4

    # The gate inside Cooper quarantines the 2 m fault.
    bad_pose = Pose(
        tx.measured_pose.position + np.array([2.0, 1.0, 0.0]),
        yaw=tx.measured_pose.yaw,
    )
    bad = ExchangePackage(tx.scan.cloud, bad_pose, sender="bad")
    good = ExchangePackage(tx.scan.cloud, tx.measured_pose, sender="good")
    cooper = Cooper(detector=detector, reject_misaligned=True)
    result = cooper.perceive(rx.scan.cloud, rx.measured_pose, [good, bad])
    assert result.num_cooperators == 1
    assert result.rejected_packages == 1

    benchmark.pedantic(
        validate_package,
        args=(rx.scan.cloud, good, rx.measured_pose),
        rounds=5,
        iterations=1,
    )
    benchmark.extra_info["residuals"] = {
        str(f): round(r.residual, 3) for f, r in residuals.items()
    }
