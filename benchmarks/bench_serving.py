"""Serving bench — offered-load sweep and the dynamic-batching claim.

Drives :class:`repro.serve.ServingEngine` with seeded open-loop
workloads over the default scenario pool and writes the report to
``results/BENCH_serve.json``.  Three sections:

* ``load_sweep`` — offered rate vs sustained throughput, p50/p95/p99
  latency, shed/reject rates, batch occupancy and queue depth.  The top
  rates sit past the engine's saturation point, so the sweep shows the
  overload knee and that degradation is graceful (bounded queue, shed
  counters > 0, no throughput collapse, no crash).
* ``batching`` — the same workload served with dynamic batching
  (``max_batch_size=8``) and with per-request dispatch
  (``max_batch_size=1``).  Batching amortises the per-dispatch base cost
  across co-batched requests, so at a fixed offered load it sustains
  strictly higher throughput on the virtual clock.  Measured wall-clock
  service time is recorded alongside for transparency; on this 1-core
  CPU container the padded batch pass is not a wall-time win (consistent
  with the PR-4 session bench), which is exactly why scheduling runs on
  the calibrated virtual model rather than host timings.
* ``determinism`` — one sweep point re-served; the canonical request
  logs must hash identically.

Runs two ways:

* ``pytest benchmarks/bench_serving.py`` — smoke-sized sweep.
* ``python benchmarks/bench_serving.py [--smoke] [--seed N]
  [--workers N]`` — standalone; ``--smoke`` shrinks the grid for CI.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib

from repro.detection.spod import SPOD
from repro.serve import (
    ScenarioPool,
    ServeConfig,
    ServingEngine,
    WorkloadSpec,
    apply_ingress_loss,
    build_report,
    generate_workload,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
REPORT_NAME = "BENCH_serve.json"

INGRESS_LOSS = 0.05
BURST_FACTOR = 2.0
QUEUE_CAPACITY = 32


def _spec(rate_rps: float, duration_ms: float, seed: int) -> WorkloadSpec:
    return WorkloadSpec(
        duration_ms=duration_ms,
        rate_rps=rate_rps,
        burst_factor=BURST_FACTOR,
        seed=seed,
    )


def _serve_point(
    engine: ServingEngine,
    pool: ScenarioPool,
    spec: WorkloadSpec,
) -> tuple[dict, str]:
    """Serve one workload; return (metrics report, canonical log json)."""
    requests = generate_workload(spec, pool)
    delivered, lost = apply_ingress_loss(
        requests, loss_rate=INGRESS_LOSS, seed=spec.seed
    )
    result = engine.serve(delivered, lost)
    report = build_report(result, spec.duration_ms)
    report["rate_rps"] = spec.rate_rps
    return report, result.log_json()


def serving_sweep(
    smoke: bool = False,
    seed: int = 0,
    detector: SPOD | None = None,
    workers: int | None = None,
) -> dict:
    """Run the full serving benchmark and return the JSON-ready report."""
    detector = detector or SPOD.pretrained()
    pool = ScenarioPool.build(seed=seed, variants=1 if smoke else 2)
    duration_ms = 1000.0 if smoke else 4000.0
    rates = [15.0, 90.0] if smoke else [10.0, 20.0, 40.0, 80.0, 160.0]
    comparison_rate = 60.0

    batched_config = ServeConfig(
        max_batch_size=8, max_wait_ms=25.0, queue_capacity=QUEUE_CAPACITY
    )
    per_request_config = ServeConfig(
        max_batch_size=1, max_wait_ms=0.0, queue_capacity=QUEUE_CAPACITY
    )
    engine = ServingEngine(detector, batched_config, workers=workers)

    sweep = []
    logs: dict[float, str] = {}
    for rate in rates:
        point, log_json = _serve_point(engine, pool, _spec(rate, duration_ms, seed))
        sweep.append(point)
        logs[rate] = log_json

    # Same offered load, batching on vs off: the dynamic-batching claim.
    comparison_spec = _spec(comparison_rate, duration_ms, seed)
    batched, _ = _serve_point(engine, pool, comparison_spec)
    per_request_engine = ServingEngine(
        detector, per_request_config, workers=workers
    )
    per_request, _ = _serve_point(per_request_engine, pool, comparison_spec)

    # Determinism spot check: re-serve the lightest point, compare logs.
    _, replay_log = _serve_point(engine, pool, _spec(rates[0], duration_ms, seed))
    digest = hashlib.sha256(logs[rates[0]].encode()).hexdigest()
    replay_digest = hashlib.sha256(replay_log.encode()).hexdigest()

    return {
        "mode": "smoke" if smoke else "full",
        "seed": seed,
        "duration_ms": duration_ms,
        "ingress_loss": INGRESS_LOSS,
        "burst_factor": BURST_FACTOR,
        "config": {
            "max_batch_size": batched_config.max_batch_size,
            "max_wait_ms": batched_config.max_wait_ms,
            "queue_capacity": batched_config.queue_capacity,
            "lanes": batched_config.lanes,
        },
        "load_sweep": sweep,
        "batching": {
            "rate_rps": comparison_rate,
            "batched": batched,
            "per_request": per_request,
            "throughput_gain": (
                batched["throughput_rps"] / per_request["throughput_rps"]
                if per_request["throughput_rps"] > 0
                else float("inf")
            ),
        },
        "determinism": {
            "rate_rps": rates[0],
            "log_sha256": digest,
            "replay_sha256": replay_digest,
            "identical": digest == replay_digest,
        },
    }


def check_serving_contract(report: dict) -> None:
    """Raise when a run violates the serving claims."""
    sweep = report["load_sweep"]
    for point in sweep:
        accounted = (
            point["completed"]
            + point["shed_deadline"]
            + point["rejected_queue_full"]
            + point["lost_ingress"]
        )
        assert accounted == point["offered"], (
            f"rate {point['rate_rps']}: {accounted} accounted "
            f"!= {point['offered']} offered"
        )
        assert point["max_queue_depth"] <= report["config"]["queue_capacity"], (
            f"rate {point['rate_rps']}: queue depth exceeded capacity"
        )

    light, heavy = sweep[0], sweep[-1]
    assert light["shed_rate"] <= 0.05, "light load should barely shed"
    assert light["deadline_hit_rate"] >= 0.9, "light load should meet SLOs"
    # Graceful overload: the top rate is past saturation, so the engine
    # must shed — while still completing work at its sustained rate, not
    # collapsing.
    assert heavy["shed_deadline"] + heavy["rejected_queue_full"] > 0, (
        "overload point did not shed"
    )
    assert heavy["completed"] > 0, "overload point completed nothing"
    best_below = max(p["throughput_rps"] for p in sweep[:-1])
    assert heavy["throughput_rps"] >= 0.7 * best_below, (
        "throughput collapsed under overload"
    )

    batching = report["batching"]
    batched, per_request = batching["batched"], batching["per_request"]
    assert per_request["batch_occupancy"]["max"] <= 1, (
        "per-request baseline formed a multi-request batch"
    )
    assert batched["batch_occupancy"]["mean"] > 1.2, (
        "dynamic batching never coalesced requests"
    )
    assert batched["throughput_rps"] > per_request["throughput_rps"], (
        "dynamic batching did not beat per-request dispatch"
    )
    assert batched["completed"] > per_request["completed"], (
        "dynamic batching completed no more requests"
    )

    assert report["determinism"]["identical"], (
        "re-served workload produced a different request log"
    )


def render_report(report: dict) -> str:
    """Human-readable tables of a :func:`serving_sweep` report."""
    lines = [
        f"mode: {report['mode']}  seed: {report['seed']}  "
        f"window: {report['duration_ms']:.0f} ms  "
        f"ingress loss: {report['ingress_loss']:.2f}",
        f"{'rate':>6s} {'offered':>8s} {'done':>6s} {'tput':>7s} "
        f"{'p50':>7s} {'p95':>7s} {'p99':>7s} {'shed%':>6s} "
        f"{'occ':>5s} {'depth':>6s}",
    ]
    for point in report["load_sweep"]:
        lines.append(
            f"{point['rate_rps']:6.0f} {point['offered']:8d} "
            f"{point['completed']:6d} {point['throughput_rps']:7.1f} "
            f"{point['latency_ms']['p50']:7.1f} "
            f"{point['latency_ms']['p95']:7.1f} "
            f"{point['latency_ms']['p99']:7.1f} "
            f"{point['shed_rate'] * 100.0:6.1f} "
            f"{point['batch_occupancy']['mean']:5.2f} "
            f"{point['max_queue_depth']:6d}"
        )
    batching = report["batching"]
    batched, per_request = batching["batched"], batching["per_request"]
    lines.append(
        f"batching @ {batching['rate_rps']:.0f} rps: "
        f"batched {batched['throughput_rps']:.1f} rps "
        f"(occ {batched['batch_occupancy']['mean']:.2f}) vs per-request "
        f"{per_request['throughput_rps']:.1f} rps "
        f"-> gain {batching['throughput_gain']:.2f}x  "
        f"[wall: {batched['service_wall_seconds']:.2f}s vs "
        f"{per_request['service_wall_seconds']:.2f}s]"
    )
    determinism = report["determinism"]
    lines.append(
        f"determinism @ {determinism['rate_rps']:.0f} rps: "
        f"{'identical' if determinism['identical'] else 'DIVERGED'} "
        f"({determinism['log_sha256'][:12]})"
    )
    return "\n".join(lines)


def write_report(report: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / REPORT_NAME
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def test_bench_serving(detector, results_dir):
    report = serving_sweep(smoke=True, detector=detector)
    report["mode"] = "pytest-smoke"
    check_serving_contract(report)
    path = write_report(report)
    print(f"\n=== {REPORT_NAME} ===\n{render_report(report)}\n")
    assert path.exists()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the sweep grid and workload window (CI smoke run)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload and pool base seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for fusion/ROI fan-out (request logs "
        "identical at any count)",
    )
    args = parser.parse_args(argv)
    report = serving_sweep(
        smoke=args.smoke,
        seed=args.seed,
        detector=SPOD.pretrained(),
        workers=args.workers,
    )
    check_serving_contract(report)
    path = write_report(report)
    print(render_report(report))
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
